#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <ostream>

#include "util/assert.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace fl::obs {

const char* span_name(SpanKind kind) {
  switch (kind) {
    case SpanKind::Quiesce: return "quiesce";
    case SpanKind::StepPhase: return "step";
    case SpanKind::MergePhase: return "merge";
    case SpanKind::AdmitPhase: return "admit";
    case SpanKind::StepLane: return "step:lane";
    case SpanKind::MergeLane: return "merge:lane";
    case SpanKind::AdmitLane: return "admit:lane";
    case SpanKind::NetBarrier: return "net:barrier";
    case SpanKind::Protocol: return "protocol";
  }
  return "?";
}

TraceConfig default_trace_config() {
  TraceConfig cfg;
  const char* env = std::getenv("FL_SIM_TRACE");
  if (env == nullptr || *env == '\0') return cfg;
  std::string spec(env);
  const std::size_t colon = spec.rfind(':');
  if (colon != std::string::npos) {
    const std::string level = spec.substr(colon + 1);
    if (level == "spans") {
      cfg.level = TraceLevel::Spans;
    } else {
      FL_REQUIRE(level == "profile",
                 "FL_SIM_TRACE must be '<path>' or '<path>:<level>' with "
                 "level 'spans' or 'profile' (colons in the path itself are "
                 "not supported)");
      cfg.level = TraceLevel::Profile;
    }
    spec.resize(colon);
  }
  FL_REQUIRE(!spec.empty(), "FL_SIM_TRACE needs an output path");
  cfg.path = std::move(spec);
  cfg.enabled = true;
  return cfg;
}

namespace {

std::uint64_t sample_rss_kb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  // ru_maxrss is KiB on Linux, bytes on macOS; normalize to KiB.
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(ru.ru_maxrss) / 1024;
#else
  return static_cast<std::uint64_t>(ru.ru_maxrss);
#endif
#else
  return 0;
#endif
}

// Microseconds with nanosecond precision — the trace-event format's `ts`
// unit. snprintf rather than ostream so locale can never reshape the
// artifact.
void append_us(std::string& out, std::uint64_t ns) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%llu.%03u",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned>(ns % 1000));
  out += buf;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

void append_double(std::string& out, double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.4f", v);
  out += buf;
}

}  // namespace

Tracer::Tracer(TraceConfig cfg) : cfg_(std::move(cfg)) {
  FL_REQUIRE(cfg_.ring_capacity >= 1, "trace ring capacity must be >= 1");
  // The engine track exists from construction so protocol scopes opened
  // before the execution plan is finalized still have somewhere to land.
  rings_.emplace_back(cfg_.ring_capacity);
}

void Tracer::bind_lanes(std::size_t lanes) {
  while (rings_.size() < 1 + lanes) rings_.emplace_back(cfg_.ring_capacity);
  if (lane_busy_scratch_.size() < lanes) lane_busy_scratch_.resize(lanes, 0);
}

void Tracer::record(SpanKind kind, unsigned lane, std::size_t round,
                    std::uint64_t begin_ns, std::uint64_t end_ns) {
  const std::uint64_t dur = end_ns - begin_ns;
  std::size_t track = 0;
  switch (kind) {
    case SpanKind::StepLane:
      lane_busy_scratch_[lane] += dur;
      track = 1 + lane;
      break;
    case SpanKind::MergeLane:
    case SpanKind::AdmitLane:
      track = 1 + lane;
      break;
    case SpanKind::Quiesce: scratch_.quiesce_ns += dur; break;
    case SpanKind::StepPhase: scratch_.step_ns += dur; break;
    case SpanKind::MergePhase: scratch_.merge_ns += dur; break;
    case SpanKind::AdmitPhase: scratch_.admit_ns += dur; break;
    // The socket barrier rides the engine track as a raw span: it has no
    // RoundProfile column (profiles stay backend-invariant in shape), but
    // a Perfetto view of a tcp run shows exactly where barrier time goes.
    case SpanKind::NetBarrier: break;
    case SpanKind::Protocol: break;
  }
  if (cfg_.level != TraceLevel::Spans) return;
  SpanEvent e;
  e.begin_ns = begin_ns;
  e.end_ns = end_ns;
  e.round = round;
  e.kind = kind;
  e.lane = static_cast<std::uint16_t>(lane);
  rings_[track].push(e);
}

void Tracer::record_named(const char* name, std::size_t round,
                          std::uint64_t begin_ns, std::uint64_t end_ns) {
  if (cfg_.level != TraceLevel::Spans) return;
  SpanEvent e;
  e.begin_ns = begin_ns;
  e.end_ns = end_ns;
  e.round = round;
  e.kind = SpanKind::Protocol;
  e.name = name;
  rings_[0].push(e);
}

void Tracer::end_round(std::size_t round, std::uint64_t delivered,
                       std::uint64_t words_cum, std::uint64_t deferrals_cum,
                       std::uint64_t carry_depth, std::uint64_t allocations) {
  RoundProfile p;
  p.round = round;
  p.messages = delivered;
  p.words = words_cum - prev_words_cum_;
  p.deferrals = deferrals_cum - prev_deferrals_cum_;
  p.carry_depth = carry_depth;
  p.allocations = allocations;
  prev_words_cum_ = words_cum;
  prev_deferrals_cum_ = deferrals_cum;
  p.quiesce_ns = scratch_.quiesce_ns;
  p.step_ns = scratch_.step_ns;
  p.merge_ns = scratch_.merge_ns;
  p.admit_ns = scratch_.admit_ns;
  scratch_ = PhaseScratch{};
  p.end_ns = Clock::now_ns();
  p.rss_kb = sample_rss_kb();
  p.lane_busy_ns = lane_busy_scratch_;
  std::uint64_t busy_max = 0;
  std::uint64_t busy_sum = 0;
  for (auto& b : lane_busy_scratch_) {
    if (b > busy_max) busy_max = b;
    busy_sum += b;
    b = 0;
  }
  if (busy_sum > 0 && !p.lane_busy_ns.empty()) {
    const double avg = static_cast<double>(busy_sum) /
                       static_cast<double>(p.lane_busy_ns.size());
    p.max_over_avg_busy = static_cast<double>(busy_max) / avg;
  }
  profiles_.push_back(std::move(p));
}

std::uint64_t Tracer::dropped_spans() const {
  std::uint64_t dropped = 0;
  for (const auto& ring : rings_) dropped += ring.dropped();
  return dropped;
}

void Tracer::write_chrome_trace(std::ostream& os) const {
  // One flat, globally ts-sorted stream of trace events: Perfetto does
  // not require the sort, but it makes downstream validation (a trace is
  // chronologically well-formed iff `ts` is non-decreasing in file order)
  // a single pass — scripts/trace_lint.py leans on it.
  struct Flat {
    SpanEvent e;
    std::size_t tid;
  };
  std::vector<Flat> flat;
  for (std::size_t t = 0; t < rings_.size(); ++t)
    rings_[t].for_each([&](const SpanEvent& e) { flat.push_back({e, t}); });
  std::sort(flat.begin(), flat.end(), [](const Flat& a, const Flat& b) {
    if (a.e.begin_ns != b.e.begin_ns) return a.e.begin_ns < b.e.begin_ns;
    if (a.tid != b.tid) return a.tid < b.tid;
    return a.e.end_ns < b.e.end_ns;
  });
  // Rebase to the earliest stamp so `ts` starts near 0 regardless of the
  // process's steady_clock epoch (and stays exact in a double).
  std::uint64_t t0 = std::numeric_limits<std::uint64_t>::max();
  for (const auto& f : flat) t0 = std::min(t0, f.e.begin_ns);
  for (const auto& p : profiles_) t0 = std::min(t0, p.end_ns);
  if (t0 == std::numeric_limits<std::uint64_t>::max()) t0 = 0;

  std::string out;
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
         "\"args\":{\"name\":\"fl-sim\"}}";
  for (std::size_t t = 0; t < rings_.size(); ++t) {
    out += ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":";
    append_u64(out, t);
    out += ",\"args\":{\"name\":\"";
    if (t == 0) {
      out += "engine";
    } else {
      out += "lane ";
      append_u64(out, t - 1);
    }
    out += "\"}}";
  }
  if (dropped_spans() > 0) {
    out += ",\n{\"name\":\"dropped_spans\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
           "\"args\":{\"count\":";
    append_u64(out, dropped_spans());
    out += "}}";
  }
  for (const auto& f : flat) {
    out += ",\n{\"name\":\"";
    out += (f.e.kind == SpanKind::Protocol && f.e.name != nullptr)
               ? f.e.name
               : span_name(f.e.kind);
    out += "\",\"cat\":\"sim\",\"ph\":\"X\",\"pid\":1,\"tid\":";
    append_u64(out, f.tid);
    out += ",\"ts\":";
    append_us(out, f.e.begin_ns - t0);
    out += ",\"dur\":";
    append_us(out, f.e.end_ns - f.e.begin_ns);
    out += ",\"args\":{\"round\":";
    append_u64(out, f.e.round);
    if (f.tid > 0) {
      out += ",\"lane\":";
      append_u64(out, f.e.lane);
    }
    out += "}}";
  }
  // Per-round counter tracks: delivered messages, carried backlog,
  // deferral events — the round timeline as Perfetto counter lanes.
  for (const auto& p : profiles_) {
    const std::uint64_t ts = p.end_ns >= t0 ? p.end_ns - t0 : 0;
    out += ",\n{\"name\":\"delivered\",\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":";
    append_us(out, ts);
    out += ",\"args\":{\"messages\":";
    append_u64(out, p.messages);
    out += "}}";
    out += ",\n{\"name\":\"carry\",\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":";
    append_us(out, ts);
    out += ",\"args\":{\"carried\":";
    append_u64(out, p.carry_depth);
    out += ",\"deferrals\":";
    append_u64(out, p.deferrals);
    out += "}}";
  }
  out += "\n]}\n";
  os << out;
}

namespace {

void append_histogram_line(std::string& out, const char* name,
                           const util::LogHistogram& h) {
  out += "{\"histogram\":\"";
  out += name;
  out += "\",\"count\":";
  append_u64(out, h.count());
  out += ",\"sum\":";
  append_u64(out, h.sum());
  out += ",\"min\":";
  append_u64(out, h.min());
  out += ",\"max\":";
  append_u64(out, h.max());
  out += ",\"buckets\":[";
  bool first = true;
  for (std::size_t b = 0; b < h.used_buckets(); ++b) {
    if (h.bucket_count(b) == 0) continue;
    if (!first) out += ",";
    first = false;
    out += "{\"lo\":";
    append_u64(out, util::LogHistogram::bucket_lo(b));
    out += ",\"hi\":";
    append_u64(out, util::LogHistogram::bucket_hi(b));
    out += ",\"n\":";
    append_u64(out, h.bucket_count(b));
    out += "}";
  }
  out += "]}\n";
}

}  // namespace

void Tracer::write_profile_jsonl(std::ostream& os) const {
  std::string out;
  for (const auto& p : profiles_) {
    out += "{\"round\":";
    append_u64(out, p.round);
    out += ",\"messages\":";
    append_u64(out, p.messages);
    out += ",\"words\":";
    append_u64(out, p.words);
    out += ",\"deferrals\":";
    append_u64(out, p.deferrals);
    out += ",\"carry_depth\":";
    append_u64(out, p.carry_depth);
    out += ",\"allocations\":";
    append_u64(out, p.allocations);
    out += ",\"lanes\":";
    append_u64(out, p.lane_busy_ns.size());
    out += ",\"quiesce_ns\":";
    append_u64(out, p.quiesce_ns);
    out += ",\"step_ns\":";
    append_u64(out, p.step_ns);
    out += ",\"merge_ns\":";
    append_u64(out, p.merge_ns);
    out += ",\"admit_ns\":";
    append_u64(out, p.admit_ns);
    out += ",\"end_ns\":";
    append_u64(out, p.end_ns);
    out += ",\"rss_kb\":";
    append_u64(out, p.rss_kb);
    out += ",\"busy_ns\":[";
    for (std::size_t s = 0; s < p.lane_busy_ns.size(); ++s) {
      if (s > 0) out += ",";
      append_u64(out, p.lane_busy_ns[s]);
    }
    out += "],\"max_over_avg_busy\":";
    append_double(out, p.max_over_avg_busy);
    out += "}\n";
  }
  append_histogram_line(out, "message_words", words_hist_);
  append_histogram_line(out, "edge_carry", carry_hist_);
  append_histogram_line(out, "node_sends", sends_hist_);
  os << out;
}

void Tracer::finalize() {
  if (finalized_ || cfg_.path.empty()) {
    finalized_ = true;
    return;
  }
  finalized_ = true;
  // Truncate-and-overwrite on purpose: under a suite-wide FL_SIM_TRACE
  // every Network writes the same path and the last run wins — a bounded
  // artifact, not one file per test. Failures are reported, never thrown:
  // tracing must not take down the run it observes (this is called from
  // Network's destructor).
  try {
    std::ofstream trace(cfg_.path, std::ios::trunc);
    if (!trace) {
      std::cerr << "fl::obs: cannot write trace to '" << cfg_.path << "'\n";
      return;
    }
    write_chrome_trace(trace);
    const std::string jsonl_path = cfg_.path + ".jsonl";
    std::ofstream jsonl(jsonl_path, std::ios::trunc);
    if (!jsonl) {
      std::cerr << "fl::obs: cannot write profile to '" << jsonl_path << "'\n";
      return;
    }
    write_profile_jsonl(jsonl);
  } catch (const std::exception& e) {
    std::cerr << "fl::obs: trace export failed: " << e.what() << "\n";
  }
}

}  // namespace fl::obs
