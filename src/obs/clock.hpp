// The sanctioned monotonic clock — the only place in the library allowed
// to read wall-clock time.
//
// Contract C2 bans wall-clock reads from round logic because a timestamp
// is nondeterministic input: any decision fed by one diverges across
// runs, thread counts, and machines. Observability still needs real time
// — that is its whole point — so the ban gets exactly one sanctioned
// door: `fl::obs` reads `steady_clock` here, and everything it derives
// (span durations, RoundProfile timings, imbalance ratios) is *advisory
// output only*. fl_lint enforces both sides: FL002 keeps <chrono> out of
// the rest of src/, and FL009 fires if engine or protocol code under
// src/{sim,core,baseline,localsim} consumes an obs timing value back
// into a decision path (docs/CONTRACTS.md C12).
#pragma once

#include <chrono>
#include <cstdint>

namespace fl::obs {

struct Clock {
  /// Monotonic nanoseconds since an arbitrary epoch (process-stable).
  static std::uint64_t now_ns() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }
};

}  // namespace fl::obs
