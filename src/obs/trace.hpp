// fl::obs — the zero-cost-off tracing / profiling layer for the round
// engine.
//
// The engine's determinism contracts (docs/CONTRACTS.md) make it a black
// box at runtime: Metrics is a handful of counters, and the ROADMAP items
// that want to *react* to heterogeneity (adaptive shard re-balancing,
// latency-aware serving) are blocked on data nobody records. This layer
// records it:
//
//   * spans — per-lane, per-phase timed scopes (quiesce / step / merge /
//     admit, plus named protocol scopes) pushed into per-lane ring
//     buffers. Each ring is written only by the thread that owns its lane
//     (exec.hpp binds job s to thread s), so recording is lock-free and
//     allocation-free after bind_lanes;
//   * RoundProfile — one structured record per round: phase durations,
//     per-lane busy time and the max/avg imbalance ratio, plus the round's
//     model quantities (messages, words, deferrals, carry depth, plane
//     allocations) and an RSS sample. Queryable as Network::profile(),
//     dumped as JSONL next to the trace;
//   * histograms — log-bucketed (util/histogram.hpp) message words,
//     per-directed-edge carry occupancy, per-node send counts;
//   * export — Chrome-trace-event JSON, so a run opens directly in
//     ui.perfetto.dev / chrome://tracing.
//
// Cardinal contract (CONTRACTS.md C12): tracing is *observational*.
// Golden trace hashes, Metrics, and RunStats are byte-identical with
// tracing on or off, at any thread count, because no timing value ever
// flows back into a protocol or scheduling decision. Two fences hold the
// line: every engine site is one `if (trace_)` branch off a null pointer
// (the FL_SIM_CHECK idiom — zero-cost off), and fl_lint splits the
// wall-clock ban into FL002 (only fl::obs may read steady_clock, via
// obs/clock.hpp) and FL009 (no code under src/{sim,core,baseline,
// localsim} may consume an obs timing value).
//
// RoundProfile fields come in two classes, and the split is load-bearing
// for tooling: *model* fields (round, messages, words, deferrals,
// carry_depth) are bit-identical across thread counts and trace levels —
// bench_diff treats them as strict; *advisory* fields (every `_ns`
// duration, `max_over_avg_busy`, `rss_kb`) are wall-clock artifacts that
// differ run to run — tooling must never gate on them.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/clock.hpp"
#include "util/histogram.hpp"

namespace fl::obs {

/// How much the tracer records. Profile keeps the per-round timeline and
/// histograms but skips the per-event ring pushes (cheapest); Spans adds
/// the full per-lane span stream for the Perfetto timeline.
enum class TraceLevel : std::uint8_t {
  Profile,
  Spans,
};

struct TraceConfig {
  bool enabled = false;
  /// Artifact base path: the Chrome trace JSON lands at `path`, the
  /// RoundProfile JSONL at `path` + ".jsonl". Empty = collect only (the
  /// in-memory spans/profiles stay queryable; nothing is written) — the
  /// mode tests use.
  std::string path;
  TraceLevel level = TraceLevel::Spans;
  /// Span events retained per track (engine + one per lane). Overflow
  /// drops the oldest events and counts them (SpanRing::dropped) — a
  /// bounded trace of an unbounded run, never an unbounded allocation.
  std::size_t ring_capacity = std::size_t{1} << 14;
};

/// TraceConfig{} (disabled) unless FL_SIM_TRACE is set. Accepted forms:
/// "<path>" or "<path>:<level>" with level in {spans, profile} (colons in
/// the path itself are not supported — the last ':' is reserved for the
/// level suffix). Mirrors default_congest_config(): the environment seeds
/// every Network's default, callers may still override via set_trace.
TraceConfig default_trace_config();

/// Span taxonomy. Engine-track kinds time one whole phase across all
/// lanes; lane-track kinds time one lane's slice of it.
enum class SpanKind : std::uint8_t {
  Quiesce,     ///< engine: the O(S) quiescence check
  StepPhase,   ///< engine: the whole step phase (all lanes)
  MergePhase,  ///< engine: the whole merge phase (offsets + scatter)
  AdmitPhase,  ///< engine: the whole CONGEST admission pass
  StepLane,    ///< lane: stepping its shard's nodes (busy time)
  MergeLane,   ///< lane: its offsets chunk + outbox scatter
  AdmitLane,   ///< lane: its admission chunk (decide + relocate)
  NetBarrier,  ///< engine: the TCP backend's socket round-sync barrier
  Protocol,    ///< engine: a named protocol scope (run_tlocal_broadcast...)
};

const char* span_name(SpanKind kind);

struct SpanEvent {
  std::uint64_t begin_ns = 0;
  std::uint64_t end_ns = 0;
  std::uint64_t round = 0;
  SpanKind kind = SpanKind::Quiesce;
  std::uint16_t lane = 0;    ///< lane index for lane kinds, else 0
  const char* name = nullptr;  ///< Protocol spans: static-lifetime label
};

/// Fixed-capacity single-writer ring. Overflow policy: overwrite the
/// oldest event and count the loss — recent rounds matter more than early
/// ones, and the writer (a stepping lane) must never block or allocate.
class SpanRing {
 public:
  explicit SpanRing(std::size_t capacity) : capacity_(capacity) {
    events_.reserve(capacity_);
  }

  void push(const SpanEvent& e) {
    if (events_.size() < capacity_) {
      events_.push_back(e);
    } else {
      events_[total_ % capacity_] = e;
    }
    ++total_;
  }

  std::size_t size() const { return events_.size(); }
  std::uint64_t total() const { return total_; }
  std::uint64_t dropped() const {
    return total_ > events_.size() ? total_ - events_.size() : 0;
  }

  /// Visit retained events oldest-first (push order survives overwrite).
  template <typename F>
  void for_each(F&& f) const {
    if (total_ <= capacity_) {
      for (const auto& e : events_) f(e);
      return;
    }
    const std::size_t head = static_cast<std::size_t>(total_ % capacity_);
    for (std::size_t i = head; i < capacity_; ++i) f(events_[i]);
    for (std::size_t i = 0; i < head; ++i) f(events_[i]);
  }

 private:
  std::vector<SpanEvent> events_;
  std::size_t capacity_;
  std::uint64_t total_ = 0;
};

/// One round of the engine, as a structured record.
struct RoundProfile {
  // -- model fields: bit-identical across thread counts and trace levels
  //    (pinned by tests/test_trace.cpp; bench_diff treats them strictly).
  std::uint64_t round = 0;
  std::uint64_t messages = 0;     ///< delivered this round
  std::uint64_t words = 0;        ///< words sent this round
  std::uint64_t deferrals = 0;    ///< congest deferral events this round
  std::uint64_t carry_depth = 0;  ///< carried messages after admission

  // -- engine diagnostics: deterministic for a fixed configuration but
  //    lane-count-dependent (outbox planes scale with lanes).
  std::uint64_t allocations = 0;  ///< cumulative plane-growth events

  // -- advisory wall-clock fields: never compared, never decided on.
  std::uint64_t quiesce_ns = 0;
  std::uint64_t step_ns = 0;
  std::uint64_t merge_ns = 0;
  std::uint64_t admit_ns = 0;
  std::uint64_t end_ns = 0;   ///< Clock stamp when the round closed
  std::uint64_t rss_kb = 0;   ///< ru_maxrss sample (0 where unsupported)
  std::vector<std::uint64_t> lane_busy_ns;  ///< per-lane step busy time
  /// Imbalance ratio: max(lane_busy) / avg(lane_busy); 1.0 is a perfectly
  /// balanced step phase. The signal the adaptive-sharding ROADMAP item
  /// needs — and, per C12, a signal nothing in src/sim may consume yet.
  double max_over_avg_busy = 0.0;
};

/// The collector. One per Network, owned behind a null-unless-enabled
/// pointer exactly like the ownership checker: every engine site costs a
/// single predictable branch when tracing is off.
///
/// Threading: ring 0 (engine track) and the profile/histogram state are
/// touched only by the driving thread, between or around pool barriers;
/// ring 1+s is written only by the thread running lane s's jobs. Reads
/// (profiles(), export) happen after runs, from the driving thread.
class Tracer {
 public:
  explicit Tracer(TraceConfig cfg);

  const TraceConfig& config() const { return cfg_; }

  /// Size the per-lane rings once the execution plan is final (engine
  /// track exists from construction so pre-run protocol scopes work).
  void bind_lanes(std::size_t lanes);

  /// Record a closed span (SpanScope's destructor calls this; engine code
  /// never touches timestamps directly).
  void record(SpanKind kind, unsigned lane, std::size_t round,
              std::uint64_t begin_ns, std::uint64_t end_ns);
  void record_named(const char* name, std::size_t round,
                    std::uint64_t begin_ns, std::uint64_t end_ns);

  /// Close round `round`: snapshot the phase scratch accumulated by the
  /// engine spans into a RoundProfile. The cumulative counters are the
  /// engine's own (words_total, deferrals_total); the tracer differences
  /// them so the profile carries per-round deltas.
  void end_round(std::size_t round, std::uint64_t delivered,
                 std::uint64_t words_cum, std::uint64_t deferrals_cum,
                 std::uint64_t carry_depth, std::uint64_t allocations);

  // Histogram surfaces. The engine fills them only under `if (trace_)`;
  // adds are order-independent, so chunk iteration order never shows.
  util::LogHistogram& message_words_hist() { return words_hist_; }
  util::LogHistogram& edge_carry_hist() { return carry_hist_; }
  util::LogHistogram& node_sends_hist() { return sends_hist_; }
  const util::LogHistogram& message_words_hist() const { return words_hist_; }
  const util::LogHistogram& edge_carry_hist() const { return carry_hist_; }
  const util::LogHistogram& node_sends_hist() const { return sends_hist_; }

  const std::vector<RoundProfile>& profiles() const { return profiles_; }
  std::size_t ring_count() const { return rings_.size(); }
  const SpanRing& ring(std::size_t i) const { return rings_[i]; }
  std::uint64_t dropped_spans() const;

  /// Write the Chrome trace to `path` and the profile JSONL to
  /// `path.jsonl`. Idempotent; a no-op when path is empty; never throws
  /// (an unwritable path is reported to stderr — observability must not
  /// take the run down with it). Network's destructor calls this.
  void finalize();
  bool finalized() const { return finalized_; }

  // Exporters, usable directly against any stream (tests do).
  void write_chrome_trace(std::ostream& os) const;
  void write_profile_jsonl(std::ostream& os) const;

 private:
  TraceConfig cfg_;
  std::vector<SpanRing> rings_;  // [0] engine, [1 + s] lane s
  std::vector<RoundProfile> profiles_;
  std::vector<std::uint64_t> lane_busy_scratch_;  // slot s: lane s only
  struct PhaseScratch {
    std::uint64_t quiesce_ns = 0;
    std::uint64_t step_ns = 0;
    std::uint64_t merge_ns = 0;
    std::uint64_t admit_ns = 0;
  } scratch_;
  util::LogHistogram words_hist_;
  util::LogHistogram carry_hist_;
  util::LogHistogram sends_hist_;
  std::uint64_t prev_words_cum_ = 0;
  std::uint64_t prev_deferrals_cum_ = 0;
  bool finalized_ = false;
};

/// RAII timed span. A null tracer makes construction and destruction
/// no-ops — the one-branch-per-site contract. The clock is read only
/// here, only when tracing is on, and the result flows only into the
/// tracer: the engine code opening the scope cannot see the timestamps.
class SpanScope {
 public:
  SpanScope(Tracer* tracer, SpanKind kind, unsigned lane, std::size_t round)
      : tracer_(tracer) {
    if (tracer_ == nullptr) return;
    kind_ = kind;
    lane_ = lane;
    round_ = round;
    begin_ns_ = Clock::now_ns();
  }

  ~SpanScope() {
    if (tracer_ != nullptr)
      tracer_->record(kind_, lane_, round_, begin_ns_, Clock::now_ns());
  }

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  Tracer* tracer_;
  SpanKind kind_ = SpanKind::Quiesce;
  unsigned lane_ = 0;
  std::size_t round_ = 0;
  std::uint64_t begin_ns_ = 0;
};

/// RAII named protocol scope ("tlocal_broadcast", ...). `name` must have
/// static lifetime — the ring stores the pointer, not a copy.
class ProtocolScope {
 public:
  ProtocolScope(Tracer* tracer, const char* name, std::size_t round = 0)
      : tracer_(tracer), name_(name) {
    if (tracer_ == nullptr) return;
    round_ = round;
    begin_ns_ = Clock::now_ns();
  }

  ~ProtocolScope() {
    if (tracer_ != nullptr)
      tracer_->record_named(name_, round_, begin_ns_, Clock::now_ns());
  }

  ProtocolScope(const ProtocolScope&) = delete;
  ProtocolScope& operator=(const ProtocolScope&) = delete;

 private:
  Tracer* tracer_;
  const char* name_;
  std::size_t round_ = 0;
  std::uint64_t begin_ns_ = 0;
};

}  // namespace fl::obs
