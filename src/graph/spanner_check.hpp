// Spanner verification — the oracle that tests and benches use to certify
// the paper's Theorem 9 (stretch) and Lemma 10 (size).
//
// A subgraph H = (V, S) of connected G is an α-spanner iff for every edge
// (u, v) of G, dist_H(u, v) <= α (the footnote-1 equivalent definition);
// exact verification therefore needs dist_H for every G-edge. We provide an
// exact checker (all-sources BFS on H, O(n·|S|)) for test-sized graphs and a
// sampled checker for bench-sized ones.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace fl::graph {

struct StretchReport {
  bool connected = false;         ///< H preserves G's connectivity
  double max_edge_stretch = 0.0;  ///< max over checked G-edges of dist_H(u,v)
  double mean_edge_stretch = 0.0;
  std::size_t edges_checked = 0;
  std::size_t violations = 0;     ///< edges with dist_H > alpha (when given)
};

/// Exact stretch over *all* edges of G. If `alpha` > 0, also counts
/// violations of dist_H(u,v) <= alpha.
StretchReport check_spanner_exact(const Graph& g,
                                  std::span<const EdgeId> spanner,
                                  double alpha = 0.0);

/// Stretch over a uniform sample of G's edges (BFS on H bounded at
/// `depth_cap`, treating deeper as stretch = depth_cap + 1).
StretchReport check_spanner_sampled(const Graph& g,
                                    std::span<const EdgeId> spanner,
                                    std::size_t sample_edges,
                                    std::uint32_t depth_cap,
                                    util::Xoshiro256& rng,
                                    double alpha = 0.0);

/// Max over sampled node pairs of dist_H(u,v)/dist_G(u,v) — the direct
/// (pairwise) stretch definition; used by bench E4 for reporting.
double sampled_pairwise_stretch(const Graph& g, std::span<const EdgeId> spanner,
                                std::size_t sample_sources,
                                util::Xoshiro256& rng);

/// True iff `spanner` contains no duplicate edge ids and every id is valid.
bool is_valid_edge_subset(const Graph& g, std::span<const EdgeId> spanner);

}  // namespace fl::graph
