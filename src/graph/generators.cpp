#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/assert.hpp"

namespace fl::graph {

namespace {

/// Small union-find used for connectivity patching inside generators.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n), rank_(n, 0) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }

  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  bool unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    if (rank_[a] < rank_[b]) std::swap(a, b);
    parent_[b] = a;
    if (rank_[a] == rank_[b]) ++rank_[a];
    return true;
  }

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::uint8_t> rank_;
};

}  // namespace

Graph ensure_connected(Graph g, util::Xoshiro256& rng) {
  const NodeId n = g.num_nodes();
  if (n <= 1) return g;
  UnionFind uf(n);
  for (const auto& e : g.edges()) uf.unite(e.u, e.v);

  // Collect one representative per component.
  std::vector<NodeId> reps;
  {
    std::vector<bool> seen_root(n, false);
    for (NodeId v = 0; v < n; ++v) {
      const auto root = uf.find(v);
      if (!seen_root[root]) {
        seen_root[root] = true;
        reps.push_back(v);
      }
    }
  }
  if (reps.size() == 1) return g;

  // Rebuild with bridging edges between random members of the components.
  Graph::Builder b(n);
  for (const auto& e : g.edges()) b.add_edge(e.u, e.v);
  util::shuffle(reps, rng);
  for (std::size_t i = 1; i < reps.size(); ++i) {
    // Bridge component i to a random earlier component's representative.
    NodeId u = reps[i - 1];
    NodeId v = reps[i];
    if (!b.has_edge(u, v)) b.add_edge(u, v);
  }
  return std::move(b).build();
}

Graph erdos_renyi_gnm(NodeId n, std::size_t m, util::Xoshiro256& rng) {
  FL_REQUIRE(n >= 2, "G(n,m) needs n >= 2");
  const std::size_t max_edges =
      static_cast<std::size_t>(n) * (n - 1) / 2;
  FL_REQUIRE(m <= max_edges, "G(n,m): m exceeds the complete graph");

  Graph::Builder b(n);
  // Dense request: sample which edges to *exclude* instead.
  if (m > max_edges / 2) {
    std::vector<std::uint8_t> excluded_hint;  // via hash set of packed pairs
    // Simpler: enumerate all pairs, reservoir-choose m of them.
    std::vector<std::pair<NodeId, NodeId>> pairs;
    pairs.reserve(max_edges);
    for (NodeId u = 0; u < n; ++u)
      for (NodeId v = u + 1; v < n; ++v) pairs.emplace_back(u, v);
    util::shuffle(pairs, rng);
    for (std::size_t i = 0; i < m; ++i) b.add_edge(pairs[i].first, pairs[i].second);
  } else {
    std::size_t added = 0;
    while (added < m) {
      const NodeId u = static_cast<NodeId>(rng.index(n));
      const NodeId v = static_cast<NodeId>(rng.index(n));
      if (u == v || b.has_edge(u, v)) continue;
      b.add_edge(u, v);
      ++added;
    }
  }
  return ensure_connected(std::move(b).build(), rng);
}

Graph erdos_renyi_gnp(NodeId n, double p, util::Xoshiro256& rng) {
  FL_REQUIRE(n >= 2, "G(n,p) needs n >= 2");
  FL_REQUIRE(p >= 0.0 && p <= 1.0, "G(n,p) needs p in [0,1]");
  Graph::Builder b(n);
  if (p > 0.0) {
    // Geometric skipping over the lexicographic pair order: O(m) expected.
    const double log_q = std::log1p(-p);
    std::uint64_t idx = 0;  // linear index into the (u < v) pair sequence
    const std::uint64_t total =
        static_cast<std::uint64_t>(n) * (n - 1) / 2;
    while (true) {
      if (p < 1.0) {
        // Geometric gap: skip ~ floor(ln(1-U)/ln(1-p)), U uniform in [0,1).
        const double r = rng.uniform01();
        const double skip = std::floor(std::log1p(-r) / log_q);
        idx += static_cast<std::uint64_t>(skip);
      }
      if (idx >= total) break;
      // Invert the linear index to (u, v). Solve u from the triangular sum.
      NodeId u = 0;
      std::uint64_t rem = idx;
      std::uint64_t row = n - 1;
      while (rem >= row) {
        rem -= row;
        ++u;
        --row;
      }
      const NodeId v = static_cast<NodeId>(u + 1 + rem);
      b.add_edge(u, v);
      ++idx;
    }
  }
  return ensure_connected(std::move(b).build(), rng);
}

Graph complete(NodeId n) {
  FL_REQUIRE(n >= 2, "complete graph needs n >= 2");
  Graph::Builder b(n);
  for (NodeId u = 0; u < n; ++u)
    for (NodeId v = u + 1; v < n; ++v) b.add_edge(u, v);
  return std::move(b).build();
}

Graph complete_bipartite(NodeId a, NodeId bb) {
  FL_REQUIRE(a >= 1 && bb >= 1, "K_{a,b} needs both sides non-empty");
  Graph::Builder b(a + bb);
  for (NodeId u = 0; u < a; ++u)
    for (NodeId v = 0; v < bb; ++v) b.add_edge(u, a + v);
  return std::move(b).build();
}

Graph grid(NodeId rows, NodeId cols) {
  FL_REQUIRE(rows >= 1 && cols >= 1 && rows * cols >= 2, "grid too small");
  Graph::Builder b(rows * cols);
  auto at = [cols](NodeId r, NodeId c) { return r * cols + c; };
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      if (c + 1 < cols) b.add_edge(at(r, c), at(r, c + 1));
      if (r + 1 < rows) b.add_edge(at(r, c), at(r + 1, c));
    }
  }
  return std::move(b).build();
}

Graph torus(NodeId rows, NodeId cols) {
  FL_REQUIRE(rows >= 3 && cols >= 3, "torus needs rows, cols >= 3");
  Graph::Builder b(rows * cols);
  auto at = [cols](NodeId r, NodeId c) { return r * cols + c; };
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      b.add_edge(at(r, c), at(r, (c + 1) % cols));
      b.add_edge(at(r, c), at((r + 1) % rows, c));
    }
  }
  return std::move(b).build();
}

Graph hypercube(unsigned dim) {
  FL_REQUIRE(dim >= 1 && dim <= 24, "hypercube dimension out of range");
  const NodeId n = NodeId{1} << dim;
  Graph::Builder b(n);
  for (NodeId v = 0; v < n; ++v)
    for (unsigned d = 0; d < dim; ++d) {
      const NodeId u = v ^ (NodeId{1} << d);
      if (v < u) b.add_edge(v, u);
    }
  return std::move(b).build();
}

Graph ring(NodeId n) {
  FL_REQUIRE(n >= 3, "ring needs n >= 3");
  Graph::Builder b(n);
  for (NodeId v = 0; v < n; ++v) b.add_edge(v, (v + 1) % n);
  return std::move(b).build();
}

Graph path(NodeId n) {
  FL_REQUIRE(n >= 2, "path needs n >= 2");
  Graph::Builder b(n);
  for (NodeId v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1);
  return std::move(b).build();
}

Graph star(NodeId n) {
  FL_REQUIRE(n >= 2, "star needs n >= 2");
  Graph::Builder b(n);
  for (NodeId v = 1; v < n; ++v) b.add_edge(0, v);
  return std::move(b).build();
}

Graph random_tree(NodeId n, util::Xoshiro256& rng) {
  FL_REQUIRE(n >= 2, "random tree needs n >= 2");
  Graph::Builder b(n);
  // Random attachment: node v joins a uniformly random earlier node.
  for (NodeId v = 1; v < n; ++v)
    b.add_edge(v, static_cast<NodeId>(rng.index(v)));
  return std::move(b).build();
}

Graph barabasi_albert(NodeId n, NodeId attach, util::Xoshiro256& rng) {
  FL_REQUIRE(attach >= 1, "BA needs attach >= 1");
  FL_REQUIRE(n > attach, "BA needs n > attach");
  Graph::Builder b(n);
  // Seed: a clique on attach+1 nodes keeps early degrees non-degenerate.
  for (NodeId u = 0; u <= attach; ++u)
    for (NodeId v = u + 1; v <= attach; ++v) b.add_edge(u, v);

  // Endpoint pool: each edge contributes both endpoints, so sampling the
  // pool uniformly is sampling nodes proportionally to degree.
  std::vector<NodeId> pool;
  for (NodeId u = 0; u <= attach; ++u)
    for (NodeId v = u + 1; v <= attach; ++v) {
      pool.push_back(u);
      pool.push_back(v);
    }

  for (NodeId v = attach + 1; v < n; ++v) {
    std::vector<NodeId> targets;
    while (targets.size() < attach) {
      const NodeId t = pool[rng.index(pool.size())];
      if (t == v) continue;
      if (std::find(targets.begin(), targets.end(), t) != targets.end())
        continue;
      targets.push_back(t);
    }
    for (const NodeId t : targets) {
      b.add_edge(v, t);
      pool.push_back(v);
      pool.push_back(t);
    }
  }
  return std::move(b).build();
}

Graph random_geometric(NodeId n, double radius, util::Xoshiro256& rng) {
  FL_REQUIRE(n >= 2, "RGG needs n >= 2");
  FL_REQUIRE(radius > 0.0, "RGG needs a positive radius");
  std::vector<double> x(n), y(n);
  for (NodeId v = 0; v < n; ++v) {
    x[v] = rng.uniform01();
    y[v] = rng.uniform01();
  }
  // Bucket the unit square into cells of side `radius`; only neighbouring
  // cells can contain nodes within the connection radius.
  const auto cells = static_cast<std::size_t>(
      std::max(1.0, std::floor(1.0 / radius)));
  std::vector<std::vector<NodeId>> bucket(cells * cells);
  auto cell_of = [&](NodeId v) {
    auto cx = std::min(cells - 1, static_cast<std::size_t>(x[v] * static_cast<double>(cells)));
    auto cy = std::min(cells - 1, static_cast<std::size_t>(y[v] * static_cast<double>(cells)));
    return cy * cells + cx;
  };
  for (NodeId v = 0; v < n; ++v) bucket[cell_of(v)].push_back(v);

  Graph::Builder b(n);
  const double r2 = radius * radius;
  for (std::size_t cy = 0; cy < cells; ++cy) {
    for (std::size_t cx = 0; cx < cells; ++cx) {
      for (int dy = 0; dy <= 1; ++dy) {
        for (int dx = (dy == 0 ? 0 : -1); dx <= 1; ++dx) {
          const auto ny = cy + static_cast<std::size_t>(dy);
          const auto nx_signed = static_cast<long long>(cx) + dx;
          if (ny >= cells || nx_signed < 0 ||
              nx_signed >= static_cast<long long>(cells))
            continue;
          const auto nx = static_cast<std::size_t>(nx_signed);
          const auto& a_cell = bucket[cy * cells + cx];
          const auto& b_cell = bucket[ny * cells + nx];
          const bool same = (ny == cy && nx == cx);
          for (std::size_t i = 0; i < a_cell.size(); ++i) {
            for (std::size_t j = same ? i + 1 : 0; j < b_cell.size(); ++j) {
              const NodeId u = a_cell[i], w = b_cell[j];
              const double ddx = x[u] - x[w], ddy = y[u] - y[w];
              if (ddx * ddx + ddy * ddy <= r2 && !b.has_edge(u, w))
                b.add_edge(u, w);
            }
          }
        }
      }
    }
  }
  return ensure_connected(std::move(b).build(), rng);
}

Graph dumbbell(NodeId n, NodeId bridge_len) {
  FL_REQUIRE(n >= 6, "dumbbell needs n >= 6");
  FL_REQUIRE(bridge_len + 4 <= n, "bridge too long for n");
  const NodeId clique_nodes = n - bridge_len;
  const NodeId left = clique_nodes / 2;
  const NodeId right = clique_nodes - left;
  FL_REQUIRE(left >= 2 && right >= 2, "dumbbell cliques too small");
  Graph::Builder b(n);
  for (NodeId u = 0; u < left; ++u)
    for (NodeId v = u + 1; v < left; ++v) b.add_edge(u, v);
  for (NodeId u = left; u < left + right; ++u)
    for (NodeId v = u + 1; v < left + right; ++v) b.add_edge(u, v);
  // Bridge path from node 0 to node `left` through the remaining nodes.
  NodeId prev = 0;
  for (NodeId i = 0; i < bridge_len; ++i) {
    const NodeId mid = left + right + i;
    b.add_edge(prev, mid);
    prev = mid;
  }
  b.add_edge(prev, left);
  return std::move(b).build();
}

Graph lollipop(NodeId n, NodeId clique) {
  FL_REQUIRE(clique >= 3 && clique < n, "lollipop needs 3 <= clique < n");
  Graph::Builder b(n);
  for (NodeId u = 0; u < clique; ++u)
    for (NodeId v = u + 1; v < clique; ++v) b.add_edge(u, v);
  for (NodeId v = clique; v < n; ++v) b.add_edge(v - 1 == clique - 1 ? 0 : v - 1, v);
  return std::move(b).build();
}

std::string family_name(Family f) {
  switch (f) {
    case Family::ErdosRenyi: return "erdos_renyi";
    case Family::Complete: return "complete";
    case Family::Grid: return "grid";
    case Family::Torus: return "torus";
    case Family::Hypercube: return "hypercube";
    case Family::Ring: return "ring";
    case Family::BarabasiAlbert: return "barabasi_albert";
    case Family::RandomGeometric: return "random_geometric";
    case Family::RandomTree: return "random_tree";
    case Family::Dumbbell: return "dumbbell";
  }
  return "unknown";
}

Graph make_family(Family family, NodeId n, double param,
                  util::Xoshiro256& rng) {
  switch (family) {
    case Family::ErdosRenyi: {
      const double avg_deg = param > 0 ? param : 8.0;
      const auto m = static_cast<std::size_t>(
          std::min(static_cast<double>(n) * (n - 1) / 2.0,
                   avg_deg * static_cast<double>(n) / 2.0));
      return erdos_renyi_gnm(n, std::max<std::size_t>(m, n - 1), rng);
    }
    case Family::Complete:
      return complete(n);
    case Family::Grid: {
      const auto side = static_cast<NodeId>(
          std::max(2.0, std::round(std::sqrt(static_cast<double>(n)))));
      return grid(side, side);
    }
    case Family::Torus: {
      const auto side = static_cast<NodeId>(
          std::max(3.0, std::round(std::sqrt(static_cast<double>(n)))));
      return torus(side, side);
    }
    case Family::Hypercube: {
      unsigned dim = 1;
      while ((NodeId{1} << (dim + 1)) <= n && dim < 24) ++dim;
      return hypercube(dim);
    }
    case Family::Ring:
      return ring(std::max<NodeId>(n, 3));
    case Family::BarabasiAlbert: {
      const auto attach = static_cast<NodeId>(param > 0 ? param : 4);
      return barabasi_albert(n, std::min<NodeId>(attach, n - 1), rng);
    }
    case Family::RandomGeometric: {
      // Default radius ~ sqrt(c log n / n) keeps the raw graph near the
      // connectivity threshold; param scales it.
      const double scale = param > 0 ? param : 1.5;
      const double r = scale * std::sqrt(std::log(std::max<double>(n, 3)) /
                                         static_cast<double>(n));
      return random_geometric(n, std::min(r, 1.0), rng);
    }
    case Family::RandomTree:
      return random_tree(n, rng);
    case Family::Dumbbell:
      return dumbbell(std::max<NodeId>(n, 6), std::max<NodeId>(2, n / 16));
  }
  FL_REQUIRE(false, "unknown family");
  return Graph{};
}

std::vector<Family> all_families() {
  return {Family::ErdosRenyi,      Family::Complete,       Family::Grid,
          Family::Torus,           Family::Hypercube,      Family::Ring,
          Family::BarabasiAlbert,  Family::RandomGeometric,
          Family::RandomTree,      Family::Dumbbell};
}

}  // namespace fl::graph
