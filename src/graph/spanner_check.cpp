#include "graph/spanner_check.hpp"

#include <algorithm>

#include "graph/algorithms.hpp"
#include "util/assert.hpp"

namespace fl::graph {

bool is_valid_edge_subset(const Graph& g, std::span<const EdgeId> spanner) {
  std::vector<bool> seen(g.num_edges(), false);
  for (const EdgeId e : spanner) {
    if (e >= g.num_edges()) return false;
    if (seen[e]) return false;
    seen[e] = true;
  }
  return true;
}

StretchReport check_spanner_exact(const Graph& g,
                                  std::span<const EdgeId> spanner,
                                  double alpha) {
  FL_REQUIRE(is_valid_edge_subset(g, spanner), "invalid spanner edge set");
  const SubgraphView h(g, spanner);
  StretchReport rep;
  rep.connected = h.preserves_connectivity();

  // dist_H(u, v) for every G-edge: one BFS on H per node covers all edges
  // whose lower endpoint is that node.
  double sum = 0.0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    bool has_relevant_edge = false;
    for (const Incidence& inc : g.incident(u))
      if (inc.to > u) {
        has_relevant_edge = true;
        break;
      }
    if (!has_relevant_edge) continue;
    const auto dist = h.bfs_distances(u);
    for (const Incidence& inc : g.incident(u)) {
      if (inc.to <= u) continue;  // count each undirected edge once
      const bool unreachable = dist[inc.to] == kUnreachable;
      const double d = unreachable ? static_cast<double>(g.num_nodes())
                                   : static_cast<double>(dist[inc.to]);
      rep.max_edge_stretch = std::max(rep.max_edge_stretch, d);
      sum += d;
      ++rep.edges_checked;
      // An endpoint pair disconnected in H violates every finite stretch.
      if (alpha > 0.0 && (unreachable || d > alpha)) ++rep.violations;
    }
  }
  rep.mean_edge_stretch = rep.edges_checked
                              ? sum / static_cast<double>(rep.edges_checked)
                              : 0.0;
  return rep;
}

StretchReport check_spanner_sampled(const Graph& g,
                                    std::span<const EdgeId> spanner,
                                    std::size_t sample_edges,
                                    std::uint32_t depth_cap,
                                    util::Xoshiro256& rng,
                                    double alpha) {
  FL_REQUIRE(is_valid_edge_subset(g, spanner), "invalid spanner edge set");
  FL_REQUIRE(depth_cap > 0, "depth cap must be positive");
  const SubgraphView h(g, spanner);
  StretchReport rep;
  rep.connected = true;  // not verified in sampled mode; see exact checker

  const auto picks = util::sample_without_replacement(
      g.num_edges(), std::min<std::size_t>(sample_edges, g.num_edges()), rng);
  double sum = 0.0;
  for (const std::size_t e : picks) {
    const Endpoints ep = g.endpoints(static_cast<EdgeId>(e));
    const auto dist = h.bfs_distances_bounded(ep.u, depth_cap);
    const double d = dist[ep.v] == kUnreachable
                         ? static_cast<double>(depth_cap) + 1.0
                         : static_cast<double>(dist[ep.v]);
    rep.max_edge_stretch = std::max(rep.max_edge_stretch, d);
    sum += d;
    ++rep.edges_checked;
    if (alpha > 0.0 && d > alpha) ++rep.violations;
  }
  rep.mean_edge_stretch = rep.edges_checked
                              ? sum / static_cast<double>(rep.edges_checked)
                              : 0.0;
  return rep;
}

double sampled_pairwise_stretch(const Graph& g,
                                std::span<const EdgeId> spanner,
                                std::size_t sample_sources,
                                util::Xoshiro256& rng) {
  FL_REQUIRE(is_valid_edge_subset(g, spanner), "invalid spanner edge set");
  const SubgraphView h(g, spanner);
  const auto sources = util::sample_without_replacement(
      g.num_nodes(), std::min<std::size_t>(sample_sources, g.num_nodes()),
      rng);
  double worst = 1.0;
  for (const std::size_t sv : sources) {
    const auto s = static_cast<NodeId>(sv);
    const auto dg = bfs_distances(g, s);
    const auto dh = h.bfs_distances(s);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (v == s || dg[v] == kUnreachable) continue;
      const double ratio =
          dh[v] == kUnreachable
              ? static_cast<double>(g.num_nodes())
              : static_cast<double>(dh[v]) / static_cast<double>(dg[v]);
      worst = std::max(worst, ratio);
    }
  }
  return worst;
}

}  // namespace fl::graph
