// Classic graph algorithms used by the verification and bench layers:
// BFS distances (full graph and edge-subset subgraphs), connectivity,
// diameter, and spanning trees.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace fl::graph {

/// Distance value for unreachable nodes.
inline constexpr std::uint32_t kUnreachable =
    std::numeric_limits<std::uint32_t>::max();

/// BFS distances from `source` over the whole graph.
std::vector<std::uint32_t> bfs_distances(const Graph& g, NodeId source);

/// BFS distances from `source`, truncated at `max_depth` (nodes further away
/// stay kUnreachable). Visits only the ball, so it is cheap for small depths.
std::vector<std::uint32_t> bfs_distances_bounded(const Graph& g, NodeId source,
                                                 std::uint32_t max_depth);

/// A reusable adjacency view of the subgraph H = (V, S) for an edge subset S
/// of a fixed graph. Build once, then run many BFS queries over H.
class SubgraphView {
 public:
  SubgraphView(const Graph& g, std::span<const EdgeId> edges);

  const Graph& base() const { return *g_; }
  NodeId num_nodes() const { return g_->num_nodes(); }
  std::size_t num_edges() const { return edge_count_; }

  std::span<const Incidence> incident(NodeId v) const;

  /// BFS over the subgraph from `source`.
  std::vector<std::uint32_t> bfs_distances(NodeId source) const;

  /// BFS over the subgraph truncated at `max_depth`.
  std::vector<std::uint32_t> bfs_distances_bounded(NodeId source,
                                                   std::uint32_t max_depth) const;

  /// True iff the subgraph spans the base graph's single component set, i.e.
  /// every pair connected in G is connected in H.
  bool preserves_connectivity() const;

 private:
  const Graph* g_;
  std::size_t edge_count_;
  std::vector<std::size_t> offsets_;
  std::vector<Incidence> incidence_;
};

/// Component labelling: result[v] in [0, count).
struct Components {
  std::size_t count = 0;
  std::vector<NodeId> label;
};
Components connected_components(const Graph& g);

bool is_connected(const Graph& g);

/// Exact diameter via all-sources BFS; O(n·m), intended for test-size graphs.
std::uint32_t diameter_exact(const Graph& g);

/// Double-sweep lower bound: BFS from an arbitrary node, then BFS from the
/// farthest node found. Cheap and usually tight on real graphs.
std::uint32_t diameter_double_sweep(const Graph& g);

/// Edge ids of a BFS spanning forest (one tree per component).
std::vector<EdgeId> spanning_forest(const Graph& g);

/// Eccentricity of one node (max BFS distance within its component).
std::uint32_t eccentricity(const Graph& g, NodeId v);

}  // namespace fl::graph
