// Plain-text graph I/O: a one-edge-per-line format for persistence and DOT
// export for the illustrative examples (Figure 1 reproduction).
#pragma once

#include <iosfwd>
#include <span>
#include <string>

#include "graph/graph.hpp"

namespace fl::graph {

/// Format:
///   n <num_nodes>
///   e <u> <v>      (one line per edge; edge ids assigned in file order)
/// Lines starting with '#' are comments.
void write_edge_list(std::ostream& os, const Graph& g);
Graph read_edge_list(std::istream& is);

/// Graphviz DOT. Spanner edges (if provided) are drawn bold/colored so
/// `dot -Tpng` renders a figure-1-style picture.
void write_dot(std::ostream& os, const Graph& g,
               std::span<const EdgeId> highlighted_edges = {},
               const std::string& name = "G");

}  // namespace fl::graph
