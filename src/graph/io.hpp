// Plain-text graph I/O: a one-edge-per-line format for persistence and DOT
// export for the illustrative examples (Figure 1 reproduction).
#pragma once

#include <iosfwd>
#include <span>
#include <string>

#include "graph/graph.hpp"

namespace fl::graph {

/// Format:
///   n <num_nodes>
///   e <u> <v>      (one line per edge; edge ids assigned in file order)
/// Lines starting with '#' are comments.
void write_edge_list(std::ostream& os, const Graph& g);
Graph read_edge_list(std::istream& is);

/// Tuning for the out-of-core reader below.
struct EdgeListStreamOptions {
  /// Endpoints buffered per flush into the builder; the reader's transient
  /// footprint is chunk_edges * sizeof(Endpoints), independent of m.
  std::size_t chunk_edges = std::size_t{1} << 20;
  /// Expected edge count, forwarded to StreamBuilder::reserve_edges so the
  /// edge array is allocated once. 0 = unknown (amortized doubling).
  std::size_t reserve_edges = 0;
};

/// Out-of-core variant of read_edge_list for n=10M-scale inputs: parses in
/// fixed-size chunks straight into a Graph::StreamBuilder, so peak memory
/// is the finished graph plus one chunk — no staging vector of all edges
/// and no duplicate-detection hash set (the caller vouches the file lists
/// each edge once; range and self-loop checks still apply). Same format as
/// read_edge_list with one extra requirement: the 'n' line must precede
/// the first 'e' line (the builder needs the node count up front). Edge
/// ids are assigned in file order, identical to read_edge_list.
Graph read_edge_list_streamed(std::istream& is,
                              const EdgeListStreamOptions& opt = {});

/// Graphviz DOT. Spanner edges (if provided) are drawn bold/colored so
/// `dot -Tpng` renders a figure-1-style picture.
void write_dot(std::ostream& os, const Graph& g,
               std::span<const EdgeId> highlighted_edges = {},
               const std::string& name = "G");

}  // namespace fl::graph
