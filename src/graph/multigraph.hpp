// Undirected multigraph with per-edge *physical id* provenance.
//
// The Sampler hierarchy (paper Section 3) contracts clusters of G_j into the
// nodes of G_{j+1}; even when the input graph is simple, the cluster graphs
// G_1, ..., G_k carry parallel edges. Each virtual edge remembers the id of
// the physical edge of G_0 it descends from — this is exactly the unique-
// edge-ID information the distributed implementation (Section 5) routes
// query messages on, and what lets a node "peel off" every edge parallel to
// a discovered neighbour (Section 1.3).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "graph/ids.hpp"

namespace fl::graph {

class Multigraph {
 public:
  /// A multigraph edge: virtual endpoints plus physical-edge provenance.
  struct MEdge {
    NodeId u = kInvalidNode;
    NodeId v = kInvalidNode;
    EdgeId physical = kInvalidEdge;  ///< id in the level-0 communication graph

    friend bool operator==(const MEdge&, const MEdge&) = default;
  };

  Multigraph() = default;

  /// Direct construction from an edge list over `num_nodes` nodes.
  /// Self-loops are rejected (contraction drops them before this point).
  Multigraph(NodeId num_nodes, std::vector<MEdge> edges);

  /// Level-0 view of a simple communication graph: virtual node == physical
  /// node, physical id == edge id.
  static Multigraph from_graph(const Graph& g);

  NodeId num_nodes() const { return n_; }
  EdgeId num_edges() const { return static_cast<EdgeId>(edges_.size()); }

  const MEdge& edge(EdgeId e) const;
  NodeId other_endpoint(EdgeId e, NodeId v) const;

  /// Incidence list of `v`; parallel edges appear once per multiplicity.
  std::span<const Incidence> incident(NodeId v) const;

  /// Number of incident edges counting multiplicity, |E_j(v)|.
  std::size_t incident_count(NodeId v) const;

  /// Distinct neighbours of `v`, ascending, |N_j(v)| elements.
  std::vector<NodeId> neighbors(NodeId v) const;

  /// |N_j(v)| without materializing the neighbour list.
  std::size_t distinct_neighbor_count(NodeId v) const;

  /// All (local) edge ids connecting v and u — the paper's E_j(v, u).
  std::vector<EdgeId> edges_between(NodeId v, NodeId u) const;

  /// Contract per the cluster assignment: `cluster_of[v]` is the new node id
  /// of v's cluster, or kInvalidNode when v is unclustered (dropped).
  /// Intra-cluster edges and edges touching dropped nodes disappear;
  /// surviving edges keep their physical ids. `num_clusters` is the node
  /// count of the result.
  Multigraph contract(std::span<const NodeId> cluster_of,
                      NodeId num_clusters) const;

  std::string summary() const;

 private:
  void build_incidence();

  NodeId n_ = 0;
  std::vector<MEdge> edges_;
  std::vector<std::size_t> offsets_;  // n_ + 1
  std::vector<Incidence> incidence_;  // 2m, sorted by neighbour within a node
};

}  // namespace fl::graph
