#include "graph/algorithms.hpp"

#include <algorithm>
#include <queue>

#include "util/assert.hpp"

namespace fl::graph {

namespace {

/// Shared BFS core parameterized on an incidence accessor.
template <typename IncidentFn>
std::vector<std::uint32_t> bfs_core(NodeId n, NodeId source,
                                    std::uint32_t max_depth,
                                    IncidentFn&& incident) {
  FL_REQUIRE(source < n, "BFS source out of range");
  std::vector<std::uint32_t> dist(n, kUnreachable);
  std::vector<NodeId> frontier{source};
  dist[source] = 0;
  std::uint32_t depth = 0;
  std::vector<NodeId> next;
  while (!frontier.empty() && depth < max_depth) {
    next.clear();
    for (const NodeId v : frontier) {
      for (const Incidence& inc : incident(v)) {
        if (dist[inc.to] == kUnreachable) {
          dist[inc.to] = depth + 1;
          next.push_back(inc.to);
        }
      }
    }
    frontier.swap(next);
    ++depth;
  }
  return dist;
}

}  // namespace

std::vector<std::uint32_t> bfs_distances(const Graph& g, NodeId source) {
  return bfs_core(g.num_nodes(), source, kUnreachable,
                  [&](NodeId v) { return g.incident(v); });
}

std::vector<std::uint32_t> bfs_distances_bounded(const Graph& g, NodeId source,
                                                 std::uint32_t max_depth) {
  return bfs_core(g.num_nodes(), source, max_depth,
                  [&](NodeId v) { return g.incident(v); });
}

SubgraphView::SubgraphView(const Graph& g, std::span<const EdgeId> edges)
    : g_(&g), edge_count_(edges.size()) {
  const NodeId n = g.num_nodes();
  offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (const EdgeId e : edges) {
    const Endpoints ep = g.endpoints(e);
    ++offsets_[ep.u + 1];
    ++offsets_[ep.v + 1];
  }
  for (std::size_t i = 1; i < offsets_.size(); ++i)
    offsets_[i] += offsets_[i - 1];
  incidence_.resize(2 * edges.size());
  std::vector<std::size_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const EdgeId e : edges) {
    const Endpoints ep = g.endpoints(e);
    incidence_[cursor[ep.u]++] = Incidence{ep.v, e};
    incidence_[cursor[ep.v]++] = Incidence{ep.u, e};
  }
}

std::span<const Incidence> SubgraphView::incident(NodeId v) const {
  FL_REQUIRE(v < num_nodes(), "node id out of range");
  return {incidence_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
}

std::vector<std::uint32_t> SubgraphView::bfs_distances(NodeId source) const {
  return bfs_core(num_nodes(), source, kUnreachable,
                  [&](NodeId v) { return incident(v); });
}

std::vector<std::uint32_t> SubgraphView::bfs_distances_bounded(
    NodeId source, std::uint32_t max_depth) const {
  return bfs_core(num_nodes(), source, max_depth,
                  [&](NodeId v) { return incident(v); });
}

bool SubgraphView::preserves_connectivity() const {
  const Components base = connected_components(*g_);
  // For each base component, all members must be mutually reachable in H.
  // BFS in H from one representative per base component suffices.
  std::vector<bool> seen_comp(base.count, false);
  for (NodeId v = 0; v < num_nodes(); ++v) {
    const NodeId c = base.label[v];
    if (seen_comp[c]) continue;
    seen_comp[c] = true;
    const auto dist = bfs_distances(v);
    for (NodeId u = 0; u < num_nodes(); ++u)
      if (base.label[u] == c && dist[u] == kUnreachable) return false;
  }
  return true;
}

Components connected_components(const Graph& g) {
  Components out;
  out.label.assign(g.num_nodes(), kInvalidNode);
  std::vector<NodeId> stack;
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    if (out.label[s] != kInvalidNode) continue;
    const auto c = static_cast<NodeId>(out.count++);
    out.label[s] = c;
    stack.push_back(s);
    while (!stack.empty()) {
      const NodeId v = stack.back();
      stack.pop_back();
      for (const Incidence& inc : g.incident(v)) {
        if (out.label[inc.to] == kInvalidNode) {
          out.label[inc.to] = c;
          stack.push_back(inc.to);
        }
      }
    }
  }
  return out;
}

bool is_connected(const Graph& g) {
  if (g.num_nodes() <= 1) return true;
  return connected_components(g).count == 1;
}

std::uint32_t diameter_exact(const Graph& g) {
  std::uint32_t best = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto dist = bfs_distances(g, v);
    for (const auto d : dist)
      if (d != kUnreachable) best = std::max(best, d);
  }
  return best;
}

std::uint32_t diameter_double_sweep(const Graph& g) {
  if (g.num_nodes() == 0) return 0;
  auto farthest = [&](NodeId s) {
    const auto dist = bfs_distances(g, s);
    NodeId arg = s;
    std::uint32_t best = 0;
    for (NodeId v = 0; v < g.num_nodes(); ++v)
      if (dist[v] != kUnreachable && dist[v] > best) {
        best = dist[v];
        arg = v;
      }
    return std::pair{arg, best};
  };
  const auto [far1, d1] = farthest(0);
  const auto [far2, d2] = farthest(far1);
  (void)far2;
  return std::max(d1, d2);
}

std::vector<EdgeId> spanning_forest(const Graph& g) {
  std::vector<EdgeId> tree;
  std::vector<bool> visited(g.num_nodes(), false);
  std::vector<NodeId> queue;
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    if (visited[s]) continue;
    visited[s] = true;
    queue.push_back(s);
    std::size_t head = 0;
    while (head < queue.size()) {
      const NodeId v = queue[head++];
      for (const Incidence& inc : g.incident(v)) {
        if (!visited[inc.to]) {
          visited[inc.to] = true;
          tree.push_back(inc.edge);
          queue.push_back(inc.to);
        }
      }
    }
    queue.clear();
  }
  return tree;
}

std::uint32_t eccentricity(const Graph& g, NodeId v) {
  const auto dist = bfs_distances(g, v);
  std::uint32_t best = 0;
  for (const auto d : dist)
    if (d != kUnreachable) best = std::max(best, d);
  return best;
}

}  // namespace fl::graph
