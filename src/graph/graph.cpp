#include "graph/graph.hpp"

#include <algorithm>
#include <cstdio>

#include "util/assert.hpp"

namespace fl::graph {

namespace {
std::uint64_t pack(NodeId u, NodeId v) {
  if (u > v) std::swap(u, v);
  return (static_cast<std::uint64_t>(u) << 32) | v;
}
}  // namespace

EdgeId Graph::Builder::add_edge(NodeId u, NodeId v) {
  FL_REQUIRE(u < n_ && v < n_, "edge endpoint out of range");
  FL_REQUIRE(u != v, "self-loops are not allowed in a simple graph");
  const auto [it, fresh] = seen_.insert(pack(u, v));
  (void)it;
  FL_REQUIRE(fresh, "duplicate edge in a simple graph");
  if (u > v) std::swap(u, v);
  edges_.push_back(Endpoints{u, v});
  return static_cast<EdgeId>(edges_.size() - 1);
}

bool Graph::Builder::has_edge(NodeId u, NodeId v) const {
  if (u >= n_ || v >= n_ || u == v) return false;
  return seen_.count(pack(u, v)) > 0;
}

Graph Graph::Builder::build() && {
  Graph g;
  g.n_ = n_;
  g.edges_ = std::move(edges_);
  finalize_csr(g);
  return g;
}

EdgeId Graph::StreamBuilder::add_edge(NodeId u, NodeId v) {
  FL_REQUIRE(u < n_ && v < n_, "edge endpoint out of range");
  FL_REQUIRE(u != v, "self-loops are not allowed in a simple graph");
  if (u > v) std::swap(u, v);
  edges_.push_back(Endpoints{u, v});
  return static_cast<EdgeId>(edges_.size() - 1);
}

Graph Graph::StreamBuilder::build() && {
  Graph g;
  g.n_ = n_;
  g.edges_ = std::move(edges_);
  finalize_csr(g);
  return g;
}

void Graph::finalize_csr(Graph& g) {
  // Counting sort into CSR form.
  g.offsets_.assign(static_cast<std::size_t>(g.n_) + 1, 0);
  for (const auto& e : g.edges_) {
    ++g.offsets_[e.u + 1];
    ++g.offsets_[e.v + 1];
  }
  for (std::size_t i = 1; i < g.offsets_.size(); ++i)
    g.offsets_[i] += g.offsets_[i - 1];

  g.incidence_.resize(2 * g.edges_.size());
  std::vector<std::size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (EdgeId id = 0; id < g.edges_.size(); ++id) {
    const auto& e = g.edges_[id];
    g.incidence_[cursor[e.u]++] = Incidence{e.v, id};
    g.incidence_[cursor[e.v]++] = Incidence{e.u, id};
  }
  // Sort each node's incidence by neighbour id to enable binary search.
  for (NodeId v = 0; v < g.n_; ++v) {
    auto begin = g.incidence_.begin() + static_cast<std::ptrdiff_t>(g.offsets_[v]);
    auto end = g.incidence_.begin() + static_cast<std::ptrdiff_t>(g.offsets_[v + 1]);
    std::sort(begin, end, [](const Incidence& a, const Incidence& b) {
      return a.to < b.to;
    });
  }
}

Endpoints Graph::endpoints(EdgeId e) const {
  FL_REQUIRE(e < edges_.size(), "edge id out of range");
  return edges_[e];
}

NodeId Graph::other_endpoint(EdgeId e, NodeId v) const {
  const Endpoints ep = endpoints(e);
  FL_REQUIRE(ep.u == v || ep.v == v, "node is not an endpoint of this edge");
  return ep.u == v ? ep.v : ep.u;
}

NodeId Graph::degree(NodeId v) const {
  FL_REQUIRE(v < n_, "node id out of range");
  return static_cast<NodeId>(offsets_[v + 1] - offsets_[v]);
}

std::span<const Incidence> Graph::incident(NodeId v) const {
  FL_REQUIRE(v < n_, "node id out of range");
  return {incidence_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  return find_edge(u, v) != kInvalidEdge;
}

EdgeId Graph::find_edge(NodeId u, NodeId v) const {
  if (u >= n_ || v >= n_) return kInvalidEdge;
  const auto inc = incident(u);
  const auto it = std::lower_bound(
      inc.begin(), inc.end(), v,
      [](const Incidence& a, NodeId b) { return a.to < b; });
  if (it != inc.end() && it->to == v) return it->edge;
  return kInvalidEdge;
}

double Graph::average_degree() const {
  if (n_ == 0) return 0.0;
  return 2.0 * static_cast<double>(edges_.size()) / static_cast<double>(n_);
}

std::string Graph::summary() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "n=%u m=%zu avg_deg=%.2f", n_, edges_.size(),
                average_degree());
  return buf;
}

}  // namespace fl::graph
