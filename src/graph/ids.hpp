// Fundamental identifier types shared by the whole library.
//
// The paper's model (Section 1.1) assumes *unique edge IDs known to both
// endpoints*. We realize that by making EdgeId the index of an edge in the
// physical communication graph's edge array: both endpoints trivially agree
// on it, it is unique, and virtual (cluster-graph) edges can carry the
// physical id of the edge they contract from — exactly the information the
// distributed algorithm routes on.
#pragma once

#include <cstdint>
#include <limits>

namespace fl::graph {

using NodeId = std::uint32_t;
using EdgeId = std::uint32_t;

inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();
inline constexpr EdgeId kInvalidEdge = std::numeric_limits<EdgeId>::max();

/// Undirected edge endpoints; by convention u <= v for simple graphs
/// (normalized at build time), but multigraphs keep insertion order.
struct Endpoints {
  NodeId u = kInvalidNode;
  NodeId v = kInvalidNode;

  friend bool operator==(const Endpoints&, const Endpoints&) = default;
};

/// An entry in a node's incidence list: the neighbour reached and the id of
/// the edge used. For multigraphs several entries may share `to`.
struct Incidence {
  NodeId to = kInvalidNode;
  EdgeId edge = kInvalidEdge;

  friend bool operator==(const Incidence&, const Incidence&) = default;
};

}  // namespace fl::graph
