#include "graph/multigraph.hpp"

#include <algorithm>
#include <cstdio>

#include "util/assert.hpp"

namespace fl::graph {

Multigraph::Multigraph(NodeId num_nodes, std::vector<MEdge> edges)
    : n_(num_nodes), edges_(std::move(edges)) {
  for (const auto& e : edges_) {
    FL_REQUIRE(e.u < n_ && e.v < n_, "multigraph endpoint out of range");
    FL_REQUIRE(e.u != e.v, "self-loops must be dropped before construction");
  }
  build_incidence();
}

Multigraph Multigraph::from_graph(const Graph& g) {
  std::vector<MEdge> edges;
  edges.reserve(g.num_edges());
  for (EdgeId id = 0; id < g.num_edges(); ++id) {
    const Endpoints ep = g.endpoints(id);
    edges.push_back(MEdge{ep.u, ep.v, id});
  }
  return Multigraph(g.num_nodes(), std::move(edges));
}

void Multigraph::build_incidence() {
  offsets_.assign(static_cast<std::size_t>(n_) + 1, 0);
  for (const auto& e : edges_) {
    ++offsets_[e.u + 1];
    ++offsets_[e.v + 1];
  }
  for (std::size_t i = 1; i < offsets_.size(); ++i)
    offsets_[i] += offsets_[i - 1];

  incidence_.resize(2 * edges_.size());
  std::vector<std::size_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (EdgeId id = 0; id < edges_.size(); ++id) {
    const auto& e = edges_[id];
    incidence_[cursor[e.u]++] = Incidence{e.v, id};
    incidence_[cursor[e.v]++] = Incidence{e.u, id};
  }
  for (NodeId v = 0; v < n_; ++v) {
    auto begin = incidence_.begin() + static_cast<std::ptrdiff_t>(offsets_[v]);
    auto end = incidence_.begin() + static_cast<std::ptrdiff_t>(offsets_[v + 1]);
    std::sort(begin, end, [](const Incidence& a, const Incidence& b) {
      return a.to < b.to || (a.to == b.to && a.edge < b.edge);
    });
  }
}

const Multigraph::MEdge& Multigraph::edge(EdgeId e) const {
  FL_REQUIRE(e < edges_.size(), "multigraph edge id out of range");
  return edges_[e];
}

NodeId Multigraph::other_endpoint(EdgeId e, NodeId v) const {
  const MEdge& me = edge(e);
  FL_REQUIRE(me.u == v || me.v == v, "node is not an endpoint of this edge");
  return me.u == v ? me.v : me.u;
}

std::span<const Incidence> Multigraph::incident(NodeId v) const {
  FL_REQUIRE(v < n_, "node id out of range");
  return {incidence_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
}

std::size_t Multigraph::incident_count(NodeId v) const {
  FL_REQUIRE(v < n_, "node id out of range");
  return offsets_[v + 1] - offsets_[v];
}

std::vector<NodeId> Multigraph::neighbors(NodeId v) const {
  std::vector<NodeId> out;
  NodeId last = kInvalidNode;
  for (const auto& inc : incident(v)) {
    if (inc.to != last) {
      out.push_back(inc.to);
      last = inc.to;
    }
  }
  return out;
}

std::size_t Multigraph::distinct_neighbor_count(NodeId v) const {
  std::size_t count = 0;
  NodeId last = kInvalidNode;
  for (const auto& inc : incident(v)) {
    if (inc.to != last) {
      ++count;
      last = inc.to;
    }
  }
  return count;
}

std::vector<EdgeId> Multigraph::edges_between(NodeId v, NodeId u) const {
  std::vector<EdgeId> out;
  const auto inc = incident(v);
  // Incidence is sorted by neighbour, so the parallel block is contiguous.
  auto it = std::lower_bound(
      inc.begin(), inc.end(), u,
      [](const Incidence& a, NodeId b) { return a.to < b; });
  for (; it != inc.end() && it->to == u; ++it) out.push_back(it->edge);
  return out;
}

Multigraph Multigraph::contract(std::span<const NodeId> cluster_of,
                                NodeId num_clusters) const {
  FL_REQUIRE(cluster_of.size() == n_, "cluster assignment arity mismatch");
  for (const NodeId c : cluster_of)
    FL_REQUIRE(c == kInvalidNode || c < num_clusters,
               "cluster id out of range");

  std::vector<MEdge> next_edges;
  for (const auto& e : edges_) {
    const NodeId cu = cluster_of[e.u];
    const NodeId cv = cluster_of[e.v];
    if (cu == kInvalidNode || cv == kInvalidNode) continue;  // dropped node
    if (cu == cv) continue;                                  // intra-cluster
    next_edges.push_back(MEdge{cu, cv, e.physical});
  }
  return Multigraph(num_clusters, std::move(next_edges));
}

std::string Multigraph::summary() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "n=%u m=%zu (multigraph)", n_, edges_.size());
  return buf;
}

}  // namespace fl::graph
