// Immutable simple undirected graph with unique edge IDs.
//
// Storage is CSR-style: a flat incidence array indexed by per-node offsets.
// Graphs are built once through Builder and never mutated afterwards; all
// algorithms treat them as values. Self-loops are rejected; duplicate edges
// are rejected (use Multigraph for parallel edges — cluster graphs need
// them, physical communication graphs do not).
#pragma once

#include <span>
#include <string>
#include <unordered_set>
#include <vector>

#include "graph/ids.hpp"

namespace fl::graph {

class Graph {
 public:
  /// Incremental construction; O(m α(m)) overall with the duplicate check.
  class Builder {
   public:
    explicit Builder(NodeId num_nodes) : n_(num_nodes) {}

    /// Add an undirected edge {u, v}. Returns the id it will carry.
    /// Duplicate {u,v} pairs and self-loops are contract violations.
    EdgeId add_edge(NodeId u, NodeId v);

    /// Returns true iff {u, v} was already added (either orientation).
    bool has_edge(NodeId u, NodeId v) const;

    NodeId num_nodes() const { return n_; }
    EdgeId num_edges() const { return static_cast<EdgeId>(edges_.size()); }

    Graph build() &&;

   private:
    NodeId n_;
    std::vector<Endpoints> edges_;
    // Hash set of packed (min,max) pairs for O(1) duplicate detection.
    std::unordered_set<std::uint64_t> seen_;
  };

  /// Large-scale construction: like Builder but without the duplicate-edge
  /// hash set, whose ~16 bytes/edge would dominate the footprint of an
  /// n=10M sparse load. The caller vouches that edges are distinct (range
  /// and self-loop checks still apply — those are O(1)); feeding a
  /// duplicate produces a multigraph-shaped incidence, so this builder is
  /// for trusted bulk sources (generators, the streamed edge-list loader),
  /// not hand-typed input. Endpoints append straight into the final edge
  /// array — peak memory is the finished graph plus the CSR scratch,
  /// never an intermediate copy.
  class StreamBuilder {
   public:
    explicit StreamBuilder(NodeId num_nodes) : n_(num_nodes) {}

    /// Pre-size the edge array when the source announces its edge count,
    /// sparing the append path its doubling re-moves.
    void reserve_edges(std::size_t m) { edges_.reserve(m); }

    /// Add an undirected edge {u, v} assumed distinct. Returns its id.
    EdgeId add_edge(NodeId u, NodeId v);

    NodeId num_nodes() const { return n_; }
    EdgeId num_edges() const { return static_cast<EdgeId>(edges_.size()); }

    Graph build() &&;

   private:
    NodeId n_;
    std::vector<Endpoints> edges_;
  };

  Graph() = default;

  NodeId num_nodes() const { return n_; }
  EdgeId num_edges() const { return static_cast<EdgeId>(edges_.size()); }

  /// Endpoints of edge `e` (normalized so u <= v).
  Endpoints endpoints(EdgeId e) const;

  /// Given an edge id and one endpoint, returns the other endpoint.
  NodeId other_endpoint(EdgeId e, NodeId v) const;

  NodeId degree(NodeId v) const;

  /// The incidence list of `v`: (neighbour, edge id) pairs, neighbour-sorted.
  std::span<const Incidence> incident(NodeId v) const;

  /// True iff {u, v} is an edge; O(log deg(u)).
  bool has_edge(NodeId u, NodeId v) const;

  /// Edge id of {u, v}, or kInvalidEdge when absent; O(log deg(u)).
  EdgeId find_edge(NodeId u, NodeId v) const;

  /// All edges by id (id == position).
  std::span<const Endpoints> edges() const { return edges_; }

  /// Average degree 2m/n; 0 for the empty graph.
  double average_degree() const;

  /// Human-readable one-line summary ("n=1024 m=8192 avg_deg=16.0").
  std::string summary() const;

 private:
  friend class Builder;
  friend class StreamBuilder;

  /// Shared tail of both builders: counting-sort g.edges_ into the CSR
  /// incidence array and neighbour-sort each node's slice.
  static void finalize_csr(Graph& g);

  NodeId n_ = 0;
  std::vector<Endpoints> edges_;
  std::vector<std::size_t> offsets_;    // n_ + 1 entries
  std::vector<Incidence> incidence_;    // 2m entries, sorted per node
};

}  // namespace fl::graph
