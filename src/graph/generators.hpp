// Workload (communication-graph) generators.
//
// The paper's claims are graph-universal, so the bench harness sweeps a
// spectrum of families chosen to stress different regimes:
//   * erdos_renyi_gnm / gnp — the density dial for the o(m) message claim;
//   * complete              — the m = Θ(n²) extreme where the free lunch is
//                             most dramatic;
//   * grid / torus / ring   — high-diameter sparse graphs (stretch stress);
//   * hypercube             — the classic synchronizer benchmark topology
//                             (Peleg–Ullman [33]);
//   * barabasi_albert       — skewed degrees, stresses heavy/light split;
//   * random_geometric      — clustered locality, realistic radio networks;
//   * dumbbell              — two dense cores + thin bridge: worst case for
//                             naive sampling, exercises the trial peeling;
//   * random_tree / path / star — degenerate sparse baselines.
// All generators return *connected* simple graphs (connectivity patched via
// a random spanning structure when the raw draw is disconnected, as is
// standard practice for spanner benchmarks).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace fl::graph {

/// Erdős–Rényi G(n, m): exactly m distinct edges, then connected-patched.
Graph erdos_renyi_gnm(NodeId n, std::size_t m, util::Xoshiro256& rng);

/// Erdős–Rényi G(n, p) sampled by geometric skipping; connected-patched.
Graph erdos_renyi_gnp(NodeId n, double p, util::Xoshiro256& rng);

/// Complete graph K_n.
Graph complete(NodeId n);

/// Complete bipartite K_{a,b}.
Graph complete_bipartite(NodeId a, NodeId b);

/// rows × cols grid (4-neighbour).
Graph grid(NodeId rows, NodeId cols);

/// rows × cols torus (grid with wraparound); rows, cols >= 3.
Graph torus(NodeId rows, NodeId cols);

/// d-dimensional hypercube, n = 2^d nodes.
Graph hypercube(unsigned dim);

/// Cycle C_n (n >= 3).
Graph ring(NodeId n);

/// Path P_n.
Graph path(NodeId n);

/// Star with n-1 leaves.
Graph star(NodeId n);

/// Uniform random labelled tree (Prüfer-free random attachment).
Graph random_tree(NodeId n, util::Xoshiro256& rng);

/// Barabási–Albert preferential attachment; each new node attaches
/// `attach` edges. n > attach >= 1.
Graph barabasi_albert(NodeId n, NodeId attach, util::Xoshiro256& rng);

/// Random geometric graph on the unit square with connection radius r,
/// connected-patched. Uses grid bucketing, O(n + m) expected.
Graph random_geometric(NodeId n, double radius, util::Xoshiro256& rng);

/// Two cliques of size n/2 joined by a path of length `bridge_len`.
Graph dumbbell(NodeId n, NodeId bridge_len);

/// A clique of size `clique` with a pendant path soaking up the rest of the
/// n nodes — skewed degree + large diameter in one graph.
Graph lollipop(NodeId n, NodeId clique);

/// Named family dispatcher used by parameterized tests and benches.
enum class Family {
  ErdosRenyi,      // density via param (average degree)
  Complete,
  Grid,
  Torus,
  Hypercube,
  Ring,
  BarabasiAlbert,  // attach via param
  RandomGeometric, // radius multiplier via param
  RandomTree,
  Dumbbell,
};

std::string family_name(Family f);

/// Build a connected graph of (approximately) n nodes from `family`.
/// `param` is family-specific (see Family comments); pass 0 for defaults.
Graph make_family(Family family, NodeId n, double param,
                  util::Xoshiro256& rng);

/// All families, for sweep loops.
std::vector<Family> all_families();

/// Add the fewest edges needed to connect `g` (random inter-component
/// pairs). Returns g unchanged when already connected.
Graph ensure_connected(Graph g, util::Xoshiro256& rng);

}  // namespace fl::graph
