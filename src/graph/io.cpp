#include "graph/io.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "util/assert.hpp"

namespace fl::graph {

void write_edge_list(std::ostream& os, const Graph& g) {
  os << "n " << g.num_nodes() << '\n';
  for (const auto& e : g.edges()) os << "e " << e.u << ' ' << e.v << '\n';
}

Graph read_edge_list(std::istream& is) {
  std::string line;
  NodeId n = 0;
  bool have_n = false;
  std::vector<Endpoints> edges;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    char tag = 0;
    ls >> tag;
    if (tag == 'n') {
      FL_REQUIRE(!have_n, "duplicate 'n' line in edge list");
      ls >> n;
      FL_REQUIRE(static_cast<bool>(ls), "malformed 'n' line");
      have_n = true;
    } else if (tag == 'e') {
      Endpoints e;
      ls >> e.u >> e.v;
      FL_REQUIRE(static_cast<bool>(ls), "malformed 'e' line");
      edges.push_back(e);
    } else {
      FL_REQUIRE(false, std::string("unknown edge-list tag '") + tag + "'");
    }
  }
  FL_REQUIRE(have_n, "edge list missing 'n' line");
  Graph::Builder b(n);
  for (const auto& e : edges) b.add_edge(e.u, e.v);
  return std::move(b).build();
}

Graph read_edge_list_streamed(std::istream& is,
                              const EdgeListStreamOptions& opt) {
  FL_REQUIRE(opt.chunk_edges >= 1, "stream chunk must hold at least one edge");
  std::string line;
  bool have_n = false;
  // The builder is constructed lazily at the 'n' line; unique_ptr-free via
  // a dummy 0-node builder that is replaced (StreamBuilder is movable).
  Graph::StreamBuilder builder(0);
  std::vector<Endpoints> chunk;
  chunk.reserve(opt.chunk_edges);
  auto flush = [&] {
    for (const auto& e : chunk) builder.add_edge(e.u, e.v);
    chunk.clear();  // capacity retained; the reader re-fills in place
  };
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    char tag = 0;
    ls >> tag;
    if (tag == 'n') {
      FL_REQUIRE(!have_n, "duplicate 'n' line in edge list");
      NodeId n = 0;
      ls >> n;
      FL_REQUIRE(static_cast<bool>(ls), "malformed 'n' line");
      have_n = true;
      builder = Graph::StreamBuilder(n);
      if (opt.reserve_edges > 0) builder.reserve_edges(opt.reserve_edges);
    } else if (tag == 'e') {
      FL_REQUIRE(have_n,
                 "streamed edge list needs the 'n' line before the first "
                 "'e' line");
      Endpoints e;
      ls >> e.u >> e.v;
      FL_REQUIRE(static_cast<bool>(ls), "malformed 'e' line");
      chunk.push_back(e);
      if (chunk.size() >= opt.chunk_edges) flush();
    } else {
      FL_REQUIRE(false, std::string("unknown edge-list tag '") + tag + "'");
    }
  }
  FL_REQUIRE(have_n, "edge list missing 'n' line");
  flush();
  return std::move(builder).build();
}

void write_dot(std::ostream& os, const Graph& g,
               std::span<const EdgeId> highlighted_edges,
               const std::string& name) {
  std::vector<bool> highlight(g.num_edges(), false);
  for (const EdgeId e : highlighted_edges) {
    FL_REQUIRE(e < g.num_edges(), "highlighted edge id out of range");
    highlight[e] = true;
  }
  os << "graph " << name << " {\n";
  os << "  node [shape=circle fontsize=10];\n";
  for (NodeId v = 0; v < g.num_nodes(); ++v) os << "  " << v << ";\n";
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Endpoints ep = g.endpoints(e);
    os << "  " << ep.u << " -- " << ep.v;
    if (highlight[e]) os << " [penwidth=2.5 color=crimson]";
    else os << " [color=gray60]";
    os << ";\n";
  }
  os << "}\n";
}

}  // namespace fl::graph
