#include "core/hierarchy.hpp"

#include <cstdio>

namespace fl::core {

std::string LevelTrace::summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "L%u: n_j=%u m_j=%zu light=%zu heavy=%zu neither=%zu "
                "centers=%zu clustered=%zu uncl=%zu queries=%llu F=%llu",
                level, virtual_nodes, virtual_edges, light, heavy, neither,
                centers, clustered, unclustered,
                static_cast<unsigned long long>(query_edges),
                static_cast<unsigned long long>(spanner_added));
  return buf;
}

std::size_t HierarchyTrace::total_query_edges() const {
  std::size_t total = 0;
  for (const auto& l : levels) total += l.query_edges;
  return total;
}

std::size_t HierarchyTrace::total_trials() const {
  std::size_t total = 0;
  for (const auto& l : levels) total += l.trials_run_total;
  return total;
}

}  // namespace fl::core
