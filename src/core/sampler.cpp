#include "core/sampler.hpp"

#include <algorithm>
#include <limits>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace fl::core {

using graph::EdgeId;
using graph::kInvalidEdge;
using graph::kInvalidNode;
using graph::Multigraph;
using graph::NodeId;

namespace {

constexpr std::size_t kRemoved = std::numeric_limits<std::size_t>::max();

/// Labels for per-purpose random streams (trial index namespace).
constexpr std::uint64_t kCenterCoinLabel = 1'000'000'000ULL;

/// When the per-trial sample count exceeds the remaining pool size by this
/// factor, the probability that any specific remaining edge is missed is
/// (1−1/A)^{16A} < e^{−16}; we then treat the trial as exhaustive instead of
/// literally drawing — a pure CPU-time optimization that preserves the
/// algorithm's behaviour up to events rarer than the whp bar.
constexpr std::size_t kExhaustiveFactor = 16;

/// Sampling state of one virtual node during Cluster_j's first step.
/// Edges are addressed by *incidence index* (position in the node's sorted
/// incidence list) so that parallel-edge blocks are contiguous.
class NodeSampler {
 public:
  NodeSampler(const Multigraph& m, NodeId v, bool peel)
      : m_(&m), v_(v), peel_(peel) {
    const auto inc = m.incident(v);
    const std::size_t deg = inc.size();
    pos_.resize(deg);
    block_of_.resize(deg);
    active_.reserve(deg);
    // Build neighbour blocks (incidence is sorted by neighbour).
    NodeId last = kInvalidNode;
    for (std::size_t i = 0; i < deg; ++i) {
      if (inc[i].to != last) {
        last = inc[i].to;
        block_begin_.push_back(i);
        block_neighbor_.push_back(inc[i].to);
      }
      block_of_[i] = block_begin_.size() - 1;
      pos_[i] = active_.size();
      active_.push_back(i);
    }
    block_begin_.push_back(deg);  // sentinel
    block_queried_.assign(block_neighbor_.size(), false);
    block_hit_in_trial_.assign(block_neighbor_.size(), 0);
  }

  std::size_t active_count() const { return active_.size(); }
  std::size_t block_count() const { return block_neighbor_.size(); }
  std::size_t queried_blocks() const { return queried_count_; }
  bool exhausted() const { return active_.empty(); }
  bool all_blocks_queried() const {
    return queried_count_ == block_neighbor_.size();
  }

  /// Run one trial: draw `samples` edges u.a.r. with replacement from the
  /// *snapshot* of X_v (faithful to Pseudocode 2), then process new blocks.
  /// F_v growth is capped at `budget` mid-trial: once |F_v| reaches the
  /// budget the node is heavy by definition and further drawn blocks are
  /// ignored (not queried, not peeled) — this is what makes Lemma 10's
  /// per-trial O(n^{2^jδ}·polylog) edge accounting hold on dense graphs;
  /// without the cap a single trial could add its full n^{2^jδ+ε} draws.
  /// Appends to `outcome.f_edges`; returns the number of distinct query
  /// edges this trial (i.e. messages the distributed version would send).
  std::uint64_t run_trial(std::size_t samples, std::size_t budget,
                          util::Xoshiro256& rng, NodeOutcome& outcome) {
    ++trial_epoch_;
    const std::size_t pool = active_.size();
    if (pool == 0) return 0;

    std::uint64_t distinct_queries = 0;

    if (samples >= kExhaustiveFactor * pool) {
      // Exhaustive shortcut: every remaining edge gets queried.
      // Distinct query edges == remaining pool size.
      distinct_queries = pool;
      // Process every not-yet-queried block; chosen edge = first active
      // edge of the block.
      for (std::size_t b = 0; b < block_neighbor_.size(); ++b) {
        if (outcome.f_edges.size() >= budget) break;
        if (block_queried_[b]) continue;
        const std::size_t e = first_active_in_block(b);
        if (e == kRemoved) continue;  // peeled empty (shouldn't happen)
        query_block(b, e, outcome);
      }
      return distinct_queries;
    }

    // Draw all sample positions against the frozen snapshot first, exactly
    // as Pseudocode 2 draws the whole batch from X_v before processing.
    draws_.clear();
    for (std::size_t s = 0; s < samples; ++s)
      draws_.push_back(active_[rng.index(pool)]);

    // Distinct drawn edges = query messages; first draw of each new block
    // supplies the F_v edge.
    seen_edge_epoch_.resize(pos_.size(), 0);
    for (const std::size_t e : draws_) {
      if (seen_edge_epoch_[e] != trial_epoch_) {
        seen_edge_epoch_[e] = trial_epoch_;
        ++distinct_queries;
      }
      const std::size_t b = block_of_[e];
      if (!block_queried_[b] && block_hit_in_trial_[b] != trial_epoch_) {
        block_hit_in_trial_[b] = trial_epoch_;
        pending_blocks_.push_back({b, e});
      }
    }
    for (const auto& [b, e] : pending_blocks_) {
      if (outcome.f_edges.size() >= budget) break;
      query_block(b, e, outcome);
    }
    pending_blocks_.clear();
    return distinct_queries;
  }

  /// force_light_completion: query every remaining block exhaustively.
  /// Returns distinct query edges spent.
  std::uint64_t complete_exhaustively(NodeOutcome& outcome) {
    std::uint64_t queries = active_.size();
    for (std::size_t b = 0; b < block_neighbor_.size(); ++b) {
      if (block_queried_[b]) continue;
      const std::size_t e = first_active_in_block(b);
      if (e == kRemoved) continue;
      query_block(b, e, outcome);
    }
    return queries;
  }

 private:
  std::size_t first_active_in_block(std::size_t b) const {
    for (std::size_t i = block_begin_[b]; i < block_begin_[b + 1]; ++i)
      if (pos_[i] != kRemoved) return i;
    return kRemoved;
  }

  void query_block(std::size_t b, std::size_t chosen_inc_idx,
                   NodeOutcome& outcome) {
    FL_ENSURE(!block_queried_[b], "block queried twice");
    block_queried_[b] = true;
    ++queried_count_;
    const auto inc = m_->incident(v_);
    outcome.f_edges.emplace_back(block_neighbor_[b],
                                 inc[chosen_inc_idx].edge);
    if (peel_) {
      // Peel the whole parallel block (the Section 1.3 key idea): u reports
      // all its incident edge IDs, so v removes every (v,u) edge from X_v.
      for (std::size_t i = block_begin_[b]; i < block_begin_[b + 1]; ++i)
        remove_edge(i);
    } else {
      // Ablation: only the chosen edge leaves X_v.
      remove_edge(chosen_inc_idx);
    }
  }

  void remove_edge(std::size_t inc_idx) {
    const std::size_t p = pos_[inc_idx];
    if (p == kRemoved) return;
    const std::size_t last = active_.back();
    active_[p] = last;
    pos_[last] = p;
    active_.pop_back();
    pos_[inc_idx] = kRemoved;
  }

  const Multigraph* m_;
  NodeId v_;
  bool peel_;

  std::vector<std::size_t> pos_;        // inc idx -> active position
  std::vector<std::size_t> active_;     // active inc indices (X_v)
  std::vector<std::size_t> block_of_;   // inc idx -> block index
  std::vector<std::size_t> block_begin_;
  std::vector<NodeId> block_neighbor_;
  std::vector<bool> block_queried_;
  std::vector<unsigned> block_hit_in_trial_;
  std::vector<unsigned> seen_edge_epoch_;
  std::vector<std::size_t> draws_;
  std::vector<std::pair<std::size_t, std::size_t>> pending_blocks_;
  std::size_t queried_count_ = 0;
  unsigned trial_epoch_ = 0;
};

}  // namespace

std::vector<NodeOutcome> run_sampling_step(
    const Multigraph& m, const SamplerConfig& cfg, double n0, unsigned level,
    const std::vector<NodeId>& rep) {
  FL_REQUIRE(rep.size() == m.num_nodes(), "rep arity mismatch");
  const util::StreamFactory streams(cfg.seed);
  const std::size_t budget = cfg.budget(n0, level);
  const std::size_t trial_size = cfg.trial_size(n0, level);
  const unsigned trials = cfg.trials_per_level();

  std::vector<NodeOutcome> outcomes(m.num_nodes());
  for (NodeId v = 0; v < m.num_nodes(); ++v) {
    NodeSampler sampler(m, v, cfg.peel_parallel_edges);
    NodeOutcome& out = outcomes[v];

    unsigned i = 0;
    // Pseudocode 2, line 4: while (i <= 2h) && (|F_v| < budget) && X_v != ∅.
    while (i < trials && out.f_edges.size() < budget && !sampler.exhausted()) {
      auto rng = streams.trial_stream(rep[v], level, i);
      out.distinct_query_edges +=
          sampler.run_trial(trial_size, budget, rng, out);
      ++i;
    }
    out.trials_run = i;

    if (sampler.all_blocks_queried()) {
      out.status = NodeStatus::Light;
    } else if (out.f_edges.size() >= budget) {
      out.status = NodeStatus::Heavy;
    } else if (cfg.force_light_completion) {
      out.distinct_query_edges += sampler.complete_exhaustively(out);
      out.status = NodeStatus::Light;
    } else {
      out.status = NodeStatus::Neither;
    }
  }
  return outcomes;
}

SpannerResult build_spanner(const graph::Graph& g, const SamplerConfig& cfg) {
  return build_spanner_multigraph(Multigraph::from_graph(g), cfg,
                                  g.num_edges());
}

SpannerResult build_spanner_multigraph(const Multigraph& g0,
                                       const SamplerConfig& cfg,
                                       std::size_t num_physical_edges) {
  cfg.validate(g0.num_nodes());
  for (EdgeId e = 0; e < g0.num_edges(); ++e)
    FL_REQUIRE(g0.edge(e).physical < num_physical_edges,
               "physical edge id out of the declared id space");
  const NodeId num_nodes = g0.num_nodes();
  const double n0 = static_cast<double>(num_nodes);
  const util::StreamFactory streams(cfg.seed);

  SpannerResult result;
  result.stretch_bound = cfg.stretch_bound();

  Multigraph m = g0;
  std::vector<NodeId> rep(num_nodes);
  for (NodeId v = 0; v < num_nodes; ++v) rep[v] = v;

  std::vector<NodeId> phys_cluster(num_nodes);
  for (NodeId v = 0; v < num_nodes; ++v) phys_cluster[v] = v;
  result.trace.phys_cluster_at.push_back(phys_cluster);

  std::vector<bool> in_spanner(num_physical_edges, false);

  for (unsigned j = 0; j <= cfg.k; ++j) {
    LevelTrace lt;
    lt.level = j;
    lt.virtual_nodes = m.num_nodes();
    lt.virtual_edges = m.num_edges();
    lt.representative = rep;

    const auto outcomes = run_sampling_step(m, cfg, n0, j, rep);

    for (NodeId v = 0; v < m.num_nodes(); ++v) {
      const NodeOutcome& out = outcomes[v];
      switch (out.status) {
        case NodeStatus::Light: ++lt.light; break;
        case NodeStatus::Heavy: ++lt.heavy; break;
        case NodeStatus::Neither: ++lt.neither; break;
      }
      lt.query_edges += out.distinct_query_edges;
      lt.trials_run_total += out.trials_run;
      for (const auto& [nb, local_edge] : out.f_edges) {
        const EdgeId phys = m.edge(local_edge).physical;
        if (!in_spanner[phys]) {
          in_spanner[phys] = true;
          ++lt.spanner_added;
        }
      }
    }

    if (j < cfg.k) {
      // --- Second step: center marking and clustering (Pseudocode 2). ---
      const double pj = cfg.center_prob(n0, j);
      std::vector<bool> is_center(m.num_nodes(), false);
      std::vector<NodeId> cluster_of(m.num_nodes(), kInvalidNode);
      std::vector<NodeId> rep_next;

      for (NodeId v = 0; v < m.num_nodes(); ++v) {
        auto coin = streams.trial_stream(rep[v], j, kCenterCoinLabel);
        if (coin.bernoulli(pj)) {
          is_center[v] = true;
          cluster_of[v] = static_cast<NodeId>(rep_next.size());
          rep_next.push_back(rep[v]);
          ++lt.centers;
        }
      }
      for (NodeId v = 0; v < m.num_nodes(); ++v) {
        if (is_center[v]) continue;
        // Merge into the first queried center (discovery order realizes the
        // paper's "an arbitrary one is chosen").
        for (const auto& [nb, local_edge] : outcomes[v].f_edges) {
          (void)local_edge;
          if (is_center[nb]) {
            cluster_of[v] = cluster_of[nb];
            ++lt.clustered;
            break;
          }
        }
        if (cluster_of[v] == kInvalidNode) ++lt.unclustered;
      }

      lt.cluster_of = cluster_of;

      // Advance the physical partition map.
      for (NodeId p = 0; p < num_nodes; ++p) {
        if (phys_cluster[p] == kInvalidNode) continue;
        phys_cluster[p] = cluster_of[phys_cluster[p]];
      }
      result.trace.phys_cluster_at.push_back(phys_cluster);

      m = m.contract(cluster_of, static_cast<NodeId>(rep_next.size()));
      rep = std::move(rep_next);
    } else {
      // Final level: no clustering; every node of G_k is unclustered.
      lt.unclustered = m.num_nodes();
    }

    result.trace.levels.push_back(std::move(lt));
  }

  for (EdgeId e = 0; e < num_physical_edges; ++e)
    if (in_spanner[e]) result.edges.push_back(e);
  return result;
}

}  // namespace fl::core
