// Distributed implementation of Algorithm Sampler (paper Section 5).
//
// Runs as a NodeProgram on the synchronous LOCAL simulator with unique edge
// IDs. Every physical node executes the same deterministic phase schedule,
// computable locally from (k, h) and the promised log n bound — no global
// orchestrator exists, matching the model.
//
// Realization of the paper's simulation argument:
//   * A virtual node v ∈ V_j is a cluster C_j(v) of physical nodes with a
//     spanning tree of height ≤ 3^j − 1 (Lemma 8); its local actions are
//     simulated by flood (broadcast) and echo (convergecast) sessions over
//     the tree, each allotted a window of W_j = 3^j − 1 rounds.
//   * E_j(v) is computed *without* talking to non-members: members report
//     their candidate incident edges up the tree; an edge reported twice
//     has both endpoints inside (intra-cluster) and is discarded. This is
//     exactly what the unique-edge-ID model assumption buys.
//   * The per-trial uniform sample over X_v is realized by a count gather
//     (echo), a rate flood, and per-member binomial draws — the per-
//     neighbour hit distribution matches the centralized sampler's
//     multinomial marginals.
//   * Query edges carry a QUERY message; the queried endpoint answers with
//     its cluster id and the cluster's full boundary-edge-ID list, which is
//     what lets the querying cluster peel every parallel edge (Section 1.3).
//   * Unclustered (dropped) virtual nodes announce their death over their
//     F_v edges (they are light whp, so that covers every G_j neighbour);
//     a query hitting an unannounced dead cluster is answered with a DEAD
//     response and peeled the same way — the whp-failure fallback.
//
// Round complexity: the schedule length, O(3^k · h) by construction
// (Theorem 11). Message complexity: metered by the simulator —
// Õ(n^{1+δ+ε}) whp (Theorem 11), *independent of |E|*.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/config.hpp"
#include "core/hierarchy.hpp"
#include "core/sampler.hpp"
#include "graph/graph.hpp"
#include "sim/metrics.hpp"
#include "sim/network.hpp"

namespace fl::core {

/// One entry of the globally shared phase timetable.
struct PhaseSpec {
  enum class Kind : std::uint8_t {
    FloodSetup,        ///< root floods; establishes per-level tree parents
    GatherEcho,        ///< members report candidate edges; root dedupes intra
    FloodBoundary,     ///< root floods the final E_j(v) list + cluster id
    TrialGatherEcho,   ///< members report |X ∩ member| counts
    TrialRateFlood,    ///< root floods (T, total) or a skip flag
    QuerySend,         ///< members send QUERY over sampled edges (1 round)
    QueryRespond,      ///< queried endpoints answer (1 round)
    TrialCollectEcho,  ///< members report discovered neighbours
    TrialApplyFlood,   ///< root floods F_v choices + peel lists
    CenterFlood,       ///< root flips the p_j coin, floods the flag
    CenterQuery,       ///< F_v-edge owners ask "are you a center?" (1 round)
    CenterRespond,     ///< answers (1 round)
    CenterCollectEcho, ///< members report center neighbours
    JoinFlood,         ///< root floods Stay / Join(u*, e*) / Die
    AttachNotify,      ///< attach-edge owner notifies the other side (1 round)
    DeathAnnounce,     ///< dying clusters notify neighbours over F_v edges
  };

  Kind kind{};
  unsigned level = 0;
  int trial = -1;          ///< trial index for trial phases, else -1
  std::size_t start = 0;   ///< first round of the phase
  std::size_t length = 0;  ///< in rounds; 0-length phases run locally
};

/// The full timetable for a (k, h) configuration. Identical at every node.
///
/// Under BarrierMode::FixedSchedule the start/length windows are the
/// execution plan. Under event-driven barriers only the phase *sequence*
/// matters — a phase ends on the first silent round (Context::
/// network_silent) instead of at start + length — and the windows survive
/// purely as the provisioned-rounds baseline for
/// sim::Metrics::barrier_rounds_saved.
struct Schedule {
  std::vector<PhaseSpec> phases;
  std::size_t total_rounds = 0;  ///< slack-stretched timetable length
  std::size_t base_rounds = 0;   ///< unstretched (schedule_slack = 1) length

  static Schedule build(const SamplerConfig& cfg);
};

/// Message counts by protocol role — the concrete form of Theorem 11's
/// accounting: queries/replies are the Õ(n^{1+δ+ε}) term; tree sessions are
/// the O(n)-per-session broadcast/convergecast overhead; death/center/attach
/// are lower-order.
struct MessageBreakdown {
  std::uint64_t queries = 0;        ///< QUERY + their replies
  std::uint64_t tree_sessions = 0;  ///< flood/echo traffic over cluster trees
  std::uint64_t center = 0;         ///< center queries + replies
  std::uint64_t control = 0;        ///< attach + death announcements

  std::uint64_t total() const {
    return queries + tree_sessions + center + control;
  }
};

/// Result of a distributed run: the spanner plus simulator metrics.
struct DistributedSpannerRun {
  std::vector<graph::EdgeId> edges;  ///< S, ascending physical edge ids
  double stretch_bound = 0.0;
  sim::RunStats stats;               ///< rounds + total messages
  sim::Metrics metrics;              ///< full per-round accounting
  MessageBreakdown breakdown;        ///< messages by protocol role

  // Per-level diagnostics assembled from root states (mirrors LevelTrace).
  std::vector<LevelTrace> levels;
};

/// Build and run the distributed Sampler on `g`. The network is created
/// internally with Knowledge::EdgeIds (the paper's model).
DistributedSpannerRun run_distributed_sampler(
    const graph::Graph& g, const SamplerConfig& cfg);

/// Wire round-trip self-check for all 18 sampler payload structs (they
/// live in the .cpp's anonymous namespace; tests call this hook).
void distributed_sampler_wire_selftest();

}  // namespace fl::core
