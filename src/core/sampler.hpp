// Algorithm Sampler — centralized reference implementation.
//
// A faithful transcription of Pseudocode 1 + 2 (paper Section 3): k+1
// levels, each running Procedure Cluster_j (2h edge-sampling trials with
// parallel-edge peeling, then center marking and cluster contraction).
// The distributed implementation (distributed_sampler.hpp) produces a
// spanner with the same guarantees by exchanging real messages; this one is
// the oracle used for correctness tests, the transformer's preprocessing
// shortcut, and the E1–E4 benches.
//
// Guarantees (whp over the seed, for paper-faithful constants):
//   * H = (V, S) is a (2·3^k − 1)-spanner of G          (Theorem 9)
//   * |S| = Õ(n^{1 + 1/(2^{k+1}−1)})                    (Lemma 10)
//   * Σ distinct query edges = Õ(n^{1 + δ + 1/h})       (drives Theorem 11)
#pragma once

#include <vector>

#include "core/config.hpp"
#include "core/hierarchy.hpp"
#include "graph/graph.hpp"
#include "graph/multigraph.hpp"

namespace fl::core {

/// Output of a Sampler run.
struct SpannerResult {
  std::vector<graph::EdgeId> edges;  ///< S, ascending physical edge ids
  HierarchyTrace trace;

  double stretch_bound = 0.0;  ///< 2·3^k − 1 for the config used
};

/// Run the centralized Sampler on a connected simple graph.
SpannerResult build_spanner(const graph::Graph& g, const SamplerConfig& cfg);

/// Run the centralized Sampler on a multigraph — the paper's Section 1.2
/// remark: with unique edge IDs the algorithm and analysis also apply to
/// communication graphs with parallel edges (|E| <= n^{O(1)}).
/// `num_physical_edges` is the size of the edge-ID space; `result.edges`
/// contains the selected physical ids.
SpannerResult build_spanner_multigraph(const graph::Multigraph& g0,
                                       const SamplerConfig& cfg,
                                       std::size_t num_physical_edges);

/// Outcome of one virtual node in one run of Cluster_j (exposed for tests).
struct NodeOutcome {
  NodeStatus status = NodeStatus::Neither;
  /// Queried neighbours in discovery order with the F_v edge chosen for
  /// each: (neighbour virtual id, local multigraph edge id).
  std::vector<std::pair<graph::NodeId, graph::EdgeId>> f_edges;
  std::uint64_t distinct_query_edges = 0;
  unsigned trials_run = 0;
};

/// Run the *first step* of Cluster_j on a multigraph level: the iterative
/// edge-sampling process of every virtual node. Exposed so unit tests can
/// probe Lemma 6 (light/heavy) directly on crafted multigraphs.
///
/// `n0` is the physical node count (the paper's exponents use global n),
/// `level` is j, and `rep` maps virtual nodes to their physical
/// representative (used to key per-node randomness).
std::vector<NodeOutcome> run_sampling_step(const graph::Multigraph& m,
                                           const SamplerConfig& cfg,
                                           double n0, unsigned level,
                                           const std::vector<graph::NodeId>& rep);

}  // namespace fl::core
