// Data model of the Sampler cluster hierarchy (paper Sections 3–4).
//
// The algorithm builds virtual graphs G_0, ..., G_k; each virtual node of
// G_j is a cluster of physical nodes with a representative (its center
// lineage root). HierarchyTrace records what happened at every level — node
// counts (Lemma 4), light/heavy outcomes (Lemma 6), query volumes (Theorem
// 11) and the physical-node-to-cluster maps needed to verify the cluster
// diameter bound of Lemma 8.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/ids.hpp"

namespace fl::core {

/// Terminal sampling status of a virtual node in one run of Cluster_j.
enum class NodeStatus : std::uint8_t {
  Light,    ///< queried every distinct neighbour (N̂ = N)
  Heavy,    ///< reached the budget with neighbours left unqueried
  Neither,  ///< the whp-failure event: budget missed AND edges left
};

/// Everything recorded about one level of the hierarchy.
struct LevelTrace {
  unsigned level = 0;

  // Virtual-graph shape at the *start* of the level (this is G_j).
  graph::NodeId virtual_nodes = 0;
  std::size_t virtual_edges = 0;

  // Cluster_j outcomes.
  std::size_t light = 0;
  std::size_t heavy = 0;
  std::size_t neither = 0;
  std::size_t centers = 0;
  std::size_t clustered = 0;    ///< non-center virtual nodes merged somewhere
  std::size_t unclustered = 0;  ///< virtual nodes dropped from G_{j+1}

  // Work accounting (drives the message bound of Theorem 11).
  std::uint64_t query_edges = 0;   ///< distinct query edges over all trials
  std::uint64_t spanner_added = 0; ///< |F| contributed by this level
  std::uint64_t trials_run_total = 0;  ///< Σ_v trials executed by v

  /// cluster_of[v] = id of v's cluster in G_{j+1}, or kInvalidNode when v
  /// was unclustered (only meaningful when level < k).
  std::vector<graph::NodeId> cluster_of;

  /// representative[v] = *physical* node id of v's lineage root in G_j.
  std::vector<graph::NodeId> representative;

  std::string summary() const;
};

/// Full-run trace plus the final physical-node partition (used by the
/// stretch analysis of Theorem 9 and by the distributed implementation to
/// build cluster trees).
struct HierarchyTrace {
  std::vector<LevelTrace> levels;

  /// phys_cluster_at[j][p] = virtual node of G_j containing physical node p,
  /// or kInvalidNode once p's cluster was dropped. phys_cluster_at[0] is the
  /// identity.
  std::vector<std::vector<graph::NodeId>> phys_cluster_at;

  std::size_t total_query_edges() const;
  std::size_t total_trials() const;
};

}  // namespace fl::core
