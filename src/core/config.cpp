#include "core/config.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/assert.hpp"

namespace fl::core {

SamplerConfig SamplerConfig::paper_faithful(unsigned k, unsigned h,
                                            std::uint64_t seed) {
  SamplerConfig cfg;
  cfg.k = k;
  cfg.h = h;
  cfg.c = 2.0;
  cfg.log_exp_budget = 1.0;
  cfg.log_exp_trial = 3.0;
  cfg.seed = seed;
  return cfg;
}

SamplerConfig SamplerConfig::bench_profile(unsigned k, unsigned h,
                                           std::uint64_t seed) {
  SamplerConfig cfg;
  cfg.k = k;
  cfg.h = h;
  // Small constants expose the polynomial part of the bounds at the sizes a
  // laptop sweep can reach; the exponents (what the theorems predict) are
  // unchanged.
  cfg.c = 1.0;
  cfg.log_exp_budget = 1.0;
  cfg.log_exp_trial = 1.0;
  cfg.seed = seed;
  return cfg;
}

double SamplerConfig::delta() const {
  return 1.0 / (std::exp2(static_cast<double>(k) + 1.0) - 1.0);
}

double SamplerConfig::epsilon() const {
  FL_REQUIRE(h >= 1, "SamplerConfig: h must be >= 1");
  return 1.0 / static_cast<double>(h);
}

double SamplerConfig::pow3(unsigned j) {
  double out = 1.0;
  for (unsigned i = 0; i < j; ++i) out *= 3.0;
  return out;
}

double SamplerConfig::stretch_bound() const { return 2.0 * pow3(k) - 1.0; }

std::size_t SamplerConfig::budget(double n, unsigned level) const {
  FL_REQUIRE(n >= 2.0, "budget: n too small");
  const double expo = std::exp2(static_cast<double>(level)) * delta();
  const double logn = std::log2(n);
  const double value =
      c * std::pow(n, expo) * std::pow(logn, log_exp_budget);
  return static_cast<std::size_t>(std::max(1.0, std::ceil(value)));
}

std::size_t SamplerConfig::trial_size(double n, unsigned level) const {
  FL_REQUIRE(n >= 2.0, "trial_size: n too small");
  const double expo =
      std::exp2(static_cast<double>(level)) * delta() + epsilon();
  const double logn = std::log2(n);
  const double value =
      c * c * std::pow(n, expo) * std::pow(logn, log_exp_trial);
  return static_cast<std::size_t>(std::max(1.0, std::ceil(value)));
}

double SamplerConfig::center_prob(double n, unsigned level) const {
  FL_REQUIRE(n >= 2.0, "center_prob: n too small");
  const double expo = std::exp2(static_cast<double>(level)) * delta();
  return std::pow(n, -expo);
}

double SamplerConfig::round_bound_scale() const {
  return pow3(k) * static_cast<double>(h);
}

void SamplerConfig::validate(std::size_t n) const {
  FL_REQUIRE(n >= 2, "Sampler needs n >= 2");
  FL_REQUIRE(k >= 1, "Sampler needs k >= 1");
  FL_REQUIRE(h >= 1, "Sampler needs h >= 1");
  FL_REQUIRE(c > 0.0, "Sampler needs c > 0");
  // The paper allows k <= log log n and h <= log n; we enforce generous
  // caps (hard failure beyond them would only waste work, not break
  // correctness, but out-of-range parameters signal caller confusion).
  const double logn = std::log2(static_cast<double>(n));
  FL_REQUIRE(static_cast<double>(h) <= std::max(1.0, logn),
             "Sampler needs h <= log n");
  FL_REQUIRE(static_cast<double>(k) <=
                 std::max(1.0, std::log2(std::max(2.0, logn)) + 1.0),
             "Sampler needs k <= log log n (+1 slack)");
  FL_REQUIRE(schedule_slack >= 1, "Sampler needs schedule_slack >= 1");
  FL_REQUIRE(!congest.has_value() ||
                 congest->words_per_edge_per_round >= 1,
             "Sampler congest budget must be >= 1 word");
}

std::string SamplerConfig::describe() const {
  char buf[320];
  char congest_buf[64] = "";
  if (congest.has_value() && congest->enforced()) {
    std::snprintf(congest_buf, sizeof(congest_buf), " congest=%llu:%s",
                  static_cast<unsigned long long>(
                      congest->words_per_edge_per_round),
                  congest->policy == sim::CongestPolicy::Strict ? "strict"
                                                                : "defer");
  }
  const char* barrier_names[] = {"auto", "fixed", "event"};
  std::snprintf(buf, sizeof(buf),
                "Sampler(k=%u h=%u c=%.2f delta=%.4f eps=%.4f stretch<=%.0f "
                "log_exp=[%.1f,%.1f]%s%s%s barriers=%s slack=%u)",
                k, h, c, delta(), epsilon(), stretch_bound(), log_exp_budget,
                log_exp_trial, force_light_completion ? " +force_light" : "",
                peel_parallel_edges ? "" : " -peeling", congest_buf,
                barrier_names[static_cast<unsigned>(barriers)],
                schedule_slack);
  return buf;
}

}  // namespace fl::core
