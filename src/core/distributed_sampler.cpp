#include "core/distributed_sampler.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <unordered_set>

#include "sim/wire_check.hpp"
#include "util/assert.hpp"
#include "util/distributions.hpp"
#include "util/rng.hpp"

namespace fl::core {

using graph::EdgeId;
using graph::kInvalidEdge;
using graph::kInvalidNode;
using graph::NodeId;

namespace {

constexpr std::uint64_t kCenterCoinLabel = 1'000'000'000ULL;
constexpr std::size_t kExhaustiveFactor = 16;
constexpr std::size_t kNoSlot = std::numeric_limits<std::size_t>::max();

// ------------------------------------------------------------- payloads

using EdgeList = std::shared_ptr<const std::vector<EdgeId>>;

struct MsgSetup {};  // FloodSetup: establishes the per-level tree parent

struct MsgGatherUp {  // echo: concatenated candidate lists of a subtree
  std::shared_ptr<std::vector<EdgeId>> candidates;
};

struct MsgBoundary {  // flood: the final E_j(v) list
  EdgeList boundary;
};

struct MsgTrialRate {  // flood: per-trial sampling directive
  std::uint64_t trial_size = 0;
  std::uint64_t pool_total = 0;
  bool skip = false;
};

struct MsgQuery {};  // over a sampled boundary edge

struct MsgQueryReply {
  bool alive = true;
  NodeId cluster = kInvalidNode;
  EdgeList boundary;  ///< responder cluster's full incident edge-ID list
};

struct Found {  // one discovered neighbour cluster
  NodeId cluster = kInvalidNode;
  bool alive = true;
  EdgeId via = kInvalidEdge;
  EdgeList list;
};

struct MsgCollectUp {  // echo: discovered neighbours of a subtree
  std::shared_ptr<std::vector<Found>> found;
};

struct MsgApply {  // flood: root's dedup'd decisions for the trial
  std::shared_ptr<const std::vector<Found>> entries;
};

struct MsgCenterFlood {
  bool is_center = false;
};

struct MsgCenterQuery {};

struct MsgCenterReply {
  bool is_center = false;
  NodeId cluster = kInvalidNode;
};

struct CenterFound {
  NodeId cluster = kInvalidNode;
  EdgeId via = kInvalidEdge;
};

struct MsgCenterUp {
  std::shared_ptr<std::vector<CenterFound>> found;
};

enum class JoinDecision : std::uint8_t { Stay, Join, Die };

struct MsgJoin {
  JoinDecision decision = JoinDecision::Die;
  NodeId new_cluster = kInvalidNode;
  EdgeId attach_edge = kInvalidEdge;
};

struct MsgAttach {};  // marks the attach edge as a tree edge on the far side

struct MsgDeath {  // dying cluster announces over its F_v edges
  EdgeList boundary;
};

// Field-by-field wire framing for every non-empty payload (the empty
// markers use the encode-to-nothing default). Explicit field lists are
// required wherever padding makes the raw bytes nondeterministic
// (MsgTrialRate, MsgQueryReply, Found, MsgCenterReply, MsgJoin) and kept
// uniform for the rest so the framing never silently changes when a
// struct gains a field.
FL_WIRE_FIELDS(MsgGatherUp, candidates);
FL_WIRE_FIELDS(MsgBoundary, boundary);
FL_WIRE_FIELDS(MsgTrialRate, trial_size, pool_total, skip);
FL_WIRE_FIELDS(MsgQueryReply, alive, cluster, boundary);
FL_WIRE_FIELDS(Found, cluster, alive, via, list);
FL_WIRE_FIELDS(MsgCollectUp, found);
FL_WIRE_FIELDS(MsgApply, entries);
FL_WIRE_FIELDS(MsgCenterFlood, is_center);
FL_WIRE_FIELDS(MsgCenterReply, is_center, cluster);
FL_WIRE_FIELDS(CenterFound, cluster, via);
FL_WIRE_FIELDS(MsgCenterUp, found);
FL_WIRE_FIELDS(MsgJoin, decision, new_cluster, attach_edge);
FL_WIRE_FIELDS(MsgDeath, boundary);

// The sampler's whole message budget rides on these structs: queries and
// replies are the Õ(n^{1+δ+ε}) term, the rest are tree sessions. All of
// them must fit the payload's inline buffer (list-carrying messages ship a
// shared_ptr head, never the list), the pure-control messages must hit
// the memcpy relocation fast path, and every one must be wire-encodable
// so the TCP shard backend can deliver the sampler unchanged.
static_assert(sim::Payload::wire_encodable<MsgSetup> &&
              sim::Payload::wire_encodable<MsgGatherUp> &&
              sim::Payload::wire_encodable<MsgBoundary> &&
              sim::Payload::wire_encodable<MsgTrialRate> &&
              sim::Payload::wire_encodable<MsgQuery> &&
              sim::Payload::wire_encodable<MsgQueryReply> &&
              sim::Payload::wire_encodable<MsgCollectUp> &&
              sim::Payload::wire_encodable<MsgApply> &&
              sim::Payload::wire_encodable<MsgCenterFlood> &&
              sim::Payload::wire_encodable<MsgCenterQuery> &&
              sim::Payload::wire_encodable<MsgCenterReply> &&
              sim::Payload::wire_encodable<MsgCenterUp> &&
              sim::Payload::wire_encodable<MsgJoin> &&
              sim::Payload::wire_encodable<MsgAttach> &&
              sim::Payload::wire_encodable<MsgDeath>);
static_assert(sim::Payload::stores_inline<MsgSetup>);
static_assert(sim::Payload::stores_inline<MsgGatherUp>);
static_assert(sim::Payload::stores_inline<MsgBoundary>);
static_assert(sim::Payload::stores_inline<MsgTrialRate> &&
              sim::Payload::trivially_relocatable<MsgTrialRate>);
static_assert(sim::Payload::stores_inline<MsgQuery> &&
              sim::Payload::trivially_relocatable<MsgQuery>);
static_assert(sim::Payload::stores_inline<MsgQueryReply>);
static_assert(sim::Payload::stores_inline<MsgCollectUp>);
static_assert(sim::Payload::stores_inline<MsgApply>);
static_assert(sim::Payload::stores_inline<MsgCenterFlood> &&
              sim::Payload::trivially_relocatable<MsgCenterFlood>);
static_assert(sim::Payload::stores_inline<MsgCenterQuery> &&
              sim::Payload::trivially_relocatable<MsgCenterQuery>);
static_assert(sim::Payload::stores_inline<MsgCenterReply> &&
              sim::Payload::trivially_relocatable<MsgCenterReply>);
static_assert(sim::Payload::stores_inline<MsgCenterUp>);
static_assert(sim::Payload::stores_inline<MsgJoin> &&
              sim::Payload::trivially_relocatable<MsgJoin>);
static_assert(sim::Payload::stores_inline<MsgAttach> &&
              sim::Payload::trivially_relocatable<MsgAttach>);
static_assert(sim::Payload::stores_inline<MsgDeath>);

// ------------------------------------------------------ helper routines

using util::binomial_draw;

/// Root-side diagnostics for one level this node led.
struct RootLevelRecord {
  unsigned level = 0;
  NodeStatus status = NodeStatus::Neither;
  std::size_t boundary_size = 0;
  std::size_t distinct_neighbors_found = 0;
  std::size_t f_count = 0;
  bool was_center = false;
  bool died = false;
  bool joined = false;
};

// --------------------------------------------------------- the program

class SamplerNode final : public sim::NodeProgram {
 public:
  /// `adaptive` selects the resolved barrier mode (the driver folds
  /// BarrierMode::Auto against the network's effective CONGEST config):
  /// false = the fixed PhaseSpec::start/length timetable, true =
  /// event-driven barriers (advance on Context::network_silent()).
  SamplerNode(NodeId self, std::shared_ptr<const Schedule> schedule,
              const SamplerConfig& cfg, double n0, bool adaptive)
      : self_(self),
        schedule_(std::move(schedule)),
        cfg_(cfg),
        n0_(n0),
        adaptive_(adaptive),
        streams_(cfg.seed) {}

  // -- extraction hooks used by the driver after the run ----------------
  std::vector<EdgeId> spanner_edges() const {
    std::vector<EdgeId> out;
    for (std::size_t s = 0; s < inc_.size(); ++s)
      if (flag_spanner_[s]) out.push_back(inc_[s]);
    return out;
  }
  const std::vector<RootLevelRecord>& root_records() const {
    return root_records_;
  }
  const std::vector<std::uint64_t>& queries_per_level() const {
    return queries_per_level_;
  }

  // -- NodeProgram -------------------------------------------------------
  void on_start(sim::Context& ctx) override {
    const auto edges = ctx.incident_edges();
    inc_.assign(edges.begin(), edges.end());
    std::sort(inc_.begin(), inc_.end());
    const std::size_t deg = inc_.size();
    flag_spanner_.assign(deg, false);
    flag_tree_.assign(deg, false);
    flag_f_edge_.assign(deg, false);
    pool_pos_.assign(deg, kNoSlot);
    pool_.clear();
    pool_.reserve(deg);
    for (std::size_t s = 0; s < deg; ++s) {
      pool_pos_[s] = pool_.size();
      pool_.push_back(s);
    }
    cluster_id_ = self_;
    is_root_ = true;
    alive_ = true;
    queries_per_level_.assign(cfg_.k + 1, 0);
    // Level 0 boundary: all incident edges (a simple graph has no intra).
    boundary_ = std::make_shared<const std::vector<EdgeId>>(inc_);
    rebuild_root_pool();
  }

  void on_round(sim::Context& ctx, sim::InboxView inbox) override {
    // Step 1: react to messages.
    for (const auto& msg : inbox) handle(ctx, msg);
    // Step 2: execute phase-start actions that are due.
    if (adaptive_) {
      // Event-driven barrier: a phase ends on the first *silent* round —
      // nothing delivered, nothing parked in a carry queue. Every send in
      // this protocol is either a phase-start action or an immediate
      // reaction to a delivery, so a phase's traffic is a chain of
      // consecutive delivery rounds and silence proves the chain (and
      // every earlier phase's) has fully drained. The predicate is a
      // merge-barrier fact, identical at every node, so all nodes consume
      // the same phase in the same round — the timetable's lockstep
      // without its provisioned windows.
      if (ctx.network_silent() && phase_idx_ < schedule_->phases.size()) {
        start_phase(ctx, schedule_->phases[phase_idx_]);
        ++phase_idx_;
        // Reactive-only phases send nothing at start — their work happens
        // in handle() while the *previous* phase's traffic is in flight —
        // so waiting a silent round for each would buy nothing. Consume
        // them together with the phase whose traffic they answer.
        while (phase_idx_ < schedule_->phases.size() &&
               reactive_only(schedule_->phases[phase_idx_].kind)) {
          start_phase(ctx, schedule_->phases[phase_idx_]);
          ++phase_idx_;
        }
      }
      ++logical_round_;
      return;
    }
    // Fixed timetable: phases start at their provisioned rounds.
    while (phase_idx_ < schedule_->phases.size() &&
           schedule_->phases[phase_idx_].start == logical_round_) {
      start_phase(ctx, schedule_->phases[phase_idx_]);
      ++phase_idx_;
    }
    ++logical_round_;
  }

  bool done() const override {
    return phase_idx_ >= schedule_->phases.size();
  }

  sim::Knowledge required_knowledge() const override {
    return sim::Knowledge::EdgeIds;
  }

 private:
  // ------------------------------------------------------- edge slots
  std::size_t slot_of(EdgeId e) const {
    const auto it = std::lower_bound(inc_.begin(), inc_.end(), e);
    if (it == inc_.end() || *it != e) return kNoSlot;
    return static_cast<std::size_t>(it - inc_.begin());
  }

  void pool_remove_slot(std::size_t s) {
    const std::size_t p = pool_pos_[s];
    if (p == kNoSlot) return;
    const std::size_t last = pool_.back();
    pool_[p] = last;
    pool_pos_[last] = p;
    pool_.pop_back();
    pool_pos_[s] = kNoSlot;
  }

  /// Remove every own pool edge that appears in `list`.
  void peel_list(const std::vector<EdgeId>& list) {
    for (const EdgeId e : list) {
      const std::size_t s = slot_of(e);
      if (s != kNoSlot) pool_remove_slot(s);
    }
  }

  // ---------------------------------------------------- root pool model
  void rebuild_root_pool() {
    root_pool_.clear();
    if (!is_root_ || boundary_ == nullptr) return;
    root_pool_.insert(boundary_->begin(), boundary_->end());
  }

  void root_peel(const std::vector<EdgeId>& list) {
    for (const EdgeId e : list) root_pool_.erase(e);
  }

  // --------------------------------------------------------- messaging
  /// Payloads are move-only, so flooding sends one copy of the (cheaply
  /// copyable) payload struct per child edge.
  template <typename Msg>
  void flood_to_children(sim::Context& ctx, const Msg& payload,
                         std::uint32_t words) {
    for (std::size_t s = 0; s < inc_.size(); ++s)
      if (flag_tree_[s] && inc_[s] != parent_edge_) {
        ctx.send(inc_[s], payload, words);
        ++sent_.tree_sessions;
      }
  }

  void send_up_or_finalize(sim::Context& ctx) {
    switch (echo_kind_) {
      case EchoKind::Gather: finish_gather(ctx); break;
      case EchoKind::Collect: finish_collect(ctx); break;
      case EchoKind::Center: finish_center(ctx); break;
      case EchoKind::None: FL_ENSURE(false, "echo finalize without session");
    }
  }

  void finish_gather(sim::Context& ctx) {
    if (!is_root_) {
      ctx.send(parent_edge_, MsgGatherUp{gather_acc_},
               static_cast<std::uint32_t>(gather_acc_->size() + 1));
      ++sent_.tree_sessions;
      gather_acc_.reset();
      echo_kind_ = EchoKind::None;
      return;
    }
    // Root: edges reported twice are intra-cluster; keep the once-reported.
    auto& all = *gather_acc_;
    std::sort(all.begin(), all.end());
    auto out = std::make_shared<std::vector<EdgeId>>();
    for (std::size_t i = 0; i < all.size();) {
      std::size_t j = i + 1;
      while (j < all.size() && all[j] == all[i]) ++j;
      if (j - i == 1) out->push_back(all[i]);
      FL_ENSURE(j - i <= 2, "an edge has at most two endpoints in a cluster");
      i = j;
    }
    boundary_ = std::move(out);
    gather_acc_.reset();
    echo_kind_ = EchoKind::None;
    rebuild_root_pool();
  }

  void finish_collect(sim::Context& ctx) {
    if (!is_root_) {
      ctx.send(parent_edge_, MsgCollectUp{collect_acc_},
               static_cast<std::uint32_t>(collect_acc_->size() + 1));
      ++sent_.tree_sessions;
      collect_acc_.reset();
      echo_kind_ = EchoKind::None;
      return;
    }
    // Root: process this trial's discoveries. F_v growth is capped at the
    // budget (see sampler.cpp run_trial: Lemma 10's accounting requires it);
    // blocks skipped by the cap stay unqueried and unpeeled.
    //
    // Canonical order first: the echo concatenates subtree reports in
    // arrival order, which a bandwidth budget regroups across rounds. The
    // first-seen-cluster F_v selection below (and its cap) must be a
    // function of the report *set*, not of the delivery schedule, or a
    // budgeted run would build a different spanner than the LOCAL run.
    // (cluster, via) is unique per entry — one query per boundary edge per
    // trial — so the sort is a total order and fully deterministic.
    std::sort(collect_acc_->begin(), collect_acc_->end(),
              [](const Found& a, const Found& b) {
                return a.cluster != b.cluster ? a.cluster < b.cluster
                                              : a.via < b.via;
              });
    const std::size_t budget = cfg_.budget(n0_, level_);
    auto apply = std::make_shared<std::vector<Found>>();
    for (const Found& f : *collect_acc_) {
      if (known_neighbors_.count(f.cluster)) continue;
      Found decision = f;
      if (f.alive) {
        if (f_entries_.size() >= budget) continue;  // capped: ignore
        known_neighbors_.insert(f.cluster);
        f_entries_.push_back({f.cluster, f.via});
        ++record_.distinct_neighbors_found;
      } else {
        known_neighbors_.insert(f.cluster);
        decision.via = kInvalidEdge;  // dead: peel only, no F_v edge
      }
      if (decision.list) root_peel(*decision.list);
      apply->push_back(std::move(decision));
    }
    collect_acc_.reset();
    echo_kind_ = EchoKind::None;
    pending_apply_ = std::move(apply);
  }

  void finish_center(sim::Context& ctx) {
    if (!is_root_) {
      ctx.send(parent_edge_, MsgCenterUp{center_acc_},
               static_cast<std::uint32_t>(center_acc_->size() + 1));
      ++sent_.tree_sessions;
      center_acc_.reset();
      echo_kind_ = EchoKind::None;
      return;
    }
    // Root: pick the smallest-id center neighbour (deterministic arbitrary).
    chosen_center_ = kInvalidNode;
    chosen_attach_ = kInvalidEdge;
    for (const CenterFound& cf : *center_acc_) {
      if (chosen_center_ == kInvalidNode || cf.cluster < chosen_center_) {
        chosen_center_ = cf.cluster;
        chosen_attach_ = cf.via;
      }
    }
    center_acc_.reset();
    echo_kind_ = EchoKind::None;
  }

  void child_report_received(sim::Context& ctx) {
    FL_ENSURE(echo_waiting_ > 0, "unexpected echo report");
    --echo_waiting_;
    if (echo_waiting_ == 0) send_up_or_finalize(ctx);
  }

  // ------------------------------------------------------ phase starts
  /// Phases whose start is a no-op: all their work happens reactively in
  /// handle() while the preceding phase's traffic is in flight, so an
  /// event-driven barrier consumes them with that phase instead of
  /// spending a silent round on each.
  static bool reactive_only(PhaseSpec::Kind kind) {
    using K = PhaseSpec::Kind;
    return kind == K::QueryRespond || kind == K::CenterRespond ||
           kind == K::TrialGatherEcho;
  }

  void start_phase(sim::Context& ctx, const PhaseSpec& spec) {
    using K = PhaseSpec::Kind;
    switch (spec.kind) {
      case K::FloodSetup: phase_flood_setup(ctx, spec); break;
      case K::GatherEcho: phase_gather(ctx, spec); break;
      case K::FloodBoundary: phase_flood_boundary(ctx, spec); break;
      case K::TrialRateFlood: phase_trial_rate(ctx, spec); break;
      case K::QuerySend: phase_query_send(ctx, spec); break;
      case K::QueryRespond: /* reactive only */ break;
      case K::TrialCollectEcho: phase_collect(ctx, spec); break;
      case K::TrialApplyFlood: phase_apply(ctx, spec); break;
      case K::CenterFlood: phase_center_flood(ctx, spec); break;
      case K::CenterQuery: phase_center_query(ctx, spec); break;
      case K::CenterRespond: /* reactive only */ break;
      case K::CenterCollectEcho: phase_center_collect(ctx, spec); break;
      case K::JoinFlood: phase_join(ctx, spec); break;
      case K::AttachNotify: phase_attach(ctx, spec); break;
      case K::DeathAnnounce: phase_death(ctx, spec); break;
      case K::TrialGatherEcho: /* unused (root tracks the pool) */ break;
    }
  }

  void phase_flood_setup(sim::Context& ctx, const PhaseSpec& spec) {
    level_ = spec.level;
    // Reset per-level state (alive and dead alike keep answering queries).
    parent_edge_ = kInvalidEdge;
    std::fill(flag_f_edge_.begin(), flag_f_edge_.end(), false);
    if (!alive_) return;
    if (is_root_) {
      known_neighbors_.clear();
      f_entries_.clear();
      record_ = RootLevelRecord{};
      record_.level = level_;
      chosen_center_ = kInvalidNode;
      chosen_attach_ = kInvalidEdge;
      is_center_cluster_ = false;
      if (spec.length > 0) flood_to_children(ctx, MsgSetup{}, 1);
    }
  }

  void phase_gather(sim::Context& ctx, const PhaseSpec& spec) {
    if (!alive_) return;
    (void)spec;
    echo_kind_ = EchoKind::Gather;
    gather_acc_ = std::make_shared<std::vector<EdgeId>>();
    for (const std::size_t s : pool_) gather_acc_->push_back(inc_[s]);
    echo_waiting_ = children_count();
    if (echo_waiting_ == 0) send_up_or_finalize(ctx);
  }

  void phase_flood_boundary(sim::Context& ctx, const PhaseSpec& spec) {
    if (!alive_ || !is_root_) return;
    record_.boundary_size = boundary_->size();
    if (spec.length > 0)
      flood_to_children(
          ctx, MsgBoundary{boundary_},
          static_cast<std::uint32_t>(boundary_->size() + 1));
    apply_boundary(*boundary_);
  }

  void phase_trial_rate(sim::Context& ctx, const PhaseSpec& spec) {
    if (!alive_) return;
    if (is_root_) {
      MsgTrialRate rate;
      rate.trial_size = cfg_.trial_size(n0_, level_);
      rate.pool_total = root_pool_.size();
      const std::size_t budget = cfg_.budget(n0_, level_);
      rate.skip = root_pool_.empty() || f_entries_.size() >= budget;
      current_rate_ = rate;
      if (spec.length > 0) flood_to_children(ctx, rate, 3);
    }
  }

  void phase_query_send(sim::Context& ctx, const PhaseSpec& spec) {
    if (!alive_ || current_rate_.skip || current_rate_.pool_total == 0 ||
        pool_.empty())
      return;
    auto rng = streams_.trial_stream(self_, level_,
                                     static_cast<std::uint64_t>(spec.trial));
    const double share = static_cast<double>(pool_.size()) /
                         static_cast<double>(current_rate_.pool_total);
    const std::uint64_t count =
        binomial_draw(current_rate_.trial_size, share, rng);
    if (count == 0) return;

    std::uint64_t sent = 0;
    if (count >= kExhaustiveFactor * pool_.size()) {
      for (const std::size_t s : pool_) {
        ctx.send(inc_[s], MsgQuery{}, 1);
        ++sent;
        ++sent_.queries;
      }
    } else {
      // Draw with replacement against the frozen pool; dedupe the sends.
      query_mark_.resize(inc_.size(), 0);
      ++query_epoch_;
      for (std::uint64_t i = 0; i < count; ++i) {
        const std::size_t s = pool_[rng.index(pool_.size())];
        if (query_mark_[s] == query_epoch_) continue;
        query_mark_[s] = query_epoch_;
        ctx.send(inc_[s], MsgQuery{}, 1);
        ++sent;
        ++sent_.queries;
      }
    }
    queries_per_level_[level_] += sent;
  }

  void phase_collect(sim::Context& ctx, const PhaseSpec& spec) {
    if (!alive_) return;
    (void)spec;
    echo_kind_ = EchoKind::Collect;
    collect_acc_ = std::make_shared<std::vector<Found>>(std::move(found_buffer_));
    found_buffer_.clear();
    echo_waiting_ = children_count();
    if (echo_waiting_ == 0) send_up_or_finalize(ctx);
  }

  void phase_apply(sim::Context& ctx, const PhaseSpec& spec) {
    if (!alive_ || !is_root_) return;
    if (!pending_apply_) return;
    auto entries = std::shared_ptr<const std::vector<Found>>(pending_apply_);
    pending_apply_.reset();
    if (spec.length > 0) {
      std::uint32_t words = 1;
      for (const auto& f : *entries)
        words += static_cast<std::uint32_t>(f.list ? f.list->size() + 2 : 2);
      flood_to_children(ctx, MsgApply{entries}, words);
    }
    apply_trial_entries(*entries);
  }

  void phase_center_flood(sim::Context& ctx, const PhaseSpec& spec) {
    if (!alive_) return;
    if (is_root_) {
      auto coin = streams_.trial_stream(self_, level_, kCenterCoinLabel);
      is_center_cluster_ = coin.bernoulli(cfg_.center_prob(n0_, level_));
      record_.was_center = is_center_cluster_;
      if (spec.length > 0)
        flood_to_children(ctx, MsgCenterFlood{is_center_cluster_}, 1);
    }
  }

  void phase_center_query(sim::Context& ctx, const PhaseSpec& spec) {
    (void)spec;
    if (!alive_) return;
    for (std::size_t s = 0; s < inc_.size(); ++s)
      if (flag_f_edge_[s]) {
        ctx.send(inc_[s], MsgCenterQuery{}, 1);
        ++sent_.center;
      }
  }

  void phase_center_collect(sim::Context& ctx, const PhaseSpec& spec) {
    if (!alive_) return;
    (void)spec;
    echo_kind_ = EchoKind::Center;
    center_acc_ =
        std::make_shared<std::vector<CenterFound>>(std::move(center_buffer_));
    center_buffer_.clear();
    echo_waiting_ = children_count();
    if (echo_waiting_ == 0) send_up_or_finalize(ctx);
  }

  void phase_join(sim::Context& ctx, const PhaseSpec& spec) {
    if (!alive_ || !is_root_) return;
    MsgJoin join;
    if (is_center_cluster_) {
      join.decision = JoinDecision::Stay;
    } else if (chosen_center_ != kInvalidNode) {
      join.decision = JoinDecision::Join;
      join.new_cluster = chosen_center_;
      join.attach_edge = chosen_attach_;
    } else {
      join.decision = JoinDecision::Die;
    }
    finalize_level_record(join.decision);
    if (spec.length > 0) flood_to_children(ctx, join, 3);
    apply_join(join);
  }

  void phase_attach(sim::Context& ctx, const PhaseSpec& spec) {
    (void)spec;
    if (!alive_ || attach_to_send_ == kInvalidEdge) return;
    const std::size_t s = slot_of(attach_to_send_);
    FL_ENSURE(s != kNoSlot, "attach edge must be incident");
    flag_tree_[s] = true;
    ctx.send(attach_to_send_, MsgAttach{}, 1);
    ++sent_.control;
    attach_to_send_ = kInvalidEdge;
  }

  void phase_death(sim::Context& ctx, const PhaseSpec& spec) {
    (void)spec;
    if (!dying_) return;
    dying_ = false;
    alive_ = false;
    // Light whp => F_v covers every neighbour; announce over those edges.
    for (std::size_t s = 0; s < inc_.size(); ++s) {
      if (flag_f_edge_[s]) {
        ctx.send(inc_[s], MsgDeath{boundary_},
                 static_cast<std::uint32_t>(boundary_->size() + 1));
        ++sent_.control;
      }
    }
  }

  // ----------------------------------------------------- phase helpers
  std::size_t children_count() const {
    std::size_t deg = 0;
    for (std::size_t s = 0; s < inc_.size(); ++s)
      if (flag_tree_[s]) ++deg;
    if (parent_edge_ != kInvalidEdge) --deg;
    return deg;
  }

  void apply_boundary(const std::vector<EdgeId>& boundary) {
    // Drop own candidates that are not in the cluster's boundary (they are
    // intra-cluster edges discovered by the duplicate count at the root).
    for (std::size_t i = 0; i < pool_.size();) {
      const std::size_t s = pool_[i];
      if (!std::binary_search(boundary.begin(), boundary.end(), inc_[s])) {
        pool_remove_slot(s);  // swap-removes; re-examine index i
      } else {
        ++i;
      }
    }
  }

  void apply_trial_entries(const std::vector<Found>& entries) {
    for (const Found& f : entries) {
      if (f.via != kInvalidEdge) {
        const std::size_t s = slot_of(f.via);
        if (s != kNoSlot) {
          flag_spanner_[s] = true;
          flag_f_edge_[s] = true;
        }
      }
      if (f.list) peel_list(*f.list);
    }
  }

  void finalize_level_record(JoinDecision decision) {
    const std::size_t budget = cfg_.budget(n0_, level_);
    if (root_pool_.empty())
      record_.status = NodeStatus::Light;
    else if (f_entries_.size() >= budget)
      record_.status = NodeStatus::Heavy;
    else
      record_.status = NodeStatus::Neither;
    record_.f_count = f_entries_.size();
    record_.died = decision == JoinDecision::Die;
    record_.joined = decision == JoinDecision::Join;
    root_records_.push_back(record_);
  }

  void apply_join(const MsgJoin& join) {
    switch (join.decision) {
      case JoinDecision::Stay:
        break;
      case JoinDecision::Join:
        cluster_id_ = join.new_cluster;
        if (is_root_) is_root_ = false;
        if (slot_of(join.attach_edge) != kNoSlot)
          attach_to_send_ = join.attach_edge;
        break;
      case JoinDecision::Die:
        dying_ = true;  // effective at DeathAnnounce
        if (is_root_) is_root_ = false;
        break;
    }
  }

  /// Record the final level's root status (level k has no JoinFlood).
  void finalize_last_level_if_needed() {
    if (alive_ && is_root_ && record_.level == cfg_.k &&
        (root_records_.empty() || root_records_.back().level != cfg_.k)) {
      finalize_level_record(JoinDecision::Die);
      root_records_.back().died = false;  // level k nodes are "unclustered"
    }
  }

 public:
  /// Called by the driver after the run to flush level-k root records.
  void flush_final_records() { finalize_last_level_if_needed(); }

 private:
  // ------------------------------------------------------- msg handler
  void handle(sim::Context& ctx, sim::MessageView msg) {
    if (const auto* q = sim::payload_if<MsgQuery>(msg)) {
      (void)q;
      MsgQueryReply reply;
      reply.alive = alive_ && !dying_;
      reply.cluster = cluster_id_;
      reply.boundary = boundary_;
      ctx.send(msg.edge(), reply,
               static_cast<std::uint32_t>(
                   (boundary_ ? boundary_->size() : 0) + 2));
      ++sent_.queries;
      return;
    }
    if (const auto* r = sim::payload_if<MsgQueryReply>(msg)) {
      Found f;
      f.cluster = r->cluster;
      f.alive = r->alive;
      f.via = msg.edge();
      f.list = r->boundary;
      found_buffer_.push_back(std::move(f));
      return;
    }
    if (sim::payload_if<MsgCenterQuery>(msg) != nullptr) {
      ctx.send(msg.edge(), MsgCenterReply{is_center_cluster_, cluster_id_}, 2);
      ++sent_.center;
      return;
    }
    if (const auto* r = sim::payload_if<MsgCenterReply>(msg)) {
      if (r->is_center) center_buffer_.push_back({r->cluster, msg.edge()});
      return;
    }
    if (sim::payload_if<MsgSetup>(msg) != nullptr) {
      if (!alive_) return;
      parent_edge_ = msg.edge();
      flood_to_children(ctx, MsgSetup{}, 1);
      return;
    }
    if (const auto* b = sim::payload_if<MsgBoundary>(msg)) {
      if (!alive_) return;
      boundary_ = b->boundary;
      flood_to_children(ctx, *b,
                        static_cast<std::uint32_t>(b->boundary->size() + 1));
      apply_boundary(*b->boundary);
      return;
    }
    if (const auto* t = sim::payload_if<MsgTrialRate>(msg)) {
      if (!alive_) return;
      current_rate_ = *t;
      flood_to_children(ctx, *t, 3);
      return;
    }
    if (const auto* a = sim::payload_if<MsgApply>(msg)) {
      if (!alive_) return;
      std::uint32_t words = 1;
      for (const auto& f : *a->entries)
        words += static_cast<std::uint32_t>(f.list ? f.list->size() + 2 : 2);
      flood_to_children(ctx, *a, words);
      apply_trial_entries(*a->entries);
      return;
    }
    if (const auto* cf = sim::payload_if<MsgCenterFlood>(msg)) {
      if (!alive_) return;
      is_center_cluster_ = cf->is_center;
      flood_to_children(ctx, *cf, 1);
      return;
    }
    if (const auto* j = sim::payload_if<MsgJoin>(msg)) {
      if (!alive_) return;
      flood_to_children(ctx, *j, 3);
      apply_join(*j);
      return;
    }
    if (sim::payload_if<MsgAttach>(msg) != nullptr) {
      const std::size_t s = slot_of(msg.edge());
      FL_ENSURE(s != kNoSlot, "attach over non-incident edge");
      flag_tree_[s] = true;
      return;
    }
    if (const auto* d = sim::payload_if<MsgDeath>(msg)) {
      if (!alive_) return;
      if (d->boundary) peel_list(*d->boundary);
      return;
    }
    if (const auto* g = sim::payload_if<MsgGatherUp>(msg)) {
      if (!alive_ || echo_kind_ != EchoKind::Gather) return;
      gather_acc_->insert(gather_acc_->end(), g->candidates->begin(),
                          g->candidates->end());
      child_report_received(ctx);
      return;
    }
    if (const auto* c = sim::payload_if<MsgCollectUp>(msg)) {
      if (!alive_ || echo_kind_ != EchoKind::Collect) return;
      collect_acc_->insert(collect_acc_->end(), c->found->begin(),
                           c->found->end());
      child_report_received(ctx);
      return;
    }
    if (const auto* c = sim::payload_if<MsgCenterUp>(msg)) {
      if (!alive_ || echo_kind_ != EchoKind::Center) return;
      center_acc_->insert(center_acc_->end(), c->found->begin(),
                          c->found->end());
      child_report_received(ctx);
      return;
    }
    FL_ENSURE(false, "unknown message payload");
  }

  // ----------------------------------------------------------- members
  NodeId self_;
  std::shared_ptr<const Schedule> schedule_;
  SamplerConfig cfg_;
  double n0_;
  bool adaptive_ = false;  ///< event-driven barriers vs fixed timetable
  util::StreamFactory streams_;

  std::size_t logical_round_ = 0;
  std::size_t phase_idx_ = 0;
  unsigned level_ = 0;

  // cluster membership
  bool alive_ = true;
  bool dying_ = false;
  bool is_root_ = true;
  bool is_center_cluster_ = false;
  NodeId cluster_id_ = kInvalidNode;
  EdgeId parent_edge_ = kInvalidEdge;
  EdgeId attach_to_send_ = kInvalidEdge;

  // incident-edge slots
  std::vector<EdgeId> inc_;  // sorted
  std::vector<bool> flag_spanner_;
  std::vector<bool> flag_tree_;
  std::vector<bool> flag_f_edge_;
  std::vector<std::size_t> pool_pos_;
  std::vector<std::size_t> pool_;
  std::vector<unsigned> query_mark_;
  unsigned query_epoch_ = 0;

  // level-shared knowledge
  EdgeList boundary_;
  MsgTrialRate current_rate_;

  // echo sessions
  enum class EchoKind : std::uint8_t { None, Gather, Collect, Center };
  EchoKind echo_kind_ = EchoKind::None;
  std::size_t echo_waiting_ = 0;
  std::shared_ptr<std::vector<EdgeId>> gather_acc_;
  std::shared_ptr<std::vector<Found>> collect_acc_;
  std::shared_ptr<std::vector<CenterFound>> center_acc_;

  // trial buffers
  std::vector<Found> found_buffer_;
  std::vector<CenterFound> center_buffer_;
  std::shared_ptr<std::vector<Found>> pending_apply_;

  // root bookkeeping
  std::unordered_set<EdgeId> root_pool_;
  std::unordered_set<NodeId> known_neighbors_;
  std::vector<std::pair<NodeId, EdgeId>> f_entries_;
  NodeId chosen_center_ = kInvalidNode;
  EdgeId chosen_attach_ = kInvalidEdge;
  RootLevelRecord record_;
  std::vector<RootLevelRecord> root_records_;
  std::vector<std::uint64_t> queries_per_level_;
  MessageBreakdown sent_;

 public:
  const MessageBreakdown& breakdown() const { return sent_; }
};

}  // namespace

// -------------------------------------------------------------- Schedule

Schedule Schedule::build(const SamplerConfig& cfg) {
  Schedule sched;
  std::size_t round = 0;
  // schedule_slack stretches every window uniformly (slack = 1 is the
  // paper's exact timetable). Under a finite CONGEST budget a message is
  // delayed by up to ceil(words / budget) rounds per hop, so a slack of
  // that magnitude keeps flood/echo sessions inside their phase windows;
  // zero-length windows (level 0 runs locally) stay zero.
  const std::size_t slack = cfg.schedule_slack;
  auto push = [&](PhaseSpec::Kind kind, unsigned level, int trial,
                  std::size_t len) {
    sched.base_rounds += len;
    len *= slack;
    sched.phases.push_back(PhaseSpec{kind, level, trial, round, len});
    round += len;
  };
  for (unsigned j = 0; j <= cfg.k; ++j) {
    const auto w = static_cast<std::size_t>(SamplerConfig::pow3(j)) - 1;
    using K = PhaseSpec::Kind;
    push(K::FloodSetup, j, -1, w);
    push(K::GatherEcho, j, -1, w);
    push(K::FloodBoundary, j, -1, w);
    for (unsigned t = 0; t < cfg.trials_per_level(); ++t) {
      push(K::TrialRateFlood, j, static_cast<int>(t), w);
      push(K::QuerySend, j, static_cast<int>(t), 1);
      push(K::QueryRespond, j, static_cast<int>(t), 1);
      push(K::TrialCollectEcho, j, static_cast<int>(t), w);
      push(K::TrialApplyFlood, j, static_cast<int>(t), w);
    }
    if (j < cfg.k) {
      push(K::CenterFlood, j, -1, w);
      push(K::CenterQuery, j, -1, 1);
      push(K::CenterRespond, j, -1, 1);
      push(K::CenterCollectEcho, j, -1, w);
      push(K::JoinFlood, j, -1, w);
      push(K::AttachNotify, j, -1, 1);
      push(K::DeathAnnounce, j, -1, 1);
    }
  }
  sched.total_rounds = round;
  return sched;
}

// ---------------------------------------------------------------- driver

DistributedSpannerRun run_distributed_sampler(const graph::Graph& g,
                                              const SamplerConfig& cfg) {
  cfg.validate(g.num_nodes());
  const auto schedule = std::make_shared<const Schedule>(Schedule::build(cfg));
  const double n0 = g.num_nodes();

  sim::Network net(g, sim::Knowledge::EdgeIds, cfg.seed);
  if (cfg.congest.has_value()) net.set_congest(*cfg.congest);
  // Resolve BarrierMode::Auto against the network's *effective* CONGEST
  // config — cfg.congest when set, else the FL_SIM_CONGEST env probe — so
  // the sampler is correct at any budget the environment imposes while
  // plain LOCAL runs keep the paper's timetable (and their golden round
  // counts) byte-stable.
  const bool adaptive =
      cfg.barriers == BarrierMode::EventDriven ||
      (cfg.barriers == BarrierMode::Auto && net.congest().enforced());
  net.install([&](NodeId v) {
    return std::make_unique<SamplerNode>(v, schedule, cfg, n0, adaptive);
  });

  DistributedSpannerRun run;
  run.stretch_bound = cfg.stretch_bound();
  // Principled stall caps for the event-driven drain (run_until_drained
  // leaves delivery rounds uncapped and meters only *silent* rounds):
  //   * adaptive — every silent round consumes at least one phase, so the
  //     run stalls at most once per phase;
  //   * fixed timetable — logical rounds advance one per round and every
  //     silent round is a timetable round, so the slack-stretched length
  //     bounds them.
  // The +4 covers run start/finish framing (the on_start round, the final
  // quiesce probe).
  const std::size_t stall_cap = adaptive ? schedule->phases.size() + 4
                                         : schedule->total_rounds + 4;
  {
    // Named protocol span on the engine track (no-op when tracing is off).
    const obs::ProtocolScope span(net.tracer(), "distributed_sampler");
    run.stats = net.run_until_drained(stall_cap);
  }
  FL_REQUIRE(run.stats.terminated,
             "distributed sampler did not terminate within its schedule");
  run.metrics = net.metrics();
  if (adaptive && net.congest().enforced()) {
    // Model field: rounds the event-driven barrier saved against the fixed
    // timetable a slack-provisioned run would have booked. The slack is
    // derived the way the old E6d table derived it — the worst-case
    // per-hop deferral of the largest message, plus one framing round.
    const std::uint64_t budget = net.congest().words_per_edge_per_round;
    const std::uint64_t slack =
        (2 * run.metrics.max_message_words + budget - 1) / budget + 1;
    const std::uint64_t provisioned = schedule->base_rounds * slack;
    run.metrics.barrier_rounds_saved =
        provisioned > run.stats.rounds ? provisioned - run.stats.rounds : 0;
  }

  // Extract the spanner (union of per-node marks) and per-level records.
  std::vector<bool> in_spanner(g.num_edges(), false);
  run.levels.assign(cfg.k + 1, LevelTrace{});
  for (unsigned j = 0; j <= cfg.k; ++j) run.levels[j].level = j;

  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    auto& prog = net.program_as<SamplerNode>(v);
    prog.flush_final_records();
    for (const EdgeId e : prog.spanner_edges()) in_spanner[e] = true;
    for (const auto& rec : prog.root_records()) {
      LevelTrace& lt = run.levels[rec.level];
      ++lt.virtual_nodes;
      lt.virtual_edges += rec.boundary_size;  // halved below
      switch (rec.status) {
        case NodeStatus::Light: ++lt.light; break;
        case NodeStatus::Heavy: ++lt.heavy; break;
        case NodeStatus::Neither: ++lt.neither; break;
      }
      if (rec.was_center) ++lt.centers;
      if (rec.joined) ++lt.clustered;
      if (rec.died) ++lt.unclustered;
      lt.spanner_added += rec.f_count;
    }
    const auto& q = prog.queries_per_level();
    for (unsigned j = 0; j <= cfg.k; ++j) run.levels[j].query_edges += q[j];
    const auto& bd = prog.breakdown();
    run.breakdown.queries += bd.queries;
    run.breakdown.tree_sessions += bd.tree_sessions;
    run.breakdown.center += bd.center;
    run.breakdown.control += bd.control;
  }
  for (auto& lt : run.levels) lt.virtual_edges /= 2;
  run.levels.back().unclustered = run.levels.back().virtual_nodes;

  for (EdgeId e = 0; e < g.num_edges(); ++e)
    if (in_spanner[e]) run.edges.push_back(e);
  return run;
}

void distributed_sampler_wire_selftest() {
  using sim::wire_roundtrip_check;
  const auto any = [](const auto&, const auto&) { return true; };
  const auto same_list = [](const auto& a, const auto& b) {
    return (a == nullptr) == (b == nullptr) && (a == nullptr || *a == *b);
  };
  const auto found_eq = [&](const Found& a, const Found& b) {
    return a.cluster == b.cluster && a.alive == b.alive && a.via == b.via &&
           same_list(a.list, b.list);
  };
  const auto center_eq = [](const CenterFound& a, const CenterFound& b) {
    return a.cluster == b.cluster && a.via == b.via;
  };
  const auto list = [](std::vector<EdgeId> v) {
    return std::make_shared<const std::vector<EdgeId>>(std::move(v));
  };

  wire_roundtrip_check(MsgSetup{}, any);
  wire_roundtrip_check(MsgQuery{}, any);
  wire_roundtrip_check(MsgCenterQuery{}, any);
  wire_roundtrip_check(MsgAttach{}, any);
  wire_roundtrip_check(
      MsgGatherUp{std::make_shared<std::vector<EdgeId>>(
          std::vector<EdgeId>{9, 0, kInvalidEdge})},
      [&](const MsgGatherUp& a, const MsgGatherUp& b) {
        return same_list(a.candidates, b.candidates);
      });
  wire_roundtrip_check(MsgBoundary{list({1, 2, 3})},
                       [&](const MsgBoundary& a, const MsgBoundary& b) {
                         return same_list(a.boundary, b.boundary);
                       });
  wire_roundtrip_check(
      MsgTrialRate{~0ULL, 12345678901234ULL, true},
      [](const MsgTrialRate& a, const MsgTrialRate& b) {
        return a.trial_size == b.trial_size && a.pool_total == b.pool_total &&
               a.skip == b.skip;
      });
  wire_roundtrip_check(
      MsgQueryReply{false, 42, list({5, 6})},
      [&](const MsgQueryReply& a, const MsgQueryReply& b) {
        return a.alive == b.alive && a.cluster == b.cluster &&
               same_list(a.boundary, b.boundary);
      });
  wire_roundtrip_check(Found{3, false, 17, list({8})}, found_eq);
  wire_roundtrip_check(Found{kInvalidNode, true, kInvalidEdge, nullptr},
                       found_eq);
  wire_roundtrip_check(
      MsgCollectUp{std::make_shared<std::vector<Found>>(
          std::vector<Found>{{1, true, 2, list({3})}, {4, false, 5, nullptr}})},
      [&](const MsgCollectUp& a, const MsgCollectUp& b) {
        if ((a.found == nullptr) != (b.found == nullptr)) return false;
        if (a.found == nullptr) return true;
        if (a.found->size() != b.found->size()) return false;
        for (std::size_t i = 0; i < a.found->size(); ++i)
          if (!found_eq((*a.found)[i], (*b.found)[i])) return false;
        return true;
      });
  wire_roundtrip_check(
      MsgApply{std::make_shared<const std::vector<Found>>(
          std::vector<Found>{{7, true, 8, nullptr}})},
      [&](const MsgApply& a, const MsgApply& b) {
        return a.entries->size() == b.entries->size() &&
               found_eq((*a.entries)[0], (*b.entries)[0]);
      });
  wire_roundtrip_check(MsgCenterFlood{true},
                       [](const MsgCenterFlood& a, const MsgCenterFlood& b) {
                         return a.is_center == b.is_center;
                       });
  wire_roundtrip_check(
      MsgCenterReply{true, 99},
      [](const MsgCenterReply& a, const MsgCenterReply& b) {
        return a.is_center == b.is_center && a.cluster == b.cluster;
      });
  wire_roundtrip_check(CenterFound{11, 13}, center_eq);
  wire_roundtrip_check(
      MsgCenterUp{std::make_shared<std::vector<CenterFound>>(
          std::vector<CenterFound>{{1, 2}, {3, 4}})},
      [&](const MsgCenterUp& a, const MsgCenterUp& b) {
        if (a.found->size() != b.found->size()) return false;
        for (std::size_t i = 0; i < a.found->size(); ++i)
          if (!center_eq((*a.found)[i], (*b.found)[i])) return false;
        return true;
      });
  wire_roundtrip_check(
      MsgJoin{JoinDecision::Join, 21, 34},
      [](const MsgJoin& a, const MsgJoin& b) {
        return a.decision == b.decision && a.new_cluster == b.new_cluster &&
               a.attach_edge == b.attach_edge;
      });
  wire_roundtrip_check(MsgDeath{list({55, 89})},
                       [&](const MsgDeath& a, const MsgDeath& b) {
                         return same_list(a.boundary, b.boundary);
                       });
}

}  // namespace fl::core
