// SamplerConfig — the paper's parameters (k, h, c) plus reproduction knobs.
//
// Paper quantities (Section 3, with n = |V_0|):
//   δ   = 1/(2^{k+1} − 1)                     (size exponent)
//   ε   = 1/h                                 (message exponent slack)
//   p_j = n^{−2^j δ}                          (center probability, level j)
//   budget_j     = c  · n^{2^j δ}     · log n       (target |F_v|)
//   trial_size_j = c² · n^{2^j δ + ε} · log³ n      (samples per trial)
//   trials per level = 2h
//
// Two reproduction knobs deviate *transparently* from the paper:
//   * log_exp_budget / log_exp_trial scale the log-power. The paper's log³n
//     is an analysis artifact: at laptop-scale n it dwarfs the polynomial
//     part and hides the growth exponents the theorems predict. The
//     bench_profile() lowers the powers; the paper_faithful() profile keeps
//     them. Both are exercised by tests.
//   * force_light_completion patches the 1/poly(n) failure event (a node
//     finishing neither light nor heavy) by exhaustively querying its
//     leftover edges. Off by default — the benches *measure* the failure
//     rate instead of hiding it; the flag exists for downstream users who
//     need a certified spanner, and as ablation bench material.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "sim/congest.hpp"

namespace fl::core {

/// How the distributed sampler ends a phase (see distributed_sampler.hpp).
enum class BarrierMode : std::uint8_t {
  /// Resolve after the network's CONGEST config is known (including the
  /// FL_SIM_CONGEST env probe): EventDriven under an enforced budget,
  /// FixedSchedule in plain LOCAL mode — the mode that keeps LOCAL golden
  /// traces and round counts byte-stable while making any budget correct.
  Auto,
  /// The paper's fixed timetable: every phase runs for its provisioned
  /// PhaseSpec::start/length window (stretched by schedule_slack). Only
  /// correct when the slack covers the workload's worst-case deferral.
  FixedSchedule,
  /// Event-driven phase barriers: a phase ends on the first *silent* round
  /// — nothing delivered by the last merge and no message parked in a
  /// carry queue (sim::Network::round_silent). The sampler pays only the
  /// rounds the budget actually costs, at any FL_SIM_CONGEST value, with
  /// bit-identical spanner output and message counts.
  EventDriven,
};

struct SamplerConfig {
  unsigned k = 2;  ///< hierarchy depth; 1 <= k <= log log n
  unsigned h = 3;  ///< trial halving parameter; 1 <= h <= log n; ε = 1/h
  double c = 1.0;  ///< the paper's "sufficiently large constant"

  double log_exp_budget = 1.0;  ///< power of log n in budget_j
  double log_exp_trial = 3.0;   ///< power of log n in trial_size_j

  bool force_light_completion = false;  ///< patch the whp failure event
  bool peel_parallel_edges = true;      ///< ablation: key idea of Sec. 1.3

  /// CONGEST bandwidth budget for the distributed run's network (see
  /// sim/congest.hpp). nullopt = the network's own default (FL_SIM_CONGEST
  /// probe, else unlimited). The paper's timetable assumes LOCAL delivery;
  /// under a finite Defer budget the default BarrierMode::Auto switches to
  /// event-driven barriers so every session completes regardless of how far
  /// the budget stretches it.
  std::optional<sim::CongestConfig> congest;

  /// Phase-barrier mode (default Auto: event-driven iff the network ends
  /// up with an enforced CONGEST budget, fixed timetable otherwise).
  BarrierMode barriers = BarrierMode::Auto;

  /// Compatibility shim (>= 1; 1 = the paper's exact timetable): multiplies
  /// every phase window of the *fixed* Schedule. Before event-driven
  /// barriers this was how a finite Defer budget was survived — stretch
  /// every window by the worst-case ceil(words / budget) deferral. It is no
  /// longer load-bearing: under BarrierMode::Auto/EventDriven a budgeted
  /// run ignores the provisioned windows entirely (the value still feeds
  /// the provisioned-rounds baseline behind
  /// sim::Metrics::barrier_rounds_saved). Only meaningful with
  /// BarrierMode::FixedSchedule.
  unsigned schedule_slack = 1;

  std::uint64_t seed = 1;

  /// Paper-faithful constants (c = 2, log n and log³ n factors).
  static SamplerConfig paper_faithful(unsigned k, unsigned h,
                                      std::uint64_t seed);

  /// Scaled-down constants for exponent measurement at n <= 2^16.
  static SamplerConfig bench_profile(unsigned k, unsigned h,
                                     std::uint64_t seed);

  double delta() const;    ///< 1/(2^{k+1} − 1)
  double epsilon() const;  ///< 1/h

  /// 3^j as a double (j <= 40 or so).
  static double pow3(unsigned j);

  /// Stretch guarantee of Theorem 9: 2·3^k − 1.
  double stretch_bound() const;

  /// Per-level quantities; `n` is the *physical* node count n_0.
  std::size_t budget(double n, unsigned level) const;
  std::size_t trial_size(double n, unsigned level) const;
  double center_prob(double n, unsigned level) const;
  unsigned trials_per_level() const { return 2 * h; }

  /// Predicted |S| exponent: |S| = Õ(n^{1+δ}).
  double size_exponent() const { return 1.0 + delta(); }

  /// Predicted message exponent (Theorem 11): Õ(n^{1+δ+ε}).
  double message_exponent() const { return 1.0 + delta() + epsilon(); }

  /// Predicted round bound (Theorem 11): O(3^k · h).
  double round_bound_scale() const;

  /// Validate against a concrete n; throws on out-of-range parameters.
  void validate(std::size_t n) const;

  std::string describe() const;
};

}  // namespace fl::core
