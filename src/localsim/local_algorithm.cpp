#include "localsim/local_algorithm.hpp"

#include "graph/algorithms.hpp"
#include "util/assert.hpp"

namespace fl::localsim {

BallView make_ball(const graph::Graph& g, graph::NodeId center,
                   unsigned radius) {
  BallView ball;
  ball.g = &g;
  ball.center = center;
  ball.radius = radius;
  ball.dist = graph::bfs_distances_bounded(g, center, radius);
  return ball;
}

std::vector<std::uint64_t> run_reference(const graph::Graph& g,
                                         const LocalAlgorithm& alg) {
  const unsigned t = alg.radius(g);
  std::vector<std::uint64_t> out(g.num_nodes());
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v)
    out[v] = alg.compute(make_ball(g, v, t));
  return out;
}

}  // namespace fl::localsim
