#include "localsim/transformer.hpp"

#include <algorithm>
#include <cmath>

#include "core/distributed_sampler.hpp"
#include "graph/algorithms.hpp"
#include "localsim/tlocal_broadcast.hpp"
#include "util/assert.hpp"

namespace fl::localsim {

using graph::Graph;
using graph::kUnreachable;
using graph::NodeId;

namespace {

/// BFS from `center` bounded at `radius`, restricted to nodes whose mask
/// epoch matches — i.e. the subgraph induced by the collected origin set.
/// When the collected set covers B_G(center, radius) this equals the true
/// ball (shortest paths of length <= radius stay inside the ball); when
/// coverage is violated the computed outputs may differ from the reference,
/// which is exactly how a broken spanner manifests and what tests detect.
std::vector<std::uint32_t> restricted_bfs(const Graph& g, NodeId center,
                                          unsigned radius,
                                          const std::vector<unsigned>& mask,
                                          unsigned epoch) {
  std::vector<std::uint32_t> dist(g.num_nodes(), kUnreachable);
  if (mask[center] != epoch) return dist;
  std::vector<NodeId> frontier{center};
  dist[center] = 0;
  std::vector<NodeId> next;
  for (unsigned d = 0; d < radius && !frontier.empty(); ++d) {
    next.clear();
    for (const NodeId v : frontier) {
      for (const auto& inc : g.incident(v)) {
        if (mask[inc.to] != epoch || dist[inc.to] != kUnreachable) continue;
        dist[inc.to] = d + 1;
        next.push_back(inc.to);
      }
    }
    frontier.swap(next);
  }
  return dist;
}

/// Evaluate the algorithm at every node from its collected origin set.
std::vector<std::uint64_t> evaluate_from_collections(
    const Graph& g, const LocalAlgorithm& alg, unsigned t,
    const std::vector<std::vector<NodeId>>& reached) {
  std::vector<std::uint64_t> out(g.num_nodes());
  std::vector<unsigned> mask(g.num_nodes(), 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const unsigned epoch = v + 1;
    for (const NodeId u : reached[v]) mask[u] = epoch;
    BallView ball;
    ball.g = &g;
    ball.center = v;
    ball.radius = t;
    ball.dist = restricted_bfs(g, v, t, mask, epoch);
    out[v] = alg.compute(ball);
  }
  return out;
}

}  // namespace

ExecutionReport run_native(const Graph& g, const LocalAlgorithm& alg,
                           std::uint64_t seed,
                           std::optional<sim::CongestConfig> congest) {
  const unsigned t = alg.radius(g);
  const auto broadcast = run_tlocal_broadcast(g, all_edges(g), t, seed, congest);
  ExecutionReport rep;
  rep.outputs = evaluate_from_collections(g, alg, t, broadcast.reached);
  rep.rounds = broadcast.stats.rounds;
  rep.messages = broadcast.stats.messages;
  rep.deferrals = broadcast.metrics.deferrals_total;
  rep.broadcast_messages = broadcast.stats.messages;
  rep.broadcast_rounds = broadcast.stats.rounds;
  rep.spanner_edges = g.num_edges();
  return rep;
}

ExecutionReport run_over_spanner(const Graph& g, const LocalAlgorithm& alg,
                                 const std::vector<graph::EdgeId>& spanner,
                                 double alpha, std::uint64_t seed,
                                 std::optional<sim::CongestConfig> congest) {
  FL_REQUIRE(alpha >= 1.0, "stretch must be >= 1");
  const unsigned t = alg.radius(g);
  const auto radius = static_cast<unsigned>(
      std::ceil(alpha * static_cast<double>(t)));
  const auto broadcast = run_tlocal_broadcast(g, spanner, radius, seed, congest);
  ExecutionReport rep;
  rep.outputs = evaluate_from_collections(g, alg, t, broadcast.reached);
  rep.rounds = broadcast.stats.rounds;
  rep.messages = broadcast.stats.messages;
  rep.deferrals = broadcast.metrics.deferrals_total;
  rep.broadcast_messages = broadcast.stats.messages;
  rep.broadcast_rounds = broadcast.stats.rounds;
  rep.spanner_edges = spanner.size();
  rep.alpha = alpha;
  return rep;
}

ExecutionReport run_simulated(const Graph& g, const LocalAlgorithm& alg,
                              const core::SamplerConfig& sampler,
                              std::optional<sim::CongestConfig> congest) {
  const auto spanner_run = core::run_distributed_sampler(g, sampler);
  ExecutionReport rep = run_over_spanner(
      g, alg, spanner_run.edges, spanner_run.stretch_bound, sampler.seed,
      congest);
  rep.spanner_messages = spanner_run.stats.messages;
  rep.spanner_rounds = spanner_run.stats.rounds;
  rep.rounds += spanner_run.stats.rounds;
  rep.messages += spanner_run.stats.messages;
  return rep;
}

}  // namespace fl::localsim
