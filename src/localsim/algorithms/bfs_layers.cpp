#include "localsim/algorithms.hpp"

namespace fl::localsim {

std::uint64_t BfsLayers::compute(const BallView& ball) const {
  std::uint64_t best = static_cast<std::uint64_t>(t_) + 1;
  for (graph::NodeId u = 0; u < ball.g->num_nodes(); ++u) {
    if (!ball.contains(u) || u % modulus_ != 0) continue;
    best = std::min<std::uint64_t>(best, ball.dist[u]);
  }
  return best;
}

}  // namespace fl::localsim
