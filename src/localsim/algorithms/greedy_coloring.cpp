#include <algorithm>
#include <cmath>
#include <vector>

#include "localsim/algorithms.hpp"
#include "util/rng.hpp"

namespace fl::localsim {

using graph::NodeId;

namespace {

std::uint64_t priority(std::uint64_t seed, NodeId v, unsigned round) {
  return util::SplitMix64::combine(util::SplitMix64::combine(~seed, v),
                                   round * 2654435761u);
}

constexpr std::uint32_t kUncolored = 0xffffffffu;

}  // namespace

unsigned GreedyColoring::radius(const graph::Graph& g) const {
  if (rounds_ > 0) return rounds_;
  const double n = std::max<double>(g.num_nodes(), 2);
  return 6u * static_cast<unsigned>(std::ceil(std::log2(n)));
}

std::uint64_t GreedyColoring::compute(const BallView& ball) const {
  const graph::Graph& g = *ball.g;
  const unsigned t = ball.radius;

  std::vector<NodeId> members;
  for (NodeId u = 0; u < g.num_nodes(); ++u)
    if (ball.contains(u)) members.push_back(u);

  std::vector<std::uint32_t> color(g.num_nodes(), kUncolored);
  std::vector<bool> used;
  for (unsigned r = 0; r < t; ++r) {
    std::vector<NodeId> winners;
    for (const NodeId u : members) {
      if (color[u] != kUncolored) continue;
      const std::uint64_t mine = priority(seed_, u, r);
      bool wins = true;
      for (const auto& inc : g.incident(u)) {
        if (!ball.contains(inc.to) || color[inc.to] != kUncolored) continue;
        const std::uint64_t theirs = priority(seed_, inc.to, r);
        if (theirs > mine || (theirs == mine && inc.to > u)) {
          wins = false;
          break;
        }
      }
      if (wins) winners.push_back(u);
    }
    // Winners are an independent set among undecided nodes, so coloring
    // them simultaneously from their decided neighbourhoods is race-free.
    for (const NodeId u : winners) {
      used.assign(g.degree(u) + 2, false);
      for (const auto& inc : g.incident(u)) {
        if (!ball.contains(inc.to)) continue;
        const std::uint32_t c = color[inc.to];
        if (c != kUncolored && c < used.size()) used[c] = true;
      }
      std::uint32_t c = 0;
      while (used[c]) ++c;
      color[u] = c;
    }
  }
  return color[ball.center] == kUncolored
             ? 0
             : static_cast<std::uint64_t>(color[ball.center]) + 1;
}

}  // namespace fl::localsim
