#include <algorithm>
#include <cmath>
#include <vector>

#include "localsim/algorithms.hpp"
#include "util/rng.hpp"

namespace fl::localsim {

using graph::EdgeId;
using graph::NodeId;

namespace {

/// Per-(edge, round) priority; deterministic function of the seed so the
/// algorithm is a ball function (edge ids are known to both endpoints —
/// exactly the paper's model assumption).
std::uint64_t priority(std::uint64_t seed, EdgeId e, unsigned round) {
  return util::SplitMix64::combine(
      util::SplitMix64::combine(seed ^ 0xabcdef12345ULL, e), round);
}

}  // namespace

unsigned MaximalMatching::radius(const graph::Graph& g) const {
  if (rounds_ > 0) return rounds_;
  const double n = std::max<double>(g.num_nodes(), 2);
  return 4u * static_cast<unsigned>(std::ceil(std::log2(n)));
}

std::uint64_t MaximalMatching::compute(const BallView& ball) const {
  // Simulate on the induced ball subgraph; the usual LOCAL argument keeps
  // the center's state exact for all `radius` rounds.
  const graph::Graph& g = *ball.g;
  const unsigned t = ball.radius;

  std::vector<NodeId> members;
  for (NodeId u = 0; u < g.num_nodes(); ++u)
    if (ball.contains(u)) members.push_back(u);

  std::vector<NodeId> partner(g.num_nodes(), graph::kInvalidNode);
  for (unsigned r = 0; r < t; ++r) {
    // An edge joins the matching iff both endpoints are unmatched and its
    // priority beats every competing incident edge (with two unmatched
    // endpoints) at both ends. Winners are vertex-disjoint by construction.
    std::vector<std::pair<NodeId, NodeId>> winners;
    for (const NodeId u : members) {
      if (partner[u] != graph::kInvalidNode) continue;
      for (const auto& inc : g.incident(u)) {
        const NodeId v = inc.to;
        if (v < u) continue;  // consider each edge once
        if (!ball.contains(v) || partner[v] != graph::kInvalidNode) continue;
        const std::uint64_t mine = priority(seed_, inc.edge, r);
        bool wins = true;
        auto beats_competitors = [&](NodeId endpoint) {
          for (const auto& jnc : g.incident(endpoint)) {
            if (jnc.edge == inc.edge) continue;
            if (!ball.contains(jnc.to) ||
                partner[jnc.to] != graph::kInvalidNode)
              continue;
            const std::uint64_t theirs = priority(seed_, jnc.edge, r);
            if (theirs > mine || (theirs == mine && jnc.edge > inc.edge))
              return false;
          }
          return true;
        };
        if (!beats_competitors(u) || !beats_competitors(v)) wins = false;
        if (wins) winners.emplace_back(u, v);
      }
    }
    for (const auto& [u, v] : winners) {
      partner[u] = v;
      partner[v] = u;
    }
  }
  return partner[ball.center] == graph::kInvalidNode
             ? 0
             : static_cast<std::uint64_t>(partner[ball.center]) + 1;
}

}  // namespace fl::localsim
