#include "localsim/algorithms.hpp"

namespace fl::localsim {

std::uint64_t LeaderElection::compute(const BallView& ball) const {
  graph::NodeId best = ball.center;
  for (graph::NodeId u = 0; u < ball.g->num_nodes(); ++u)
    if (ball.contains(u) && u > best) best = u;
  return best;
}

}  // namespace fl::localsim
