#include "localsim/algorithms.hpp"

namespace fl::localsim {

std::uint64_t LocalMin::compute(const BallView& ball) const {
  for (graph::NodeId u = 0; u < ball.g->num_nodes(); ++u)
    if (ball.contains(u) && u < ball.center) return 0;
  return 1;
}

}  // namespace fl::localsim
