#include <algorithm>
#include <cmath>
#include <vector>

#include "localsim/algorithms.hpp"
#include "util/rng.hpp"

namespace fl::localsim {

using graph::NodeId;

namespace {

/// Per-(node, round) priority; ties are impossible in practice (64-bit) but
/// broken by id for full determinism anyway.
std::uint64_t priority(std::uint64_t seed, NodeId v, unsigned round) {
  return util::SplitMix64::combine(util::SplitMix64::combine(seed, v), round);
}

enum class St : std::uint8_t { Undecided, In, Out };

}  // namespace

unsigned LubyMis::radius(const graph::Graph& g) const {
  if (rounds_ > 0) return rounds_;
  const double n = std::max<double>(g.num_nodes(), 2);
  return 4u * static_cast<unsigned>(std::ceil(std::log2(n)));
}

std::uint64_t LubyMis::compute(const BallView& ball) const {
  // Simulate Luby on the induced ball subgraph. Boundary nodes miss their
  // outside neighbours, so their states drift — but a node at distance d
  // from the center is correct for the first (radius − d) rounds, hence the
  // center is exact for all `radius` rounds (the standard LOCAL argument).
  const graph::Graph& g = *ball.g;
  const unsigned t = ball.radius;

  std::vector<NodeId> members;
  for (NodeId u = 0; u < g.num_nodes(); ++u)
    if (ball.contains(u)) members.push_back(u);

  std::vector<St> state(g.num_nodes(), St::Undecided);
  for (unsigned r = 0; r < t; ++r) {
    // Joiners: undecided nodes beating every undecided ball-neighbour.
    std::vector<NodeId> joiners;
    for (const NodeId u : members) {
      if (state[u] != St::Undecided) continue;
      const std::uint64_t mine = priority(seed_, u, r);
      bool wins = true;
      for (const auto& inc : g.incident(u)) {
        if (!ball.contains(inc.to) || state[inc.to] != St::Undecided)
          continue;
        const std::uint64_t theirs = priority(seed_, inc.to, r);
        if (theirs > mine || (theirs == mine && inc.to > u)) {
          wins = false;
          break;
        }
      }
      if (wins) joiners.push_back(u);
    }
    if (joiners.empty()) continue;
    for (const NodeId u : joiners) state[u] = St::In;
    for (const NodeId u : joiners)
      for (const auto& inc : g.incident(u))
        if (ball.contains(inc.to) && state[inc.to] == St::Undecided)
          state[inc.to] = St::Out;
  }

  switch (state[ball.center]) {
    case St::In: return 1;
    case St::Out: return 0;
    case St::Undecided: return kUndecided;
  }
  return kUndecided;
}

}  // namespace fl::localsim
