// The t-round LOCAL algorithm abstraction used by the message-reduction
// scheme (paper Section 6).
//
// In the LOCAL model the output of a t-round algorithm at node v is a
// function of v's radius-t ball: the IDs, initial states and incident edge
// sets of all nodes within distance t (the paper's B_{G,t}(v)). We
// therefore represent an algorithm by that function directly:
//
//     output(v) = compute(ball of radius t around v)
//
// Native execution evaluates it per node (the reference semantics and also
// the local computation every simulation variant ends with); the metered
// executions differ only in *how the ball's information reaches v*:
//   * run_native_messaging(): t rounds of bundled flooding over G —
//     Θ(t·m) messages, the behaviour the paper improves on;
//   * transformer.hpp: Sampler spanner + αt-radius flooding over H —
//     Õ(t·n^{1+ε}) messages (Theorem 3).
//
// Randomized LOCAL algorithms fit by keying their coins on (seed, node,
// round): the coins become part of each node's initial state, so outputs
// remain ball-computable and the native/simulated equality is exact.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace fl::localsim {

/// The radius-t ball of `center`, as collected by a t-local broadcast.
struct BallView {
  const graph::Graph* g = nullptr;
  graph::NodeId center = graph::kInvalidNode;
  unsigned radius = 0;
  /// dist[u] = dist_G(center, u) for u in the ball, kUnreachable outside.
  /// An algorithm must only read nodes/edges whose endpoints are both in
  /// the ball — the harness verifies collected coverage, not the reads.
  std::vector<std::uint32_t> dist;

  bool contains(graph::NodeId u) const {
    return dist[u] != std::numeric_limits<std::uint32_t>::max();
  }
};

/// A t-round LOCAL algorithm with per-node word outputs.
class LocalAlgorithm {
 public:
  virtual ~LocalAlgorithm() = default;

  virtual std::string name() const = 0;

  /// The round complexity t on graph `g` (may depend on n).
  virtual unsigned radius(const graph::Graph& g) const = 0;

  /// The output of ball.center given exactly its radius-t ball.
  virtual std::uint64_t compute(const BallView& ball) const = 0;
};

/// Reference semantics: evaluate compute() on the true ball of every node
/// (no messages, no metering). All execution paths must agree with this.
std::vector<std::uint64_t> run_reference(const graph::Graph& g,
                                         const LocalAlgorithm& alg);

/// Build the BallView of one node (exposed for algorithm unit tests).
BallView make_ball(const graph::Graph& g, graph::NodeId center,
                   unsigned radius);

}  // namespace fl::localsim
