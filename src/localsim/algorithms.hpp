// Concrete t-round LOCAL algorithms used as message-reduction payloads.
//
// These are the workloads the paper's introduction motivates: classic
// symmetry-breaking and aggregation tasks whose native executions cost
// Θ(t·m) messages. Each is expressed in ball-function form (see
// local_algorithm.hpp); randomized ones key their coins on (seed, node,
// round) so they stay deterministic functions of the ball.
#pragma once

#include <cstdint>

#include "localsim/local_algorithm.hpp"

namespace fl::localsim {

/// Luby's randomized MIS, truncated at `rounds` (default 0 = 4·ceil(log2 n),
/// after which unfinished nodes are whp absent). Output: 1 in MIS, 0 out
/// (dominated), 2 still undecided.
class LubyMis final : public LocalAlgorithm {
 public:
  explicit LubyMis(std::uint64_t seed, unsigned rounds = 0)
      : seed_(seed), rounds_(rounds) {}
  std::string name() const override { return "luby_mis"; }
  unsigned radius(const graph::Graph& g) const override;
  std::uint64_t compute(const BallView& ball) const override;

  static constexpr std::uint64_t kUndecided = 2;

 private:
  std::uint64_t seed_;
  unsigned rounds_;
};

/// Randomized greedy coloring, truncated at `rounds`: each round, every
/// undecided node that holds the max priority among undecided neighbours
/// takes the smallest color unused by its decided neighbours. Output:
/// color + 1, or 0 if still undecided after the budget.
class GreedyColoring final : public LocalAlgorithm {
 public:
  explicit GreedyColoring(std::uint64_t seed, unsigned rounds = 0)
      : seed_(seed), rounds_(rounds) {}
  std::string name() const override { return "greedy_coloring"; }
  unsigned radius(const graph::Graph& g) const override;
  std::uint64_t compute(const BallView& ball) const override;

 private:
  std::uint64_t seed_;
  unsigned rounds_;
};

/// Truncated BFS layering: output = min distance to a source node (ids
/// divisible by `modulus`), capped at t+1 when no source is within reach.
class BfsLayers final : public LocalAlgorithm {
 public:
  explicit BfsLayers(unsigned t, graph::NodeId modulus = 17)
      : t_(t), modulus_(modulus) {}
  std::string name() const override { return "bfs_layers"; }
  unsigned radius(const graph::Graph&) const override { return t_; }
  std::uint64_t compute(const BallView& ball) const override;

 private:
  unsigned t_;
  graph::NodeId modulus_;
};

/// t-hop leader election: output = max node id within distance t.
class LeaderElection final : public LocalAlgorithm {
 public:
  explicit LeaderElection(unsigned t) : t_(t) {}
  std::string name() const override { return "leader_election"; }
  unsigned radius(const graph::Graph&) const override { return t_; }
  std::uint64_t compute(const BallView& ball) const override;

 private:
  unsigned t_;
};

/// Local-minimum detection: output = 1 iff the center's id is strictly
/// smaller than every other id within distance t.
class LocalMin final : public LocalAlgorithm {
 public:
  explicit LocalMin(unsigned t) : t_(t) {}
  std::string name() const override { return "local_min"; }
  unsigned radius(const graph::Graph&) const override { return t_; }
  std::uint64_t compute(const BallView& ball) const override;

 private:
  unsigned t_;
};

/// Randomized greedy maximal matching (Israeli–Itai style), truncated at
/// `rounds` (default 0 = 4·ceil(log2 n)). Each round the edges that hold a
/// locally maximal random priority among edges with two unmatched endpoints
/// join the matching. Output: matched partner id + 1, or 0 if unmatched.
class MaximalMatching final : public LocalAlgorithm {
 public:
  explicit MaximalMatching(std::uint64_t seed, unsigned rounds = 0)
      : seed_(seed), rounds_(rounds) {}
  std::string name() const override { return "maximal_matching"; }
  unsigned radius(const graph::Graph& g) const override;
  std::uint64_t compute(const BallView& ball) const override;

 private:
  std::uint64_t seed_;
  unsigned rounds_;
};

}  // namespace fl::localsim
