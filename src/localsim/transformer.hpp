// The message-reduction transformer (paper Theorem 3, first branch).
//
// Given any t-round LOCAL algorithm A, produce an execution that computes
// the exact same outputs with
//     O(3^γ t + 6^γ) rounds and Õ(t·n^{1+2/(2^{γ+1}−1)}) messages whp:
//   1. run the distributed Sampler with k = γ, h = 2^{γ+1}−1 — an α-spanner
//      H, α = 2·3^γ − 1, costing O(6^γ)-ish rounds and Õ(n^{1+...}) msgs;
//   2. αt-local broadcast over H (Lemma 12): every node learns
//      B_H(v, αt) ⊇ B_G(v, t);
//   3. every node locally evaluates A on its collected ball — free in the
//      LOCAL model.
// The native execution for comparison floods over G for t rounds: Θ(t·m)
// messages. Outputs of both paths are verified equal to run_reference().
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/config.hpp"
#include "localsim/local_algorithm.hpp"
#include "sim/congest.hpp"
#include "sim/metrics.hpp"

namespace fl::localsim {

struct ExecutionReport {
  std::vector<std::uint64_t> outputs;
  std::size_t rounds = 0;
  std::uint64_t messages = 0;
  std::uint64_t deferrals = 0;  ///< congest-mode message-round delays

  // Simulated path only: stage breakdown.
  std::uint64_t spanner_messages = 0;
  std::size_t spanner_rounds = 0;
  std::uint64_t broadcast_messages = 0;
  std::size_t broadcast_rounds = 0;
  std::size_t spanner_edges = 0;
  double alpha = 1.0;  ///< spanner stretch used for the broadcast radius
};

/// Native LOCAL execution: t rounds of bundled flooding over G, then local
/// evaluation. Θ(t·m) messages — the baseline being improved. `congest`
/// overrides the broadcast network's bandwidth budget (default: the
/// FL_SIM_CONGEST probe, else unlimited); a finite Defer budget stretches
/// the reported rounds without changing the outputs.
ExecutionReport run_native(const graph::Graph& g, const LocalAlgorithm& alg,
                           std::uint64_t seed,
                           std::optional<sim::CongestConfig> congest =
                               std::nullopt);

/// Message-reduced execution via the distributed Sampler spanner.
/// `sampler` supplies (k=γ, h, constants); the broadcast radius is
/// stretch_bound() · t. `congest` applies to the broadcast stage (the
/// sampler stage takes its budget from `sampler.congest`, see config.hpp).
ExecutionReport run_simulated(const graph::Graph& g, const LocalAlgorithm& alg,
                              const core::SamplerConfig& sampler,
                              std::optional<sim::CongestConfig> congest =
                                  std::nullopt);

/// Like run_simulated but over a caller-provided spanner (used by the
/// two-stage scheme of Theorem 3's second branch, where stage 1's output
/// spanner simulates stage 2's construction).
ExecutionReport run_over_spanner(const graph::Graph& g,
                                 const LocalAlgorithm& alg,
                                 const std::vector<graph::EdgeId>& spanner,
                                 double alpha, std::uint64_t seed,
                                 std::optional<sim::CongestConfig> congest =
                                     std::nullopt);

}  // namespace fl::localsim
