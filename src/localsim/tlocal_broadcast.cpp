#include "localsim/tlocal_broadcast.hpp"

#include <algorithm>
#include <memory>

#include "sim/network.hpp"
#include "util/assert.hpp"

namespace fl::localsim {

using graph::EdgeId;
using graph::Graph;
using graph::NodeId;

namespace {

struct MsgOrigins {
  std::shared_ptr<const std::vector<NodeId>> origins;
};

// One MsgOrigins per subset edge per round is the transformer's hot path;
// the shared list head must stay in the payload's inline buffer.
static_assert(sim::Payload::stores_inline<MsgOrigins>);

/// Per-node flooding program over a fixed incident edge subset. Each round
/// a node bundles everything it learned last round into one message per
/// subset edge — the LOCAL-model accounting of Lemma 12.
class FloodNode final : public sim::NodeProgram {
 public:
  FloodNode(NodeId self, std::shared_ptr<const std::vector<bool>> edge_in,
            unsigned rounds, NodeId n)
      : self_(self), edge_in_(std::move(edge_in)), rounds_(rounds), n_(n) {}

  std::vector<NodeId> known_sorted() const {
    std::vector<NodeId> out(known_.begin(), known_.end());
    std::sort(out.begin(), out.end());
    return out;
  }

  void on_start(sim::Context& ctx) override {
    known_.push_back(self_);
    seen_.assign(n_, false);
    seen_[self_] = true;
    if (rounds_ == 0) {
      finished_ = true;
      return;
    }
    auto batch = std::make_shared<const std::vector<NodeId>>(known_);
    send_over_subset(ctx, batch);
  }

  void on_round(sim::Context& ctx, std::span<const sim::Message> inbox) override {
    if (finished_) return;
    std::vector<NodeId> fresh;
    for (const auto& m : inbox) {
      const auto& o = sim::payload_as<MsgOrigins>(m);
      for (const NodeId id : *o.origins) {
        if (!seen_[id]) {
          seen_[id] = true;
          fresh.push_back(id);
          known_.push_back(id);
        }
      }
    }
    ++send_round_;
    if (send_round_ >= rounds_) {
      finished_ = true;
      return;
    }
    if (!fresh.empty()) {
      auto batch =
          std::make_shared<const std::vector<NodeId>>(std::move(fresh));
      send_over_subset(ctx, batch);
    }
  }

  bool done() const override { return finished_; }

  sim::Knowledge required_knowledge() const override {
    return sim::Knowledge::EdgeIds;
  }

 private:
  void send_over_subset(sim::Context& ctx,
                        const std::shared_ptr<const std::vector<NodeId>>& batch) {
    for (const EdgeId e : ctx.incident_edges()) {
      if (!(*edge_in_)[e]) continue;
      ctx.send(e, MsgOrigins{batch},
               static_cast<std::uint32_t>(batch->size()));
    }
  }

  NodeId self_;
  std::shared_ptr<const std::vector<bool>> edge_in_;
  unsigned rounds_;
  NodeId n_;
  unsigned send_round_ = 0;
  bool finished_ = false;
  std::vector<NodeId> known_;
  std::vector<bool> seen_;
};

}  // namespace

std::vector<EdgeId> all_edges(const Graph& g) {
  std::vector<EdgeId> out(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) out[e] = e;
  return out;
}

BroadcastRun run_tlocal_broadcast(const Graph& g,
                                  const std::vector<EdgeId>& edges,
                                  unsigned rounds, std::uint64_t seed) {
  auto edge_in = std::make_shared<std::vector<bool>>(g.num_edges(), false);
  for (const EdgeId e : edges) {
    FL_REQUIRE(e < g.num_edges(), "broadcast edge id out of range");
    (*edge_in)[e] = true;
  }
  sim::Network net(g, sim::Knowledge::EdgeIds, seed);
  net.install([&](NodeId v) {
    return std::make_unique<FloodNode>(v, edge_in, rounds, g.num_nodes());
  });

  BroadcastRun run;
  run.stats = net.run(static_cast<std::size_t>(rounds) + 4);
  FL_REQUIRE(run.stats.terminated, "broadcast did not terminate");
  run.metrics = net.metrics();
  run.reached.reserve(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    run.reached.push_back(net.program_as<FloodNode>(v).known_sorted());
  return run;
}

}  // namespace fl::localsim
