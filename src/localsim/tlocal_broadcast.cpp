#include "localsim/tlocal_broadcast.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "sim/network.hpp"
#include "sim/wire_check.hpp"
#include "util/assert.hpp"

namespace fl::localsim {

using graph::EdgeId;
using graph::Graph;
using graph::NodeId;

namespace {

struct MsgOrigins {
  std::shared_ptr<const std::vector<NodeId>> origins;
  /// How many further hops this bundle's origins may still travel. In
  /// LOCAL mode a bundle arriving in round r always carries R - r (rounds
  /// and hops coincide), so the field is redundant there; under a CONGEST
  /// budget it is what keeps the flood hop-limited when delivery lags.
  std::uint32_t hops_left = 0;
};

// The bundle travels field-by-field on the wire: the origin list ships
// its contents (a cross-process receiver owns a fresh copy), hops_left
// rides as an explicit little-endian u32.
FL_WIRE_FIELDS(MsgOrigins, origins, hops_left);

// One MsgOrigins per subset edge per round is the transformer's hot path;
// the shared list head must stay in the payload's inline buffer, and the
// bundle must be wire-encodable for the TCP shard backend.
static_assert(sim::Payload::stores_inline<MsgOrigins>);
static_assert(sim::Payload::wire_encodable<MsgOrigins>);

/// Per-node flooding program over a fixed incident edge subset. Each round
/// a node bundles everything it learned last round into one message per
/// subset edge — the LOCAL-model accounting of Lemma 12. Forwarding is
/// governed by per-origin hop budgets, which equals the seed's
/// round-counter cutoff in LOCAL mode (first arrival is the BFS-shortest
/// path, so it always carries the maximal budget) but stays correct when a
/// CONGEST budget delays bundles: a copy arriving later with a *larger*
/// remaining budget is re-forwarded, so coverage is exactly B_{H,R}(v)
/// under any delivery schedule.
class FloodNode final : public sim::NodeProgram {
 public:
  FloodNode(NodeId self, std::shared_ptr<const std::vector<bool>> edge_in,
            unsigned rounds, NodeId n, bool dedup_reforward)
      : self_(self), edge_in_(std::move(edge_in)), rounds_(rounds), n_(n),
        dedup_reforward_(dedup_reforward) {}

  std::vector<NodeId> known_sorted() const {
    std::vector<NodeId> out(known_.begin(), known_.end());
    std::sort(out.begin(), out.end());
    return out;
  }

  void on_start(sim::Context& ctx) override {
    known_.push_back(self_);
    best_hops_.assign(n_, -1);
    best_hops_[self_] = static_cast<std::int32_t>(rounds_);
    if (rounds_ == 0) {
      finished_ = true;
      return;
    }
    auto batch = std::make_shared<const std::vector<NodeId>>(known_);
    send_over_subset(ctx, batch, rounds_ - 1);
  }

  void on_round(sim::Context& ctx, sim::InboxView inbox) override {
    // Record and regroup everything heard — even after the local send
    // schedule ended, because under a finite bandwidth budget bundles
    // straggle in late and must still be learned and forwarded. Groups
    // live in a flat vector keyed by (remaining budget, skipped edge): in
    // LOCAL mode every arrival of a round carries the same hop budget and
    // no skip (exactly one group, found without a tree in the
    // transformer's hot path), and under a budget the handful of distinct
    // keys keeps the linear scan trivial.
    //
    // The skip key is the re-forward dedup: when an origin arrives as an
    // *improvement* (already known, larger remaining budget — which only
    // happens when a binding budget delayed the shorter path), the sender
    // of that bundle provably holds the origin with budget >= hops + 1, so
    // shipping it back over the arrival edge is pure waste. First arrivals
    // keep the full subset fan-out: skipping their arrival edge too would
    // change LOCAL-mode words, and every golden trace with it.
    struct Group {
      std::uint32_t hops;
      EdgeId skip;
      std::vector<NodeId> ids;
    };
    std::vector<Group> fresh;
    auto bucket = [&](std::uint32_t h, EdgeId skip) -> std::vector<NodeId>& {
      for (auto& grp : fresh)
        if (grp.hops == h && grp.skip == skip) return grp.ids;
      return fresh.emplace_back(Group{h, skip, {}}).ids;
    };
    for (const auto& m : inbox) {
      const auto& o = sim::payload_as<MsgOrigins>(m);
      const auto hops = static_cast<std::int32_t>(o.hops_left);
      for (const NodeId id : *o.origins) {
        if (hops <= best_hops_[id]) continue;
        const bool improvement = best_hops_[id] >= 0;
        if (!improvement) known_.push_back(id);
        best_hops_[id] = hops;
        if (hops >= 1)
          bucket(static_cast<std::uint32_t>(hops - 1),
                 improvement && dedup_reforward_ ? m.edge()
                                                 : graph::kInvalidEdge)
              .push_back(id);
      }
    }
    // The done-state schedule is untouched by congestion: after `rounds_`
    // steps this node's own sending duty is over (hop budgets gate any
    // residual forwarding), which keeps LOCAL-mode termination — and every
    // pinned golden trace — bit-identical to the seed behaviour.
    if (!finished_) {
      ++send_round_;
      if (send_round_ >= rounds_) finished_ = true;
    }
    // Largest remaining budget first, ties broken by skipped-edge id — a
    // fixed, lane-independent order ((hops, skip) keys are unique, so the
    // sort is deterministic).
    std::sort(fresh.begin(), fresh.end(), [](const Group& a, const Group& b) {
      return a.hops != b.hops ? a.hops > b.hops : a.skip < b.skip;
    });
    for (auto& grp : fresh) {
      auto batch =
          std::make_shared<const std::vector<NodeId>>(std::move(grp.ids));
      send_over_subset(ctx, batch, grp.hops, grp.skip);
    }
  }

  bool done() const override { return finished_; }

  sim::Knowledge required_knowledge() const override {
    return sim::Knowledge::EdgeIds;
  }

 private:
  void send_over_subset(sim::Context& ctx,
                        const std::shared_ptr<const std::vector<NodeId>>& batch,
                        std::uint32_t hops_left,
                        EdgeId skip = graph::kInvalidEdge) {
    for (const EdgeId e : ctx.incident_edges()) {
      if (e == skip || !(*edge_in_)[e]) continue;
      ctx.send(e, MsgOrigins{batch, hops_left},
               static_cast<std::uint32_t>(batch->size()));
    }
  }

  NodeId self_;
  std::shared_ptr<const std::vector<bool>> edge_in_;
  unsigned rounds_;
  NodeId n_;
  bool dedup_reforward_;
  unsigned send_round_ = 0;
  bool finished_ = false;
  std::vector<NodeId> known_;
  // best_hops_[u] = largest remaining hop budget this node has seen for
  // origin u (-1 = never heard). In LOCAL mode it only ever improves once.
  std::vector<std::int32_t> best_hops_;
};

}  // namespace

std::vector<EdgeId> all_edges(const Graph& g) {
  std::vector<EdgeId> out(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) out[e] = e;
  return out;
}

BroadcastRun run_tlocal_broadcast(const Graph& g,
                                  const std::vector<EdgeId>& edges,
                                  unsigned rounds, std::uint64_t seed,
                                  std::optional<sim::CongestConfig> congest,
                                  bool dedup_reforward) {
  auto edge_in = std::make_shared<std::vector<bool>>(g.num_edges(), false);
  for (const EdgeId e : edges) {
    FL_REQUIRE(e < g.num_edges(), "broadcast edge id out of range");
    (*edge_in)[e] = true;
  }
  sim::Network net(g, sim::Knowledge::EdgeIds, seed);
  // No override: keep the constructor's default (the FL_SIM_CONGEST probe).
  if (congest.has_value()) net.set_congest(*congest);
  net.install([&](NodeId v) {
    return std::make_unique<FloodNode>(v, edge_in, rounds, g.num_nodes(),
                                       dedup_reforward);
  });

  BroadcastRun run;
  // Event-driven drain: delivery rounds are uncapped (a budget stretches
  // the flood by whatever it actually costs), and the hop-budgeted flood
  // never idles while alive, so the stall cap only covers framing rounds.
  const std::size_t stall_cap = static_cast<std::size_t>(rounds) + 4;
  {
    // Named protocol span on the engine track (no-op when tracing is off)
    // so a trace of a composed run shows which protocol owns which rounds.
    const obs::ProtocolScope span(net.tracer(), "tlocal_broadcast");
    run.stats = net.run_until_drained(stall_cap);
  }
  FL_REQUIRE(run.stats.terminated, "broadcast did not terminate");
  run.metrics = net.metrics();
  run.reached.reserve(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    run.reached.push_back(net.program_as<FloodNode>(v).known_sorted());
  return run;
}

void tlocal_broadcast_wire_selftest() {
  const auto eq = [](const MsgOrigins& a, const MsgOrigins& b) {
    return a.hops_left == b.hops_left &&
           (a.origins == nullptr) == (b.origins == nullptr) &&
           (a.origins == nullptr || *a.origins == *b.origins);
  };
  sim::wire_roundtrip_check(
      MsgOrigins{std::make_shared<const std::vector<NodeId>>(
                     std::vector<NodeId>{0, 4, 2}),
                 3},
      eq);
  sim::wire_roundtrip_check(MsgOrigins{nullptr, 0}, eq);
}

}  // namespace fl::localsim
