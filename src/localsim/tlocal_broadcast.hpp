// t-local broadcast (paper Section 6, Lemma 12).
//
// Task: every node v must deliver its message M_v to all nodes of
// B_{G,t}(v). Implementation: bundled flooding for R rounds over a subgraph
// H = (V, S): each round, every node packs all origins it learned last
// round into ONE message per incident H-edge. Because LOCAL does not bound
// message size, the message count is at most 2|S| per round, i.e.
// O(R · |S|) total — with H an α-spanner and R = αt this is the
// Õ(t · n^{1+ε}) of Lemma 12; with H = G and R = t it is the Θ(t·m)
// baseline.
//
// Under an enforced CONGEST budget (sim/congest.hpp) the same protocol
// runs with per-hop budgets instead of the round counter: every origin
// travels at most R hops, bundles are grouped by remaining hop budget, and
// stragglers keep being recorded and re-forwarded after the local send
// schedule ends. Coverage is therefore still exactly B_{H,R}(v) — the
// budget stretches RunStats.rounds (multi-word bundles crawl through
// B-word edges) without shrinking what anyone learns.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/graph.hpp"
#include "sim/congest.hpp"
#include "sim/metrics.hpp"
#include "sim/network.hpp"

namespace fl::localsim {

struct BroadcastRun {
  /// reached[v] = origins known to v after the run (ascending node ids).
  std::vector<std::vector<graph::NodeId>> reached;
  sim::RunStats stats;
  sim::Metrics metrics;
};

/// Flood origin ids for `rounds` rounds over the subgraph given by `edges`
/// (pass all edge ids for G itself). Every node is an origin. `congest`
/// overrides the network's bandwidth budget (default: the FL_SIM_CONGEST
/// environment probe, else unlimited); with a finite Defer budget the run
/// takes more rounds but reaches the same sets.
///
/// `dedup_reforward` controls the budget-improvement optimisation: a batch
/// re-forwarded because a binding budget delivered a better hop count is
/// not sent back over its arrival edge (the sender provably already holds
/// those origins with a larger budget). Improvements never happen in LOCAL
/// mode or under a non-binding budget — first arrival takes the BFS
/// shortest path, so it already carries the maximal budget — hence LOCAL
/// words, traces and reached sets are identical in both modes; under a
/// binding budget the reached sets stay the same while words_total drops.
/// The opt-out exists for A/B accounting, not for production use.
BroadcastRun run_tlocal_broadcast(
    const graph::Graph& g, const std::vector<graph::EdgeId>& edges,
    unsigned rounds, std::uint64_t seed,
    std::optional<sim::CongestConfig> congest = std::nullopt,
    bool dedup_reforward = true);

/// Convenience: all edges of g (the native Θ(t·m) variant).
std::vector<graph::EdgeId> all_edges(const graph::Graph& g);

/// Wire round-trip self-check for this protocol's payload structs (they
/// live in the .cpp's anonymous namespace; tests call this hook).
void tlocal_broadcast_wire_selftest();

}  // namespace fl::localsim
