// t-local broadcast (paper Section 6, Lemma 12).
//
// Task: every node v must deliver its message M_v to all nodes of
// B_{G,t}(v). Implementation: bundled flooding for R rounds over a subgraph
// H = (V, S): each round, every node packs all origins it learned last
// round into ONE message per incident H-edge. Because LOCAL does not bound
// message size, the message count is at most 2|S| per round, i.e.
// O(R · |S|) total — with H an α-spanner and R = αt this is the
// Õ(t · n^{1+ε}) of Lemma 12; with H = G and R = t it is the Θ(t·m)
// baseline.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "sim/metrics.hpp"
#include "sim/network.hpp"

namespace fl::localsim {

struct BroadcastRun {
  /// reached[v] = origins known to v after the run (ascending node ids).
  std::vector<std::vector<graph::NodeId>> reached;
  sim::RunStats stats;
  sim::Metrics metrics;
};

/// Flood origin ids for `rounds` rounds over the subgraph given by `edges`
/// (pass all edge ids for G itself). Every node is an origin.
BroadcastRun run_tlocal_broadcast(
    const graph::Graph& g, const std::vector<graph::EdgeId>& edges,
    unsigned rounds, std::uint64_t seed);

/// Convenience: all edges of g (the native Θ(t·m) variant).
std::vector<graph::EdgeId> all_edges(const graph::Graph& g);

}  // namespace fl::localsim
