// Aligned ASCII tables and CSV output for the benchmark harness.
//
// Every experiment binary prints a table whose rows mirror the paper's
// predicted-vs-measured quantities; the same table can be dumped as CSV for
// downstream plotting. Cells are stored as strings so heterogeneous rows
// (counts, ratios, fitted exponents) coexist.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace fl::util {

class Table {
 public:
  /// Construct with column headers.
  explicit Table(std::vector<std::string> headers);

  /// Append a row; must match the header arity.
  void add_row(std::vector<std::string> cells);

  /// Convenience: build a row from streamable values.
  template <typename... Ts>
  void add(const Ts&... vals) {
    add_row({to_cell(vals)...});
  }

  std::size_t rows() const { return rows_.size(); }
  std::size_t cols() const { return headers_.size(); }

  /// Render with column alignment, header underline and optional title.
  void print(std::ostream& os, const std::string& title = "") const;

  /// RFC-4180-ish CSV (no quoting needed for our numeric cells).
  void print_csv(std::ostream& os) const;

  /// One JSON object per table: {"table": name, "columns": [...],
  /// "rows": [{column: value, ...}, ...]}. Numeric-looking cells are
  /// emitted as JSON numbers, everything else as strings — the format the
  /// per-PR BENCH_*.json trajectory snapshots consume.
  void print_json(std::ostream& os, const std::string& name) const;

  static std::string to_cell(const std::string& s) { return s; }
  static std::string to_cell(const char* s) { return s; }
  static std::string to_cell(double v);
  static std::string to_cell(std::size_t v);
  static std::string to_cell(long v);
  static std::string to_cell(int v);
  static std::string to_cell(unsigned v);
  static std::string to_cell(long long v);
  static std::string to_cell(unsigned long long v);
  static std::string to_cell(bool v) { return v ? "yes" : "no"; }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// "1.2345" style fixed formatting with `digits` decimals.
std::string fixed(double v, int digits = 3);

}  // namespace fl::util
