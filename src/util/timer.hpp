// Wall-clock timer for coarse phase timing in examples and benches.
//
// Delegates to obs::Clock — the one sanctioned steady_clock reader
// (docs/CONTRACTS.md C2/C12) — so this header needs no allowlist entry
// and the wall-clock lint has exactly one door to guard.
#pragma once

#include <cstdint>

#include "obs/clock.hpp"

namespace fl::util {

class Timer {
 public:
  Timer() : start_ns_(obs::Clock::now_ns()) {}

  void reset() { start_ns_ = obs::Clock::now_ns(); }

  double seconds() const {
    return static_cast<double>(obs::Clock::now_ns() - start_ns_) * 1e-9;
  }

  double millis() const { return seconds() * 1e3; }

 private:
  std::uint64_t start_ns_;
};

}  // namespace fl::util
