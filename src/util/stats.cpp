#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/assert.hpp"

namespace fl::util {

void Accumulator::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

double percentile(std::vector<double> sample, double q) {
  FL_REQUIRE(!sample.empty(), "percentile() of an empty sample");
  FL_REQUIRE(q >= 0.0 && q <= 100.0, "percentile() rank out of [0,100]");
  std::sort(sample.begin(), sample.end());
  if (sample.size() == 1) return sample.front();
  const double rank = q / 100.0 * static_cast<double>(sample.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return sample[lo] + frac * (sample[hi] - sample[lo]);
}

LineFit fit_line(const std::vector<double>& x, const std::vector<double>& y) {
  FL_REQUIRE(x.size() == y.size(), "fit_line() needs equal-length vectors");
  FL_REQUIRE(x.size() >= 2, "fit_line() needs >= 2 points");
  const auto n = static_cast<double>(x.size());
  double sx = 0, sy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / n, my = sy / n;
  double sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx, dy = y[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  FL_REQUIRE(sxx > 0.0, "fit_line() needs >= 2 distinct x values");
  LineFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r_squared = syy > 0.0 ? (sxy * sxy) / (sxx * syy) : 1.0;
  return fit;
}

LineFit fit_loglog(const std::vector<double>& x,
                   const std::vector<double>& y) {
  FL_REQUIRE(x.size() == y.size(), "fit_loglog() needs equal-length vectors");
  std::vector<double> lx(x.size()), ly(y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    FL_REQUIRE(x[i] > 0.0 && y[i] > 0.0, "fit_loglog() needs positive data");
    lx[i] = std::log2(x[i]);
    ly[i] = std::log2(y[i]);
  }
  return fit_line(lx, ly);
}

double geometric_mean(const std::vector<double>& sample) {
  FL_REQUIRE(!sample.empty(), "geometric_mean() of an empty sample");
  double acc = 0.0;
  for (double v : sample) {
    FL_REQUIRE(v > 0.0, "geometric_mean() needs positive samples");
    acc += std::log(v);
  }
  return std::exp(acc / static_cast<double>(sample.size()));
}

std::string format_count(double v) {
  char buf[64];
  if (v >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.0f (%.2e)", v, v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  }
  return buf;
}

}  // namespace fl::util
