#include "util/options.hpp"

#include <cstdlib>

#include "util/assert.hpp"

namespace fl::util {

Options::Options(int argc, const char* const* argv) {
  FL_REQUIRE(argc >= 1, "argv must contain the program name");
  program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    FL_REQUIRE(arg.rfind("--", 0) == 0,
               "options must start with '--' (got '" + arg + "')");
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";  // bare boolean flag
    }
  }
}

bool Options::has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string Options::get_string(const std::string& name,
                                const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Options::get_int(const std::string& name,
                              std::int64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  FL_REQUIRE(end && *end == '\0',
             "option --" + name + " expects an integer, got '" + it->second + "'");
  return v;
}

double Options::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  FL_REQUIRE(end && *end == '\0',
             "option --" + name + " expects a number, got '" + it->second + "'");
  return v;
}

bool Options::get_bool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  FL_REQUIRE(false, "option --" + name + " expects a boolean, got '" + v + "'");
  return fallback;  // unreachable
}

std::vector<std::int64_t> Options::get_int_list(
    const std::string& name, std::vector<std::int64_t> fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  std::vector<std::int64_t> out;
  std::string token;
  const std::string& s = it->second;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == ',') {
      FL_REQUIRE(!token.empty(), "option --" + name + ": empty list element");
      char* end = nullptr;
      out.push_back(std::strtoll(token.c_str(), &end, 10));
      FL_REQUIRE(end && *end == '\0',
                 "option --" + name + ": bad integer '" + token + "'");
      token.clear();
    } else {
      token += s[i];
    }
  }
  return out;
}

std::vector<std::string> Options::names() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [k, v] : values_) out.push_back(k);
  return out;
}

}  // namespace fl::util
