// Deterministic random number generation for reproducible distributed runs.
//
// Every randomized component in freelunch draws from a Xoshiro256** stream
// derived from a (seed, node, level, trial) key via SplitMix64 mixing. This
// guarantees:
//   * a distributed Sampler run is bit-reproducible given its seed;
//   * per-node streams are statistically independent, matching the paper's
//     model where each node owns private randomness;
//   * tests can replay exact executions when a property fails.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "util/assert.hpp"

namespace fl::util {

/// SplitMix64 — tiny, fast mixer used to seed and key other generators.
/// Passes BigCrush when used as a generator; we use it mostly as a hash.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Stateless mix of a single value (useful as a 64-bit hash).
  static std::uint64_t mix(std::uint64_t x) { return SplitMix64(x).next(); }

  /// Combine two 64-bit values into one well-mixed value.
  static std::uint64_t combine(std::uint64_t a, std::uint64_t b) {
    return mix(a ^ (0x9e3779b97f4a7c15ULL + (b << 6) + (b >> 2) + mix(b)));
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256** — the workhorse generator. Satisfies UniformRandomBitGenerator
/// so it can be plugged into <random> distributions, but freelunch uses the
/// bias-free helpers below instead of std distributions to keep cross-platform
/// determinism (libstdc++ / libc++ implement distributions differently).
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<std::uint64_t>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t below(std::uint64_t bound) {
    FL_REQUIRE(bound > 0, "below() needs a positive bound");
    // 128-bit multiply-shift with rejection of the short range.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    FL_REQUIRE(lo <= hi, "uniform_int() needs lo <= hi");
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(below(span));
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform01() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform01() < p;
  }

  /// Pick an index into a non-empty container of size `n` uniformly.
  std::size_t index(std::size_t n) {
    FL_REQUIRE(n > 0, "index() needs a non-empty range");
    return static_cast<std::size_t>(below(n));
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

/// Derives independent per-entity generator streams from a master seed.
///
/// The paper's algorithm keys randomness by node, hierarchy level and trial
/// index; StreamFactory reproduces that keying so the distributed and
/// centralized implementations can share randomness when desired.
class StreamFactory {
 public:
  explicit StreamFactory(std::uint64_t master_seed) : master_(master_seed) {}

  std::uint64_t master_seed() const { return master_; }

  /// Stream for a (node) key.
  Xoshiro256 node_stream(std::uint64_t node) const {
    return Xoshiro256(SplitMix64::combine(master_, node));
  }

  /// Stream for a (node, level) key.
  Xoshiro256 node_level_stream(std::uint64_t node, std::uint64_t level) const {
    return Xoshiro256(
        SplitMix64::combine(SplitMix64::combine(master_, node), level));
  }

  /// Stream for a (node, level, trial) key.
  Xoshiro256 trial_stream(std::uint64_t node, std::uint64_t level,
                          std::uint64_t trial) const {
    return Xoshiro256(SplitMix64::combine(
        SplitMix64::combine(SplitMix64::combine(master_, node), level),
        trial));
  }

  /// A generic labelled stream (label chosen by the caller, e.g. "generator").
  Xoshiro256 labelled_stream(std::uint64_t label) const {
    return Xoshiro256(SplitMix64::combine(~master_, label));
  }

 private:
  std::uint64_t master_;
};

/// Fisher–Yates shuffle with a caller-supplied generator (deterministic).
template <typename T>
void shuffle(std::vector<T>& v, Xoshiro256& rng) {
  for (std::size_t i = v.size(); i > 1; --i) {
    std::size_t j = rng.index(i);
    using std::swap;
    swap(v[i - 1], v[j]);
  }
}

/// Reservoir-sample `k` items out of [0, n). Returns ascending indices count
/// may be < k when n < k. Used by tests to pick random vertex pairs.
std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                    std::size_t k,
                                                    Xoshiro256& rng);

}  // namespace fl::util
