// Log-bucketed histogram for the observability layer (obs/trace.hpp).
//
// Fixed power-of-two buckets: bucket 0 holds exactly the value 0, bucket
// b >= 1 holds [2^(b-1), 2^b - 1]. The geometry is value-independent —
// no rebalancing, no quantile sketch state — so adding a sample is a
// bit_width plus one increment, merging two histograms is elementwise
// addition, and the result is bit-identical regardless of insertion
// order. That order-independence is what lets the engine fill histograms
// from whatever iteration is cheapest without creating a new determinism
// surface.
//
// Deliberately timing-free: this header must stay usable from anywhere in
// src/ without tripping the wall-clock lint (FL002) — it counts values,
// it never reads clocks.
#pragma once

#include <bit>
#include <cstdint>

#include "util/assert.hpp"

namespace fl::util {

class LogHistogram {
 public:
  /// Bucket 0 = {0}; bucket 64 = [2^63, 2^64 - 1].
  static constexpr std::size_t kBuckets = 65;

  static constexpr std::size_t bucket_of(std::uint64_t value) {
    return static_cast<std::size_t>(std::bit_width(value));
  }

  /// Smallest value the bucket admits.
  static constexpr std::uint64_t bucket_lo(std::size_t bucket) {
    return bucket == 0 ? 0 : std::uint64_t{1} << (bucket - 1);
  }

  /// Largest value the bucket admits.
  static constexpr std::uint64_t bucket_hi(std::size_t bucket) {
    if (bucket == 0) return 0;
    if (bucket == kBuckets - 1) return ~std::uint64_t{0};
    return (std::uint64_t{1} << bucket) - 1;
  }

  void add(std::uint64_t value, std::uint64_t weight = 1) {
    counts_[bucket_of(value)] += weight;
    count_ += weight;
    sum_ += value * weight;
    if (count_ == weight || value < min_) min_ = value;
    if (value > max_) max_ = value;
  }

  void merge(const LogHistogram& other) {
    if (other.count_ == 0) return;
    for (std::size_t b = 0; b < kBuckets; ++b) counts_[b] += other.counts_[b];
    if (count_ == 0 || other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
    count_ += other.count_;
    sum_ += other.sum_;
  }

  std::uint64_t bucket_count(std::size_t bucket) const {
    FL_REQUIRE(bucket < kBuckets, "histogram bucket out of range");
    return counts_[bucket];
  }

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const { return max_; }

  double mean() const {
    if (count_ == 0) return 0.0;
    return static_cast<double>(sum_) / static_cast<double>(count_);
  }

  /// Upper bound of the bucket containing the q-quantile sample (by rank).
  /// Bucket-resolution only — good enough for "p99 is in [2^k, 2^{k+1})",
  /// which is all a log histogram can honestly claim.
  std::uint64_t quantile_bound(double q) const {
    if (count_ == 0) return 0;
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    // rank in [1, count_]: the ceiling keeps q=1.0 on the max bucket and
    // q=0.0 on the min bucket without floating-point edge surprises.
    const auto rank = static_cast<std::uint64_t>(
        q * static_cast<double>(count_ - 1)) + 1;
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      seen += counts_[b];
      if (seen >= rank) return bucket_hi(b);
    }
    return bucket_hi(kBuckets - 1);
  }

  /// Index one past the last non-empty bucket (0 when empty) — exporters
  /// iterate [0, used_buckets()) and skip empties.
  std::size_t used_buckets() const {
    if (count_ == 0) return 0;
    return bucket_of(max_) + 1;
  }

 private:
  std::uint64_t counts_[kBuckets] = {};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace fl::util
