#include "util/distributions.hpp"

#include <algorithm>
#include <cmath>

namespace fl::util {

std::uint64_t binomial_draw(std::uint64_t t, double p, Xoshiro256& rng) {
  if (t == 0 || p <= 0.0) return 0;
  if (p >= 1.0) return t;
  const double mean = static_cast<double>(t) * p;
  if (t <= 256) {
    std::uint64_t count = 0;
    for (std::uint64_t i = 0; i < t; ++i)
      if (rng.bernoulli(p)) ++count;
    return count;
  }
  if (mean < 32.0) {
    // Poisson via Knuth (p is small here since t > 256 and mean < 32).
    const double limit = std::exp(-mean);
    double prod = rng.uniform01();
    std::uint64_t count = 0;
    while (prod > limit) {
      ++count;
      prod *= rng.uniform01();
    }
    return std::min(count, t);
  }
  // Normal approximation with continuity correction (Box–Muller).
  const double sd = std::sqrt(mean * (1.0 - p));
  const double u1 = std::max(rng.uniform01(), 1e-12);
  const double u2 = rng.uniform01();
  const double z = std::sqrt(-2.0 * std::log(u1)) *
                   std::cos(2.0 * 3.14159265358979323846 * u2);
  const double v = std::round(mean + sd * z);
  if (v <= 0.0) return 0;
  return std::min(t, static_cast<std::uint64_t>(v));
}

}  // namespace fl::util
