// Lightweight contract-checking macros used across freelunch.
//
// FL_REQUIRE  — precondition on a public API; always active (benchmarks
//               included) because violating it means the caller is broken
//               and the cost is a predictable branch.
// FL_ENSURE   — postcondition / internal invariant; active unless
//               FL_DISABLE_INVARIANT_CHECKS is defined (used only for
//               profiling experiments, never for shipped binaries).
//
// Both throw fl::util::ContractViolation rather than aborting so that tests
// can assert on failures and the simulator can surface the offending node.
#pragma once

#include <stdexcept>
#include <string>

namespace fl::util {

/// Thrown when an FL_REQUIRE / FL_ENSURE contract is violated.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line,
                                       const std::string& msg) {
  std::string s(kind);
  s += " failed: ";
  s += expr;
  s += " at ";
  s += file;
  s += ":";
  s += std::to_string(line);
  if (!msg.empty()) {
    s += " — ";
    s += msg;
  }
  throw ContractViolation(s);
}

}  // namespace fl::util

#define FL_REQUIRE(cond, msg)                                                \
  do {                                                                       \
    if (!(cond))                                                             \
      ::fl::util::contract_fail("FL_REQUIRE", #cond, __FILE__, __LINE__,     \
                                (msg));                                      \
  } while (0)

#ifndef FL_DISABLE_INVARIANT_CHECKS
#define FL_ENSURE(cond, msg)                                                 \
  do {                                                                       \
    if (!(cond))                                                             \
      ::fl::util::contract_fail("FL_ENSURE", #cond, __FILE__, __LINE__,      \
                                (msg));                                      \
  } while (0)
#else
#define FL_ENSURE(cond, msg) ((void)0)
#endif
