#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <ostream>

#include "util/assert.hpp"

namespace fl::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  FL_REQUIRE(!headers_.empty(), "Table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  FL_REQUIRE(cells.size() == headers_.size(),
             "Table row arity must match the headers");
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os, const std::string& title) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  if (!title.empty()) os << "== " << title << " ==\n";
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size())
        os << std::string(width[c] - row[c].size() + 2, ' ');
    }
    os << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c)
    total += width[c] + (c + 1 < width.size() ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) os << ',';
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

namespace {

/// Is the cell exactly one JSON-compatible number? (to_cell produces
/// plain decimals and %e notation. strtod alone is too permissive — it
/// also accepts "nan"/"-inf"/hex, none of which are valid JSON tokens —
/// so restrict to the decimal character set first.)
bool numeric_cell(const std::string& s) {
  if (s.empty()) return false;
  const char first = s[0];
  if (first != '-' && (first < '0' || first > '9')) return false;
  for (const char ch : s)
    if ((ch < '0' || ch > '9') && ch != '-' && ch != '+' && ch != '.' &&
        ch != 'e' && ch != 'E')
      return false;
  char* end = nullptr;
  (void)std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size();
}

void json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char ch : s) {
    switch (ch) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          os << buf;
        } else {
          os << ch;  // UTF-8 passes through unescaped
        }
    }
  }
  os << '"';
}

}  // namespace

void Table::print_json(std::ostream& os, const std::string& name) const {
  os << "{\"table\": ";
  json_string(os, name);
  os << ",\n \"columns\": [";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c > 0) os << ", ";
    json_string(os, headers_[c]);
  }
  os << "],\n \"rows\": [";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    os << (r == 0 ? "\n" : ",\n") << "  {";
    for (std::size_t c = 0; c < rows_[r].size(); ++c) {
      if (c > 0) os << ", ";
      json_string(os, headers_[c]);
      os << ": ";
      if (numeric_cell(rows_[r][c])) {
        os << rows_[r][c];
      } else {
        json_string(os, rows_[r][c]);
      }
    }
    os << '}';
  }
  os << "\n ]}\n";
}

std::string Table::to_cell(double v) {
  char buf[48];
  if (v == 0.0) return "0";
  const double a = v < 0 ? -v : v;
  if (a >= 1e7 || a < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.3e", v);
  } else if (a >= 100.0) {
    std::snprintf(buf, sizeof(buf), "%.1f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.4f", v);
  }
  return buf;
}

std::string Table::to_cell(std::size_t v) { return std::to_string(v); }
std::string Table::to_cell(long v) { return std::to_string(v); }
std::string Table::to_cell(int v) { return std::to_string(v); }
std::string Table::to_cell(unsigned v) { return std::to_string(v); }
std::string Table::to_cell(long long v) { return std::to_string(v); }
std::string Table::to_cell(unsigned long long v) { return std::to_string(v); }

std::string fixed(double v, int digits) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

}  // namespace fl::util
