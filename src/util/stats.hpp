// Statistics helpers used by the benchmark harness and tests.
//
// The reproduction measures *growth exponents* (e.g. "spanner size grows as
// n^{1+1/(2^{k+1}-1)}"), so besides the usual accumulator we provide a
// log-log least-squares slope fit: fitting log(y) = a + b*log(x) over a sweep
// of problem sizes recovers the exponent b, which is the quantity the paper's
// theorems predict.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace fl::util {

/// Streaming accumulator: count / mean / variance (Welford) / min / max.
class Accumulator {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  ///< Sample variance (n-1 denominator).
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Percentile of a sample (linear interpolation between order statistics).
/// `q` in [0, 100]. The input is copied; callers keep their ordering.
double percentile(std::vector<double> sample, double q);

/// Median shorthand.
inline double median(std::vector<double> sample) {
  return percentile(std::move(sample), 50.0);
}

/// Result of an ordinary least-squares line fit y = intercept + slope * x.
struct LineFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;  ///< Coefficient of determination in [0, 1].
};

/// OLS fit over (x, y) pairs. Requires >= 2 distinct x values.
LineFit fit_line(const std::vector<double>& x, const std::vector<double>& y);

/// Fit log2(y) = a + b*log2(x); returns b as `slope`. All inputs must be > 0.
/// This is how the benches estimate growth exponents from size sweeps.
LineFit fit_loglog(const std::vector<double>& x, const std::vector<double>& y);

/// Geometric mean of positive samples.
double geometric_mean(const std::vector<double>& sample);

/// Pretty "1234567 (1.23e6)" formatting used in bench tables.
std::string format_count(double v);

}  // namespace fl::util
