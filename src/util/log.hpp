// Minimal leveled logger.
//
// The simulator and the distributed Sampler can emit per-round traces; the
// default level is Warn so tests and benches stay quiet. Examples raise the
// level to Info/Debug to narrate executions (Figure 1 reproduction).
#pragma once

#include <sstream>
#include <string>

namespace fl::util {

enum class LogLevel : int { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

/// Global minimum level; messages below it are dropped. Not thread-safe by
/// design — freelunch is single-threaded (the LOCAL simulator serializes
/// rounds), so a plain global keeps the hot path free of atomics.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit one line (appends '\n') to stderr if `level` passes the filter.
void log_line(LogLevel level, const std::string& msg);

namespace detail {
struct LogStream {
  LogLevel level;
  std::ostringstream os;
  explicit LogStream(LogLevel l) : level(l) {}
  ~LogStream() { log_line(level, os.str()); }
  template <typename T>
  LogStream& operator<<(const T& v) {
    os << v;
    return *this;
  }
};
}  // namespace detail

}  // namespace fl::util

// Usage: FL_LOG(Info) << "constructed spanner with " << m << " edges";
#define FL_LOG(lvl) \
  ::fl::util::detail::LogStream(::fl::util::LogLevel::lvl)
