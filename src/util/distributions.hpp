// Distribution samplers shared by the distributed protocols.
//
// The distributed Sampler realizes a global uniform-with-replacement draw
// over a cluster's edge pool by per-member binomial splits (each member of
// the cluster draws Binomial(T, own/total)); this file provides the
// deterministic binomial sampler those splits use. Exactness matters in the
// small-T regime (tests rely on Binomial(T, 1) == T at level 0), while for
// large T the Poisson / normal approximations introduce error far below the
// algorithm's own randomness.
#pragma once

#include <cstdint>

#include "util/rng.hpp"

namespace fl::util {

/// Draw Binomial(t, p) from `rng`. Exact Bernoulli summation for t <= 256;
/// Knuth-Poisson for small means (p is then provably small); otherwise a
/// normal approximation with continuity correction, clamped to [0, t].
std::uint64_t binomial_draw(std::uint64_t t, double p, Xoshiro256& rng);

}  // namespace fl::util
