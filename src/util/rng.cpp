#include "util/rng.hpp"

#include <algorithm>

namespace fl::util {

std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                    std::size_t k,
                                                    Xoshiro256& rng) {
  if (k >= n) {
    std::vector<std::size_t> all(n);
    for (std::size_t i = 0; i < n; ++i) all[i] = i;
    return all;
  }
  // Classic reservoir sampling: O(n) time, O(k) extra space.
  std::vector<std::size_t> reservoir(k);
  for (std::size_t i = 0; i < k; ++i) reservoir[i] = i;
  for (std::size_t i = k; i < n; ++i) {
    const std::size_t j = rng.index(i + 1);
    if (j < k) reservoir[j] = i;
  }
  std::sort(reservoir.begin(), reservoir.end());
  return reservoir;
}

}  // namespace fl::util
