// Tiny command-line option parser for examples and bench binaries.
//
// Supports `--name value`, `--name=value` and boolean `--flag`. Unknown
// options raise an error listing what is accepted — examples are meant to be
// explored interactively, so misuse should teach rather than crash.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace fl::util {

class Options {
 public:
  /// Parse argv. Throws fl::util::ContractViolation on malformed input.
  Options(int argc, const char* const* argv);

  bool has(const std::string& name) const;

  std::string get_string(const std::string& name,
                         const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  /// Comma-separated integer list, e.g. --sizes=256,512,1024.
  std::vector<std::int64_t> get_int_list(
      const std::string& name, std::vector<std::int64_t> fallback) const;

  /// Names seen on the command line (for help/error output).
  std::vector<std::string> names() const;

  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
};

}  // namespace fl::util
