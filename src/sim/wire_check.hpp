// Round-trip self-check helper for wire-encodable payload structs.
//
// Protocol payload structs live in anonymous namespaces inside their
// .cpp files, so tests cannot name them directly. Each protocol instead
// exports a *_wire_selftest() hook (declared in its public header) that
// round-trips representative instances of every payload struct through
// Payload::wire_encode / wire_decode with this helper; tests/test_wire.cpp
// just calls the hooks. A failure throws util::ContractViolation naming
// the broken stage.
#pragma once

#include <cstdint>

#include "sim/payload.hpp"
#include "util/assert.hpp"

namespace fl::sim {

/// Encode `value` as a Payload, decode it back through the wire-type
/// registry, and require `eq(original, decoded)`. Also requires that the
/// decoder consumed the stream exactly — a codec that under- or
/// over-reads would corrupt every message framed after it.
template <typename T, typename Eq>
void wire_roundtrip_check(const T& value, Eq&& eq) {
  static_assert(Payload::wire_encodable<T>,
                "wire_roundtrip_check needs a wire-encodable type");
  Payload p{T(value)};
  WireWriter w;
  p.wire_encode(w);
  const std::uint64_t id = p.wire_type();
  FL_REQUIRE(id != 0, "wire_roundtrip_check: payload reports no wire type");
  WireReader r(w.span());
  Payload q = Payload::wire_decode(id, r);
  FL_REQUIRE(r.remaining() == 0,
             "wire_roundtrip_check: decoder left bytes unread");
  const T* back = q.template get_if<T>();
  FL_REQUIRE(back != nullptr,
             "wire_roundtrip_check: decoded payload holds the wrong type");
  FL_REQUIRE(eq(value, *back), "wire_roundtrip_check: value mismatch");
}

}  // namespace fl::sim
