// Parallel round execution: sharded node stepping with a deterministic
// shard-merge delivery barrier.
//
// Within a synchronous round every node's step is independent — the model
// itself says so (a message sent in round r is visible only in round r+1).
// The engine exploits exactly that independence and nothing more:
//
//   * nodes are partitioned into contiguous id ranges (shards), one per
//     execution lane; a persistent ExecPool steps all shards of a round
//     concurrently and barriers before delivery;
//   * each lane appends its sends to a private SendLane outbox and keeps
//     per-destination counts incrementally at enqueue, so the merge at the
//     barrier is offsets arithmetic over the per-lane counts plus a single
//     relocation pass into the shared flat arena — no extra message pass
//     (a two-pass bucketed scatter measured ~25% slower on the bench box);
//   * per-node state (RNG stream, send cursor, program) is only ever
//     touched by the lane whose shard owns the node.
//
// Determinism contract: delivery order is bit-identical to sequential
// execution. Sequential order is "node 0's sends, then node 1's, ...";
// contiguous ascending shards concatenated in shard order reproduce it, and
// the merge assigns lane s's messages for destination v the arena range
// after all lanes < s — a stable counting sort across lanes. RunStats,
// Metrics and every protocol's output are therefore invariant under
// FL_SIM_THREADS.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "graph/ids.hpp"
#include "sim/message.hpp"

namespace fl::sim {

/// How nodes are apportioned to shards. Delivery order is bit-identical
/// either way (shards are always contiguous ascending id ranges and the
/// merge is stable across them) — this only moves the shard boundaries.
enum class ShardBalance : std::uint8_t {
  /// Equal node counts per shard.
  Uniform,
  /// Equal incident-degree weight per shard (weight deg(v) + 1, so
  /// isolated nodes still count as one step). A round's per-node work is
  /// dominated by sends and inbox length — both proportional to degree —
  /// so skewed graphs (power-law, star, lollipop) get balanced lanes
  /// where Uniform would hand one shard all the hubs.
  Degree,
};

/// Execution-parallelism knob threaded through Network. threads == 1 is
/// plain sequential stepping (no pool, no extra barriers).
struct ParallelConfig {
  unsigned threads = 1;
  ShardBalance balance = ShardBalance::Degree;
};

/// ParallelConfig{FL_SIM_THREADS} when the environment variable is set to a
/// positive integer; ParallelConfig{1} otherwise. FL_SIM_BALANCE=uniform
/// selects ShardBalance::Uniform (default: degree).
ParallelConfig default_parallel_config();

/// A contiguous node-id range [begin, end) owned by one execution lane.
struct ShardRange {
  graph::NodeId begin = 0;
  graph::NodeId end = 0;

  graph::NodeId size() const { return end - begin; }
  friend bool operator==(const ShardRange&, const ShardRange&) = default;
};

/// Split [0, n) into at most `shards` contiguous, balanced, non-empty
/// ranges covering every node in ascending order. Returns min(shards, n)
/// ranges (never more than one shard per node; at least one range when
/// n >= 1); sizes differ by at most one, larger shards first.
std::vector<ShardRange> partition_nodes(graph::NodeId n, unsigned shards);

/// Weighted variant (ShardBalance::Degree): cut [0, n) so every shard
/// carries roughly total_weight / k, k = min(shards, n). `weights` holds
/// one non-negative weight per node; cuts sit where the weight prefix sum
/// crosses the s/k marks, clamped so every shard keeps at least one node
/// (a single huge-weight node gets a singleton shard; trailing shards are
/// never starved below one node each).
std::vector<ShardRange> partition_nodes(graph::NodeId n, unsigned shards,
                                        std::span<const std::uint64_t> weights);

/// Per-lane execution state. During a round each lane appends sends to its
/// own outbox (a MessagePlanes, so the merge's header-only passes never
/// touch payload bytes), counts messages per destination, and accumulates
/// the words metric, so stepping touches no shared counters. At the merge
/// the offsets walk converts counts into the lane's scatter cursors
/// (zeroing the counts in the same pass, so delivery adds no extra O(n)
/// sweep). `done_count` is the number of currently-done nodes in the
/// lane's shard, maintained by transition (±1 when a node's done() answer
/// flips) as nodes are stepped — the engine's quiesce check sums S of
/// these instead of scanning n programs.
struct SendLane {
  MessagePlanes outbox;
  std::vector<std::uint32_t> dest_counts;  // size n
  std::vector<std::uint32_t> cursors;      // size n
  std::uint64_t words = 0;
  std::uint64_t max_words = 0;  // largest single size hint, monotone
  std::int64_t done_count = 0;
};

/// Persistent worker pool executing one job per lane with a barrier.
///
/// Pool of `lanes - 1` worker threads plus the calling thread (which always
/// runs lane 0): run(job) invokes job(lane) for every lane in [0, lanes)
/// concurrently and returns when all have finished. A job that throws has
/// its exception captured and rethrown from run() on the calling thread
/// (lowest lane index wins when several throw), so contract violations
/// inside node programs surface exactly as they do sequentially.
class ExecPool {
 public:
  explicit ExecPool(unsigned lanes);
  ~ExecPool();

  ExecPool(const ExecPool&) = delete;
  ExecPool& operator=(const ExecPool&) = delete;

  unsigned lanes() const { return lanes_; }

  void run(const std::function<void(unsigned)>& job);

 private:
  void worker_loop(unsigned lane);

  unsigned lanes_;
  std::vector<std::thread> workers_;
  std::vector<std::exception_ptr> errors_;  // one slot per lane

  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(unsigned)>* job_ = nullptr;  // guarded by mu_
  std::uint64_t generation_ = 0;                        // guarded by mu_
  unsigned pending_ = 0;                                // guarded by mu_
  bool stop_ = false;                                   // guarded by mu_
};

}  // namespace fl::sim
