// FL_SIM_CHECK — the logical ownership / phase checker for the round engine.
//
// The engine's determinism rests on two structural contracts that TSan can
// only police when the scheduler actually interleaves the racing accesses
// (hopeless on a single-core box):
//
//   * ownership — every node's mutable state (program, RNG stream, send
//     cursor, edge→slot cache, done-state byte, messages_per_node slot) is
//     touched only by the lane whose shard owns the node, and only during
//     the step phase;
//   * phasing — the merge-barrier structures are mutated only in their
//     designated phase: SendLane counts/cursors and the arena in the merge
//     phase, per-directed-edge budget tallies and the congest carry queues
//     in the admission phase.
//
// OwnershipChecker turns both contracts into *logical* assertions: each
// engine phase binds (checker, lane, phase) into a thread-local scope, and
// every instrumented touch verifies the binding against the node→lane
// ownership map. A violation throws CheckViolation naming the node, the
// owning lane, the touching lane, the phase, and the round — raised
// deterministically on the first wrong touch, on one core as reliably as
// on sixty-four, because no data race needs to manifest.
//
// Touches outside any bound scope (pre-run sends through a two-argument
// Context, post-run result extraction via program_as) are deliberately
// unchecked: the engine is not running, so there is no stepping lane to
// mismatch.
//
// Opt-in and zero-cost when off: Network holds a null checker unless
// FL_SIM_CHECK=1 (or set_check(true)) — every instrumentation site is one
// predictable `if (check_)` branch off the hot path, so LOCAL-mode golden
// traces, metrics, and throughput are untouched with checking off.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/ids.hpp"
#include "sim/exec.hpp"
#include "util/assert.hpp"

namespace fl::sim {

/// The round pipeline's phases, as the checker names them in diagnostics.
enum class EnginePhase : std::uint8_t {
  Step,   ///< lanes step their shards' nodes (sends happen here)
  Merge,  ///< lane outboxes relocate into the delivery arena
  Admit,  ///< CONGEST admission: budget tallies + carry queues
};

const char* phase_name(EnginePhase phase);

/// Thrown on the first contract-violating touch. Derives from
/// ContractViolation — an ownership or phase violation is engine/test code
/// being broken, exactly the class of failure FL_REQUIRE reports — and
/// carries the coordinates so tests can assert on them.
class CheckViolation : public util::ContractViolation {
 public:
  CheckViolation(const std::string& what, graph::NodeId node,
                 unsigned owner_lane, unsigned touch_lane, EnginePhase phase,
                 std::size_t round)
      : util::ContractViolation(what), node(node), owner_lane(owner_lane),
        touch_lane(touch_lane), phase(phase), round(round) {}

  graph::NodeId node;    ///< node whose state was touched (kInvalidNode
                         ///< for per-lane / per-chunk structures)
  unsigned owner_lane;   ///< lane that owns the touched state
  unsigned touch_lane;   ///< lane that performed the touch
  EnginePhase phase;     ///< phase the touch happened in
  std::size_t round;     ///< round the touch happened in
};

class OwnershipChecker {
 public:
  /// Record the shard→lane ownership map (owner of node v = index of the
  /// shard containing v). Called by the network when the execution plan is
  /// finalized, and again if it ever re-partitions.
  void bind_shards(const std::vector<ShardRange>& shards, graph::NodeId n);

  /// Advance the round stamp used in diagnostics. Called between phases on
  /// the main thread (workers only read it inside their scopes).
  void set_round(std::size_t round) { round_ = round; }

  unsigned owner_of(graph::NodeId v) const { return owner_[v]; }

  /// Assert the calling thread's bound lane owns node v and is in the step
  /// phase. `what` names the state class for the diagnostic ("program
  /// state", "rng stream", "send-path state", ...). No-op outside a scope.
  void touch_node(graph::NodeId v, const char* what) const;

  /// Assert the calling thread is bound to exactly `lane` in phase
  /// `expected` before mutating that lane's private structures (outbox
  /// scatter, done-counter). No-op outside a scope.
  void touch_lane(unsigned lane, EnginePhase expected, const char* what) const;

  /// Assert the calling thread's bound chunk owns destination v and is in
  /// the merge phase (per-destination offsets/cursors writes). No-op
  /// outside a scope.
  void touch_merge_dest(graph::NodeId v, const char* what) const;

  /// Assert the calling thread's bound chunk owns destination v and is in
  /// the admission phase (per-directed-edge budget tallies, carry queues,
  /// admitted buffers). No-op outside a scope.
  void touch_admit_dest(graph::NodeId v, const char* what) const;

  /// Assert the calling thread is bound to chunk `chunk` in the admission
  /// phase before mutating its carry queue. No-op outside a scope.
  void touch_carry(unsigned chunk, const char* what) const;

 private:
  friend class LaneScope;
  struct Binding {
    const OwnershipChecker* checker;
    unsigned lane;
    EnginePhase phase;
    Binding* prev;
  };
  static thread_local Binding* tl_binding_;

  // Out-of-line push/pop of the thread-local binding stack (check.cpp):
  // the binding object itself lives in the LaneScope on the caller's
  // stack; the RAII pop strictly precedes its destruction.
  static void push(Binding* b);
  static void pop(Binding* b);

  /// The innermost binding of *this* checker on the calling thread, or
  /// null when the engine is not running a phase here (pre-run sends,
  /// post-run extraction, a different network's scope).
  const Binding* current() const;

  [[noreturn]] void fail(const std::string& what, graph::NodeId node,
                         unsigned owner_lane, const Binding& b) const;

  std::vector<std::uint32_t> owner_;  // node → owning lane/chunk index
  std::size_t round_ = 0;
};

/// RAII thread-local binding of (checker, lane, phase). The engine opens
/// one around every per-lane job (step, merge, admit) — sequential paths
/// included, so the checks fire identically at every thread count. A null
/// checker makes the scope a no-op, which is how every site stays one
/// branch when checking is off.
class LaneScope {
 public:
  LaneScope(const OwnershipChecker* checker, unsigned lane, EnginePhase phase)
      : bound_(checker != nullptr) {
    if (!bound_) return;
    binding_ = {checker, lane, phase, nullptr};
    OwnershipChecker::push(&binding_);
  }

  ~LaneScope() {
    if (bound_) OwnershipChecker::pop(&binding_);
  }

  LaneScope(const LaneScope&) = delete;
  LaneScope& operator=(const LaneScope&) = delete;

 private:
  bool bound_;
  OwnershipChecker::Binding binding_{};
};

/// True when FL_SIM_CHECK asks for the checker (FL_SIM_CHECK=1; unset,
/// empty or 0 = off; anything else is a contract violation). Mirrors
/// default_parallel_config(): the environment seeds every Network's
/// default, callers may still override per run via set_check.
bool default_check_enabled();

}  // namespace fl::sim
