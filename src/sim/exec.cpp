#include "sim/exec.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "util/assert.hpp"

namespace fl::sim {

ParallelConfig default_parallel_config() {
  ParallelConfig cfg;
  const char* env = std::getenv("FL_SIM_THREADS");
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    FL_REQUIRE(end != nullptr && *end == '\0' && v >= 1,
               "FL_SIM_THREADS must be a positive integer");
    FL_REQUIRE(v <= 1024, "FL_SIM_THREADS capped at 1024");
    cfg.threads = static_cast<unsigned>(v);
  }
  const char* bal = std::getenv("FL_SIM_BALANCE");
  if (bal != nullptr && *bal != '\0') {
    if (std::strcmp(bal, "uniform") == 0) {
      cfg.balance = ShardBalance::Uniform;
    } else {
      FL_REQUIRE(std::strcmp(bal, "degree") == 0,
                 "FL_SIM_BALANCE must be 'degree' or 'uniform'");
      cfg.balance = ShardBalance::Degree;
    }
  }
  return cfg;
}

std::vector<ShardRange> partition_nodes(graph::NodeId n, unsigned shards) {
  FL_REQUIRE(n >= 1, "cannot partition an empty node set");
  if (shards < 1) shards = 1;
  const auto k = static_cast<graph::NodeId>(
      shards < n ? shards : n);  // never more shards than nodes
  std::vector<ShardRange> ranges(k);
  const graph::NodeId base = n / k;
  const graph::NodeId extra = n % k;  // first `extra` shards get one more
  graph::NodeId begin = 0;
  for (graph::NodeId s = 0; s < k; ++s) {
    const graph::NodeId size = base + (s < extra ? 1 : 0);
    ranges[s] = {begin, begin + size};
    begin += size;
  }
  return ranges;
}

std::vector<ShardRange> partition_nodes(graph::NodeId n, unsigned shards,
                                        std::span<const std::uint64_t> weights) {
  FL_REQUIRE(n >= 1, "cannot partition an empty node set");
  FL_REQUIRE(weights.size() == n, "one weight per node");
  if (shards < 1) shards = 1;
  const auto k = static_cast<graph::NodeId>(shards < n ? shards : n);
  if (k == 1) return {{0, n}};
  // prefix[i] = total weight of nodes [0, i). Total weight is bounded by
  // n + 2m (Degree weighting), far below the overflow point of the
  // target multiplication below.
  std::vector<std::uint64_t> prefix(static_cast<std::size_t>(n) + 1, 0);
  for (graph::NodeId v = 0; v < n; ++v) prefix[v + 1] = prefix[v] + weights[v];
  const std::uint64_t total = prefix[n];

  std::vector<ShardRange> ranges(k);
  graph::NodeId begin = 0;
  for (graph::NodeId s = 0; s < k; ++s) {
    graph::NodeId end = n;
    if (s + 1 < k) {
      // Ideal cut: the first index whose covered weight reaches the
      // (s+1)/k mark, clamped so this shard takes at least one node and
      // leaves at least one per remaining shard.
      const std::uint64_t target = total * (s + 1) / k;
      const auto it = std::lower_bound(prefix.begin() + begin + 1,
                                       prefix.begin() + n, target);
      end = static_cast<graph::NodeId>(it - prefix.begin());
      end = std::min(end, n - (k - 1 - s));
      end = std::max(end, begin + 1);
    }
    ranges[s] = {begin, end};
    begin = end;
  }
  return ranges;
}

// ------------------------------------------------------------- ExecPool

ExecPool::ExecPool(unsigned lanes) : lanes_(lanes < 1 ? 1 : lanes) {
  errors_.resize(lanes_);
  workers_.reserve(lanes_ - 1);
  for (unsigned lane = 1; lane < lanes_; ++lane)
    workers_.emplace_back([this, lane] { worker_loop(lane); });
}

ExecPool::~ExecPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ExecPool::run(const std::function<void(unsigned)>& job) {
  if (lanes_ > 1) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      job_ = &job;
      pending_ = lanes_ - 1;
      ++generation_;
    }
    start_cv_.notify_all();
  }
  try {
    job(0);
  } catch (...) {
    errors_[0] = std::current_exception();
  }
  if (lanes_ > 1) {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return pending_ == 0; });
    job_ = nullptr;
  }
  for (auto& e : errors_) {
    if (e) {
      const std::exception_ptr first = e;
      for (auto& other : errors_) other = nullptr;
      std::rethrow_exception(first);
    }
  }
}

void ExecPool::worker_loop(unsigned lane) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(unsigned)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      start_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      job = job_;
    }
    try {
      (*job)(lane);
    } catch (...) {
      errors_[lane] = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--pending_ == 0) done_cv_.notify_one();
    }
  }
}

}  // namespace fl::sim
