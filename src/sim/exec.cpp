#include "sim/exec.hpp"

#include <cstdlib>
#include <cstring>

#include "util/assert.hpp"

namespace fl::sim {

ParallelConfig default_parallel_config() {
  const char* env = std::getenv("FL_SIM_THREADS");
  if (env == nullptr || *env == '\0') return {};
  char* end = nullptr;
  const long v = std::strtol(env, &end, 10);
  FL_REQUIRE(end != nullptr && *end == '\0' && v >= 1,
             "FL_SIM_THREADS must be a positive integer");
  FL_REQUIRE(v <= 1024, "FL_SIM_THREADS capped at 1024");
  return {static_cast<unsigned>(v)};
}

std::vector<ShardRange> partition_nodes(graph::NodeId n, unsigned shards) {
  FL_REQUIRE(n >= 1, "cannot partition an empty node set");
  if (shards < 1) shards = 1;
  const auto k = static_cast<graph::NodeId>(
      shards < n ? shards : n);  // never more shards than nodes
  std::vector<ShardRange> ranges(k);
  const graph::NodeId base = n / k;
  const graph::NodeId extra = n % k;  // first `extra` shards get one more
  graph::NodeId begin = 0;
  for (graph::NodeId s = 0; s < k; ++s) {
    const graph::NodeId size = base + (s < extra ? 1 : 0);
    ranges[s] = {begin, begin + size};
    begin += size;
  }
  return ranges;
}

// ------------------------------------------------------------- ExecPool

ExecPool::ExecPool(unsigned lanes) : lanes_(lanes < 1 ? 1 : lanes) {
  errors_.resize(lanes_);
  workers_.reserve(lanes_ - 1);
  for (unsigned lane = 1; lane < lanes_; ++lane)
    workers_.emplace_back([this, lane] { worker_loop(lane); });
}

ExecPool::~ExecPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ExecPool::run(const std::function<void(unsigned)>& job) {
  if (lanes_ > 1) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      job_ = &job;
      pending_ = lanes_ - 1;
      ++generation_;
    }
    start_cv_.notify_all();
  }
  try {
    job(0);
  } catch (...) {
    errors_[0] = std::current_exception();
  }
  if (lanes_ > 1) {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return pending_ == 0; });
    job_ = nullptr;
  }
  for (auto& e : errors_) {
    if (e) {
      const std::exception_ptr first = e;
      for (auto& other : errors_) other = nullptr;
      std::rethrow_exception(first);
    }
  }
}

void ExecPool::worker_loop(unsigned lane) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(unsigned)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      start_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      job = job_;
    }
    try {
      (*job)(lane);
    } catch (...) {
      errors_[lane] = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--pending_ == 0) done_cv_.notify_one();
    }
  }
}

}  // namespace fl::sim
