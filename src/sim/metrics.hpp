// Message/round accounting — the quantities Theorems 2, 3 and 11 bound.
//
// The network updates these counters as it routes; protocols never touch
// them. `messages_total` counts every Message object delivered (the paper's
// message complexity); `words_total` additionally weights by the protocol's
// size hints for CONGEST-flavoured comparisons.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/ids.hpp"

namespace fl::sim {

struct Metrics {
  std::size_t rounds = 0;
  std::uint64_t messages_total = 0;
  std::uint64_t words_total = 0;
  std::vector<std::uint64_t> messages_per_round;
  std::vector<std::uint64_t> messages_per_node;  ///< sent, indexed by node

  std::uint64_t max_messages_in_a_round() const {
    std::uint64_t best = 0;
    for (const auto v : messages_per_round)
      if (v > best) best = v;
    return best;
  }

  double avg_messages_per_round() const {
    if (messages_per_round.empty()) return 0.0;
    return static_cast<double>(messages_total) /
           static_cast<double>(messages_per_round.size());
  }
};

/// Result of Network::run().
struct RunStats {
  bool terminated = false;  ///< all programs done and no in-flight messages
  std::size_t rounds = 0;
  std::uint64_t messages = 0;
};

}  // namespace fl::sim
