// Message/round accounting — the quantities Theorems 2, 3 and 11 bound.
//
// The network updates these counters as it routes; protocols never touch
// them. `messages_total` counts every message delivered (the paper's
// message complexity); `words_total` additionally weights by the protocol's
// size hints — every message costs at least one word (enqueue clamps a
// zero hint up), so word complexity can never be under-reported by an
// enqueue path that forgot to self-report a size.
//
// Under an enforced CongestConfig (congest.hpp) delivery may lag sending:
// `messages_per_round`/`messages_total` count *deliveries* (so a budgeted
// run shows its stretched schedule), `words_total` and `messages_per_node`
// count at *send* time (they are delivery-schedule invariant), and
// `deferrals_total` counts how many times a message was bumped to a later
// round by a full edge (one message deferred for k rounds counts k).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/ids.hpp"

namespace fl::sim {

struct Metrics {
  std::size_t rounds = 0;
  std::uint64_t messages_total = 0;
  std::uint64_t words_total = 0;
  std::uint64_t deferrals_total = 0;  ///< congest-mode message-round delays
  /// Largest total carry-queue occupancy (messages parked across every
  /// per-edge FIFO) seen after any admission pass — how deep the budget
  /// backlog ever got. 0 in LOCAL mode and whenever the budget never
  /// binds; a model field (bit-identical across thread counts), surfaced
  /// in the bench JSON next to deferrals.
  std::uint64_t carry_peak = 0;
  /// Largest single self-reported message size seen so far — the smallest
  /// per-edge budget under which no message is individually oversized
  /// (CongestPolicy::Strict's floor, and the scale for schedule slack).
  std::uint64_t max_message_words = 0;
  /// Rounds an event-driven phase barrier saved against the fixed
  /// slack-stretched timetable: provisioned rounds (the unstretched
  /// schedule times the deferral-derived slack) minus the rounds actually
  /// run, clamped at 0. A *model* field (bit-identical across thread
  /// counts), but filled by the protocol driver after the run — the
  /// engine knows nothing about timetables — and 0 whenever no adaptive
  /// barrier was active (LOCAL mode, BarrierMode::FixedSchedule).
  std::uint64_t barrier_rounds_saved = 0;
  std::vector<std::uint64_t> messages_per_round;
  std::vector<std::uint64_t> messages_per_node;  ///< sent, indexed by node

  std::uint64_t max_messages_in_a_round() const {
    std::uint64_t best = 0;
    for (const auto v : messages_per_round)
      if (v > best) best = v;
    return best;
  }

  double avg_messages_per_round() const {
    if (messages_per_round.empty()) return 0.0;
    return static_cast<double>(messages_total) /
           static_cast<double>(messages_per_round.size());
  }
};

/// Result of Network::run().
struct RunStats {
  bool terminated = false;  ///< all programs done and no in-flight messages
  std::size_t rounds = 0;
  std::uint64_t messages = 0;
};

}  // namespace fl::sim
