#include "sim/backend.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "sim/network.hpp"
#include "util/assert.hpp"

namespace fl::sim {

using graph::NodeId;

BackendConfig default_backend_config() {
  BackendConfig cfg;
  const char* env = std::getenv("FL_SIM_BACKEND");
  if (env == nullptr || *env == '\0') return cfg;
  if (std::strcmp(env, "inproc") == 0 || std::strcmp(env, "in-process") == 0)
    return cfg;
  FL_REQUIRE(std::strncmp(env, "tcp:", 4) == 0,
             "FL_SIM_BACKEND must be 'inproc' or 'tcp:<shards>'");
  const char* num = env + 4;
  FL_REQUIRE(*num >= '0' && *num <= '9',
             "FL_SIM_BACKEND=tcp:<shards> needs a positive shard count");
  char* end = nullptr;
  const unsigned long long shards = std::strtoull(num, &end, 10);
  FL_REQUIRE(end != num && *end == '\0' && shards >= 1 && shards <= 32,
             "FL_SIM_BACKEND=tcp:<shards> needs 1 <= shards <= 32");
  cfg.kind = BackendKind::Tcp;
  cfg.tcp_shards = static_cast<unsigned>(shards);
  return cfg;
}

std::unique_ptr<DeliveryBackend> make_backend(const BackendConfig& cfg,
                                              std::size_t num_nodes) {
  switch (cfg.kind) {
    case BackendKind::Tcp:
      return fl::net::make_tcp_backend(num_nodes, cfg.tcp_shards);
    case BackendKind::InProcess:
      break;
  }
  return std::make_unique<InProcessBackend>(num_nodes);
}

// ------------------------------------------------------ InProcessBackend

InProcessBackend::InProcessBackend(std::size_t num_nodes) {
  arena_offsets_.assign(num_nodes + 1, 0);
}

void InProcessBackend::on_plan(Network& net) {
  chunk_weight_.assign(net.shards_.size(), 0);
  if (net.congest_.enforced()) {
    // Budget state is per *directed* edge (index 2e + direction); carry
    // queues and admitted buffers are per destination shard. None of it
    // exists in LOCAL mode, which keeps the unbudgeted engine untouched.
    congest_edges_.assign(
        2 * static_cast<std::size_t>(net.graph_->num_edges()),
        EdgeBudgetState{});
    congest_chunks_.resize(net.shards_.size());
    congest_counts_.assign(net.graph_->num_nodes(), 0);
  }
}

InboxView InProcessBackend::inbox(NodeId v) const {
  return arena_.range(arena_offsets_[v], arena_offsets_[v + 1]);
}

std::uint64_t InProcessBackend::max_carried_words() const {
  std::uint64_t max_words = 0;
  for (const auto& chunk : congest_chunks_)
    for (std::size_t i = 0; i < chunk.carry.size(); ++i)
      max_words = std::max<std::uint64_t>(
          max_words, chunk.carry.header(i).size_hint_words);
  return max_words;
}

std::uint64_t InProcessBackend::plane_allocations() const {
  std::uint64_t total = arena_.allocations() + arena_next_.allocations();
  for (const auto& chunk : congest_chunks_) {
    total += chunk.carry.allocations() + chunk.carry_next.allocations() +
             chunk.admitted.allocations();
  }
  return total;
}

void InProcessBackend::debug_mutate_carry(Network& net, unsigned chunk) {
  FL_REQUIRE(chunk < congest_chunks_.size(), "carry chunk out of range");
  if (net.check_) net.check_->touch_carry(chunk, "carry queue");
  // Harmless when legally reached: the queue's contents are untouched.
  auto& q = congest_chunks_[chunk].carry_next;
  q.reserve(q.size());
}

std::uint64_t InProcessBackend::merge_barrier(Network& net) {
  // Phase 2 — merge lanes: this round's sends become next round's inboxes.
  std::uint64_t count = 0;
  for (const auto& lane : net.lanes_) count += lane.outbox.size();
  {
    const obs::SpanScope span(net.trace_.get(), obs::SpanKind::MergePhase, 0,
                              net.round_);
    merge_lanes(net, count);
  }
  // Phase 2b — congest admission: the merged arena is the canonical
  // (thread-count-invariant) candidate order, so metering it — rather
  // than the per-lane outboxes — keeps budgeted delivery bit-identical
  // across lane counts for free. `count` becomes what was *delivered*.
  if (net.congest_.enforced()) {
    const obs::SpanScope span(net.trace_.get(), obs::SpanKind::AdmitPhase, 0,
                              net.round_);
    count = congest_admit(net);
  }
  return count;
}

void InProcessBackend::merge_lanes(Network& net, std::uint64_t total) {
  // Deterministic shard merge into the flat arena, in two steps that touch
  // each message exactly once (PR 2 measured an extra message pass at
  // ~25% end-to-end, so the merge must stay offsets-arithmetic + one
  // relocation):
  //
  //   1. Offsets: walk destinations in order; within a destination, give
  //      lane s the slot range after lanes < s (counts were kept by
  //      enqueue). The same walk writes each lane's private scatter
  //      cursors, zeroes its counts for the next round, and leaves
  //      arena_offsets_ as the final CSR table directly. With a pool the
  //      walk runs chunk-parallel over the node shards: each chunk totals
  //      its counts, a sequential O(S) exclusive prefix over the chunk
  //      totals seeds each chunk's base offset, and a second chunked pass
  //      lays out offsets + cursors from those bases — the resulting
  //      arithmetic is identical to the sequential walk.
  //   2. Relocation: every lane scatters its own outbox in send order.
  //      Cursor ranges are disjoint per (lane, destination), so lanes
  //      relocate concurrently with no shared writes.
  //
  // Send order within a lane is sequential order within its contiguous
  // shard, and step 1 ordered lanes ascending within each destination, so
  // per-destination arrival order is bit-identical to the sequential run
  // — the counting sort is stable across the shard concatenation. The
  // same property is what makes the TCP backend's shard processes agree
  // with the parent: any contiguous ascending partition merges to the
  // same per-destination order (ascending sender id, send order within).
  // arena_offsets_ is deliberately 32-bit (half the randomly accessed side
  // array); a round with >= 2^32 - 1 messages would silently wrap it, so
  // the large-n path must die here with a message naming the cure.
  FL_REQUIRE(total < std::numeric_limits<std::uint32_t>::max(),
             "round message count overflows the 32-bit arena offsets "
             "(>= 2^32 - 1 messages in one round); split the round or "
             "promote arena_offsets_ to uint64_t");
  const NodeId n = net.graph_->num_nodes();
  if (!net.pool_) {
    LaneScope scope(net.check_.get(), 0, EnginePhase::Merge);
    std::uint32_t sum = 0;
    for (NodeId v = 0; v < n; ++v) {
      if (net.check_) net.check_->touch_merge_dest(v, "per-destination offsets");
      arena_offsets_[v] = sum;
      for (auto& lane : net.lanes_) {
        const std::uint32_t c = lane.dest_counts[v];
        lane.dest_counts[v] = 0;  // ready for next round's enqueues
        lane.cursors[v] = sum;
        sum += c;
      }
    }
    arena_offsets_[n] = sum;
  } else {
    // Chunk c owns destination range shards_[c]; it only touches
    // dest_counts/cursors entries inside that range (across all lanes),
    // so the two chunked passes share no writable state between chunks.
    net.pool_->run([&](unsigned c) {
      LaneScope scope(net.check_.get(), c, EnginePhase::Merge);
      const ShardRange range = net.shards_[c];
      std::uint64_t w = 0;
      for (NodeId v = range.begin; v < range.end; ++v)
        for (const auto& lane : net.lanes_) w += lane.dest_counts[v];
      chunk_weight_[c] = w;
    });
    std::uint64_t base = 0;
    for (auto& w : chunk_weight_) {
      const std::uint64_t c = w;
      w = base;
      base += c;
    }
    net.pool_->run([&](unsigned c) {
      LaneScope scope(net.check_.get(), c, EnginePhase::Merge);
      const ShardRange range = net.shards_[c];
      auto sum = static_cast<std::uint32_t>(chunk_weight_[c]);
      for (NodeId v = range.begin; v < range.end; ++v) {
        if (net.check_) net.check_->touch_merge_dest(v, "per-destination offsets");
        arena_offsets_[v] = sum;
        for (auto& lane : net.lanes_) {
          const std::uint32_t cnt = lane.dest_counts[v];
          lane.dest_counts[v] = 0;
          lane.cursors[v] = sum;
          sum += cnt;
        }
      }
    });
    arena_offsets_[n] = static_cast<std::uint32_t>(total);
  }
  arena_.resize(static_cast<std::size_t>(total));
  auto scatter = [&](unsigned s) {
    LaneScope scope(net.check_.get(), s, EnginePhase::Merge);
    const obs::SpanScope span(net.trace_.get(), obs::SpanKind::MergeLane, s,
                              net.round_);
    // The scatter writes arena slots for *foreign* destinations — that is
    // the merge contract (cursor ranges are disjoint per lane) — but it
    // may only drain its own outbox and cursors. Headers relocate with a
    // plain 16-byte assignment; payloads move once, here.
    if (net.check_) net.check_->touch_lane(s, EnginePhase::Merge,
                                           "outbox scatter");
    SendLane& lane = net.lanes_[s];
    for (std::size_t i = 0; i < lane.outbox.size(); ++i) {
      const MessageHeader& h = lane.outbox.header(i);
      const std::uint32_t slot = lane.cursors[h.to]++;
      arena_.header(slot) = h;
      arena_.payload(slot) = std::move(lane.outbox.payload(i));
    }
    lane.outbox.clear();
  };
  if (net.pool_) {
    net.pool_->run(scatter);
  } else {
    // Sequential delivery is not always single-lane: a TCP shard child
    // keeps one lane per peer shard and merges them all on one thread.
    for (unsigned s = 0; s < net.lanes_.size(); ++s) scatter(s);
  }
  for (auto& lane : net.lanes_) {
    net.metrics_.words_total += lane.words;
    lane.words = 0;
    if (lane.max_words > net.metrics_.max_message_words)
      net.metrics_.max_message_words = lane.max_words;  // lane max is monotone
  }
}

std::uint64_t InProcessBackend::congest_admit(Network& net) {
  // The CONGEST admission pass (congest.hpp). Candidates for node v this
  // round are its chunk's carried messages for v (FIFO, from earlier
  // rounds) followed by v's freshly merged arena segment; both orders are
  // bit-identical across thread counts, so admission is too. Per directed
  // edge the rule is a B-words-per-round FIFO channel:
  //
  //   * on the edge's first touch of a round its capacity is B, plus the
  //     capacity it banked while blocked in the immediately preceding
  //     round(s) — that is what lets one K-word message cross in
  //     ceil(K / B) rounds instead of livelocking;
  //   * a message is admitted iff the edge still has capacity >= its
  //     words and no earlier message was deferred this round (FIFO: once
  //     one message on the edge waits, everything behind it waits);
  //   * under Strict nothing ever waits — the first overflow throws.
  //
  // Three steps mirror the offsets pass: decide (chunk-parallel, all
  // state destination-owned), prefix chunk totals (sequential O(S)),
  // relocate into a fresh arena + rewrite offsets (chunk-parallel).
  const std::uint64_t budget = net.congest_.words_per_edge_per_round;
  const bool strict = net.congest_.policy == CongestPolicy::Strict;
  const std::uint64_t stamp = net.round_ + 1;  // this round; never the 0 init
  auto decide = [&](unsigned c) {
    LaneScope scope(net.check_.get(), c, EnginePhase::Admit);
    const obs::SpanScope span(net.trace_.get(), obs::SpanKind::AdmitLane, c,
                              net.round_);
    const ShardRange range = net.shards_[c];
    CongestChunk& chunk = congest_chunks_[c];
    if (net.check_) net.check_->touch_carry(c, "carry queue");
    chunk.admitted.clear();
    chunk.carry_next.clear();
    // The budget decision reads only the 16-byte header; the payload is
    // moved once, wherever the message lands (admitted or carried). The
    // Strict throw reads the payload type, but that path never returns.
    auto consider = [&](const MessageHeader& h, Payload& p) {
      const std::size_t key = 2 * static_cast<std::size_t>(h.edge) +
                              (h.to > h.from ? 1 : 0);
      // A directed edge delivers to exactly one node, so its budget state
      // belongs to the destination's chunk — the property that lets the
      // admission pass parallelize with no shared writes.
      if (net.check_) net.check_->touch_admit_dest(h.to, "per-edge budget tally");
      EdgeBudgetState& st = congest_edges_[key];
      if (st.stamp != stamp) {
        const bool backlogged = st.blocked && st.stamp + 1 == stamp;
        st.remaining = (backlogged ? st.remaining : 0) + budget;
        st.blocked = false;
        st.stamp = stamp;
      }
      const std::uint64_t w = h.size_hint_words;
      if (!st.blocked && st.remaining >= w) {
        st.remaining -= w;
        chunk.admitted.push_back(h, std::move(p));
        return;
      }
      if (strict) {
        const std::type_info* held = p.type();
        throw CongestViolation(
            "CONGEST budget exceeded: edge " + std::to_string(h.edge) +
                " (" + std::to_string(h.from) + " -> " +
                std::to_string(h.to) + ") would carry " +
                std::to_string(budget - st.remaining + w) + " words in round " +
                std::to_string(net.round_) + " (budget " +
                std::to_string(budget) +
                " words/edge/round); offending payload: " +
                (held == nullptr ? std::string("<empty>")
                                 : detail::type_name(*held)) +
                "; delivery backend: " + std::string(name()),
            h.edge, h.from, h.to, net.round_, budget - st.remaining + w,
            budget);
      }
      st.blocked = true;
      ++chunk.deferred_events;
      if (net.check_) net.check_->touch_carry(c, "carry queue");
      chunk.carry_next.push_back(h, std::move(p));
    };
    std::size_t cursor = 0;
    for (NodeId v = range.begin; v < range.end; ++v) {
      const std::size_t before = chunk.admitted.size();
      for (; cursor < chunk.carry.size() && chunk.carry.header(cursor).to == v;
           ++cursor)
        consider(chunk.carry.header(cursor), chunk.carry.payload(cursor));
      for (std::uint32_t i = arena_offsets_[v]; i < arena_offsets_[v + 1]; ++i)
        consider(arena_.header(i), arena_.payload(i));
      congest_counts_[v] =
          static_cast<std::uint32_t>(chunk.admitted.size() - before);
    }
    chunk_weight_[c] = chunk.admitted.size();
  };
  if (net.pool_) {
    net.pool_->run(decide);
  } else {
    for (unsigned c = 0; c < congest_chunks_.size(); ++c) decide(c);
  }
  std::uint64_t admitted_total = 0;
  carry_total_ = 0;
  for (unsigned c = 0; c < congest_chunks_.size(); ++c) {
    CongestChunk& chunk = congest_chunks_[c];
    chunk.carry.swap(chunk.carry_next);
    carry_total_ += chunk.carry.size();
    net.metrics_.deferrals_total += chunk.deferred_events;
    chunk.deferred_events = 0;
    const std::uint64_t w = chunk_weight_[c];
    chunk_weight_[c] = admitted_total;  // becomes the chunk's arena base
    admitted_total += w;
  }
  if (carry_total_ > net.metrics_.carry_peak)
    net.metrics_.carry_peak = carry_total_;
  if (net.trace_ && carry_total_ > 0) {
    // Per-directed-edge carry occupancy: within a chunk's carry the same
    // directed edge's messages need not be contiguous (arrival order
    // interleaves edges sharing a destination), so count runs over the
    // sorted key list. Adds are order-independent, the sort makes the
    // walk deterministic anyway, and the O(c log c) cost exists only with
    // tracing on.
    std::vector<std::uint64_t> keys;
    keys.reserve(static_cast<std::size_t>(carry_total_));
    for (const auto& chunk : congest_chunks_) {
      for (std::size_t i = 0; i < chunk.carry.size(); ++i) {
        const MessageHeader& h = chunk.carry.header(i);
        keys.push_back(2 * static_cast<std::uint64_t>(h.edge) +
                       (h.to > h.from ? 1 : 0));
      }
    }
    std::sort(keys.begin(), keys.end());
    for (std::size_t i = 0; i < keys.size();) {
      std::size_t j = i;
      while (j < keys.size() && keys[j] == keys[i]) ++j;
      net.trace_->edge_carry_hist().add(j - i);
      i = j;
    }
  }
  FL_REQUIRE(admitted_total < std::numeric_limits<std::uint32_t>::max(),
             "admitted message count overflows the 32-bit arena offsets "
             "(>= 2^32 - 1 messages admitted in one round); split the round "
             "or promote arena_offsets_ to uint64_t");
  arena_next_.resize(static_cast<std::size_t>(admitted_total));
  auto relocate = [&](unsigned c) {
    LaneScope scope(net.check_.get(), c, EnginePhase::Admit);
    const obs::SpanScope span(net.trace_.get(), obs::SpanKind::AdmitLane, c,
                              net.round_);
    const ShardRange range = net.shards_[c];
    CongestChunk& chunk = congest_chunks_[c];
    auto base = static_cast<std::uint32_t>(chunk_weight_[c]);
    for (std::size_t i = 0; i < chunk.admitted.size(); ++i) {
      arena_next_.header(base + i) = chunk.admitted.header(i);
      arena_next_.payload(base + i) = std::move(chunk.admitted.payload(i));
    }
    for (NodeId v = range.begin; v < range.end; ++v) {
      if (net.check_) net.check_->touch_admit_dest(v, "admitted offsets");
      arena_offsets_[v] = base;
      base += congest_counts_[v];
    }
  };
  if (net.pool_) {
    net.pool_->run(relocate);
  } else {
    for (unsigned c = 0; c < congest_chunks_.size(); ++c) relocate(c);
  }
  arena_offsets_[net.graph_->num_nodes()] =
      static_cast<std::uint32_t>(admitted_total);
  arena_.swap(arena_next_);
  return admitted_total;
}

}  // namespace fl::sim
