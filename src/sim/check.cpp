#include "sim/check.hpp"

#include <cstdlib>
#include <cstring>

namespace fl::sim {

thread_local OwnershipChecker::Binding* OwnershipChecker::tl_binding_ =
    nullptr;

void OwnershipChecker::push(Binding* b) {
  b->prev = tl_binding_;
  tl_binding_ = b;
}

void OwnershipChecker::pop(Binding* b) {
  tl_binding_ = b->prev;
}

const char* phase_name(EnginePhase phase) {
  switch (phase) {
    case EnginePhase::Step: return "step";
    case EnginePhase::Merge: return "merge";
    case EnginePhase::Admit: return "admit";
  }
  return "?";
}

bool default_check_enabled() {
  const char* env = std::getenv("FL_SIM_CHECK");
  if (env == nullptr || *env == '\0' || std::strcmp(env, "0") == 0)
    return false;
  FL_REQUIRE(std::strcmp(env, "1") == 0, "FL_SIM_CHECK must be 0 or 1");
  return true;
}

void OwnershipChecker::bind_shards(const std::vector<ShardRange>& shards,
                                   graph::NodeId n) {
  owner_.assign(n, 0);
  for (std::uint32_t s = 0; s < shards.size(); ++s)
    for (graph::NodeId v = shards[s].begin; v < shards[s].end; ++v)
      owner_[v] = s;
}

const OwnershipChecker::Binding* OwnershipChecker::current() const {
  for (const Binding* b = tl_binding_; b != nullptr; b = b->prev)
    if (b->checker == this) return b;
  return nullptr;
}

void OwnershipChecker::fail(const std::string& what, graph::NodeId node,
                            unsigned owner_lane, const Binding& b) const {
  std::string msg = "FL_SIM_CHECK: " + what;
  if (node != graph::kInvalidNode)
    msg += " of node " + std::to_string(node) + " (owned by lane " +
           std::to_string(owner_lane) + ")";
  msg += " touched by lane " + std::to_string(b.lane) + " in the " +
         phase_name(b.phase) + " phase of round " + std::to_string(round_);
  throw CheckViolation(msg, node, owner_lane, b.lane, b.phase, round_);
}

void OwnershipChecker::touch_node(graph::NodeId v, const char* what) const {
  const Binding* b = current();
  if (b == nullptr) return;  // engine not stepping here: unchecked by design
  if (b->phase != EnginePhase::Step || owner_[v] != b->lane)
    fail(std::string(what) + " (step-phase, owner-lane only)", v, owner_[v],
         *b);
}

void OwnershipChecker::touch_lane(unsigned lane, EnginePhase expected,
                                  const char* what) const {
  const Binding* b = current();
  if (b == nullptr) return;
  if (b->phase != expected || b->lane != lane)
    fail(std::string(what) + " of lane " + std::to_string(lane) + " (" +
             phase_name(expected) + "-phase, owner-lane only)",
         graph::kInvalidNode, lane, *b);
}

void OwnershipChecker::touch_merge_dest(graph::NodeId v,
                                        const char* what) const {
  const Binding* b = current();
  if (b == nullptr) return;
  if (b->phase != EnginePhase::Merge || owner_[v] != b->lane)
    fail(std::string(what) + " (merge-phase, destination-chunk only)", v,
         owner_[v], *b);
}

void OwnershipChecker::touch_admit_dest(graph::NodeId v,
                                        const char* what) const {
  const Binding* b = current();
  if (b == nullptr) return;
  if (b->phase != EnginePhase::Admit || owner_[v] != b->lane)
    fail(std::string(what) + " (admit-phase, destination-chunk only)", v,
         owner_[v], *b);
}

void OwnershipChecker::touch_carry(unsigned chunk, const char* what) const {
  const Binding* b = current();
  if (b == nullptr) return;
  if (b->phase != EnginePhase::Admit || b->lane != chunk)
    fail(std::string(what) + " of chunk " + std::to_string(chunk) +
             " (admit-phase, owner-chunk only)",
         graph::kInvalidNode, chunk, *b);
}

}  // namespace fl::sim
