// Node-program interface for the synchronous LOCAL simulator.
//
// A protocol is a class derived from NodeProgram, instantiated once per
// node. Each round the network calls on_round() with the node's inbox; the
// program reacts and sends messages through the Context. The model
// assumptions of the paper (Section 1.1) are encoded in Context:
//   * nodes know an O(1)-approximate upper bound on log n  -> log_n_bound();
//   * unique edge IDs known to both endpoints              -> incident_edges();
//   * (optionally, KT1) neighbour IDs                      -> neighbor() —
//     only legal when the network was built with Knowledge::KT1.
// Nodes have NO other a-priori topology knowledge; programs must not touch
// the Graph directly (the simulator owns it).
#pragma once

#include <cstdint>
#include <span>

#include "graph/ids.hpp"
#include "sim/message.hpp"
#include "util/rng.hpp"

namespace fl::sim {

/// How much a node initially knows about its incident edges.
enum class Knowledge {
  KT0,      ///< degree + local port numbers only
  EdgeIds,  ///< the paper's model: unique edge IDs, known at both endpoints
  KT1,      ///< edge IDs + the ID of the other endpoint of every edge
};

class Network;
struct SendLane;

/// Per-node view of the network handed to programs each round.
///
/// A Context is bound to the execution lane stepping the node this round:
/// sends land in that lane's private outbox, so parallel shard stepping
/// (see exec.hpp) never contends on shared send state. The two-argument
/// form resolves the network's lane 0 at each send (never caching the
/// lane), so it stays valid across the lane re-partition at run start.
class Context {
 public:
  Context(Network& net, graph::NodeId self)
      : net_(&net), self_(self), lane_(nullptr) {}
  Context(Network& net, graph::NodeId self, SendLane& lane)
      : net_(&net), self_(self), lane_(&lane) {}

  graph::NodeId self() const { return self_; }
  std::size_t degree() const;

  /// Unique IDs of this node's incident edges (requires EdgeIds or KT1).
  std::span<const graph::EdgeId> incident_edges() const;

  /// Edge id of the port-th incident edge (any knowledge level; ports are
  /// the node's private local numbering 0..deg-1).
  graph::EdgeId edge_at_port(std::size_t port) const;

  /// ID of the other endpoint of `edge` (requires KT1).
  graph::NodeId neighbor(graph::EdgeId edge) const;

  /// Send `payload` over `edge` this round; delivered next round — unless
  /// the network enforces a CONGEST budget (sim/congest.hpp), in which
  /// case delivery may slip to a later round once the edge's words-per-
  /// round limit fills (order per edge stays FIFO). `size_hint_words` is
  /// the message's logical size against that budget and the words metric;
  /// it is clamped to at least 1 (a message is never free). Any movable
  /// value converts to Payload; small trivially-copyable structs travel
  /// allocation-free (see payload.hpp).
  void send(graph::EdgeId edge, Payload payload,
            std::uint32_t size_hint_words = 1);

  /// Current round number (0-based).
  std::size_t round() const;

  /// The promised O(1)-approximate upper bound on log2 n.
  double log_n_bound() const;

  /// Poly(n) upper bound on n implied by log_n_bound().
  double n_bound() const;

  /// This node's private random stream (deterministic per run seed).
  util::Xoshiro256& rng();

  /// Event-driven barrier fact (Network::round_silent): true when the last
  /// merge delivered nothing and no message is parked in a congest carry
  /// queue — i.e. all traffic sent so far has drained. A merge-barrier
  /// output, identical for every node in the round and bit-identical at
  /// any thread count or CONGEST budget; stable for the whole step phase.
  /// Phase-scheduled protocols advance their logical phase on silence
  /// instead of counting provisioned rounds.
  bool network_silent() const;

 private:
  Network* net_;
  graph::NodeId self_;
  SendLane* lane_;  ///< stepping lane; null = resolve lane 0 per send
};

/// Base class for protocols. One instance per node.
class NodeProgram {
 public:
  virtual ~NodeProgram() = default;

  /// Called once, before the first round. May send messages.
  virtual void on_start(Context& ctx) = 0;

  /// Called once per round with all messages delivered this round. The
  /// inbox is a zipped view into the delivery arena's header/payload
  /// planes (message.hpp); views and payload references obtained from it
  /// are valid only until on_round returns.
  virtual void on_round(Context& ctx, InboxView inbox) = 0;

  /// A network halts when every program reports done() and no messages are
  /// in flight. Programs may keep receiving messages after done() turns
  /// true (e.g. stragglers); they simply go back to not-done if needed.
  ///
  /// Contract: the engine re-reads done() exactly once per step, right
  /// after on_start/on_round returns — the only moments done-state may
  /// change — and tracks transitions in per-shard counters (so the
  /// quiesce check does no per-node work). done() must therefore be a
  /// cheap, side-effect-free predicate of the program's state, and that
  /// state must not be mutated from outside the simulation while a run
  /// may still continue.
  virtual bool done() const = 0;

  /// Minimum knowledge this protocol needs; the network enforces it.
  virtual Knowledge required_knowledge() const { return Knowledge::EdgeIds; }
};

}  // namespace fl::sim
