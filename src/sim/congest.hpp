// CONGEST bandwidth budgets for the round engine.
//
// The LOCAL model the simulator speaks natively places no bound on message
// size; the paper's message-reduction theorems are nevertheless stated
// against CONGEST-style comparisons, where every edge carries at most B
// words per round. A CongestConfig turns that comparison from advisory
// (words were only *recorded* per message) into an enforced property of
// the execution: at the merge barrier the engine tallies words per
// *directed* edge per round and applies the configured policy.
//
//   * Defer — the faithful CONGEST semantics. Each directed edge is a
//     FIFO channel with a bandwidth of B words per round: messages that
//     do not fit spill into a carry queue and re-enter delivery on later
//     rounds, stretching RunStats.rounds exactly the way a real CONGEST
//     execution would. While an edge stays backlogged its unused capacity
//     banks up, so one K-word message crosses in ceil(K / B) rounds and a
//     pipelined backlog drains at B words per round. Messages are atomic:
//     a message is delivered in the round its last word arrives.
//   * Strict — a compliance check. The first round in which any directed
//     edge would exceed its budget throws a CongestViolation naming the
//     edge, round, endpoints, word tally, and the offending payload type,
//     so a protocol claiming CONGEST compliance fails fast and loudly.
//
// Enforcement happens after the (unchanged) deterministic shard merge, in
// a pass that is chunk-parallel over the destination shards: a directed
// edge delivers to exactly one node, so every per-edge budget tally and
// carry queue is owned by exactly one shard — parallel stepping stays
// contention-free and admission order is bit-identical for every thread
// count and balance mode, just like delivery itself.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "graph/ids.hpp"

namespace fl::sim {

/// What to do with a round's over-budget words on a directed edge.
enum class CongestPolicy : std::uint8_t {
  /// Spill into a per-edge FIFO carry queue; delivery resumes on later
  /// rounds (rounds stretch, nothing is lost).
  Defer,
  /// Throw CongestViolation at the first over-budget edge-round.
  Strict,
};

/// Per-edge bandwidth budget threaded through sim::Network. The default
/// (kUnlimited) is the plain LOCAL model: no tally, no admission pass, no
/// overhead — bit-for-bit the unbudgeted engine.
struct CongestConfig {
  static constexpr std::uint64_t kUnlimited = ~std::uint64_t{0};

  /// Words each directed edge may deliver per round; >= 1 when finite.
  std::uint64_t words_per_edge_per_round = kUnlimited;
  CongestPolicy policy = CongestPolicy::Defer;

  bool enforced() const { return words_per_edge_per_round != kUnlimited; }
};

/// CongestConfig{} unless FL_SIM_CONGEST is set. Accepted forms:
/// "<words>" (Defer) or "<words>:defer" / "<words>:strict"; words must be a
/// positive integer. Mirrors default_parallel_config(): the environment
/// seeds every Network's default, callers may still override per run.
CongestConfig default_congest_config();

/// Thrown by CongestPolicy::Strict when a directed edge's word tally for
/// one round exceeds the budget. Derives from std::runtime_error (not
/// ContractViolation: the *protocol traffic* is over budget, no API
/// contract is broken) and carries the offending coordinates for tests
/// and tooling.
class CongestViolation : public std::runtime_error {
 public:
  CongestViolation(std::string what, graph::EdgeId edge, graph::NodeId from,
                   graph::NodeId to, std::size_t round, std::uint64_t words,
                   std::uint64_t budget)
      : std::runtime_error(std::move(what)), edge(edge), from(from), to(to),
        round(round), words(words), budget(budget) {}

  graph::EdgeId edge;    ///< physical edge that overflowed
  graph::NodeId from;    ///< sending endpoint (the directed side)
  graph::NodeId to;      ///< receiving endpoint
  std::size_t round;     ///< round whose tally overflowed
  std::uint64_t words;   ///< tally including the rejected message
  std::uint64_t budget;  ///< words_per_edge_per_round
};

}  // namespace fl::sim
