// Process-wide wire-type registry for Payload decoding.
//
// Encodable payload types register themselves here during static
// initialization (Payload::wire_registered_ odr-used from the value
// constructor), keyed by the FNV-1a-64 hash of the mangled type name.
// fork()ed shard children inherit the fully-populated registry, so a
// child can decode any type its binary can construct — no handshake or
// schema exchange on the wire.

#include "sim/payload.hpp"

#include <mutex>
#include <stdexcept>
#include <unordered_map>

namespace fl::sim::detail {

namespace {

struct WireRegistry {
  std::mutex mu;
  std::unordered_map<std::uint64_t, const PayloadOps*> types;
};

WireRegistry& registry() {
  // Function-local static: safe to call from any static initializer.
  static WireRegistry r;
  return r;
}

}  // namespace

bool register_wire_type(std::uint64_t id, const PayloadOps* ops) {
  WireRegistry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto [it, fresh] = r.types.emplace(id, ops);
  if (!fresh && it->second != ops) {
    // 64-bit FNV over distinct mangled names colliding is astronomically
    // unlikely; failing loudly beats decoding the wrong type.
    throw std::runtime_error("wire type id collision: " +
                             type_name(*ops->type) + " vs " +
                             type_name(*it->second->type));
  }
  return true;
}

const PayloadOps* find_wire_type(std::uint64_t id) noexcept {
  WireRegistry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.types.find(id);
  return it == r.types.end() ? nullptr : it->second;
}

}  // namespace fl::sim::detail
