// Small-buffer type-erased message payloads for the delivery hot path.
//
// fl::sim::Payload replaces the seed's any-based type erasure. The
// delivery loop moves every message at least twice per round (outbox ->
// arena scatter), and the standard any charges an indirect manager call —
// plus a heap allocation for anything bigger than one pointer — per move.
// Payload is designed around the relocation cost instead:
//
//   * 24 bytes of inline storage (kInlineSize). Every hot-path payload
//     struct in the repo fits; protocols static_assert that theirs do, so
//     payload growth is a compile error, not a silent throughput
//     regression.
//   * Trivially-copyable inline payloads relocate with one tag-bit branch
//     plus a fixed-size memcpy — no vtable, no manager call, no per-type
//     dispatch. Heap-held payloads relocate the same way (the pointer is
//     memcpy-safe), so only non-trivially-copyable *inline* types (the
//     shared_ptr-carrying tree-session structs) pay an indirect call.
//   * Oversized / over-aligned / throwing-move types fall back to a single
//     heap allocation, exactly what the old erasure did for them.
//   * payload_as<T> reports the *expected vs. held* type names on
//     mismatch (BadPayloadCast) instead of a bare bad-cast.
//   * Payloads are wire-encodable as well as inline-relocatable: the ops
//     table carries serialize / deserialize hooks (explicit little-endian
//     framing via sim/wire.hpp) plus a stable wire-type id, and every
//     encodable type self-registers in a process-wide decode registry at
//     static-init time. That is what lets a delivery backend ship the
//     same payloads across process boundaries (src/net's TCP shard
//     backend) while the in-process engine stays the oracle. Types
//     without an encoder still work in-process; wire_encode names the
//     offending type when a network backend meets one.
//
// The container is move-only: a Payload uniquely owns its value. Protocols
// that flood one logical value to many neighbours construct one Payload
// per send from the (copyable) payload struct.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <string>
#include <type_traits>
#include <typeinfo>
#include <utility>

#include "sim/wire.hpp"

#if defined(__GNUG__)
#include <cstdlib>
#include <cxxabi.h>
#endif

namespace fl::sim {

class Payload;

namespace detail {

/// Per-type operations, instantiated once per payload type. Only the slow
/// paths live here; trivially-relocatable payloads never call through it
/// on a move, and the wire hooks run only when a network backend frames
/// the value for a socket.
struct PayloadOps {
  /// Move-construct `dst` from `src`, destroying `src`. Null for types
  /// relocated by memcpy (trivially-copyable inline, heap-held).
  void (*relocate)(void* dst, void* src) noexcept;
  /// Destroy the value rooted at the storage slot (for heap-held types the
  /// slot holds the owning pointer). Null when destruction is a no-op.
  void (*destroy)(void* slot) noexcept;
  /// Encode the value rooted at the storage slot onto the wire (explicit
  /// little-endian framing, sim/wire.hpp). Null when the type has no
  /// encoder — in-process delivery never needs one.
  void (*serialize)(const void* slot, WireWriter& out);
  /// Decode one value from the wire into `out` (empty on entry). Null
  /// exactly when `serialize` is.
  void (*deserialize)(Payload& out, WireReader& in);
  /// Stable wire-type id: FNV-1a-64 of the mangled type name. Identical
  /// across fork()ed shard processes (one binary image); null when the
  /// type is not wire-encodable.
  std::uint64_t (*wire_id)();
  /// For diagnostics only.
  const std::type_info* type;
};

/// Process-wide wire-type registry (src/sim/payload.cpp). Registration
/// happens during static initialization — every encodable payload type a
/// binary can construct is decodable in that binary, including in shard
/// children forked before any message flows.
bool register_wire_type(std::uint64_t id, const PayloadOps* ops);
const PayloadOps* find_wire_type(std::uint64_t id) noexcept;

/// Wire hooks per type, selected on encodability so non-encodable types
/// never instantiate an encoder (the primary leaves all hooks null).
/// Defined after Payload — deserialize constructs one.
template <typename T, bool Encodable>
struct WireOps {
  static constexpr void (*serialize)(const void*, WireWriter&) = nullptr;
  static constexpr void (*deserialize)(Payload&, WireReader&) = nullptr;
  static constexpr std::uint64_t (*wire_id)() = nullptr;
};

/// Demangle a std::type_info name where the ABI allows; otherwise return
/// the raw (mangled) name.
inline std::string type_name(const std::type_info& t) {
#if defined(__GNUG__)
  int status = 0;
  char* demangled = abi::__cxa_demangle(t.name(), nullptr, nullptr, &status);
  if (status == 0 && demangled != nullptr) {
    std::string out(demangled);
    std::free(demangled);
    return out;
  }
#endif
  return t.name();
}

}  // namespace detail

/// Thrown by payload_as on a type mismatch; what() names both sides.
class BadPayloadCast final : public std::bad_cast {
 public:
  BadPayloadCast(const std::type_info& expected, const std::type_info* held)
      : what_("payload_as<" + detail::type_name(expected) + ">: payload " +
              (held == nullptr ? std::string("is empty")
                               : "holds " + detail::type_name(*held))) {}

  const char* what() const noexcept override { return what_.c_str(); }

 private:
  std::string what_;
};

class Payload {
 public:
  /// Inline small-buffer geometry. 24 bytes + the tagged ops word keep
  /// sizeof(Payload) == 32 — the payload plane's row size in the
  /// structure-of-arrays delivery arena (message.hpp pins it).
  static constexpr std::size_t kInlineSize = 24;
  static constexpr std::size_t kInlineAlign = 8;

  /// True when T is stored in the inline buffer (no allocation on send).
  template <typename T>
  static constexpr bool stores_inline =
      sizeof(T) <= kInlineSize && alignof(T) <= kInlineAlign &&
      std::is_nothrow_move_constructible_v<T>;

  /// True when relocating a Payload holding T is a raw memcpy (the arena
  /// scatter's fast path): trivially-copyable inline values and heap-held
  /// values (only the owning pointer moves).
  template <typename T>
  static constexpr bool trivially_relocatable =
      !stores_inline<T> || std::is_trivially_copyable_v<T>;

  Payload() noexcept = default;

  template <typename V, typename T = std::decay_t<V>,
            typename = std::enable_if_t<!std::is_same_v<T, Payload>>>
  Payload(V&& value) {  // NOLINT(google-explicit-constructor): any-style
    if constexpr (wire_encodable_v<T>) {
      // odr-use the registrar so T lands in the wire-decode registry at
      // static-init time (see wire_registered_).
      static_cast<void>(&wire_registered_<T>);
    }
    if constexpr (stores_inline<T>) {
      ::new (static_cast<void*>(storage_)) T(std::forward<V>(value));
      bits_ = tag_of<T>();
    } else {
      // Heap fallback (oversized / over-aligned / throwing-move types).
      // `new T` honours extended alignment since C++17; the owning pointer
      // is stored into the buffer by memcpy because no T* object ever
      // begins its lifetime there — a reinterpret_cast deref would read
      // through a pointer type the buffer never held.
      T* owner = new T(std::forward<V>(value));
      std::memcpy(storage_, &owner, sizeof(owner));
      bits_ = tag_of<T>();
    }
  }

  Payload(Payload&& other) noexcept { steal(other); }

  Payload& operator=(Payload&& other) noexcept {
    if (this != &other) {
      reset();
      steal(other);
    }
    return *this;
  }

  Payload(const Payload&) = delete;
  Payload& operator=(const Payload&) = delete;

  ~Payload() { reset(); }

  /// Destroy the held value (if any) and return to the empty state.
  void reset() noexcept {
    if (bits_ & kDestroyBit) ops()->destroy(storage_);
    bits_ = 0;
  }

  bool has_value() const noexcept { return bits_ != 0; }

  /// Pointer to the held T, or nullptr if the payload holds something
  /// else (or nothing). One integer compare: the tagged ops word is a
  /// compile-time constant per T.
  template <typename T>
  const T* get_if() const noexcept {
    if (bits_ != tag_of<T>()) return nullptr;
    if constexpr (stores_inline<T>) {
      return std::launder(reinterpret_cast<const T*>(storage_));
    } else {
      const T* owner;
      std::memcpy(&owner, storage_, sizeof(owner));
      return owner;
    }
  }

  template <typename T>
  T* get_if() noexcept {
    return const_cast<T*>(std::as_const(*this).get_if<T>());
  }

  /// typeid of the held value, or nullptr when empty. Diagnostics only.
  const std::type_info* type() const noexcept {
    return bits_ == 0 ? nullptr : ops()->type;
  }

  /// True when T can travel on the wire. Protocols static_assert this for
  /// their payload structs alongside stores_inline / trivially_relocatable
  /// so a non-encodable payload is a compile error, not a runtime throw
  /// on the first networked run.
  template <typename T>
  static constexpr bool wire_encodable = wire_encodable_v<std::decay_t<T>>;

  /// True when the *held* value can be wire-encoded (false when empty).
  bool can_wire_encode() const noexcept {
    return bits_ != 0 && ops()->serialize != nullptr;
  }

  /// Wire-type id of the held value: the key a receiver passes to
  /// wire_decode. Zero when empty or not encodable.
  std::uint64_t wire_type() const noexcept {
    return can_wire_encode() ? ops()->wire_id() : 0;
  }

  /// Encode the held value onto `out` (explicit little-endian framing).
  /// Throws WireError naming the held type when it has no encoder.
  void wire_encode(WireWriter& out) const {
    if (bits_ == 0) throw WireError("wire_encode: payload is empty");
    const detail::PayloadOps* o = ops();
    if (o->serialize == nullptr)
      throw WireError("payload type is not wire-encodable: " +
                      detail::type_name(*o->type) +
                      " (declare its fields with FL_WIRE_FIELDS)");
    o->serialize(storage_, out);
  }

  /// Decode one payload of the given wire type from `in`. Throws
  /// WireError on an id no type in this binary registered, or on a
  /// malformed stream.
  static Payload wire_decode(std::uint64_t wire_id, WireReader& in) {
    const detail::PayloadOps* o = detail::find_wire_type(wire_id);
    if (o == nullptr)
      throw WireError("wire_decode: unknown wire type id " +
                      std::to_string(wire_id));
    Payload out;
    o->deserialize(out, in);
    return out;
  }

 private:
  // Tag bits carried in the low bits of the ops pointer (PayloadOps
  // objects are at least 8-aligned). They let the relocation and
  // destruction fast paths branch without dereferencing the ops table.
  static constexpr std::uintptr_t kTrivialBit = 1;  // relocate == memcpy
  static constexpr std::uintptr_t kHeapBit = 2;     // slot holds owning T*
  static constexpr std::uintptr_t kDestroyBit = 4;  // destructor non-trivial
  static constexpr std::uintptr_t kTagMask = kTrivialBit | kHeapBit | kDestroyBit;
  // The three tag bits ride in the low bits of a PayloadOps address, so
  // every PayloadOps must sit on an 8-byte boundary. Three pointers make
  // that true on every sane ABI; this is the proof, not the hope.
  static_assert(alignof(detail::PayloadOps) > kTagMask,
                "PayloadOps alignment must leave the tag bits zero");

  template <typename T>
  struct OpsFor {
    static void relocate(void* dst, void* src) noexcept {
      T* s = std::launder(reinterpret_cast<T*>(src));
      ::new (dst) T(std::move(*s));
      s->~T();
    }
    static void destroy_inline(void* slot) noexcept {
      std::launder(reinterpret_cast<T*>(slot))->~T();
    }
    static void destroy_heap(void* slot) noexcept {
      T* owner;
      std::memcpy(&owner, slot, sizeof(owner));
      delete owner;
    }
  };

  template <typename T>
  static inline const detail::PayloadOps ops_instance = {
      stores_inline<T> && !std::is_trivially_copyable_v<T>
          ? &OpsFor<T>::relocate
          : nullptr,
      !stores_inline<T>
          ? &OpsFor<T>::destroy_heap
          : (std::is_trivially_destructible_v<T> ? nullptr
                                                 : &OpsFor<T>::destroy_inline),
      detail::WireOps<T, wire_encodable_v<T>>::serialize,
      detail::WireOps<T, wire_encodable_v<T>>::deserialize,
      detail::WireOps<T, wire_encodable_v<T>>::wire_id,
      &typeid(T)};

  /// Self-registration in the wire-decode registry: odr-used from the
  /// value constructor for encodable types, so registration runs during
  /// static initialization of any binary that can construct T.
  template <typename T>
  static inline const bool wire_registered_ = detail::register_wire_type(
      detail::WireOps<T, true>::id(), &ops_instance<T>);

  /// The ops pointer for T with its category bits, as a single word. Also
  /// the type-identity token compared by get_if (ops_instance<T> has one
  /// address program-wide).
  template <typename T>
  static std::uintptr_t tag_of() noexcept {
    std::uintptr_t bits =
        reinterpret_cast<std::uintptr_t>(&ops_instance<T>);
    if constexpr (trivially_relocatable<T>) bits |= kTrivialBit;
    if constexpr (!stores_inline<T>) bits |= kHeapBit | kDestroyBit;
    else if constexpr (!std::is_trivially_destructible_v<T>) bits |= kDestroyBit;
    return bits;
  }

  const detail::PayloadOps* ops() const noexcept {
    return reinterpret_cast<const detail::PayloadOps*>(bits_ & ~kTagMask);
  }

  /// Move `other`'s value into our (empty) storage; leaves `other` empty.
  void steal(Payload& other) noexcept {
    bits_ = other.bits_;
    if (bits_ & kTrivialBit) {
      // Fast path: trivially-copyable inline value or heap pointer — one
      // fixed-size memcpy, no per-type dispatch.
      std::memcpy(storage_, other.storage_, kInlineSize);
    } else if (bits_ != 0) {
      ops()->relocate(storage_, other.storage_);
    }
    other.bits_ = 0;
  }

  alignas(kInlineAlign) unsigned char storage_[kInlineSize];
  std::uintptr_t bits_ = 0;
};

static_assert(sizeof(Payload) == Payload::kInlineSize + sizeof(std::uintptr_t),
              "Payload must stay one inline buffer plus one tagged word");

namespace detail {

/// Wire hooks for encodable types. The slot-resolution mirrors get_if:
/// inline values live in the buffer, heap-held values behind the owning
/// pointer the buffer stores by memcpy.
template <typename T>
struct WireOps<T, true> {
  static std::uint64_t id() {
    static const std::uint64_t v = [] {
      const char* name = typeid(T).name();
      return fnv1a64(name, std::char_traits<char>::length(name));
    }();
    return v;
  }

  static void do_serialize(const void* slot, WireWriter& out) {
    if constexpr (Payload::stores_inline<T>) {
      wire_put(out, *std::launder(reinterpret_cast<const T*>(slot)));
    } else {
      const T* owner;
      std::memcpy(&owner, slot, sizeof(owner));
      wire_put(out, *owner);
    }
  }

  static void do_deserialize(Payload& out, WireReader& in) {
    out = Payload(wire_get<T>(in));
  }

  static constexpr void (*serialize)(const void*, WireWriter&) =
      &do_serialize;
  static constexpr void (*deserialize)(Payload&, WireReader&) =
      &do_deserialize;
  static constexpr std::uint64_t (*wire_id)() = &id;
};

}  // namespace detail

}  // namespace fl::sim
