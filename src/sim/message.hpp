// Messages exchanged over the simulated LOCAL network.
//
// The LOCAL model places no bound on message size, so payloads are
// type-erased (std::any): each protocol defines its own payload structs and
// the simulator only meters *counts* (the paper's message complexity is a
// count). An optional `size_hint_words` lets protocols self-report logical
// size so CONGEST-style comparisons remain possible.
#pragma once

#include <any>
#include <cstdint>

#include "graph/ids.hpp"

namespace fl::sim {

struct Message {
  graph::EdgeId edge = graph::kInvalidEdge;  ///< physical edge travelled
  graph::NodeId from = graph::kInvalidNode;  ///< filled in by the network
  graph::NodeId to = graph::kInvalidNode;    ///< filled in by the network
  std::uint32_t size_hint_words = 1;         ///< logical size (words)
  std::any payload;
};
// The three ids plus the size hint pack into 16 bytes ahead of the
// std::any (16 bytes on libstdc++) — delivery is a memory-bound move, so
// padding costs throughput directly. Asserted relative to sizeof(std::any)
// so fatter std::any implementations (libc++, MSVC) still build.
static_assert(sizeof(Message) <= 16 + sizeof(std::any),
              "Message fields no longer pack ahead of the payload");

/// Convenience accessor with a sharp error message on type mismatch.
template <typename T>
const T& payload_as(const Message& m) {
  const T* p = std::any_cast<T>(&m.payload);
  if (p == nullptr) throw std::bad_any_cast();
  return *p;
}

}  // namespace fl::sim
