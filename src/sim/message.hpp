// Messages exchanged over the simulated LOCAL network.
//
// The LOCAL model places no bound on message size, so payloads are
// type-erased: each protocol defines its own payload structs and the
// simulator only meters *counts* (the paper's message complexity is a
// count). `size_hint_words` is the protocol's self-reported logical size
// (clamped to >= 1 at enqueue — every message costs at least one word),
// and CONGEST-style comparisons are *enforced*, not just possible: under
// a finite sim::CongestConfig budget the merge barrier meters these hints
// against a per-directed-edge words-per-round limit, deferring (or, in
// Strict mode, rejecting) the overflow — see sim/congest.hpp.
//
// Payloads ride in fl::sim::Payload (payload.hpp), a move-only small-buffer
// container built for the delivery hot path: trivially-copyable structs up
// to Payload::kInlineSize bytes relocate with one branch and a memcpy
// (no type-erasure manager call, no allocation), oversized types fall
// back to one heap allocation, and payload_as<T> names the expected vs. held type
// on a mismatch. Each protocol static_asserts its hot-path structs stay
// inline, so payload growth is a compile error rather than a silent
// throughput regression.
#pragma once

#include <cstdint>

#include "graph/ids.hpp"
#include "sim/payload.hpp"

namespace fl::sim {

struct Message {
  graph::EdgeId edge = graph::kInvalidEdge;  ///< physical edge travelled
  graph::NodeId from = graph::kInvalidNode;  ///< filled in by the network
  graph::NodeId to = graph::kInvalidNode;    ///< filled in by the network
  std::uint32_t size_hint_words = 1;         ///< logical size (words)
  Payload payload;
};
// Delivery is a memory-bound move: the three ids plus the size hint pack
// into 16 bytes ahead of the 32-byte Payload, an exact 48-byte Message.
// This is asserted exactly — if a field (or Payload's geometry) grows, the
// assert fires instead of every arena round silently paying for padding.
static_assert(sizeof(Message) == 48, "Message must stay exactly 48 bytes");

/// Convenience accessor with a sharp error message on type mismatch: the
/// thrown BadPayloadCast names the expected and the held payload type.
template <typename T>
const T& payload_as(const Message& m) {
  if (const T* p = m.payload.get_if<T>()) return *p;
  throw BadPayloadCast(typeid(T), m.payload.type());
}

/// Pointer form of payload_as: nullptr instead of a throw on mismatch, for
/// protocols that dispatch on the payload type.
template <typename T>
const T* payload_if(const Message& m) {
  return m.payload.get_if<T>();
}

}  // namespace fl::sim
