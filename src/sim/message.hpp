// Messages exchanged over the simulated LOCAL network — stored as a
// structure of arrays.
//
// The LOCAL model places no bound on message size, so payloads are
// type-erased: each protocol defines its own payload structs and the
// simulator only meters *counts* (the paper's message complexity is a
// count). `size_hint_words` is the protocol's self-reported logical size
// (clamped to >= 1 at enqueue — every message costs at least one word),
// and CONGEST-style comparisons are *enforced*, not just possible: under
// a finite sim::CongestConfig budget the merge barrier meters these hints
// against a per-directed-edge words-per-round limit, deferring (or, in
// Strict mode, rejecting) the overflow — see sim/congest.hpp.
//
// Plane layout. A message is two records in two parallel arrays:
//
//   * MessageHeader — the 16-byte id plane (edge / from / to /
//     size_hint_words). Every engine pass that routes or meters messages
//     (merge offsets walk, counting-sort relocation, quiescence
//     accounting, the congest_admit budget pass) reads *only* this plane,
//     so those passes drag 16 bytes per message through memory, not 48.
//   * Payload (payload.hpp) — the 32-byte value plane, a move-only
//     small-buffer container; it is touched exactly twice per message
//     (relocated at the merge, read by the receiving program).
//
// MessagePlanes owns one pair of such arrays (the delivery arena, each
// lane's outbox, the congest carry queues are all MessagePlanes);
// MessageView is the zipped per-message view handed to node programs, and
// InboxView is the contiguous zipped range a program iterates. Programs
// never see the split: `for (const auto& m : inbox)` with `m.edge()` /
// `payload_as<T>(m)` reads exactly like the old array-of-structs API.
//
// Each protocol static_asserts its hot-path payload structs stay inline
// (Payload::stores_inline), so payload growth is a compile error rather
// than a silent throughput regression.
#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "graph/ids.hpp"
#include "sim/payload.hpp"

namespace fl::sim {

/// The id plane of one message. Trivially copyable by design: the merge
/// scatter and the admission relocate move headers with plain assignment
/// (a 16-byte copy), and header-only passes never fault in payload cache
/// lines.
struct MessageHeader {
  graph::EdgeId edge = graph::kInvalidEdge;  ///< physical edge travelled
  graph::NodeId from = graph::kInvalidNode;  ///< filled in by the network
  graph::NodeId to = graph::kInvalidNode;    ///< filled in by the network
  std::uint32_t size_hint_words = 1;         ///< logical size (words)
};
// The header plane's geometry is asserted exactly — if a field grows, the
// assert fires instead of every header-only pass silently paying for
// padding. Together with sizeof(Payload) == 32 (payload.hpp) a message
// still occupies the 48 bytes the old array-of-structs layout pinned.
static_assert(sizeof(MessageHeader) == 16,
              "MessageHeader must stay exactly 16 bytes");
static_assert(std::is_trivially_copyable_v<MessageHeader>,
              "header-plane passes rely on plain-assignment relocation");

/// Zipped read-only view of one message: a header pointer and a payload
/// pointer into the two planes. Two words, passed by value.
///
/// Lifetime rule: a MessageView (and any reference obtained through it,
/// payload_as<T> included) is valid only until the planes it points into
/// mutate — for inbox views, until on_round returns and the next merge
/// rebuilds the arena. Programs that need a payload beyond the round must
/// copy it out (the usual shared_ptr-head structs make that one refcount).
class MessageView {
 public:
  MessageView(const MessageHeader* header, const Payload* payload)
      : header_(header), payload_(payload) {}

  const MessageHeader& header() const { return *header_; }
  const Payload& payload() const { return *payload_; }

  graph::EdgeId edge() const { return header_->edge; }
  graph::NodeId from() const { return header_->from; }
  graph::NodeId to() const { return header_->to; }
  std::uint32_t size_hint_words() const { return header_->size_hint_words; }

 private:
  const MessageHeader* header_;
  const Payload* payload_;
};

/// A contiguous zipped range over the two planes — what a node program
/// receives as its inbox. Iteration yields MessageView by value (two
/// pointers), so `for (const auto& m : inbox)` binds each view to the
/// loop's lifetime-extended temporary and reads exactly like the old
/// span-of-Message API. Same lifetime rule as MessageView.
class InboxView {
 public:
  class iterator {
   public:
    using value_type = MessageView;
    using difference_type = std::ptrdiff_t;
    using iterator_category = std::input_iterator_tag;

    iterator() = default;
    iterator(const MessageHeader* h, const Payload* p) : h_(h), p_(p) {}

    MessageView operator*() const { return {h_, p_}; }
    iterator& operator++() {
      ++h_;
      ++p_;
      return *this;
    }
    iterator operator++(int) {
      iterator old = *this;
      ++*this;
      return old;
    }
    friend bool operator==(const iterator&, const iterator&) = default;

   private:
    const MessageHeader* h_ = nullptr;
    const Payload* p_ = nullptr;
  };

  InboxView() = default;
  InboxView(const MessageHeader* headers, const Payload* payloads,
            std::size_t count)
      : headers_(headers), payloads_(payloads), count_(count) {}

  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  MessageView operator[](std::size_t i) const {
    return {headers_ + i, payloads_ + i};
  }
  MessageView front() const { return (*this)[0]; }

  iterator begin() const { return {headers_, payloads_}; }
  iterator end() const { return {headers_ + count_, payloads_ + count_}; }

 private:
  const MessageHeader* headers_ = nullptr;
  const Payload* payloads_ = nullptr;
  std::size_t count_ = 0;
};

/// The structure-of-arrays message container: one header plane and one
/// payload plane, always the same length. This is the *only* legal way to
/// hold messages in bulk (fl_lint FL008 flags stray std::vector<Message*>
/// declarations) — the delivery arena, every lane outbox, and the congest
/// carry/admitted buffers are all MessagePlanes.
///
/// Capacity is sticky: clear() and resize() never release storage, so a
/// steady-state round reuses last round's allocation. `allocations()`
/// counts capacity-growth events since construction — the regression
/// tests assert it stops moving once a run reaches steady state.
class MessagePlanes {
 public:
  std::size_t size() const { return headers_.size(); }
  bool empty() const { return headers_.empty(); }
  std::size_t capacity() const { return headers_.capacity(); }

  /// Capacity-growth events (reallocations of the planes) so far.
  std::uint64_t allocations() const { return allocations_; }

  void reserve(std::size_t cap) {
    note_growth(cap);
    headers_.reserve(cap);
    payloads_.reserve(cap);
  }

  /// Drop all messages (payloads are destroyed); capacity is retained.
  void clear() {
    headers_.clear();
    payloads_.clear();
  }

  /// Resize both planes. Growth default-constructs empty slots (the merge
  /// overwrites every one); shrinking destroys the tail's payloads.
  /// Capacity is retained either way.
  void resize(std::size_t count) {
    note_growth(count);
    headers_.resize(count);
    payloads_.resize(count);
  }

  void push_back(const MessageHeader& header, Payload&& payload) {
    note_growth(headers_.size() + 1);
    headers_.push_back(header);
    payloads_.push_back(std::move(payload));
  }

  MessageHeader& header(std::size_t i) { return headers_[i]; }
  const MessageHeader& header(std::size_t i) const { return headers_[i]; }
  Payload& payload(std::size_t i) { return payloads_[i]; }
  const Payload& payload(std::size_t i) const { return payloads_[i]; }

  MessageView view(std::size_t i) const {
    return {headers_.data() + i, payloads_.data() + i};
  }

  /// Zipped view of the element range [begin, end).
  InboxView range(std::size_t begin, std::size_t end) const {
    return {headers_.data() + begin, payloads_.data() + begin, end - begin};
  }

  /// O(1) buffer exchange — the engine's double-buffered arenas swap
  /// instead of copying, so both buffers' capacities persist across
  /// rounds. Allocation counters travel with their buffers.
  void swap(MessagePlanes& other) noexcept {
    headers_.swap(other.headers_);
    payloads_.swap(other.payloads_);
    std::swap(allocations_, other.allocations_);
  }

 private:
  // The two planes only ever grow in lockstep, so one counter (keyed on
  // the header plane's capacity) counts a growth event exactly once.
  void note_growth(std::size_t need) {
    if (need > headers_.capacity()) ++allocations_;
  }

  std::vector<MessageHeader> headers_;
  std::vector<Payload> payloads_;
  std::uint64_t allocations_ = 0;
};

/// Convenience accessor with a sharp error message on type mismatch: the
/// thrown BadPayloadCast names the expected and the held payload type.
template <typename T>
const T& payload_as(const Payload& p) {
  if (const T* v = p.get_if<T>()) return *v;
  throw BadPayloadCast(typeid(T), p.type());
}

template <typename T>
const T& payload_as(const MessageView& m) {
  return payload_as<T>(m.payload());
}

/// Pointer form of payload_as: nullptr instead of a throw on mismatch, for
/// protocols that dispatch on the payload type.
template <typename T>
const T* payload_if(const Payload& p) {
  return p.get_if<T>();
}

template <typename T>
const T* payload_if(const MessageView& m) {
  return m.payload().get_if<T>();
}

}  // namespace fl::sim
