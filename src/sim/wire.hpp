// Explicit little-endian wire framing for protocol payloads.
//
// The delivery layer becomes backend-agnostic here: a payload that can be
// written to and read back from a byte stream can cross a process or
// machine boundary, so the TCP shard backend (src/net/) can move the same
// protocol messages the in-process arena moves. The framing rules:
//
//   * every primitive is encoded explicitly little-endian, one byte at a
//     time — the stream's meaning never depends on host byte order or on
//     struct padding;
//   * a type is *wire-encodable* when an encoder exists for it. Integers,
//     enums, bools and floats have fixed-width defaults; empty structs
//     encode to nothing; trivially-copyable structs whose object
//     representation is unique (no padding bits) may travel as raw bytes
//     (guarded by a little-endian static_assert); std::vector,
//     std::shared_ptr and std::string compose recursively. Everything
//     else — notably any struct with padding, whose in-memory bytes are
//     not deterministic — must declare its fields with FL_WIRE_FIELDS
//     (or hand-write fl_wire_put / fl_wire_get), which serializes
//     field-by-field and never ships a padding byte;
//   * the CONGEST word count (MessageHeader::size_hint_words) is part of
//     the message *header* framing, carried explicitly by the transport —
//     codecs never re-derive it from encoded byte length, so the model's
//     accounting is identical on every backend.
//
// Customization is ADL-based so protocol payload structs, which live in
// anonymous namespaces inside their .cpp files, can register themselves
// right next to their definitions: FL_WIRE_FIELDS(MsgX, a, b) expands to
// two inline free functions the dispatcher finds via argument-dependent
// lookup. Payload (payload.hpp) builds its per-type serialize /
// deserialize ops — and the wire-type registry keyed by a name hash — on
// top of these encoders.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

namespace fl::sim {

/// Thrown on any malformed wire stream (underflow, bad length, unknown
/// wire-type id) and on attempts to encode a type with no encoder.
class WireError final : public std::runtime_error {
 public:
  explicit WireError(const std::string& what) : std::runtime_error(what) {}
};

/// FNV-1a 64 — the repo's standard cheap stream hash (tests pin golden
/// traces with the same function). Used for wire-type ids (hash of the
/// mangled type name — stable across fork()ed shard processes, which
/// share one binary) and for the cross-backend round digests.
class Fnv1a64 {
 public:
  static constexpr std::uint64_t kOffset = 1469598103934665603ULL;
  static constexpr std::uint64_t kPrime = 1099511628211ULL;

  void byte(std::uint8_t b) {
    hash_ = (hash_ ^ b) * kPrime;
  }
  void bytes(const void* data, std::size_t len) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    for (std::size_t i = 0; i < len; ++i) byte(p[i]);
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) byte(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = kOffset;
};

inline std::uint64_t fnv1a64(const void* data, std::size_t len) {
  Fnv1a64 h;
  h.bytes(data, len);
  return h.value();
}

/// Append-only byte sink with explicit little-endian primitives plus a
/// patch slot for length prefixes written before their contents exist.
class WireWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { put_le(v, 2); }
  void u32(std::uint32_t v) { put_le(v, 4); }
  void u64(std::uint64_t v) { put_le(v, 8); }

  void bytes(const void* data, std::size_t len) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + len);
  }

  /// Reserve a u32 slot (returns its offset) to patch once the payload
  /// that follows it has been written.
  std::size_t reserve_u32() {
    const std::size_t at = buf_.size();
    buf_.insert(buf_.end(), 4, 0);
    return at;
  }
  void patch_u32(std::size_t at, std::uint32_t v) {
    for (int i = 0; i < 4; ++i)
      buf_[at + static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(v >> (8 * i));
  }

  std::size_t size() const { return buf_.size(); }
  const std::uint8_t* data() const { return buf_.data(); }
  std::span<const std::uint8_t> span() const { return {buf_.data(), buf_.size()}; }
  /// Drop the contents, keep the capacity (arena-style sticky buffers).
  void clear() { buf_.clear(); }

  std::vector<std::uint8_t>& buffer() { return buf_; }

 private:
  void put_le(std::uint64_t v, int width) {
    for (int i = 0; i < width; ++i)
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked little-endian reader over a borrowed byte range; every
/// underflow throws WireError instead of reading past the frame.
class WireReader {
 public:
  explicit WireReader(std::span<const std::uint8_t> data) : data_(data) {}
  WireReader(const std::uint8_t* data, std::size_t len) : data_(data, len) {}

  std::uint8_t u8() { return static_cast<std::uint8_t>(get_le(1)); }
  std::uint16_t u16() { return static_cast<std::uint16_t>(get_le(2)); }
  std::uint32_t u32() { return static_cast<std::uint32_t>(get_le(4)); }
  std::uint64_t u64() { return get_le(8); }

  void bytes(void* out, std::size_t len) {
    need(len);
    std::memcpy(out, data_.data() + pos_, len);
    pos_ += len;
  }

  /// Borrow the next `len` bytes without copying (frame sub-ranges).
  std::span<const std::uint8_t> take(std::size_t len) {
    need(len);
    auto out = data_.subspan(pos_, len);
    pos_ += len;
    return out;
  }

  std::size_t remaining() const { return data_.size() - pos_; }
  std::size_t position() const { return pos_; }

 private:
  void need(std::size_t len) const {
    if (len > remaining())
      throw WireError("wire underflow: need " + std::to_string(len) +
                      " bytes, " + std::to_string(remaining()) + " left");
  }
  std::uint64_t get_le(int width) {
    need(static_cast<std::size_t>(width));
    std::uint64_t v = 0;
    for (int i = 0; i < width; ++i)
      v |= static_cast<std::uint64_t>(data_[pos_ + static_cast<std::size_t>(i)])
           << (8 * i);
    pos_ += static_cast<std::size_t>(width);
    return v;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Tag type threaded to ADL decoders so `fl_wire_get` overloads can be
/// selected by payload type (the return value alone cannot overload).
template <typename T>
struct WireTag {};

// ---------------------------------------------------------------- codecs
//
// WireCodec<T> supplies the *default* encoders; the wire_put / wire_get
// dispatchers below prefer an ADL customization (fl_wire_put /
// fl_wire_get — what FL_WIRE_FIELDS generates) and fall back to these.

template <typename T, typename Enable = void>
struct WireCodec;  // primary: undefined — T has no default encoding

/// Fixed-width little-endian integrals, enums (via underlying type),
/// bool (one byte) and IEEE floats (bit pattern, fixed width).
template <typename T>
struct WireCodec<T, std::enable_if_t<std::is_integral_v<T> ||
                                     std::is_enum_v<T> ||
                                     std::is_floating_point_v<T>>> {
  static void put(WireWriter& w, const T& v) {
    if constexpr (std::is_enum_v<T>) {
      WireCodec<std::underlying_type_t<T>>::put(
          w, static_cast<std::underlying_type_t<T>>(v));
    } else if constexpr (std::is_same_v<T, bool>) {
      w.u8(v ? 1 : 0);
    } else if constexpr (std::is_floating_point_v<T>) {
      static_assert(sizeof(T) == 4 || sizeof(T) == 8,
                    "only IEEE float/double travel on the wire");
      if constexpr (sizeof(T) == 4) w.u32(std::bit_cast<std::uint32_t>(v));
      else w.u64(std::bit_cast<std::uint64_t>(v));
    } else {
      static_assert(sizeof(T) <= 8, "integral wider than 64 bits");
      std::uint64_t bits = static_cast<std::uint64_t>(
          static_cast<std::make_unsigned_t<T>>(v));
      for (std::size_t i = 0; i < sizeof(T); ++i)
        w.u8(static_cast<std::uint8_t>(bits >> (8 * i)));
    }
  }
  static T get(WireReader& r) {
    if constexpr (std::is_enum_v<T>) {
      return static_cast<T>(WireCodec<std::underlying_type_t<T>>::get(r));
    } else if constexpr (std::is_same_v<T, bool>) {
      return r.u8() != 0;
    } else if constexpr (std::is_floating_point_v<T>) {
      if constexpr (sizeof(T) == 4) return std::bit_cast<T>(r.u32());
      else return std::bit_cast<T>(r.u64());
    } else {
      std::uint64_t bits = 0;
      for (std::size_t i = 0; i < sizeof(T); ++i)
        bits |= static_cast<std::uint64_t>(r.u8()) << (8 * i);
      return static_cast<T>(static_cast<std::make_unsigned_t<T>>(bits));
    }
  }
};

/// Class types that are safe to ship as raw bytes: empty markers (encode
/// to nothing) and trivially-copyable structs with *unique object
/// representations* — i.e. no padding bits, so the in-memory bytes are a
/// deterministic function of the value. A struct with padding must NOT
/// default here (two equal values may differ in their padding bytes,
/// which would break the cross-backend digests): it gets FL_WIRE_FIELDS.
template <typename T>
struct WireCodec<
    T, std::enable_if_t<std::is_class_v<T> && std::is_trivially_copyable_v<T> &&
                        (std::is_empty_v<T> ||
                         std::has_unique_object_representations_v<T>)>> {
  static void put(WireWriter& w, const T& v) {
    if constexpr (!std::is_empty_v<T>) {
      static_assert(std::endian::native == std::endian::little,
                    "raw-bytes default codec assumes a little-endian host; "
                    "declare the type's fields with FL_WIRE_FIELDS instead");
      w.bytes(&v, sizeof(T));
    } else {
      (void)w;
      (void)v;
    }
  }
  static T get(WireReader& r) {
    T v{};
    if constexpr (!std::is_empty_v<T>) r.bytes(&v, sizeof(T));
    return v;
  }
};

// Forward declarations so the composite codecs below and the trait can
// recurse through the ADL-aware dispatchers.
template <typename T>
void wire_put(WireWriter& w, const T& v);
template <typename T>
T wire_get(WireReader& r);

namespace wire_detail {

template <typename T, typename = void>
inline constexpr bool has_adl_codec = false;
template <typename T>
inline constexpr bool has_adl_codec<
    T, std::void_t<decltype(fl_wire_put(std::declval<WireWriter&>(),
                                        std::declval<const T&>())),
                   decltype(fl_wire_get(std::declval<WireReader&>(),
                                        WireTag<T>{}))>> = true;

template <typename T, typename = void>
inline constexpr bool has_default_codec = false;
template <typename T>
inline constexpr bool has_default_codec<
    T, std::void_t<decltype(WireCodec<T>::put(std::declval<WireWriter&>(),
                                              std::declval<const T&>()))>> =
    true;

}  // namespace wire_detail

/// True when T can travel on the wire: an FL_WIRE_FIELDS / hand-written
/// ADL codec exists, or one of the defaults applies. The per-protocol
/// static_asserts mirror the stores_inline contract with this trait.
template <typename T>
inline constexpr bool wire_encodable_v =
    wire_detail::has_adl_codec<std::remove_cv_t<T>> ||
    wire_detail::has_default_codec<std::remove_cv_t<T>>;

/// std::vector<T> of an encodable element: u32 count + elements.
template <typename T>
struct WireCodec<std::vector<T>, std::enable_if_t<wire_encodable_v<T>>> {
  static void put(WireWriter& w, const std::vector<T>& v) {
    if (v.size() > 0xFFFFFFFFull)
      throw WireError("vector too long for u32 wire length");
    w.u32(static_cast<std::uint32_t>(v.size()));
    for (const T& e : v) wire_put(w, e);
  }
  static std::vector<T> get(WireReader& r) {
    const std::uint32_t count = r.u32();
    std::vector<T> v;
    v.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) v.push_back(wire_get<T>(r));
    return v;
  }
};

/// std::shared_ptr<T> / std::shared_ptr<const T>: presence byte + value.
/// Decoding allocates a fresh value — shared structure is a sender-side
/// optimization; across a process boundary every receiver owns a copy,
/// exactly as the LOCAL model's "messages are values" semantics demand.
template <typename T>
struct WireCodec<std::shared_ptr<T>,
                 std::enable_if_t<wire_encodable_v<std::remove_const_t<T>>>> {
  using Value = std::remove_const_t<T>;
  static void put(WireWriter& w, const std::shared_ptr<T>& p) {
    w.u8(p ? 1 : 0);
    if (p) wire_put(w, static_cast<const Value&>(*p));
  }
  static std::shared_ptr<T> get(WireReader& r) {
    if (r.u8() == 0) return nullptr;
    return std::make_shared<Value>(wire_get<Value>(r));
  }
};

template <>
struct WireCodec<std::string> {
  static void put(WireWriter& w, const std::string& s) {
    if (s.size() > 0xFFFFFFFFull)
      throw WireError("string too long for u32 wire length");
    w.u32(static_cast<std::uint32_t>(s.size()));
    w.bytes(s.data(), s.size());
  }
  static std::string get(WireReader& r) {
    const std::uint32_t len = r.u32();
    std::string s(len, '\0');
    if (len > 0) r.bytes(s.data(), len);
    return s;
  }
};

// ------------------------------------------------------------ dispatchers

/// Encode `v`. Prefers the type's own ADL codec (FL_WIRE_FIELDS or a
/// hand-written fl_wire_put), else the applicable default.
template <typename T>
void wire_put(WireWriter& w, const T& v) {
  using U = std::remove_cv_t<T>;
  if constexpr (wire_detail::has_adl_codec<U>) {
    fl_wire_put(w, v);
  } else {
    static_assert(wire_detail::has_default_codec<U>,
                  "type is not wire-encodable: declare its fields with "
                  "FL_WIRE_FIELDS or write fl_wire_put/fl_wire_get for it");
    WireCodec<U>::put(w, v);
  }
}

/// Decode a T. Same dispatch as wire_put, so the two always agree.
template <typename T>
T wire_get(WireReader& r) {
  using U = std::remove_cv_t<T>;
  if constexpr (wire_detail::has_adl_codec<U>) {
    return fl_wire_get(r, WireTag<U>{});
  } else {
    static_assert(wire_detail::has_default_codec<U>,
                  "type is not wire-encodable: declare its fields with "
                  "FL_WIRE_FIELDS or write fl_wire_put/fl_wire_get for it");
    return WireCodec<U>::get(r);
  }
}

/// Assign-through convenience used by the FL_WIRE_FIELDS expansion.
template <typename T>
void wire_get_into(WireReader& r, T& out) {
  out = wire_get<std::remove_cv_t<T>>(r);
}

}  // namespace fl::sim

// ------------------------------------------------------- FL_WIRE_FIELDS
//
// FL_WIRE_FIELDS(Type, field...) — invoked at namespace scope right next
// to the struct it describes (anonymous namespaces welcome; ADL finds the
// generated functions wherever the type lives). Serializes the listed
// fields in order with explicit little-endian framing and reads them back
// the same way; padding never touches the wire. Up to 8 fields — every
// payload struct in the repo has at most 4.

#define FL_WIRE_DETAIL_FE_1(M, a) M(a)
#define FL_WIRE_DETAIL_FE_2(M, a, ...) M(a) FL_WIRE_DETAIL_FE_1(M, __VA_ARGS__)
#define FL_WIRE_DETAIL_FE_3(M, a, ...) M(a) FL_WIRE_DETAIL_FE_2(M, __VA_ARGS__)
#define FL_WIRE_DETAIL_FE_4(M, a, ...) M(a) FL_WIRE_DETAIL_FE_3(M, __VA_ARGS__)
#define FL_WIRE_DETAIL_FE_5(M, a, ...) M(a) FL_WIRE_DETAIL_FE_4(M, __VA_ARGS__)
#define FL_WIRE_DETAIL_FE_6(M, a, ...) M(a) FL_WIRE_DETAIL_FE_5(M, __VA_ARGS__)
#define FL_WIRE_DETAIL_FE_7(M, a, ...) M(a) FL_WIRE_DETAIL_FE_6(M, __VA_ARGS__)
#define FL_WIRE_DETAIL_FE_8(M, a, ...) M(a) FL_WIRE_DETAIL_FE_7(M, __VA_ARGS__)
#define FL_WIRE_DETAIL_PICK(_1, _2, _3, _4, _5, _6, _7, _8, NAME, ...) NAME
#define FL_WIRE_DETAIL_FOR_EACH(M, ...)                                      \
  FL_WIRE_DETAIL_PICK(__VA_ARGS__, FL_WIRE_DETAIL_FE_8, FL_WIRE_DETAIL_FE_7, \
                      FL_WIRE_DETAIL_FE_6, FL_WIRE_DETAIL_FE_5,              \
                      FL_WIRE_DETAIL_FE_4, FL_WIRE_DETAIL_FE_3,              \
                      FL_WIRE_DETAIL_FE_2, FL_WIRE_DETAIL_FE_1)              \
  (M, __VA_ARGS__)

#define FL_WIRE_DETAIL_PUT_ONE(f) ::fl::sim::wire_put(w, v.f);
#define FL_WIRE_DETAIL_GET_ONE(f) ::fl::sim::wire_get_into(r, v.f);

#define FL_WIRE_FIELDS(Type, ...)                                            \
  inline void fl_wire_put(::fl::sim::WireWriter& w, const Type& v) {         \
    (void)w;                                                                 \
    (void)v;                                                                 \
    __VA_OPT__(FL_WIRE_DETAIL_FOR_EACH(FL_WIRE_DETAIL_PUT_ONE, __VA_ARGS__)) \
  }                                                                          \
  inline Type fl_wire_get(::fl::sim::WireReader& r,                          \
                          ::fl::sim::WireTag<Type>) {                        \
    Type v{};                                                                \
    (void)r;                                                                 \
    __VA_OPT__(FL_WIRE_DETAIL_FOR_EACH(FL_WIRE_DETAIL_GET_ONE, __VA_ARGS__)) \
    return v;                                                                \
  }                                                                          \
  static_assert(::fl::sim::wire_encodable_v<Type>,                           \
                "FL_WIRE_FIELDS failed to make the type wire-encodable")
