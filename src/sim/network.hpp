// The synchronous LOCAL-model network simulator.
//
// Faithful to the fully synchronous LOCAL model of [Linial 92; Peleg 00]:
// computation proceeds in lockstep rounds; a message sent in round r is
// delivered at the start of round r+1; message size is unbounded; local
// computation is free. The simulator meters rounds and message counts —
// the two complexities the paper's theorems bound — and enforces the
// declared knowledge level (KT0 / unique-edge-IDs / KT1).
//
// Each round is an explicit three-phase pipeline (see Network::run):
//
//   quiesce check -> step shards -> merge lanes
//
//   * quiesce: O(S) over the S execution lanes — delivered-message count
//     from the last merge plus the lanes' done-counters; no per-node work;
//   * step: every lane steps its shard's nodes against a private SendLane
//     (exec.hpp), concurrently when parallelism > 1;
//   * merge: the lanes' outboxes become next round's inboxes — one
//     contiguous arena, counting-sorted by destination with CSR-style
//     per-node offsets (counts maintained incrementally by the send path),
//     bit-identical to sequential delivery for every lane count.
//
// With an enforced CongestConfig (congest.hpp) the merge grows a fourth
// step: an admission pass over the freshly merged arena that meters words
// per directed edge per round and defers (or, under Strict, rejects) the
// overflow. The pass is chunk-parallel over the destination shards — a
// directed edge delivers to exactly one node, so its budget tally and
// carry queue belong to exactly one chunk — and preserves the engine's
// bit-determinism across thread counts.
//
// The merge + admission machinery itself lives behind the DeliveryBackend
// interface (sim/backend.hpp): the Network owns the pipeline — quiesce,
// stepping, metrics, tracing — and a backend owns delivery. The default
// InProcessBackend is the SoA-arena engine described above; the TCP
// backend (src/net/) runs the same rounds across forked shard processes
// with this engine as its oracle. FL_SIM_BACKEND selects the default.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "obs/trace.hpp"
#include "sim/backend.hpp"
#include "sim/check.hpp"
#include "sim/congest.hpp"
#include "sim/exec.hpp"
#include "sim/metrics.hpp"
#include "sim/node.hpp"
#include "util/rng.hpp"

namespace fl::sim {

class Network {
 public:
  /// `graph` must outlive the network. `knowledge` is what nodes may query;
  /// installing a program that requires more is a contract violation.
  Network(const graph::Graph& graph, Knowledge knowledge, std::uint64_t seed);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Out of line: finalizes the trace artifact when tracing is on (a
  /// no-op — not even a branch worth naming — otherwise).
  ~Network();

  /// Install one program per node from a factory.
  void install(
      const std::function<std::unique_ptr<NodeProgram>(graph::NodeId)>& factory);

  /// Typed convenience: installs P(node_id, args...) on every node.
  template <typename P, typename... Args>
  void install_all(Args&&... args) {
    install([&](graph::NodeId v) {
      return std::make_unique<P>(v, args...);
    });
  }

  /// Run until global termination or `max_rounds`, whichever first.
  RunStats run(std::size_t max_rounds);

  /// Run exactly `rounds` more rounds (no termination check) — used by
  /// layered protocols that interleave phases.
  void step(std::size_t rounds);

  /// Run until global termination, with no guessed round cap: delivery
  /// rounds (traffic moved or carry queues busy) are uncapped — each one
  /// consumes finite pending work for a terminating protocol — and only
  /// *stall* rounds (round_silent() yet some program not done) count
  /// against `stall_cap`. A protocol that advances at least one logical
  /// step per silent round therefore needs a cap of (logical steps + a
  /// small constant), independent of any CONGEST stretch factor. Two sharp
  /// diagnostics replace the old doubling heuristic's hard cap: exceeding
  /// `stall_cap` throws ContractViolation naming rounds/stalls/carry/done
  /// counts (a wedged protocol), and an engine invariant bounds
  /// consecutive zero-delivery rounds with carry parked by the banking
  /// bound ceil(max carried words / budget) + 1 (a wedged admission pass).
  RunStats run_until_drained(std::size_t stall_cap);

  const graph::Graph& graph() const { return *graph_; }
  Knowledge knowledge() const { return knowledge_; }
  const Metrics& metrics() const { return metrics_; }
  std::size_t round() const { return round_; }
  double log_n_bound() const { return log_n_bound_; }

  /// Override the advertised log n bound (tests exercise the approximation
  /// slack the model allows).
  void set_log_n_bound(double bound);

  /// Execution parallelism (defaults to FL_SIM_THREADS / FL_SIM_BALANCE,
  /// else sequential + degree-balanced); only legal before the first
  /// round. Results are bit-identical for every thread count and either
  /// balance mode — the deterministic shard-merge contract (exec.hpp) —
  /// so this is purely a wall-clock knob.
  void set_parallelism(ParallelConfig par);
  ParallelConfig parallelism() const { return par_; }

  /// CONGEST bandwidth budget (defaults to FL_SIM_CONGEST, else unlimited
  /// = plain LOCAL); only legal before the first round. With a finite
  /// budget, Defer stretches the round schedule (carry queues at the merge
  /// barrier) and Strict throws CongestViolation on the first over-budget
  /// edge-round. Results stay bit-identical across thread counts and
  /// balance modes for any fixed config.
  void set_congest(CongestConfig congest);
  CongestConfig congest() const { return congest_; }

  /// Delivery backend (defaults to FL_SIM_BACKEND, else in-process); only
  /// legal before the first round. Contract C14: for any fixed seed and
  /// congest config, RunStats, Metrics and golden traces are bit-identical
  /// across backends — the backend is a transport knob, never a semantic
  /// one.
  void set_backend(BackendConfig cfg);
  BackendConfig backend_config() const { return backend_cfg_; }
  DeliveryBackend& backend() { return *backend_; }
  const DeliveryBackend& backend() const { return *backend_; }

  /// Messages held back by the budget and not yet delivered. Zero in LOCAL
  /// mode; a budgeted run is quiescent only once this drains.
  std::uint64_t carried_messages() const { return carried_after_merge_; }

  /// The deterministic silence predicate for event-driven phase barriers:
  /// the last merge delivered nothing and no message is parked in a carry
  /// queue — i.e. every message sent so far has been fully delivered *and*
  /// handled (any reaction it provoked would itself be in flight). Both
  /// facts are merge-barrier outputs, so the predicate is bit-identical at
  /// every FL_SIM_THREADS / FL_SIM_BALANCE and any FL_SIM_CONGEST value,
  /// and is stable for the whole step phase (it only mutates at the next
  /// merge). Programs read it through Context::network_silent().
  bool round_silent() const {
    return delivered_last_round_ == 0 && carried_after_merge_ == 0;
  }

  /// Logical ownership / phase checking (sim/check.hpp; defaults to the
  /// FL_SIM_CHECK env probe, else off); only legal before the first round.
  /// With checking on, every instrumented touch of node state or of a
  /// merge-barrier structure asserts the stepping lane owns it and the
  /// engine is in the right phase — violations throw CheckViolation naming
  /// node, lane, phase and round. Purely observational: results are
  /// bit-identical with checking on or off.
  void set_check(bool enabled);
  bool check_enabled() const { return check_ != nullptr; }

  /// Tracing / profiling (obs/trace.hpp; defaults to the FL_SIM_TRACE env
  /// probe, else off); only legal before the first round. Observational
  /// by contract (docs/CONTRACTS.md C12): golden traces, Metrics and
  /// RunStats are bit-identical with tracing on or off at any thread
  /// count — timing flows out of the engine, never back in. With tracing
  /// off every instrumented site is one `if (trace_)` branch, exactly the
  /// FL_SIM_CHECK cost model.
  void set_trace(obs::TraceConfig cfg);
  bool trace_enabled() const { return trace_ != nullptr; }

  /// The live tracer (null when tracing is off). Protocol runners open
  /// named obs::ProtocolScope spans through it.
  obs::Tracer* tracer() { return trace_.get(); }
  const obs::Tracer* tracer() const { return trace_.get(); }

  /// One RoundProfile per completed round (empty when tracing is off).
  /// Model fields are bit-identical across thread counts; `_ns` fields
  /// and the imbalance ratio are advisory wall-clock data.
  std::span<const obs::RoundProfile> profile() const {
    if (trace_ == nullptr) return {};
    return {trace_->profiles().data(), trace_->profiles().size()};
  }

  /// Test-only: a probe invoked from inside every shard's step scope, after
  /// the shard's nodes were stepped, so tests can seed contract-violating
  /// touches from a running lane (see tests/test_check.cpp).
  void set_check_probe(std::function<void(Network&, unsigned)> probe);

  /// Test-only: touch node v's state from a synthetic step-phase scope
  /// bound to `as_lane` — the seeded cross-shard write.
  void debug_touch_node(graph::NodeId v, unsigned as_lane);

  /// Test-only: perform a (guarded, otherwise harmless) mutation of chunk's
  /// congest carry queue — out of the admission phase this must throw.
  void debug_mutate_carry(unsigned chunk);

  /// Messages delivered to `v` this round — a zipped view into the
  /// delivery arena's header/payload planes, valid until the next round
  /// advances. Exposed for tests; programs receive it via on_round.
  InboxView inbox_span(graph::NodeId v) const;

  /// Test-only: total capacity-growth events across every message plane
  /// the engine owns (both arena buffers, all lane outboxes, all congest
  /// carry/admitted buffers). Steady-state rounds must not move this —
  /// the zero-allocation regression tests pin it.
  std::uint64_t debug_plane_allocations() const;

  NodeProgram& program(graph::NodeId v);
  const NodeProgram& program(graph::NodeId v) const;

  /// Typed accessor for result extraction after a run.
  ///
  /// Done-state contract: the engine re-reads done() only when it steps a
  /// node (quiescence is tracked by transition counters, not by scanning),
  /// so external mutation through this accessor must not change what
  /// done() returns while a run may still continue. Extraction after the
  /// final run — including mutating extraction like flush_final_records —
  /// is fine.
  template <typename P>
  P& program_as(graph::NodeId v) {
    return dynamic_cast<P&>(program(v));
  }

 private:
  friend class Context;
  friend class InProcessBackend;
  friend class fl::net::TcpBackend;

  void enqueue(SendLane& lane, graph::NodeId from, graph::EdgeId edge,
               Payload payload, std::uint32_t size_hint_words);
  graph::NodeId resolve_slow(graph::NodeId from, graph::EdgeId edge,
                             std::span<const graph::Incidence> inc);
  void begin_if_needed();
  // The per-round phases, in execution order. Merge + admission live in
  // the backend (sim/backend.cpp); phase_merge wraps its barrier with the
  // Network-owned bookkeeping (metrics, trace round record, round_).
  bool quiescent() const;
  void phase_step(bool starting);
  void phase_merge();
  bool all_done() const;  // O(S) sum of the lanes' done-counters

  const graph::Graph* graph_;
  Knowledge knowledge_;
  util::StreamFactory streams_;
  double log_n_bound_;

  std::vector<std::unique_ptr<NodeProgram>> programs_;
  std::vector<util::Xoshiro256> node_rngs_;
  std::vector<std::vector<graph::EdgeId>> incident_edges_;  // per node

  // Send-side cursor per node: protocols overwhelmingly send over their
  // incident edges in incidence order (flood loops), so enqueue resolves
  // `to` from the node's own incidence list — a sequential, cache-warm
  // read — instead of a random lookup into the global endpoints array.
  // Arbitrary-edge sends fall back to the edge→slot cache below, and only
  // truly foreign edges reach the endpoints array (to fail the incidence
  // check with the original diagnostic).
  std::vector<std::uint32_t> send_cursor_;

  // Fallback for senders with a private edge order (distributed_sampler
  // sorts its incident edges by id): a lazily built per-node index of
  // (edge id → incidence slot) sorted by edge id, plus a cursor so a
  // sender sweeping its edges in ascending-id order hits sequentially
  // after one binary search. Built only for nodes that miss the incidence
  // cursor repeatedly (isolated misses — one-shot replies — keep the
  // seed's direct endpoints lookup); node-local, so shard-parallel
  // stepping never shares an entry.
  struct EdgeSlotCache {
    static constexpr std::uint32_t kBuildAfterMisses = 4;
    std::vector<std::pair<graph::EdgeId, std::uint32_t>> sorted;
    std::uint32_t cursor = 0;
    std::uint32_t misses = 0;
  };
  std::vector<EdgeSlotCache> slot_cache_;

  // Parallel execution (exec.hpp): nodes are split into contiguous shards,
  // one SendLane per shard; lane 0 doubles as the sequential outbox. The
  // pool exists only when the effective shard count exceeds 1. Shards and
  // lanes are finalized by begin_if_needed() from par_ (degree-weighted
  // cuts under ShardBalance::Degree).
  ParallelConfig par_;
  std::vector<ShardRange> shards_;
  std::vector<SendLane> lanes_;
  std::unique_ptr<ExecPool> pool_;

  // Done-state cache, one byte per node, written only by the owning
  // shard's lane. phase_step re-reads program->done() once right after
  // stepping a node (done-state can only change inside on_start/on_round)
  // and bumps the lane's done-counter on transitions, so the quiesce
  // phase never re-scans programs: all_done() sums S counters.
  std::vector<std::uint8_t> done_state_;

  // The delivery backend: owns the arena, the merge, and all CONGEST
  // admission state (see sim/backend.hpp; the in-process engine's storage
  // design is documented on InProcessBackend). congest_ stays here — it is
  // the Network's *policy*; the backend is the mechanism enforcing it.
  CongestConfig congest_;
  BackendConfig backend_cfg_;
  std::unique_ptr<DeliveryBackend> backend_;
  // backend_->carried() snapshot taken at the merge barrier, so
  // round_silent() and carried_messages() stay O(1) reads that mutate only
  // at the merge — the stability contract programs rely on.
  std::uint64_t carried_after_merge_ = 0;

  // Logical ownership / phase checker (check.hpp). Null unless FL_SIM_CHECK
  // (or set_check) opted in — every instrumentation site below is a single
  // `if (check_)` branch, so the hot path is untouched with checking off.
  std::unique_ptr<OwnershipChecker> check_;
  std::function<void(Network&, unsigned)> check_probe_;  // test-only

  // Tracer (obs/trace.hpp). Null unless FL_SIM_TRACE (or set_trace) opted
  // in — the same null-pointer cost model as check_: one predictable
  // branch per instrumented site when tracing is off. Strictly
  // write-only from the engine's perspective (C12): the engine opens
  // scopes and reports model counters; it never reads a timing back.
  std::unique_ptr<obs::Tracer> trace_;

  // Messages moved into the arena by the last merge — the O(1) half of
  // the quiesce check.
  std::uint64_t delivered_last_round_ = 0;
  std::size_t round_ = 0;
  bool started_ = false;
  Metrics metrics_;
};

}  // namespace fl::sim
