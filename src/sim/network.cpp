#include "sim/network.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <utility>

#include "util/assert.hpp"

namespace fl::sim {

using graph::EdgeId;
using graph::NodeId;

DeliveryMode default_delivery_mode() {
  const char* env = std::getenv("FL_SIM_LEGACY_INBOX");
  if (env != nullptr && *env != '\0' && std::strcmp(env, "0") != 0)
    return DeliveryMode::LegacyInbox;
  return DeliveryMode::FlatArena;
}

// ---------------------------------------------------------------- Context

Context::Context(Network& net, NodeId self) : net_(&net), self_(self) {}

std::size_t Context::degree() const {
  return net_->graph().degree(self_);
}

std::span<const EdgeId> Context::incident_edges() const {
  FL_REQUIRE(net_->knowledge() != Knowledge::KT0,
             "incident edge IDs are not available under KT0");
  return net_->incident_edges_[self_];
}

EdgeId Context::edge_at_port(std::size_t port) const {
  const auto& edges = net_->incident_edges_[self_];
  FL_REQUIRE(port < edges.size(), "port out of range");
  return edges[port];
}

NodeId Context::neighbor(EdgeId edge) const {
  FL_REQUIRE(net_->knowledge() == Knowledge::KT1,
             "neighbour IDs are only available under KT1");
  return net_->graph().other_endpoint(edge, self_);
}

void Context::send(EdgeId edge, Payload payload,
                   std::uint32_t size_hint_words) {
  net_->enqueue(self_, edge, std::move(payload), size_hint_words);
}

std::size_t Context::round() const { return net_->round(); }

double Context::log_n_bound() const { return net_->log_n_bound(); }

double Context::n_bound() const {
  return std::exp2(net_->log_n_bound());
}

util::Xoshiro256& Context::rng() { return net_->node_rngs_[self_]; }

// ---------------------------------------------------------------- Network

Network::Network(const graph::Graph& graph, Knowledge knowledge,
                 std::uint64_t seed)
    : graph_(&graph), knowledge_(knowledge), streams_(seed),
      mode_(default_delivery_mode()) {
  const NodeId n = graph.num_nodes();
  FL_REQUIRE(n >= 1, "network needs at least one node");
  log_n_bound_ = std::log2(std::max<double>(2.0, n));

  incident_edges_.resize(n);
  send_cursor_.assign(n, 0);
  node_rngs_.reserve(n);
  if (mode_ == DeliveryMode::LegacyInbox) {
    inbox_.resize(n);
  } else {
    arena_offsets_.assign(n + 1, 0);
    pending_counts_.assign(n, 0);
  }
  for (NodeId v = 0; v < n; ++v) {
    const auto inc = graph.incident(v);
    incident_edges_[v].reserve(inc.size());
    for (const auto& i : inc) incident_edges_[v].push_back(i.edge);
    node_rngs_.push_back(streams_.node_stream(v));
  }
  metrics_.messages_per_node.assign(n, 0);
}

void Network::set_log_n_bound(double bound) {
  FL_REQUIRE(bound >= std::log2(std::max<double>(2.0, graph_->num_nodes())),
             "log n bound must be an upper bound");
  log_n_bound_ = bound;
}

void Network::set_delivery_mode(DeliveryMode mode) {
  FL_REQUIRE(!started_, "cannot change delivery mode after the run started");
  if (mode == mode_) return;
  mode_ = mode;
  if (mode_ == DeliveryMode::LegacyInbox) {
    inbox_.resize(graph_->num_nodes());
    std::vector<Message>().swap(arena_);
    std::vector<std::uint32_t>().swap(arena_offsets_);
    std::vector<std::uint32_t>().swap(pending_counts_);
  } else {
    std::vector<std::vector<Message>>().swap(inbox_);
    arena_offsets_.assign(graph_->num_nodes() + 1, 0);
    pending_counts_.assign(graph_->num_nodes(), 0);
  }
}

std::span<const Message> Network::inbox_span(NodeId v) const {
  FL_REQUIRE(v < graph_->num_nodes(), "node id out of range");
  if (mode_ == DeliveryMode::LegacyInbox) return inbox_[v];
  return {arena_.data() + arena_offsets_[v],
          arena_offsets_[v + 1] - arena_offsets_[v]};
}

void Network::install(
    const std::function<std::unique_ptr<NodeProgram>(NodeId)>& factory) {
  FL_REQUIRE(!started_, "cannot install programs after the run started");
  const NodeId n = graph_->num_nodes();
  programs_.clear();
  programs_.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    auto p = factory(v);
    FL_REQUIRE(p != nullptr, "program factory returned null");
    FL_REQUIRE(static_cast<int>(p->required_knowledge()) <=
                   static_cast<int>(knowledge_),
               "program requires more knowledge than the network provides");
    programs_.push_back(std::move(p));
  }
}

void Network::enqueue(NodeId from, EdgeId edge, Payload payload,
                      std::uint32_t size_hint_words) {
  // Resolve `to` and prove incidence. Fast path: the sender's incidence
  // cursor — flood-style protocols send over their incident edges in
  // incidence order, so the expected entry (or the next one, after a
  // skipped edge such as a tree parent) matches with a sequential read of
  // the sender's own incidence list. A cursor miss (reply over the inbound
  // edge, protocol-sorted edge order, ...) falls back to the seed's random
  // endpoints-array lookup.
  const std::span<const graph::Incidence> inc = graph_->incident(from);
  std::uint32_t& cur = send_cursor_[from];
  NodeId to;
  if (cur < inc.size() && inc[cur].edge == edge) {
    to = inc[cur].to;
    cur = (cur + 1 == inc.size()) ? 0 : cur + 1;
  } else if (cur + 1 < inc.size() && inc[cur + 1].edge == edge) {
    to = inc[cur + 1].to;
    cur = (cur + 2 == inc.size()) ? 0 : cur + 2;
  } else {
    FL_REQUIRE(edge < graph_->num_edges(), "send over unknown edge");
    const auto ep = graph_->endpoints(edge);
    FL_REQUIRE(ep.u == from || ep.v == from,
               "a node may only send over its incident edges");
    to = (ep.u == from) ? ep.v : ep.u;
  }
  Message m;
  m.edge = edge;
  m.from = from;
  m.to = to;
  m.payload = std::move(payload);
  m.size_hint_words = size_hint_words;
  if (mode_ == DeliveryMode::FlatArena) {
    // Flat-arena path: per-message accounting happens here rather than at
    // delivery — every enqueued message is delivered exactly once next
    // round, so the totals are identical and delivery stays a pure
    // data-movement pass. (The legacy path keeps the seed's accounting-at-
    // delivery loop so FL_SIM_LEGACY_INBOX reproduces the seed baseline.)
    metrics_.words_total += m.size_hint_words;
    ++metrics_.messages_per_node[m.from];
    ++pending_counts_[m.to];
  }
  outbox_.push_back(std::move(m));
}

void Network::deliver_and_advance() {
  // Make this round's sends next round's inboxes.
  const auto count = static_cast<std::uint64_t>(outbox_.size());
  if (mode_ == DeliveryMode::LegacyInbox) {
    // Seed delivery path, byte-for-byte: account and move per message.
    for (auto& m : outbox_) {
      metrics_.words_total += m.size_hint_words;
      ++metrics_.messages_per_node[m.from];
      inbox_[m.to].push_back(std::move(m));
    }
  } else {
    scatter_outbox();
  }
  metrics_.messages_total += count;
  metrics_.messages_per_round.push_back(count);
  delivered_last_round_ = count;
  outbox_.clear();
  ++round_;
  metrics_.rounds = round_;
}

void Network::scatter_outbox() {
  // Counting sort by destination into the flat arena (counts were kept
  // by enqueue). Stable, so each node sees messages in global send order
  // — the same order the legacy per-node push_back produced.
  //
  // Offsets are built one slot *shifted* (arena_offsets_[v + 1] = start
  // of v's range) and used directly as scatter cursors: after the
  // scatter, slot v + 1 has advanced to end(v) == start(v + 1), i.e. the
  // array is exactly the final CSR offsets — no second cursor array.
  FL_REQUIRE(outbox_.size() < std::numeric_limits<std::uint32_t>::max(),
             "more than 2^32 messages in one round");
  const NodeId n = graph_->num_nodes();
  std::uint32_t sum = 0;
  for (NodeId v = 0; v < n; ++v) {
    const std::uint32_t c = pending_counts_[v];
    pending_counts_[v] = 0;
    arena_offsets_[v + 1] = sum;
    sum += c;
  }
  arena_.resize(outbox_.size());
  for (auto& m : outbox_) arena_[arena_offsets_[m.to + 1]++] = std::move(m);
}

void Network::consume_inbox(NodeId v) {
  // FlatArena inboxes are bulk-recycled by the next deliver_and_advance.
  if (mode_ == DeliveryMode::LegacyInbox) inbox_[v].clear();
}

bool Network::inbox_nonempty() const {
  // Both modes: deliver_and_advance counted what it just moved into the
  // inboxes. (The legacy path used to rescan all n inbox vectors here,
  // an O(n) pass per round on otherwise-idle networks.)
  return delivered_last_round_ != 0;
}

bool Network::all_done() const {
  for (const auto& p : programs_)
    if (!p->done()) return false;
  return true;
}

RunStats Network::run(std::size_t max_rounds) {
  FL_REQUIRE(!programs_.empty(), "install programs before running");
  const NodeId n = graph_->num_nodes();

  if (!started_) {
    started_ = true;
    // One flood over every edge (in both directions) is the canonical
    // LOCAL round; reserving that footprint up front spares the first big
    // round ~20 doubling reallocations, each of which re-moves the whole
    // outbox. Reserve commits address space only — pages a lighter
    // protocol never touches cost nothing.
    outbox_.reserve(2 * static_cast<std::size_t>(graph_->num_edges()));
    for (NodeId v = 0; v < n; ++v) {
      Context ctx(*this, v);
      programs_[v]->on_start(ctx);
    }
    deliver_and_advance();
  }

  RunStats stats;
  while (round_ <= max_rounds) {
    if (!inbox_nonempty() && all_done()) {
      stats.terminated = true;
      break;
    }
    for (NodeId v = 0; v < n; ++v) {
      Context ctx(*this, v);
      programs_[v]->on_round(ctx, inbox_span(v));
      consume_inbox(v);
    }
    deliver_and_advance();
  }
  stats.rounds = round_;
  stats.messages = metrics_.messages_total;
  return stats;
}

void Network::step(std::size_t rounds) {
  FL_REQUIRE(!programs_.empty(), "install programs before running");
  const NodeId n = graph_->num_nodes();
  if (!started_) {
    started_ = true;
    outbox_.reserve(2 * static_cast<std::size_t>(graph_->num_edges()));
    for (NodeId v = 0; v < n; ++v) {
      Context ctx(*this, v);
      programs_[v]->on_start(ctx);
    }
    deliver_and_advance();
    if (rounds > 0) --rounds;
  }
  for (std::size_t r = 0; r < rounds; ++r) {
    for (NodeId v = 0; v < n; ++v) {
      Context ctx(*this, v);
      programs_[v]->on_round(ctx, inbox_span(v));
      consume_inbox(v);
    }
    deliver_and_advance();
  }
}

NodeProgram& Network::program(NodeId v) {
  FL_REQUIRE(v < programs_.size(), "node id out of range");
  return *programs_[v];
}

const NodeProgram& Network::program(NodeId v) const {
  FL_REQUIRE(v < programs_.size(), "node id out of range");
  return *programs_[v];
}

}  // namespace fl::sim
