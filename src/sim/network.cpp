#include "sim/network.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/assert.hpp"

namespace fl::sim {

using graph::EdgeId;
using graph::NodeId;

// ---------------------------------------------------------------- Context

Context::Context(Network& net, NodeId self) : net_(&net), self_(self) {}

std::size_t Context::degree() const {
  return net_->graph().degree(self_);
}

std::span<const EdgeId> Context::incident_edges() const {
  FL_REQUIRE(net_->knowledge() != Knowledge::KT0,
             "incident edge IDs are not available under KT0");
  return net_->incident_edges_[self_];
}

EdgeId Context::edge_at_port(std::size_t port) const {
  const auto& edges = net_->incident_edges_[self_];
  FL_REQUIRE(port < edges.size(), "port out of range");
  return edges[port];
}

NodeId Context::neighbor(EdgeId edge) const {
  FL_REQUIRE(net_->knowledge() == Knowledge::KT1,
             "neighbour IDs are only available under KT1");
  return net_->graph().other_endpoint(edge, self_);
}

void Context::send(EdgeId edge, std::any payload,
                   std::uint32_t size_hint_words) {
  net_->enqueue(self_, edge, std::move(payload), size_hint_words);
}

std::size_t Context::round() const { return net_->round(); }

double Context::log_n_bound() const { return net_->log_n_bound(); }

double Context::n_bound() const {
  return std::exp2(net_->log_n_bound());
}

util::Xoshiro256& Context::rng() { return net_->node_rngs_[self_]; }

// ---------------------------------------------------------------- Network

Network::Network(const graph::Graph& graph, Knowledge knowledge,
                 std::uint64_t seed)
    : graph_(&graph), knowledge_(knowledge), streams_(seed) {
  const NodeId n = graph.num_nodes();
  FL_REQUIRE(n >= 1, "network needs at least one node");
  log_n_bound_ = std::log2(std::max<double>(2.0, n));

  incident_edges_.resize(n);
  node_rngs_.reserve(n);
  inbox_.resize(n);
  for (NodeId v = 0; v < n; ++v) {
    const auto inc = graph.incident(v);
    incident_edges_[v].reserve(inc.size());
    for (const auto& i : inc) incident_edges_[v].push_back(i.edge);
    node_rngs_.push_back(streams_.node_stream(v));
  }
  metrics_.messages_per_node.assign(n, 0);
}

void Network::set_log_n_bound(double bound) {
  FL_REQUIRE(bound >= std::log2(std::max<double>(2.0, graph_->num_nodes())),
             "log n bound must be an upper bound");
  log_n_bound_ = bound;
}

void Network::install(
    const std::function<std::unique_ptr<NodeProgram>(NodeId)>& factory) {
  FL_REQUIRE(!started_, "cannot install programs after the run started");
  const NodeId n = graph_->num_nodes();
  programs_.clear();
  programs_.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    auto p = factory(v);
    FL_REQUIRE(p != nullptr, "program factory returned null");
    FL_REQUIRE(static_cast<int>(p->required_knowledge()) <=
                   static_cast<int>(knowledge_),
               "program requires more knowledge than the network provides");
    programs_.push_back(std::move(p));
  }
}

void Network::enqueue(NodeId from, EdgeId edge, std::any payload,
                      std::uint32_t size_hint_words) {
  FL_REQUIRE(edge < graph_->num_edges(), "send over unknown edge");
  const auto ep = graph_->endpoints(edge);
  FL_REQUIRE(ep.u == from || ep.v == from,
             "a node may only send over its incident edges");
  Message m;
  m.edge = edge;
  m.from = from;
  m.to = (ep.u == from) ? ep.v : ep.u;
  m.payload = std::move(payload);
  m.size_hint_words = size_hint_words;
  outbox_.push_back(std::move(m));
}

void Network::deliver_and_advance() {
  // Account, then move each message into its destination inbox for the
  // next round.
  std::uint64_t count = 0;
  for (auto& m : outbox_) {
    ++count;
    metrics_.words_total += m.size_hint_words;
    ++metrics_.messages_per_node[m.from];
    inbox_[m.to].push_back(std::move(m));
  }
  metrics_.messages_total += count;
  metrics_.messages_per_round.push_back(count);
  outbox_.clear();
  ++round_;
  metrics_.rounds = round_;
}

bool Network::all_done() const {
  for (const auto& p : programs_)
    if (!p->done()) return false;
  return true;
}

RunStats Network::run(std::size_t max_rounds) {
  FL_REQUIRE(!programs_.empty(), "install programs before running");
  const NodeId n = graph_->num_nodes();

  if (!started_) {
    started_ = true;
    for (NodeId v = 0; v < n; ++v) {
      Context ctx(*this, v);
      programs_[v]->on_start(ctx);
    }
    deliver_and_advance();
  }

  RunStats stats;
  while (round_ <= max_rounds) {
    bool any_inbox = false;
    for (const auto& box : inbox_)
      if (!box.empty()) {
        any_inbox = true;
        break;
      }
    if (!any_inbox && all_done()) {
      stats.terminated = true;
      break;
    }
    for (NodeId v = 0; v < n; ++v) {
      Context ctx(*this, v);
      programs_[v]->on_round(ctx, inbox_[v]);
      inbox_[v].clear();
    }
    deliver_and_advance();
  }
  stats.rounds = round_;
  stats.messages = metrics_.messages_total;
  return stats;
}

void Network::step(std::size_t rounds) {
  FL_REQUIRE(!programs_.empty(), "install programs before running");
  const NodeId n = graph_->num_nodes();
  if (!started_) {
    started_ = true;
    for (NodeId v = 0; v < n; ++v) {
      Context ctx(*this, v);
      programs_[v]->on_start(ctx);
    }
    deliver_and_advance();
    if (rounds > 0) --rounds;
  }
  for (std::size_t r = 0; r < rounds; ++r) {
    for (NodeId v = 0; v < n; ++v) {
      Context ctx(*this, v);
      programs_[v]->on_round(ctx, inbox_[v]);
      inbox_[v].clear();
    }
    deliver_and_advance();
  }
}

NodeProgram& Network::program(NodeId v) {
  FL_REQUIRE(v < programs_.size(), "node id out of range");
  return *programs_[v];
}

const NodeProgram& Network::program(NodeId v) const {
  FL_REQUIRE(v < programs_.size(), "node id out of range");
  return *programs_[v];
}

}  // namespace fl::sim
