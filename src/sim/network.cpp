#include "sim/network.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "util/assert.hpp"

namespace fl::sim {

using graph::EdgeId;
using graph::NodeId;

// ---------------------------------------------------------------- Context

std::size_t Context::degree() const {
  return net_->graph().degree(self_);
}

std::span<const EdgeId> Context::incident_edges() const {
  FL_REQUIRE(net_->knowledge() != Knowledge::KT0,
             "incident edge IDs are not available under KT0");
  return net_->incident_edges_[self_];
}

EdgeId Context::edge_at_port(std::size_t port) const {
  const auto& edges = net_->incident_edges_[self_];
  FL_REQUIRE(port < edges.size(), "port out of range");
  return edges[port];
}

NodeId Context::neighbor(EdgeId edge) const {
  FL_REQUIRE(net_->knowledge() == Knowledge::KT1,
             "neighbour IDs are only available under KT1");
  return net_->graph().other_endpoint(edge, self_);
}

void Context::send(EdgeId edge, Payload payload,
                   std::uint32_t size_hint_words) {
  net_->enqueue(lane_ != nullptr ? *lane_ : net_->lanes_.front(), self_,
                edge, std::move(payload), size_hint_words);
}

std::size_t Context::round() const { return net_->round(); }

double Context::log_n_bound() const { return net_->log_n_bound(); }

double Context::n_bound() const {
  return std::exp2(net_->log_n_bound());
}

bool Context::network_silent() const { return net_->round_silent(); }

util::Xoshiro256& Context::rng() {
  // The per-node RNG stream is mutable node state: drawing from another
  // shard's stream would silently change that node's randomness (and the
  // run's determinism across thread counts).
  if (net_->check_) net_->check_->touch_node(self_, "rng stream");
  return net_->node_rngs_[self_];
}

// ---------------------------------------------------------------- Network

Network::Network(const graph::Graph& graph, Knowledge knowledge,
                 std::uint64_t seed)
    : graph_(&graph), knowledge_(knowledge), streams_(seed),
      par_(default_parallel_config()), congest_(default_congest_config()),
      backend_cfg_(default_backend_config()) {
  if (default_check_enabled()) check_ = std::make_unique<OwnershipChecker>();
  {
    obs::TraceConfig tcfg = obs::default_trace_config();
    if (tcfg.enabled) trace_ = std::make_unique<obs::Tracer>(std::move(tcfg));
  }
  const NodeId n = graph.num_nodes();
  FL_REQUIRE(n >= 1, "network needs at least one node");
  log_n_bound_ = std::log2(std::max<double>(2.0, n));
  backend_ = make_backend(backend_cfg_, n);

  incident_edges_.resize(n);
  send_cursor_.assign(n, 0);
  slot_cache_.resize(n);
  done_state_.assign(n, 0);
  // Lane 0 exists (fully sized) from construction so sends through a
  // pre-run Context land correctly; begin_if_needed may add more lanes.
  lanes_.resize(1);
  lanes_[0].dest_counts.assign(n, 0);
  lanes_[0].cursors.assign(n, 0);
  node_rngs_.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    const auto inc = graph.incident(v);
    incident_edges_[v].reserve(inc.size());
    for (const auto& i : inc) incident_edges_[v].push_back(i.edge);
    node_rngs_.push_back(streams_.node_stream(v));
  }
  metrics_.messages_per_node.assign(n, 0);
}

Network::~Network() {
  if (trace_ == nullptr) return;
  // The per-node send totals only stop moving when the runs do; fold them
  // into the sends histogram at teardown, then write the artifacts.
  // finalize() never throws (a destructor must not), and with an empty
  // path it only marks the tracer closed.
  if (started_) {
    for (const auto sends : metrics_.messages_per_node)
      trace_->node_sends_hist().add(sends);
  }
  trace_->finalize();
}

void Network::set_trace(obs::TraceConfig cfg) {
  FL_REQUIRE(!started_, "cannot change tracing after the run started");
  if (cfg.enabled) {
    trace_ = std::make_unique<obs::Tracer>(std::move(cfg));
  } else {
    trace_.reset();
  }
}

void Network::set_log_n_bound(double bound) {
  FL_REQUIRE(bound >= std::log2(std::max<double>(2.0, graph_->num_nodes())),
             "log n bound must be an upper bound");
  log_n_bound_ = bound;
}

void Network::set_parallelism(ParallelConfig par) {
  FL_REQUIRE(!started_, "cannot change parallelism after the run started");
  FL_REQUIRE(par.threads >= 1, "parallelism needs at least one thread");
  // Every lane is a real OS thread; cap well above any sane machine so a
  // wrapped or garbage thread count fails loudly instead of fork-bombing.
  FL_REQUIRE(par.threads <= 1024, "parallelism capped at 1024 threads");
  par_ = par;
}

void Network::set_check(bool enabled) {
  FL_REQUIRE(!started_, "cannot change checking after the run started");
  if (enabled && check_ == nullptr) {
    check_ = std::make_unique<OwnershipChecker>();
  } else if (!enabled) {
    check_.reset();
  }
}

void Network::set_check_probe(std::function<void(Network&, unsigned)> probe) {
  check_probe_ = std::move(probe);
}

void Network::debug_touch_node(graph::NodeId v, unsigned as_lane) {
  FL_REQUIRE(check_ != nullptr, "debug_touch_node needs checking enabled");
  FL_REQUIRE(started_, "debug_touch_node needs a started run (no ownership "
                       "map exists before the execution plan is finalized)");
  FL_REQUIRE(v < graph_->num_nodes(), "node id out of range");
  LaneScope scope(check_.get(), as_lane, EnginePhase::Step);
  check_->touch_node(v, "debug-probe state");
}

void Network::debug_mutate_carry(unsigned chunk) {
  backend_->debug_mutate_carry(*this, chunk);
}

void Network::set_congest(CongestConfig congest) {
  FL_REQUIRE(!started_, "cannot change the congest budget after the run started");
  // A 0-word budget could never admit anything: Defer would carry forever
  // and Strict would reject the first send. kUnlimited means LOCAL.
  FL_REQUIRE(congest.words_per_edge_per_round >= 1,
             "congest budget must be at least 1 word per edge per round");
  congest_ = congest;
}

void Network::set_backend(BackendConfig cfg) {
  // Pre-run sends are still fine after a swap: they live in lane 0's
  // outbox, which belongs to the Network, not the backend.
  FL_REQUIRE(!started_, "cannot change the backend after the run started");
  backend_cfg_ = cfg;
  backend_ = make_backend(cfg, graph_->num_nodes());
}

InboxView Network::inbox_span(NodeId v) const {
  FL_REQUIRE(v < graph_->num_nodes(), "node id out of range");
  return backend_->inbox(v);
}

std::uint64_t Network::debug_plane_allocations() const {
  std::uint64_t total = backend_->plane_allocations();
  for (const auto& lane : lanes_) total += lane.outbox.allocations();
  return total;
}

void Network::install(
    const std::function<std::unique_ptr<NodeProgram>(NodeId)>& factory) {
  FL_REQUIRE(!started_, "cannot install programs after the run started");
  const NodeId n = graph_->num_nodes();
  programs_.clear();
  programs_.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    auto p = factory(v);
    FL_REQUIRE(p != nullptr, "program factory returned null");
    FL_REQUIRE(static_cast<int>(p->required_knowledge()) <=
                   static_cast<int>(knowledge_),
               "program requires more knowledge than the network provides");
    programs_.push_back(std::move(p));
  }
}

NodeId Network::resolve_slow(NodeId from, EdgeId edge,
                             std::span<const graph::Incidence> inc) {
  // Private-edge-order senders (distributed_sampler sorts its incident
  // edges by id) miss the incidence cursor on every send; resolving them
  // through the global endpoints array is a random access across the whole
  // graph per message. Instead, build an edge-id-sorted index of the
  // node's own incidence slots and keep a cursor into it: an ascending-
  // edge-id sweep then costs one sequential, node-local read per send,
  // like the incidence fast path. The O(deg log deg) build is deferred
  // until the node has missed a few times — a one-shot reply (the other
  // common miss) keeps the seed's single O(1) endpoints lookup instead of
  // paying for an index it will never reuse.
  EdgeSlotCache& cache = slot_cache_[from];
  if (cache.sorted.empty()) {
    if (++cache.misses >= EdgeSlotCache::kBuildAfterMisses && !inc.empty()) {
      cache.sorted.reserve(inc.size());
      for (std::uint32_t s = 0; s < inc.size(); ++s)
        cache.sorted.emplace_back(inc[s].edge, s);
      std::sort(cache.sorted.begin(), cache.sorted.end());
    } else {
      FL_REQUIRE(edge < graph_->num_edges(), "send over unknown edge");
      const auto ep = graph_->endpoints(edge);
      FL_REQUIRE(ep.u == from || ep.v == from,
                 "a node may only send over its incident edges");
      return (ep.u == from) ? ep.v : ep.u;
    }
  }
  if (cache.cursor < cache.sorted.size() &&
      cache.sorted[cache.cursor].first == edge) {
    const std::uint32_t slot = cache.sorted[cache.cursor].second;
    cache.cursor =
        (cache.cursor + 1 == cache.sorted.size()) ? 0 : cache.cursor + 1;
    return inc[slot].to;
  }
  const auto it =
      std::lower_bound(cache.sorted.begin(), cache.sorted.end(),
                       std::pair<EdgeId, std::uint32_t>{edge, 0});
  if (it != cache.sorted.end() && it->first == edge) {
    const auto pos = static_cast<std::uint32_t>(it - cache.sorted.begin());
    cache.cursor = (pos + 1 == cache.sorted.size()) ? 0 : pos + 1;
    return inc[it->second].to;
  }
  // Not one of the sender's edges: fail with the seed's diagnostics.
  FL_REQUIRE(edge < graph_->num_edges(), "send over unknown edge");
  const auto ep = graph_->endpoints(edge);
  FL_REQUIRE(ep.u == from || ep.v == from,
             "a node may only send over its incident edges");
  return (ep.u == from) ? ep.v : ep.u;
}

void Network::enqueue(SendLane& lane, NodeId from, EdgeId edge,
                      Payload payload, std::uint32_t size_hint_words) {
  if (check_) {
    // The send path mutates sender-owned state (send cursor, edge→slot
    // cache, messages_per_node) and the lane's private outbox/counts: both
    // must belong to the stepping lane. Pre-run sends (no bound scope) are
    // legal and unchecked by design.
    check_->touch_node(from, "send-path state");
    check_->touch_lane(static_cast<unsigned>(&lane - lanes_.data()),
                       EnginePhase::Step, "send outbox");
  }
  // Resolve `to` and prove incidence. Fast path: the sender's incidence
  // cursor — flood-style protocols send over their incident edges in
  // incidence order, so the expected entry (or the next one, after a
  // skipped edge such as a tree parent) matches with a sequential read of
  // the sender's own incidence list. Anything else (reply over the inbound
  // edge, protocol-sorted edge order, ...) goes through the per-node
  // edge→slot cache in resolve_slow.
  const std::span<const graph::Incidence> inc = graph_->incident(from);
  std::uint32_t& cur = send_cursor_[from];
  NodeId to;
  if (cur < inc.size() && inc[cur].edge == edge) {
    to = inc[cur].to;
    cur = (cur + 1 == inc.size()) ? 0 : cur + 1;
  } else if (cur + 1 < inc.size() && inc[cur + 1].edge == edge) {
    to = inc[cur + 1].to;
    cur = (cur + 2 == inc.size()) ? 0 : cur + 2;
  } else {
    to = resolve_slow(from, edge, inc);
  }
  MessageHeader h;
  h.edge = edge;
  h.from = from;
  h.to = to;
  // A message costs at least one word no matter what the sender reports:
  // a computed-zero hint would free-ride on words_total (and, in congest
  // mode, on the per-edge budget), making an O(n)-message protocol look
  // word-free. Clamp at the single choke point every send goes through.
  h.size_hint_words = size_hint_words == 0 ? 1 : size_hint_words;
  // Per-message accounting happens here rather than at delivery — every
  // enqueued message is delivered exactly once next round, so the totals
  // are identical and the merge stays a pure data-movement pass. All of it
  // is lane- or sender-local (the sender belongs to the stepping shard),
  // so parallel stepping never contends: words go to the lane, counts to
  // the lane's per-destination array, and messages_per_node is indexed by
  // the sender.
  lane.words += h.size_hint_words;
  if (h.size_hint_words > lane.max_words) lane.max_words = h.size_hint_words;
  ++metrics_.messages_per_node[h.from];
  ++lane.dest_counts[h.to];
  lane.outbox.push_back(h, std::move(payload));
}

void Network::begin_if_needed() {
  // Shared run()/step() preamble: finalize the execution plan from par_,
  // run every node's on_start, deliver round 0's sends.
  if (started_) return;
  started_ = true;
  const NodeId n = graph_->num_nodes();
  if (par_.threads > 1 && par_.balance == ShardBalance::Degree) {
    // Degree-weighted cuts: a node's per-round cost is dominated by its
    // sends and inbox, both proportional to its degree; + 1 so isolated
    // nodes still count as one program step.
    std::vector<std::uint64_t> weights(n);
    for (NodeId v = 0; v < n; ++v) weights[v] = graph_->degree(v) + 1;
    shards_ = partition_nodes(n, par_.threads, weights);
  } else {
    shards_ = partition_nodes(n, par_.threads);
  }
  lanes_.resize(shards_.size());
  // One flood over every edge (in both directions) is the canonical LOCAL
  // round; reserving that footprint up front spares the first big round
  // ~20 doubling reallocations, each of which re-moves the whole outbox.
  // Reserve commits address space only — pages a lighter protocol never
  // touches cost nothing.
  const std::size_t flood = 2 * static_cast<std::size_t>(graph_->num_edges());
  for (auto& lane : lanes_) {
    lane.outbox.reserve(flood / lanes_.size() + 16);
    // Lane 0 is already sized — and may hold counts from pre-run sends,
    // which must survive into the first merge.
    if (lane.dest_counts.size() != n) {
      lane.dest_counts.assign(n, 0);
      lane.cursors.assign(n, 0);
    }
  }
  // The backend sees the final plan (shards, lanes, congest policy) before
  // the ExecPool spins up its threads — the TCP backend forks its shard
  // processes here, and forking after thread creation is off the table.
  backend_->on_plan(*this);
  if (lanes_.size() > 1) pool_ = std::make_unique<ExecPool>(
      static_cast<unsigned>(lanes_.size()));
  if (check_) check_->bind_shards(shards_, n);
  if (trace_) trace_->bind_lanes(lanes_.size());
  backend_->begin_round(*this, /*starting=*/true);
  phase_step(/*starting=*/true);
  phase_merge();
}

void Network::phase_step(bool starting) {
  // Phase 1 — step shards. Each lane steps its shard's nodes in ascending
  // id order against its private SendLane. Everything a step touches is
  // either shard-owned (program, RNG stream, send cursor, edge→slot
  // cache, messages_per_node[self], done_state_[self]) or read-only this
  // phase (graph, arena + offsets), so lanes run concurrently without
  // locks. The done() re-read happens here, immediately after the step —
  // the only place done-state can change — keeping the quiesce phase free
  // of any per-node work.
  if (check_) check_->set_round(round_);
  // Phase span on the engine track; per-lane busy spans on the lane
  // tracks. Both are one null-check when tracing is off, and the lane
  // span's duration is what RoundProfile::lane_busy_ns accumulates — the
  // imbalance signal the adaptive-sharding ROADMAP item wants.
  const obs::SpanScope phase_span(trace_.get(), obs::SpanKind::StepPhase, 0,
                                  round_);
  auto step_shard = [&](unsigned s) {
    // With checking on, this scope is what every instrumented touch is
    // verified against: lane s, step phase. Opened on the sequential path
    // too, so the checks fire identically at every thread count.
    LaneScope scope(check_.get(), s, EnginePhase::Step);
    const obs::SpanScope span(trace_.get(), obs::SpanKind::StepLane, s, round_);
    const ShardRange range = shards_[s];
    SendLane& lane = lanes_[s];
    for (NodeId v = range.begin; v < range.end; ++v) {
      if (check_) check_->touch_node(v, "program state");
      Context ctx(*this, v, lane);
      if (starting) {
        programs_[v]->on_start(ctx);
      } else {
        programs_[v]->on_round(ctx, inbox_span(v));
      }
      const std::uint8_t now = programs_[v]->done() ? 1 : 0;
      lane.done_count += static_cast<int>(now) - static_cast<int>(done_state_[v]);
      done_state_[v] = now;
    }
    if (check_probe_) check_probe_(*this, s);
  };
  if (pool_) {
    pool_->run(step_shard);
  } else {
    step_shard(0);
  }
}

void Network::phase_merge() {
  // Phase 2 — the backend's merge barrier: this round's sends become next
  // round's inboxes (congest admission included when enforced). The
  // Network keeps only the pipeline bookkeeping around it — metrics, the
  // trace round record, the round counter — so every backend's rounds are
  // accounted identically.
  const std::uint64_t count = backend_->merge_barrier(*this);
  carried_after_merge_ = backend_->carried();
  metrics_.messages_total += count;
  metrics_.messages_per_round.push_back(count);
  delivered_last_round_ = count;
  if (trace_) {
    // Delivered-message word sizes: an O(delivered) scan of the 16-byte
    // header plane, paid only with tracing on. Post-admission, so under a
    // budget a deferred message is counted once, in the round its words
    // actually crossed.
    const MessagePlanes& delivered = backend_->delivered();
    for (std::size_t i = 0; i < delivered.size(); ++i)
      trace_->message_words_hist().add(delivered.header(i).size_hint_words);
    // Close the round's profile. The engine hands over model counters and
    // never reads anything back (C12) — deltas and imbalance are computed
    // on the tracer's side of the fence.
    trace_->end_round(round_, count, metrics_.words_total,
                      metrics_.deferrals_total, carried_after_merge_,
                      debug_plane_allocations());
  }
  ++round_;
  metrics_.rounds = round_;
}

bool Network::all_done() const {
  // O(S): the step phase maintained each lane's done-counter by
  // transition, so no per-node (let alone virtual) work happens here.
  std::int64_t done = 0;
  for (const auto& lane : lanes_) done += lane.done_count;
  return done == static_cast<std::int64_t>(graph_->num_nodes());
}

bool Network::quiescent() const {
  // Phase 0 — quiesce check: no messages in flight (the last merge counted
  // what it moved, O(1)), nothing parked in a congest carry queue (O(1),
  // snapshotted at the merge barrier), and every program done (O(S) sum).
  return delivered_last_round_ == 0 && carried_after_merge_ == 0 && all_done();
}

RunStats Network::run(std::size_t max_rounds) {
  FL_REQUIRE(!programs_.empty(), "install programs before running");
  begin_if_needed();
  RunStats stats;
  // The round pipeline: quiesce check -> step shards -> merge lanes.
  while (round_ <= max_rounds) {
    bool quiet;
    {
      const obs::SpanScope span(trace_.get(), obs::SpanKind::Quiesce, 0,
                                round_);
      quiet = quiescent();
    }
    if (quiet) {
      stats.terminated = true;
      break;
    }
    backend_->begin_round(*this, /*starting=*/false);
    phase_step(/*starting=*/false);
    phase_merge();
  }
  stats.rounds = round_;
  stats.messages = metrics_.messages_total;
  return stats;
}

RunStats Network::run_until_drained(std::size_t stall_cap) {
  FL_REQUIRE(!programs_.empty(), "install programs before running");
  begin_if_needed();
  RunStats stats;
  // Delivery rounds are uncapped: for a terminating protocol each one
  // retires pending traffic (a merge delivered messages, or the admission
  // pass banked budget toward a parked message), so only two failure modes
  // need caps, and each gets a sharp diagnostic instead of the old
  // cap * 64 + 4096 guess:
  //   * stall rounds — round_silent() yet some program not done. A live
  //     protocol must advance at least one logical step per silent round
  //     (the event-driven barrier contract), so the cumulative count is
  //     bounded by the protocol's own step count, independent of any
  //     CONGEST stretch.
  //   * carry wedge — consecutive zero-delivery rounds with messages
  //     parked. Banking admits a K-word head message within ceil(K / B)
  //     rounds, so exceeding that bound (+1 slack) is an engine bug.
  std::size_t stalls = 0;
  std::size_t carry_wait = 0;
  while (true) {
    bool quiet;
    {
      const obs::SpanScope span(trace_.get(), obs::SpanKind::Quiesce, 0,
                                round_);
      quiet = quiescent();
    }
    if (quiet) {
      stats.terminated = true;
      break;
    }
    if (delivered_last_round_ > 0) {
      carry_wait = 0;
    } else if (carried_after_merge_ > 0) {
      ++carry_wait;
      const std::uint64_t budget = congest_.words_per_edge_per_round;
      const std::uint64_t bound =
          (backend_->max_carried_words() + budget - 1) / budget + 1;
      FL_ENSURE(carry_wait <= bound,
                "carry queues wedged: " + std::to_string(carry_wait) +
                    " consecutive zero-delivery rounds with " +
                    std::to_string(carried_after_merge_) +
                    " messages parked exceeds the banking bound " +
                    std::to_string(bound) + " at round " +
                    std::to_string(round_) + " — admission-pass engine bug");
    } else {
      carry_wait = 0;
      ++stalls;
      FL_REQUIRE(stalls <= stall_cap,
                 "protocol wedged: " + std::to_string(stalls) +
                     " silent rounds (nothing delivered, nothing carried) " +
                     "exceed the stall cap " + std::to_string(stall_cap) +
                     " at round " + std::to_string(round_) +
                     " with programs still not done — a phase failed to "
                     "advance on its barrier");
    }
    backend_->begin_round(*this, /*starting=*/false);
    phase_step(/*starting=*/false);
    phase_merge();
  }
  stats.rounds = round_;
  stats.messages = metrics_.messages_total;
  return stats;
}

void Network::step(std::size_t rounds) {
  FL_REQUIRE(!programs_.empty(), "install programs before running");
  if (!started_) {
    begin_if_needed();
    if (rounds > 0) --rounds;
  }
  for (std::size_t r = 0; r < rounds; ++r) {
    backend_->begin_round(*this, /*starting=*/false);
    phase_step(/*starting=*/false);
    phase_merge();
  }
}

NodeProgram& Network::program(NodeId v) {
  FL_REQUIRE(v < programs_.size(), "node id out of range");
  return *programs_[v];
}

const NodeProgram& Network::program(NodeId v) const {
  FL_REQUIRE(v < programs_.size(), "node id out of range");
  return *programs_[v];
}

}  // namespace fl::sim
