#include "sim/congest.hpp"

#include <cstdlib>
#include <cstring>

#include "util/assert.hpp"

namespace fl::sim {

CongestConfig default_congest_config() {
  CongestConfig cfg;
  const char* env = std::getenv("FL_SIM_CONGEST");
  if (env == nullptr || *env == '\0') return cfg;
  // Digits only up front: strtoull would happily wrap "-5" into a huge
  // "valid" budget, silently ignoring what the user asked for.
  FL_REQUIRE(*env >= '0' && *env <= '9',
             "FL_SIM_CONGEST must start with a positive word budget");
  char* end = nullptr;
  const unsigned long long words = std::strtoull(env, &end, 10);
  FL_REQUIRE(end != env && words >= 1,
             "FL_SIM_CONGEST must start with a positive word budget");
  FL_REQUIRE(words < CongestConfig::kUnlimited,
             "FL_SIM_CONGEST budget out of range");
  cfg.words_per_edge_per_round = words;
  if (*end == ':') {
    ++end;
    if (std::strcmp(end, "strict") == 0) {
      cfg.policy = CongestPolicy::Strict;
    } else {
      FL_REQUIRE(std::strcmp(end, "defer") == 0,
                 "FL_SIM_CONGEST policy must be 'defer' or 'strict'");
      cfg.policy = CongestPolicy::Defer;
    }
  } else {
    FL_REQUIRE(*end == '\0',
               "FL_SIM_CONGEST must be '<words>' or '<words>:<policy>'");
  }
  return cfg;
}

}  // namespace fl::sim
