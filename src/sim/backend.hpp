// The delivery backend interface: who moves this round's sends.
//
// sim::Network owns the round *pipeline* — quiesce check, shard stepping,
// metrics, tracing — but the delivery step itself (lane outboxes ->
// merge barrier -> per-node inbox views, CONGEST admission included) is a
// DeliveryBackend. Two implementations exist:
//
//   * InProcessBackend — the SoA-arena engine the repo grew up with:
//     counting-sort merge into a flat double-buffered arena, chunk-
//     parallel congest admission, bit-deterministic at every thread
//     count. This is the *oracle*: whatever any other backend delivers
//     must match it bit for bit.
//   * TcpBackend (src/net/tcp_backend.hpp) — shards are forked OS
//     processes exchanging wire-encoded messages over loopback TCP, with
//     a round-sync barrier carrying per-edge word tallies. It *contains*
//     an InProcessBackend: the parent runs the full in-process merge as
//     the reference, verifies every shard's digests against it each
//     round, and swaps in the wire-decoded payloads so what protocols
//     consume really crossed a socket.
//
// Selection: FL_SIM_BACKEND seeds every Network's default ("" / "inproc"
// = in-process, "tcp:<shards>" = TCP over loopback), and
// Network::set_backend overrides per run — the same pattern as
// FL_SIM_CONGEST / FL_SIM_THREADS. The cardinal contract is C14
// (docs/CONTRACTS.md): same seed => identical RunStats, Metrics and
// golden-trace hashes across backends.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "graph/ids.hpp"
#include "sim/message.hpp"

namespace fl::net {
class TcpBackend;
}  // namespace fl::net

namespace fl::sim {

class Network;

enum class BackendKind : std::uint8_t {
  InProcess,  ///< single-process SoA arena (the oracle)
  Tcp,        ///< forked shard processes over loopback TCP
};

struct BackendConfig {
  BackendKind kind = BackendKind::InProcess;
  /// Shard-process count for BackendKind::Tcp (clamped to the node
  /// count at plan time); ignored in-process.
  unsigned tcp_shards = 1;
};

/// BackendConfig{} unless FL_SIM_BACKEND is set. Accepted forms:
/// "inproc" (or "in-process") and "tcp:<shards>" with 1 <= shards <= 32.
/// Mirrors default_congest_config(): the environment seeds every
/// Network's default, callers may still override per run.
BackendConfig default_backend_config();

/// The delivery step of the round pipeline. One backend instance is owned
/// by one Network; every hook receives the Network so backends keep no
/// duplicate topology state.
class DeliveryBackend {
 public:
  virtual ~DeliveryBackend() = default;

  /// Short human name for diagnostics ("in-process", "tcp:4"); congest
  /// Strict violations and cross-backend mismatches cite it.
  virtual std::string_view name() const = 0;

  /// Called once from begin_if_needed, after shards/lanes and the congest
  /// plan are final and *before* the ExecPool spins up its threads — the
  /// TCP backend forks its shard processes here.
  virtual void on_plan(Network& net) = 0;

  /// Called right before every step phase (including the on_start round).
  /// The TCP backend releases its shard processes into the round here so
  /// they step concurrently with the parent.
  virtual void begin_round(Network& net, bool starting) = 0;

  /// The merge barrier: drain the lane outboxes into next round's inboxes,
  /// applying congest admission when enforced. Returns the number of
  /// messages delivered (admitted) this round.
  virtual std::uint64_t merge_barrier(Network& net) = 0;

  /// Messages delivered to `v` by the last merge_barrier (the inbox-view
  /// lifecycle: valid until the next merge).
  virtual InboxView inbox(graph::NodeId v) const = 0;

  /// The full delivered plane of the last merge (tracing walks it).
  virtual const MessagePlanes& delivered() const = 0;

  /// Messages parked in congest carry queues.
  virtual std::uint64_t carried() const = 0;

  /// Largest word size among carried messages (run_until_drained's
  /// banking-bound diagnostic).
  virtual std::uint64_t max_carried_words() const = 0;

  /// Capacity-growth events across every plane this backend owns
  /// (Network::debug_plane_allocations adds the lane outboxes).
  virtual std::uint64_t plane_allocations() const = 0;

  /// Test-only: guarded no-op mutation of a congest carry queue, used to
  /// provoke ownership-check violations (see Network::debug_mutate_carry).
  virtual void debug_mutate_carry(Network& net, unsigned chunk) = 0;
};

/// The single-process SoA-arena delivery engine (see network.hpp's file
/// comment for the merge + admission design). Also the base class of the
/// TCP backend, which reuses the whole engine in the parent as the
/// correctness oracle and in each forked shard for its own sub-merge.
class InProcessBackend : public DeliveryBackend {
 public:
  explicit InProcessBackend(std::size_t num_nodes);

  std::string_view name() const override { return "in-process"; }
  void on_plan(Network& net) override;
  void begin_round(Network& /*net*/, bool /*starting*/) override {}
  std::uint64_t merge_barrier(Network& net) override;
  InboxView inbox(graph::NodeId v) const override;
  const MessagePlanes& delivered() const override { return arena_; }
  std::uint64_t carried() const override { return carry_total_; }
  std::uint64_t max_carried_words() const override;
  std::uint64_t plane_allocations() const override;
  void debug_mutate_carry(Network& net, unsigned chunk) override;

 protected:
  friend class Network;
  friend class fl::net::TcpBackend;

  void merge_lanes(Network& net, std::uint64_t total);
  std::uint64_t congest_admit(Network& net);

  // Delivery storage: this round's messages, counting-sorted by
  // destination, held as structure-of-arrays planes (message.hpp). Node
  // v's inbox is the arena's element range [arena_offsets_[v],
  // arena_offsets_[v + 1]). arena_next_ is the persistent second buffer
  // of the double-buffered arena (the admission pass relocates into it
  // and the two swap), so steady-state rounds allocate nothing.
  MessagePlanes arena_;
  MessagePlanes arena_next_;
  std::vector<std::uint32_t> arena_offsets_;  // size n + 1
  std::vector<std::uint64_t> chunk_weight_;   // offsets scratch, size S

  // CONGEST admission state (see network.hpp's original file comment and
  // congest.hpp): per-directed-edge budget tallies, per-chunk carry /
  // admitted planes, all destination-owned so the pass parallelizes with
  // no shared writes.
  struct EdgeBudgetState {
    std::uint64_t remaining = 0;  ///< capacity left in the stamped round;
                                  ///< banks across rounds while blocked
    std::uint64_t stamp = 0;      ///< round + 1 of the last touch
    bool blocked = false;         ///< a message deferred in stamped round
  };
  struct CongestChunk {
    MessagePlanes carry;       // deferred; destination-ascending,
                               // FIFO within each directed edge
    MessagePlanes carry_next;  // double buffer for the next round
    MessagePlanes admitted;    // this round, destination-ascending
    std::uint64_t deferred_events = 0;
  };
  std::vector<EdgeBudgetState> congest_edges_;  // size 2m: 2e + (to>from)
  std::vector<CongestChunk> congest_chunks_;    // one per shard
  std::vector<std::uint32_t> congest_counts_;   // admitted per node, size n
  std::uint64_t carry_total_ = 0;  // messages across all carry queues
};

/// Instantiate the backend `cfg` names for a network of `num_nodes`.
std::unique_ptr<DeliveryBackend> make_backend(const BackendConfig& cfg,
                                              std::size_t num_nodes);

}  // namespace fl::sim

namespace fl::net {

/// Defined in net/tcp_backend.cpp; declared here so sim/backend.cpp can
/// dispatch without the sim layer including net headers.
std::unique_ptr<sim::DeliveryBackend> make_tcp_backend(std::size_t num_nodes,
                                                       unsigned shards);

}  // namespace fl::net
