// Full-topology-collection baseline: the "collect everything at a leader"
// strategy that the LOCAL model makes possible (unbounded messages) and
// that papers like [9, 12] refine. A BFS wave builds a tree from node 0,
// incidence lists are convergecast to the root, the root computes a spanner
// centrally (we use Baswana–Sen), and membership is broadcast back.
//
// Costs: Θ(m) messages for the wave + child/decline handshake and O(n) for
// the cast sessions — the Ω(m) term the paper eliminates — and Θ(D) rounds,
// which destroys round-preservation on high-diameter graphs. Bench E7 uses
// it as the second Ω(m) baseline next to distributed Baswana–Sen.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "sim/metrics.hpp"

namespace fl::baseline {

struct TopologyCollectRun {
  std::vector<graph::EdgeId> edges;  ///< the spanner chosen by the leader
  unsigned k = 0;                    ///< Baswana–Sen parameter used centrally
  sim::RunStats stats;
  sim::Metrics metrics;
  double stretch_bound() const { return 2.0 * k - 1.0; }
};

/// Run the collect-at-leader pipeline on the LOCAL simulator. `k` is the
/// parameter of the centrally computed Baswana–Sen spanner.
TopologyCollectRun run_topology_collect(const graph::Graph& g, unsigned k,
                                        std::uint64_t seed);

/// Wire round-trip self-check for every payload struct of this protocol
/// (they live in the .cpp's anonymous namespace; tests call this hook).
/// Throws util::ContractViolation on any encode/decode disagreement.
void topology_collect_wire_selftest();

}  // namespace fl::baseline
