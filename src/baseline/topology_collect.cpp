#include "baseline/topology_collect.hpp"

#include <memory>

#include "baseline/baswana_sen.hpp"
#include "graph/algorithms.hpp"
#include "sim/network.hpp"
#include "sim/wire_check.hpp"
#include "util/assert.hpp"

namespace fl::baseline {

using graph::EdgeId;
using graph::Graph;
using graph::kInvalidEdge;
using graph::NodeId;

namespace {

struct MsgWave {};                 // BFS wave
struct MsgChild {};                // "you are my parent"
struct MsgDecline {};              // "I already have a parent"
struct MsgUpcast {                 // subtree incidence lists, aggregated
  std::shared_ptr<std::vector<EdgeId>> edges;
};
struct MsgResult {                 // the leader's spanner, broadcast down
  std::shared_ptr<const std::vector<EdgeId>> edges;
};

// The shared-list payloads ship the list *contents* field-by-field on the
// wire (a receiver in another process owns a fresh copy); the markers
// encode to nothing.
FL_WIRE_FIELDS(MsgUpcast, edges);
FL_WIRE_FIELDS(MsgResult, edges);

// Every message of this protocol must ride in the payload's inline buffer
// (the cast sessions ship shared list heads, not the lists themselves)
// and be wire-encodable so the TCP shard backend can deliver it.
static_assert(sim::Payload::stores_inline<MsgWave>);
static_assert(sim::Payload::stores_inline<MsgChild>);
static_assert(sim::Payload::stores_inline<MsgDecline>);
static_assert(sim::Payload::stores_inline<MsgUpcast>);
static_assert(sim::Payload::stores_inline<MsgResult>);
static_assert(sim::Payload::wire_encodable<MsgWave>);
static_assert(sim::Payload::wire_encodable<MsgChild>);
static_assert(sim::Payload::wire_encodable<MsgDecline>);
static_assert(sim::Payload::wire_encodable<MsgUpcast>);
static_assert(sim::Payload::wire_encodable<MsgResult>);

/// States: wait wave -> handshake -> wait child upcasts -> upcast -> wait
/// result -> forward result -> done. The leader (node 0) computes the
/// spanner when its upcast completes.
class CollectNode final : public sim::NodeProgram {
 public:
  CollectNode(NodeId self, const Graph& g, unsigned k, std::uint64_t seed)
      : self_(self), g_(&g), k_(k), seed_(seed) {}

  const std::vector<EdgeId>& result() const {
    FL_REQUIRE(done_, "result queried before termination");
    return *result_;
  }

  void on_start(sim::Context& ctx) override {
    if (self_ == 0) {
      has_parent_ = true;  // the root
      for (const EdgeId e : ctx.incident_edges()) ctx.send(e, MsgWave{}, 1);
      waiting_replies_ = ctx.incident_edges().size();
      maybe_finish_handshake(ctx);
    }
  }

  void on_round(sim::Context& ctx, sim::InboxView inbox) override {
    for (const auto& m : inbox) {
      if (sim::payload_if<MsgWave>(m) != nullptr) {
        if (!has_parent_) {
          has_parent_ = true;
          parent_edge_ = m.edge();
          ctx.send(m.edge(), MsgChild{}, 1);
          // Propagate the wave everywhere else; expect replies from those.
          waiting_replies_ = 0;
          for (const EdgeId e : ctx.incident_edges())
            if (e != parent_edge_) {
              ctx.send(e, MsgWave{}, 1);
              ++waiting_replies_;
            }
          maybe_finish_handshake(ctx);
        } else {
          ctx.send(m.edge(), MsgDecline{}, 1);
        }
        continue;
      }
      if (sim::payload_if<MsgChild>(m) != nullptr) {
        child_edges_.push_back(m.edge());
        --waiting_replies_;
        maybe_finish_handshake(ctx);
        continue;
      }
      if (sim::payload_if<MsgDecline>(m) != nullptr) {
        --waiting_replies_;
        maybe_finish_handshake(ctx);
        continue;
      }
      if (const auto* up = sim::payload_if<MsgUpcast>(m)) {
        // A fast child (e.g. a leaf) can upcast in the same round as its
        // MsgChild handshake; buffer until our own handshake completes.
        if (!handshake_done_) {
          early_upcasts_.push_back(up->edges);
        } else {
          acc_->insert(acc_->end(), up->edges->begin(), up->edges->end());
          --waiting_upcasts_;
          maybe_upcast(ctx);
        }
        continue;
      }
      if (const auto* res = sim::payload_if<MsgResult>(m)) {
        deliver_result(ctx, res->edges);
        continue;
      }
      FL_ENSURE(false, "unknown message in topology collect");
    }
  }

  bool done() const override { return done_; }

  sim::Knowledge required_knowledge() const override {
    return sim::Knowledge::EdgeIds;
  }

 private:
  void maybe_finish_handshake(sim::Context& ctx) {
    if (handshake_done_ || !has_parent_ || waiting_replies_ != 0) return;
    handshake_done_ = true;
    // Initialize the upcast accumulator with my own incidence list.
    acc_ = std::make_shared<std::vector<EdgeId>>();
    for (const EdgeId e : ctx.incident_edges()) acc_->push_back(e);
    waiting_upcasts_ = child_edges_.size();
    for (const auto& early : early_upcasts_) {
      acc_->insert(acc_->end(), early->begin(), early->end());
      --waiting_upcasts_;
    }
    early_upcasts_.clear();
    maybe_upcast(ctx);
  }

  void maybe_upcast(sim::Context& ctx) {
    if (!handshake_done_ || upcast_done_ || waiting_upcasts_ != 0) return;
    upcast_done_ = true;
    if (self_ != 0) {
      ctx.send(parent_edge_, MsgUpcast{acc_},
               static_cast<std::uint32_t>(acc_->size() + 1));
      return;
    }
    // Leader: it now holds every incidence list (the union of `acc_` is the
    // whole edge set). Compute the spanner centrally and broadcast it.
    // (The central computation reads the Graph object directly — the
    // information content equals the collected lists; metering already
    // charged the collection.)
    auto spanner = std::make_shared<const std::vector<EdgeId>>(
        build_baswana_sen(*g_, k_, seed_).edges);
    deliver_result(ctx, spanner);
  }

  void deliver_result(sim::Context& ctx, const std::shared_ptr<const std::vector<EdgeId>>& edges) {
    if (done_) return;
    done_ = true;
    result_ = edges;
    for (const EdgeId e : child_edges_)
      ctx.send(e, MsgResult{edges},
               static_cast<std::uint32_t>(edges->size() + 1));
  }

  NodeId self_;
  const Graph* g_;
  unsigned k_;
  std::uint64_t seed_;

  bool has_parent_ = false;
  bool handshake_done_ = false;
  bool upcast_done_ = false;
  bool done_ = false;
  EdgeId parent_edge_ = kInvalidEdge;
  std::size_t waiting_replies_ = 0;
  std::size_t waiting_upcasts_ = 0;
  std::vector<EdgeId> child_edges_;
  std::vector<std::shared_ptr<std::vector<EdgeId>>> early_upcasts_;
  std::shared_ptr<std::vector<EdgeId>> acc_;
  std::shared_ptr<const std::vector<EdgeId>> result_;
};

}  // namespace

TopologyCollectRun run_topology_collect(const Graph& g, unsigned k,
                                        std::uint64_t seed) {
  FL_REQUIRE(g.num_nodes() >= 1, "empty graph");
  FL_REQUIRE(graph::is_connected(g), "topology collect needs a connected graph");
  sim::Network net(g, sim::Knowledge::EdgeIds, seed);
  net.install([&](NodeId v) {
    return std::make_unique<CollectNode>(v, g, k, seed);
  });

  TopologyCollectRun run;
  run.k = k;
  // 2D for wave+handshake, 2D for upcast+downcast, plus slack.
  run.stats = net.run(6 * static_cast<std::size_t>(
                          graph::diameter_double_sweep(g)) + 16);
  FL_REQUIRE(run.stats.terminated, "topology collect did not terminate");
  run.metrics = net.metrics();
  run.edges = net.program_as<CollectNode>(0).result();
  return run;
}

void topology_collect_wire_selftest() {
  const auto any = [](const auto&, const auto&) { return true; };
  const auto same_list = [](const auto& a, const auto& b) {
    return (a.edges == nullptr) == (b.edges == nullptr) &&
           (a.edges == nullptr || *a.edges == *b.edges);
  };
  sim::wire_roundtrip_check(MsgWave{}, any);
  sim::wire_roundtrip_check(MsgChild{}, any);
  sim::wire_roundtrip_check(MsgDecline{}, any);
  sim::wire_roundtrip_check(
      MsgUpcast{std::make_shared<std::vector<EdgeId>>(
          std::vector<EdgeId>{0, 7, kInvalidEdge})},
      same_list);
  sim::wire_roundtrip_check(MsgUpcast{}, same_list);  // null list head
  sim::wire_roundtrip_check(
      MsgResult{std::make_shared<const std::vector<EdgeId>>(
          std::vector<EdgeId>{3, 1, 4, 1, 5})},
      same_list);
}

}  // namespace fl::baseline
