// Voronoi-cell spanner used as the "off-the-shelf second-stage algorithm"
// of the paper's Section 6 two-stage scheme.
//
// SUBSTITUTION (recorded in DESIGN.md): the paper invokes Derbel et al. [11]
// — a (3, O(3^κ))-spanner in O(3^κ) rounds. Reproducing [11] verbatim is a
// paper of its own; what Section 6 actually needs is *a t-round LOCAL
// spanner algorithm with a different stretch/size tradeoff whose execution
// can be simulated message-efficiently*. We provide exactly that interface:
// a radius-r Voronoi-cell construction that
//   * is computable from each node's (r+1)-ball (so it IS a t-round LOCAL
//     algorithm with t = r+1, and the transformer can simulate it);
//   * yields a (2r+1)-spanner with Õ(n + n·|centers|) edges,
//     |centers| ≈ sqrt(n ln n) by default;
//   * runs deterministically given the seed (center coins are keyed).
//
// Construction: sample centers; every node within distance r of a center
// joins its (distance, center-id)-minimal center — such Voronoi cells are
// connected and have radius <= r; add each member's parent edge, plus, per
// member, the least-id edge towards every adjacent foreign cell; nodes with
// no center within r keep all incident edges.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace fl::baseline {

struct NearlyAdditiveResult {
  std::vector<graph::EdgeId> edges;
  unsigned radius = 0;
  std::size_t centers = 0;
  std::size_t unclustered = 0;  ///< nodes with no center within r

  double stretch_bound() const { return 2.0 * radius + 1.0; }
};

/// Centralized construction over the whole graph.
NearlyAdditiveResult build_nearly_additive(const graph::Graph& g, unsigned r,
                                           std::uint64_t seed);

/// Center-sampling probability used by the construction (exposed so the
/// ball-local variant and tests agree with the centralized one).
double nearly_additive_center_prob(graph::NodeId n);

/// True iff `v` is a sampled center (keyed coin; no communication needed).
bool nearly_additive_is_center(std::uint64_t seed, graph::NodeId v,
                               graph::NodeId n);

/// Ball-local variant: the edges *node v contributes*, computed only from
/// v's (r+1)-ball — this is the t-round LOCAL algorithm the transformer
/// simulates. Property: union over v == build_nearly_additive(g, r, seed).
std::vector<graph::EdgeId> nearly_additive_local_edges(const graph::Graph& g,
                                                       graph::NodeId v,
                                                       unsigned r,
                                                       std::uint64_t seed);

}  // namespace fl::baseline
