#include "baseline/baswana_sen.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <unordered_map>

#include "sim/network.hpp"
#include "sim/wire_check.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace fl::baseline {

using graph::EdgeId;
using graph::Graph;
using graph::kInvalidEdge;
using graph::kInvalidNode;
using graph::NodeId;

namespace {

/// Cluster-sampling coin shared by all members of a cluster: keyed by the
/// cluster center's id and the iteration, so it needs no communication.
bool cluster_sampled(std::uint64_t seed, NodeId center, unsigned iteration,
                     double p) {
  auto rng = util::StreamFactory(seed).trial_stream(center, iteration,
                                                    0x42424242ULL);
  return rng.bernoulli(p);
}

}  // namespace

// ------------------------------------------------------------ centralized

BaswanaSenResult build_baswana_sen(const Graph& g, unsigned k,
                                   std::uint64_t seed) {
  FL_REQUIRE(k >= 1, "Baswana–Sen needs k >= 1");
  const NodeId n = g.num_nodes();
  BaswanaSenResult result;
  result.k = k;
  if (n == 0) return result;

  const double p = std::pow(static_cast<double>(std::max<NodeId>(n, 2)),
                            -1.0 / static_cast<double>(k));

  std::vector<bool> in_spanner(g.num_edges(), false);
  std::vector<bool> discarded(n, false);
  std::vector<NodeId> cluster(n);  // center id of v's cluster
  for (NodeId v = 0; v < n; ++v) cluster[v] = v;

  auto add_edge = [&](EdgeId e) { in_spanner[e] = true; };

  for (unsigned i = 1; i < k; ++i) {
    // All decisions in an iteration are simultaneous (they mirror one
    // announcement round of the distributed version), so reads go to the
    // iteration-start snapshot and writes to the `next_*` copies.
    std::vector<NodeId> next_cluster = cluster;
    std::vector<bool> next_discarded = discarded;
    for (NodeId v = 0; v < n; ++v) {
      if (discarded[v]) continue;
      if (cluster_sampled(seed, cluster[v], i, p)) continue;  // stays put
      // v's cluster is not sampled: find a neighbour in a sampled cluster
      // (smallest edge id, deterministic tie-break).
      EdgeId join_edge = kInvalidEdge;
      NodeId join_center = kInvalidNode;
      // Otherwise: one (least-id) edge per adjacent cluster, then discard.
      std::unordered_map<NodeId, EdgeId> per_cluster;
      for (const auto& inc : g.incident(v)) {
        if (discarded[inc.to]) continue;
        const NodeId c = cluster[inc.to];
        if (cluster_sampled(seed, c, i, p)) {
          if (join_edge == kInvalidEdge || inc.edge < join_edge) {
            join_edge = inc.edge;
            join_center = c;
          }
        }
        auto [it, fresh] = per_cluster.try_emplace(c, inc.edge);
        if (!fresh && inc.edge < it->second) it->second = inc.edge;
      }
      if (join_edge != kInvalidEdge) {
        add_edge(join_edge);
        next_cluster[v] = join_center;
      } else {
        for (const auto& [c, e] : per_cluster) add_edge(e);
        next_discarded[v] = true;
        next_cluster[v] = kInvalidNode;
      }
    }
    cluster = std::move(next_cluster);
    discarded = std::move(next_discarded);
  }

  // Phase 2: every surviving vertex connects to each adjacent cluster.
  for (NodeId v = 0; v < n; ++v) {
    if (discarded[v]) continue;
    std::unordered_map<NodeId, EdgeId> per_cluster;
    for (const auto& inc : g.incident(v)) {
      if (discarded[inc.to]) continue;
      const NodeId c = cluster[inc.to];
      if (c == cluster[v]) {
        // Intra-cluster edges to the center path: Baswana–Sen keeps the
        // joining edges, which we added when v joined. Edges between two
        // members of one cluster are covered through the center.
        continue;
      }
      auto [it, fresh] = per_cluster.try_emplace(c, inc.edge);
      if (!fresh && inc.edge < it->second) it->second = inc.edge;
    }
    for (const auto& [c, e] : per_cluster) add_edge(e);
  }

  for (EdgeId e = 0; e < g.num_edges(); ++e)
    if (in_spanner[e]) result.edges.push_back(e);
  return result;
}

// ------------------------------------------------------------ distributed

namespace {

struct MsgAnnounce {
  NodeId cluster = kInvalidNode;  ///< kInvalidNode means "discarded"
  bool sampled = false;
};

// MsgAnnounce has padding after `sampled`, so its in-memory bytes are not
// a deterministic function of the value — it must travel field-by-field.
FL_WIRE_FIELDS(MsgAnnounce, cluster, sampled);

// Θ(m) announces per iteration — the whole point of this baseline — so the
// payload must relocate with the arena's memcpy fast path (and encode, so
// the TCP shard backend can carry the flood).
static_assert(sim::Payload::stores_inline<MsgAnnounce> &&
              sim::Payload::trivially_relocatable<MsgAnnounce>);
static_assert(sim::Payload::wire_encodable<MsgAnnounce>);

/// One announce-and-decide super-iteration occupies 2 rounds: (A) everyone
/// announces over all incident edges, (B) everyone decides locally from the
/// received announcements. The final phase-2 iteration reuses (A).
class BaswanaSenNode final : public sim::NodeProgram {
 public:
  BaswanaSenNode(NodeId self, unsigned k, std::uint64_t seed, double p)
      : self_(self), k_(k), seed_(seed), p_(p) {}

  std::vector<EdgeId> spanner_edges(const Graph& g) const {
    std::vector<EdgeId> out;
    for (const auto& [e, flag] : spanner_)
      if (flag) out.push_back(e);
    (void)g;
    return out;
  }

  void on_start(sim::Context& ctx) override {
    cluster_ = self_;
    announce(ctx, 1);
  }

  void on_round(sim::Context& ctx, sim::InboxView inbox) override {
    // Odd logical steps: decide from announcements; even: announce next.
    const unsigned iteration = static_cast<unsigned>(ctx.round() / 2) + 1;
    const bool decide_step = (ctx.round() % 2) == 1;
    if (!decide_step) {
      if (iteration <= k_) announce(ctx, iteration);
      return;
    }
    if (done_) return;
    if (iteration < k_) {
      decide_iteration(inbox, iteration);
    } else {
      decide_phase2(inbox);
      done_ = true;
    }
  }

  bool done() const override { return done_; }

  sim::Knowledge required_knowledge() const override {
    return sim::Knowledge::EdgeIds;
  }

 private:
  void announce(sim::Context& ctx, unsigned iteration) {
    if (discarded_) return;
    MsgAnnounce msg;
    msg.cluster = cluster_;
    msg.sampled = iteration < k_ &&
                  cluster_sampled(seed_, cluster_, iteration, p_);
    for (const EdgeId e : ctx.incident_edges()) ctx.send(e, msg, 2);
  }

  void decide_iteration(sim::InboxView inbox,
                        unsigned iteration) {
    if (discarded_) return;
    if (cluster_sampled(seed_, cluster_, iteration, p_)) return;  // stays
    EdgeId join_edge = kInvalidEdge;
    NodeId join_center = kInvalidNode;
    std::unordered_map<NodeId, EdgeId> per_cluster;
    for (const auto& m : inbox) {
      const auto& a = sim::payload_as<MsgAnnounce>(m);
      if (a.cluster == kInvalidNode) continue;  // discarded neighbour
      if (a.sampled &&
          (join_edge == kInvalidEdge || m.edge() < join_edge)) {
        join_edge = m.edge();
        join_center = a.cluster;
      }
      auto [it, fresh] = per_cluster.try_emplace(a.cluster, m.edge());
      if (!fresh && m.edge() < it->second) it->second = m.edge();
    }
    if (join_edge != kInvalidEdge) {
      spanner_[join_edge] = true;
      cluster_ = join_center;
    } else {
      for (const auto& [c, e] : per_cluster) spanner_[e] = true;
      discarded_ = true;
      cluster_ = kInvalidNode;
    }
  }

  void decide_phase2(sim::InboxView inbox) {
    if (discarded_) return;
    std::unordered_map<NodeId, EdgeId> per_cluster;
    for (const auto& m : inbox) {
      const auto& a = sim::payload_as<MsgAnnounce>(m);
      if (a.cluster == kInvalidNode || a.cluster == cluster_) continue;
      auto [it, fresh] = per_cluster.try_emplace(a.cluster, m.edge());
      if (!fresh && m.edge() < it->second) it->second = m.edge();
    }
    for (const auto& [c, e] : per_cluster) spanner_[e] = true;
  }

  NodeId self_;
  unsigned k_;
  std::uint64_t seed_;
  double p_;
  NodeId cluster_ = kInvalidNode;
  bool discarded_ = false;
  bool done_ = false;
  std::unordered_map<EdgeId, bool> spanner_;
};

}  // namespace

DistributedBaswanaSenRun run_distributed_baswana_sen(const Graph& g,
                                                     unsigned k,
                                                     std::uint64_t seed) {
  FL_REQUIRE(k >= 1, "Baswana–Sen needs k >= 1");
  const double p =
      std::pow(static_cast<double>(std::max<NodeId>(g.num_nodes(), 2)),
               -1.0 / static_cast<double>(k));
  sim::Network net(g, sim::Knowledge::EdgeIds, seed);
  net.install([&](NodeId v) {
    return std::make_unique<BaswanaSenNode>(v, k, seed, p);
  });

  DistributedBaswanaSenRun run;
  run.result.k = k;
  run.stats = net.run(2 * k + 4);
  FL_REQUIRE(run.stats.terminated, "Baswana–Sen did not terminate");
  run.metrics = net.metrics();

  std::vector<bool> in_spanner(g.num_edges(), false);
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    for (const EdgeId e :
         net.program_as<BaswanaSenNode>(v).spanner_edges(g))
      in_spanner[e] = true;
  for (EdgeId e = 0; e < g.num_edges(); ++e)
    if (in_spanner[e]) run.result.edges.push_back(e);
  return run;
}

void baswana_sen_wire_selftest() {
  const auto eq = [](const MsgAnnounce& a, const MsgAnnounce& b) {
    return a.cluster == b.cluster && a.sampled == b.sampled;
  };
  sim::wire_roundtrip_check(MsgAnnounce{7, true}, eq);
  sim::wire_roundtrip_check(MsgAnnounce{kInvalidNode, false}, eq);
}

}  // namespace fl::baseline
