// Baswana–Sen (2k−1)-spanner [Random Struct. Alg. 2007], unweighted
// specialization — the classic recursive-clustering baseline the paper's
// Sampler is inspired by (Section 1.3) and contrasts against.
//
// Two forms:
//   * build_baswana_sen()            — centralized reference.
//   * run_distributed_baswana_sen()  — the standard distributed realization
//     in O(k) rounds where every node announces its cluster membership to
//     ALL neighbours each iteration. This is exactly the Ω(m)-message
//     behaviour the paper's message-reduction result eliminates; bench E7
//     plots it against the Sampler.
//
// Guarantees: stretch 2k−1 (deterministic for every handled edge),
// E[|S|] = O(k · n^{1+1/k}).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "sim/metrics.hpp"

namespace fl::baseline {

struct BaswanaSenResult {
  std::vector<graph::EdgeId> edges;  ///< S, ascending edge ids
  unsigned k = 0;
  double stretch_bound() const { return 2.0 * k - 1.0; }
};

/// Centralized Baswana–Sen with parameter k >= 1 (k = 1 keeps all edges).
BaswanaSenResult build_baswana_sen(const graph::Graph& g, unsigned k,
                                   std::uint64_t seed);

struct DistributedBaswanaSenRun {
  BaswanaSenResult result;
  sim::RunStats stats;     ///< rounds and (Ω(m)) message count
  sim::Metrics metrics;
};

/// Distributed Baswana–Sen on the LOCAL simulator (KT1-style announcements
/// realized over unique edge IDs; cluster coins are keyed by center id so
/// members agree without extra rounds).
DistributedBaswanaSenRun run_distributed_baswana_sen(const graph::Graph& g,
                                                     unsigned k,
                                                     std::uint64_t seed);

/// Wire round-trip self-check for this protocol's payload structs (they
/// live in the .cpp's anonymous namespace; tests call this hook).
void baswana_sen_wire_selftest();

}  // namespace fl::baseline
