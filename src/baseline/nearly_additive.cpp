#include "baseline/nearly_additive.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "graph/algorithms.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace fl::baseline {

using graph::EdgeId;
using graph::Graph;
using graph::kInvalidEdge;
using graph::kInvalidNode;
using graph::NodeId;

double nearly_additive_center_prob(NodeId n) {
  if (n < 2) return 1.0;
  const double nn = static_cast<double>(n);
  return std::min(1.0, std::sqrt(std::log(nn) / nn));
}

bool nearly_additive_is_center(std::uint64_t seed, NodeId v, NodeId n) {
  auto rng = util::StreamFactory(seed).trial_stream(v, 0, 0x4E414443ULL);
  return rng.bernoulli(nearly_additive_center_prob(n));
}

namespace {

/// (distance, center) labels of the truncated Voronoi diagram, computed by
/// layered propagation: C_v (the set of nearest centers of v) satisfies
/// C_v = ∪ { C_u : u ∈ N(v), dist_u = dist_v − 1 }, so taking the min
/// center id layer by layer is exact.
struct Labels {
  std::vector<std::uint32_t> dist;  // kUnreachable beyond radius r
  std::vector<NodeId> cent;         // kInvalidNode when unclustered
};

/// Label the nodes listed in `active` (others ignored) of graph `g`; node
/// membership is tested through `in_scope`. Pass all nodes for the global
/// construction or a ball for the local variant.
template <typename InScopeFn>
Labels label_cells(const Graph& g, const std::vector<NodeId>& active,
                   unsigned r, std::uint64_t seed, InScopeFn&& in_scope) {
  Labels lb;
  lb.dist.assign(g.num_nodes(), graph::kUnreachable);
  lb.cent.assign(g.num_nodes(), kInvalidNode);

  std::vector<NodeId> frontier;
  for (const NodeId v : active) {
    if (nearly_additive_is_center(seed, v, g.num_nodes())) {
      lb.dist[v] = 0;
      lb.cent[v] = v;
      frontier.push_back(v);
    }
  }
  std::vector<NodeId> next;
  for (unsigned d = 0; d < r && !frontier.empty(); ++d) {
    next.clear();
    // First sweep: establish the next layer's distance.
    for (const NodeId v : frontier) {
      for (const auto& inc : g.incident(v)) {
        if (!in_scope(inc.to)) continue;
        if (lb.dist[inc.to] == graph::kUnreachable) {
          lb.dist[inc.to] = d + 1;
          next.push_back(inc.to);
        }
      }
    }
    // Second sweep: each new node adopts the min center among its
    // previous-layer neighbours (exact by the C_v union identity).
    for (const NodeId u : next) {
      NodeId best = kInvalidNode;
      for (const auto& inc : g.incident(u)) {
        if (!in_scope(inc.to)) continue;
        if (lb.dist[inc.to] == d && lb.cent[inc.to] < best)
          best = lb.cent[inc.to];
      }
      FL_ENSURE(best != kInvalidNode, "layered labelling broke");
      lb.cent[u] = best;
    }
    frontier.swap(next);
  }
  return lb;
}

/// The edges node v contributes given finalized labels of v and N(v).
void contribute(const Graph& g, NodeId v, const Labels& lb,
                std::vector<EdgeId>& out) {
  if (lb.cent[v] == kInvalidNode) {
    // Unclustered: keep everything incident.
    for (const auto& inc : g.incident(v)) out.push_back(inc.edge);
    return;
  }
  // Parent edge: least-id edge to a previous-layer neighbour of my cell.
  if (lb.dist[v] > 0) {
    EdgeId parent = kInvalidEdge;
    for (const auto& inc : g.incident(v)) {
      if (lb.dist[inc.to] == lb.dist[v] - 1 && lb.cent[inc.to] == lb.cent[v] &&
          (parent == kInvalidEdge || inc.edge < parent))
        parent = inc.edge;
    }
    FL_ENSURE(parent != kInvalidEdge, "Voronoi cell not connected");
    out.push_back(parent);
  }
  // One least-id edge towards every adjacent foreign cell.
  std::unordered_map<NodeId, EdgeId> per_cell;
  for (const auto& inc : g.incident(v)) {
    const NodeId c = lb.cent[inc.to];
    if (c == kInvalidNode || c == lb.cent[v]) continue;
    auto [it, fresh] = per_cell.try_emplace(c, inc.edge);
    if (!fresh && inc.edge < it->second) it->second = inc.edge;
  }
  for (const auto& [c, e] : per_cell) out.push_back(e);
}

}  // namespace

NearlyAdditiveResult build_nearly_additive(const Graph& g, unsigned r,
                                           std::uint64_t seed) {
  FL_REQUIRE(r >= 1, "nearly-additive spanner needs radius >= 1");
  NearlyAdditiveResult result;
  result.radius = r;

  std::vector<NodeId> all(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) all[v] = v;
  const Labels lb =
      label_cells(g, all, r, seed, [](NodeId) { return true; });

  std::vector<bool> in_spanner(g.num_edges(), false);
  std::vector<EdgeId> buf;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (lb.dist[v] == 0) ++result.centers;
    if (lb.cent[v] == kInvalidNode) ++result.unclustered;
    buf.clear();
    contribute(g, v, lb, buf);
    for (const EdgeId e : buf) in_spanner[e] = true;
  }
  for (EdgeId e = 0; e < g.num_edges(); ++e)
    if (in_spanner[e]) result.edges.push_back(e);
  return result;
}

std::vector<EdgeId> nearly_additive_local_edges(const Graph& g, NodeId v,
                                                unsigned r,
                                                std::uint64_t seed) {
  FL_REQUIRE(r >= 1, "nearly-additive spanner needs radius >= 1");
  // v's contribution depends only on labels of N(v) ∪ {v}, which in turn
  // depend only on the (r+1)-ball of v (all relevant center paths stay
  // inside it), so restricting the labelling to the ball is exact.
  const auto dist_from_v = graph::bfs_distances_bounded(g, v, r + 1);
  std::vector<NodeId> ball;
  for (NodeId u = 0; u < g.num_nodes(); ++u)
    if (dist_from_v[u] != graph::kUnreachable) ball.push_back(u);
  const Labels lb =
      label_cells(g, ball, r, seed, [&](NodeId u) {
        return dist_from_v[u] != graph::kUnreachable;
      });
  std::vector<EdgeId> out;
  contribute(g, v, lb, out);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace fl::baseline
