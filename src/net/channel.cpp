#include "net/channel.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace fl::net {

namespace {

[[noreturn]] void fail(const std::string& op) {
  throw ChannelError(op + ": " + std::strerror(errno));
}

void set_nodelay(int fd) {
  const int one = 1;
  // Best-effort: a platform refusing TCP_NODELAY costs latency, not
  // correctness, so this is the one socket call allowed to fail silently.
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void send_all(int fd, const void* data, std::size_t size) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  while (size > 0) {
    // MSG_NOSIGNAL: a dead peer must surface as EPIPE -> ChannelError,
    // never as a process-killing SIGPIPE.
    const ssize_t n = ::send(fd, p, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("send");
    }
    p += static_cast<std::size_t>(n);
    size -= static_cast<std::size_t>(n);
  }
}

void recv_all(int fd, void* data, std::size_t size) {
  auto* p = static_cast<std::uint8_t*>(data);
  while (size > 0) {
    const ssize_t n = ::recv(fd, p, size, 0);
    if (n == 0)
      throw ChannelError(
          "recv: peer closed the channel (a shard process likely died — "
          "check stderr for its error)");
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("recv");
    }
    p += static_cast<std::size_t>(n);
    size -= static_cast<std::size_t>(n);
  }
}

}  // namespace

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::pair<Socket, std::uint16_t> listen_loopback() {
  Socket s(::socket(AF_INET, SOCK_STREAM, 0));
  if (!s.valid()) fail("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // kernel-chosen
  if (::bind(s.fd(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0)
    fail("bind");
  if (::listen(s.fd(), 8) < 0) fail("listen");
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(s.fd(), reinterpret_cast<sockaddr*>(&bound), &len) < 0)
    fail("getsockname");
  return {std::move(s), ntohs(bound.sin_port)};
}

Socket connect_loopback(std::uint16_t port) {
  Socket s(::socket(AF_INET, SOCK_STREAM, 0));
  if (!s.valid()) fail("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  while (::connect(s.fd(), reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr)) < 0) {
    if (errno == EINTR) continue;
    fail("connect");
  }
  set_nodelay(s.fd());
  return s;
}

Socket accept_one(Socket& listener) {
  while (true) {
    const int fd = ::accept(listener.fd(), nullptr, nullptr);
    if (fd >= 0) {
      set_nodelay(fd);
      return Socket(fd);
    }
    if (errno == EINTR) continue;
    fail("accept");
  }
}

std::pair<Socket, Socket> socket_pair() {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) < 0) fail("socketpair");
  return {Socket(fds[0]), Socket(fds[1])};
}

void StreamChannel::send_frame(const void* data, std::size_t size) {
  if (size > 0xFFFFFFFFull) throw ChannelError("frame exceeds 4 GiB");
  const auto n = static_cast<std::uint32_t>(size);
  const std::uint8_t prefix[4] = {
      static_cast<std::uint8_t>(n), static_cast<std::uint8_t>(n >> 8),
      static_cast<std::uint8_t>(n >> 16), static_cast<std::uint8_t>(n >> 24)};
  send_all(sock_.fd(), prefix, sizeof(prefix));
  if (size > 0) send_all(sock_.fd(), data, size);
}

std::vector<std::uint8_t> StreamChannel::recv_frame() {
  std::uint8_t prefix[4];
  recv_all(sock_.fd(), prefix, sizeof(prefix));
  const std::uint32_t n = static_cast<std::uint32_t>(prefix[0]) |
                          (static_cast<std::uint32_t>(prefix[1]) << 8) |
                          (static_cast<std::uint32_t>(prefix[2]) << 16) |
                          (static_cast<std::uint32_t>(prefix[3]) << 24);
  std::vector<std::uint8_t> body(n);
  if (n > 0) recv_all(sock_.fd(), body.data(), n);
  return body;
}

std::vector<std::vector<std::uint8_t>> exchange_frames(
    std::span<Socket*> peers,
    const std::vector<std::vector<std::uint8_t>>& outgoing,
    std::uint64_t* wire_bytes) {
  // Per-peer progress state. Sends are the peer's frame with its 4-byte
  // prefix prepended; receives run the mirror state machine (prefix, then
  // body). Everything is poll()-driven: a peer whose pipe is full simply
  // stops being writable for a while, and the loop keeps draining the
  // others — the property that makes simultaneous all-to-all sends safe
  // at any frame size.
  struct PeerState {
    std::vector<std::uint8_t> out;  // prefix + frame
    std::size_t sent = 0;
    std::vector<std::uint8_t> in;   // grows to prefix, then full frame
    std::size_t got = 0;
    bool have_len = false;
  };
  const std::size_t k = peers.size();
  std::vector<PeerState> st(k);
  std::size_t pending = 0;  // directions still in flight (2 per peer)
  for (std::size_t i = 0; i < k; ++i) {
    const auto& frame = outgoing[i];
    if (frame.size() > 0xFFFFFFFFull) throw ChannelError("frame exceeds 4 GiB");
    const auto n = static_cast<std::uint32_t>(frame.size());
    st[i].out.reserve(4 + frame.size());
    st[i].out.push_back(static_cast<std::uint8_t>(n));
    st[i].out.push_back(static_cast<std::uint8_t>(n >> 8));
    st[i].out.push_back(static_cast<std::uint8_t>(n >> 16));
    st[i].out.push_back(static_cast<std::uint8_t>(n >> 24));
    st[i].out.insert(st[i].out.end(), frame.begin(), frame.end());
    st[i].in.resize(4);
    pending += 2;
  }
  std::vector<pollfd> fds(k);
  while (pending > 0) {
    for (std::size_t i = 0; i < k; ++i) {
      fds[i].fd = peers[i]->fd();
      fds[i].events = 0;
      fds[i].revents = 0;
      if (st[i].sent < st[i].out.size()) fds[i].events |= POLLOUT;
      if (st[i].got < st[i].in.size()) fds[i].events |= POLLIN;
      if (fds[i].events == 0) fds[i].fd = -1;  // poll ignores negative fds
    }
    if (::poll(fds.data(), fds.size(), -1) < 0) {
      if (errno == EINTR) continue;
      fail("poll");
    }
    for (std::size_t i = 0; i < k; ++i) {
      PeerState& p = st[i];
      if ((fds[i].revents & (POLLOUT | POLLERR | POLLHUP)) != 0 &&
          p.sent < p.out.size()) {
        const ssize_t n = ::send(peers[i]->fd(), p.out.data() + p.sent,
                                 p.out.size() - p.sent,
                                 MSG_DONTWAIT | MSG_NOSIGNAL);
        if (n < 0) {
          if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR)
            fail("send (exchange)");
        } else {
          p.sent += static_cast<std::size_t>(n);
          if (p.sent == p.out.size()) --pending;
        }
      }
      if ((fds[i].revents & (POLLIN | POLLERR | POLLHUP)) != 0 &&
          p.got < p.in.size()) {
        const ssize_t n = ::recv(peers[i]->fd(), p.in.data() + p.got,
                                 p.in.size() - p.got, MSG_DONTWAIT);
        if (n == 0)
          throw ChannelError(
              "exchange: peer closed the channel mid-round (a shard process "
              "likely died — check stderr for its error)");
        if (n < 0) {
          if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR)
            fail("recv (exchange)");
        } else {
          p.got += static_cast<std::size_t>(n);
          if (!p.have_len && p.got == 4) {
            const std::uint32_t len = static_cast<std::uint32_t>(p.in[0]) |
                                      (static_cast<std::uint32_t>(p.in[1]) << 8) |
                                      (static_cast<std::uint32_t>(p.in[2]) << 16) |
                                      (static_cast<std::uint32_t>(p.in[3]) << 24);
            p.have_len = true;
            p.in.resize(4 + static_cast<std::size_t>(len));
            if (len == 0) --pending;
          } else if (p.have_len && p.got == p.in.size()) {
            --pending;
          }
        }
      }
    }
  }
  std::vector<std::vector<std::uint8_t>> result(k);
  for (std::size_t i = 0; i < k; ++i) {
    if (wire_bytes != nullptr) *wire_bytes += st[i].out.size() + st[i].in.size();
    st[i].in.erase(st[i].in.begin(), st[i].in.begin() + 4);
    result[i] = std::move(st[i].in);
  }
  return result;
}

}  // namespace fl::net
