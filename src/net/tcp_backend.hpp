// The TCP delivery backend: shard processes over loopback sockets, with
// the in-process engine as a per-round oracle.
//
// FL_SIM_BACKEND=tcp:<S> (or Network::set_backend) splits the node set
// into S contiguous shards, each owned by a forked child process. Every
// round:
//
//   * the parent releases the round over per-child control socketpairs
//     (the frame carries the global delivered/carried counts, so
//     Context::network_silent() reads the same global fact everywhere);
//   * each child steps its own shard's programs, wire-encodes the sends
//     whose destination lives in another shard (sim/wire.hpp framing,
//     explicit little-endian), and swaps frames with every peer over
//     loopback TCP — the poll-driven all-to-all of net/channel.hpp;
//   * each child merges arrivals with the same counting-sort engine the
//     in-process backend uses (one lane per *sender shard*, so any
//     contiguous ascending partition reproduces the canonical
//     per-destination order), runs the same CONGEST admission pass, and
//     reports a round-sync barrier frame: delivered/carried/done counts,
//     per-directed-edge word tallies, and its full admitted stream with
//     wire-encoded payloads;
//   * the parent — which stepped and merged every node itself, as the
//     oracle — verifies each child's report against its own arena
//     (headers, tallies, counts), then replaces its arena payloads with
//     the wire-decoded ones, so what protocols consume on the next step
//     really crossed a socket. Any disagreement throws BackendMismatch
//     naming the shard, round and first divergence.
//
// This is contract C14 made executable every single round, not just at
// the end of a run: RunStats, Metrics and golden traces of a tcp:<S> run
// are bit-identical to the in-process run for every S, because the parent
// *is* the in-process run and the children must match it to be allowed to
// proceed.
//
// Requirements the transport adds: every payload type that crosses a
// round must be wire-encodable (declare fields with FL_WIRE_FIELDS; the
// parent fails fast with the offending type's name). Programs run in the
// parent *and* in their shard's child, so they must be deterministic
// functions of (state, inbox, rng) — which the determinism contracts
// already require.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>

#include "sim/backend.hpp"

namespace fl::net {

/// A shard process disagreed with the in-process oracle — the C14
/// cross-backend determinism contract is broken (engine bug, nondeterministic
/// protocol, or a payload whose codec does not round-trip).
class BackendMismatch : public std::runtime_error {
 public:
  explicit BackendMismatch(const std::string& what)
      : std::runtime_error(what) {}
};

/// Advisory transport counters for bench_micro_perf --backend. Wall-clock
/// data flows out of the engine only (C12): nothing reads these back.
struct TcpStats {
  std::uint64_t rounds = 0;       ///< merge barriers completed
  std::uint64_t barrier_ns = 0;   ///< parent time inside the socket barrier
  std::uint64_t wire_bytes = 0;   ///< child<->child + child->parent bytes
};

/// The backend's stats when `backend` is a TcpBackend, else null.
const TcpStats* tcp_stats(const sim::DeliveryBackend& backend);

// make_tcp_backend lives in sim/backend.hpp so the sim layer can dispatch
// FL_SIM_BACKEND without including net headers.

}  // namespace fl::net
