#include "net/tcp_backend.hpp"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <map>
#include <utility>
#include <vector>

#include "net/channel.hpp"
#include "obs/clock.hpp"
#include "obs/trace.hpp"
#include "sim/exec.hpp"
#include "sim/message.hpp"
#include "sim/network.hpp"
#include "sim/node.hpp"
#include "sim/payload.hpp"
#include "sim/wire.hpp"
#include "util/assert.hpp"

namespace fl::net {

using graph::NodeId;
using sim::MessageHeader;
using sim::Payload;
using sim::WireError;
using sim::WireReader;
using sim::WireWriter;

namespace {

// Control-channel commands (parent -> child, one frame per round).
constexpr std::uint8_t kCmdRound = 1;
constexpr std::uint8_t kCmdShutdown = 2;

[[noreturn]] void child_die(const char* what) {
  std::fprintf(stderr, "[fl tcp shard] fatal: %s\n", what);
  std::fflush(stderr);
  _exit(1);
}

}  // namespace

/// See tcp_backend.hpp's file comment for the protocol. One instance is
/// shared by fork: the parent keeps the oracle role (the inherited
/// InProcessBackend state *is* the oracle), each child keeps the same
/// object as its local sub-engine with shards_/lanes_ rebound to the
/// process partition.
class TcpBackend final : public sim::InProcessBackend {
 public:
  TcpBackend(std::size_t num_nodes, unsigned shards)
      : InProcessBackend(num_nodes),
        requested_shards_(shards),
        name_("tcp:" + std::to_string(shards)) {}

  ~TcpBackend() override {
    if (rank_ >= 0) return;  // children never run destructors (_exit only)
    shutdown_children();
  }

  std::string_view name() const override { return name_; }

  void on_plan(sim::Network& net) override;
  void begin_round(sim::Network& net, bool starting) override;
  std::uint64_t merge_barrier(sim::Network& net) override;

  const TcpStats& stats() const { return stats_; }

 private:
  void child_main(sim::Network& net);                      // never returns
  void child_round(sim::Network& net, bool starting);
  void parent_verify_round(sim::Network& net);
  void shutdown_children();

  unsigned owner_of(NodeId v) const { return owner_[v]; }

  unsigned requested_shards_;
  std::string name_;
  std::vector<sim::ShardRange> parts_;  // the S-way process partition
  std::vector<unsigned> owner_;         // node -> shard rank, size n

  // Parent state.
  std::vector<StreamChannel> ctrl_;  // one control channel per child
  std::vector<pid_t> pids_;
  TcpStats stats_;

  // Child state.
  int rank_ = -1;
  std::vector<Socket> mesh_;   // mesh_[q] = stream to shard q (own: invalid)
  sim::SendLane step_lane_;    // scratch lane the child's programs send into
  std::uint64_t child_wire_bytes_ = 0;  // this round's socket traffic
};

void TcpBackend::on_plan(sim::Network& net) {
  // The parent is a complete in-process engine — set its oracle state up
  // first, exactly as the plain backend would.
  InProcessBackend::on_plan(net);

  const NodeId n = net.graph_->num_nodes();
  parts_ = sim::partition_nodes(n, requested_shards_);
  const auto s = static_cast<unsigned>(parts_.size());
  owner_.resize(n);
  for (unsigned r = 0; r < s; ++r)
    for (NodeId v = parts_[r].begin; v < parts_[r].end; ++v) owner_[v] = r;

  // Build the full transport in the parent, then fork: every child-child
  // stream is a real loopback TCP connection (both ends accepted/connected
  // here, inherited across fork), every parent-child control channel an
  // AF_UNIX socketpair. This must run before the ExecPool exists — forking
  // a process with live engine threads is undefined behaviour territory —
  // which is exactly why DeliveryBackend::on_plan is sequenced before pool
  // creation.
  std::vector<std::vector<Socket>> mesh(s);
  for (auto& row : mesh) row.resize(s);
  for (unsigned i = 0; i < s; ++i) {
    for (unsigned j = i + 1; j < s; ++j) {
      auto [listener, port] = listen_loopback();
      Socket a = connect_loopback(port);
      Socket b = accept_one(listener);
      mesh[i][j] = std::move(a);
      mesh[j][i] = std::move(b);
    }
  }
  std::vector<std::pair<Socket, Socket>> ctrl_pairs;
  ctrl_pairs.reserve(s);
  for (unsigned r = 0; r < s; ++r) ctrl_pairs.push_back(socket_pair());

  for (unsigned r = 0; r < s; ++r) {
    const pid_t pid = ::fork();
    FL_REQUIRE(pid >= 0, "fork failed for tcp shard process");
    if (pid == 0) {
      // ---- child r ----
      rank_ = static_cast<int>(r);
      mesh_ = std::move(mesh[r]);
      mesh.clear();  // closes every other shard's descriptors
      ctrl_.clear();
      ctrl_.emplace_back(std::move(ctrl_pairs[r].second));
      ctrl_pairs.clear();  // closes the parent ends + other children's pairs
      child_main(net);     // never returns
    }
    pids_.push_back(pid);
  }
  // ---- parent ----
  ctrl_.reserve(s);
  for (auto& pair : ctrl_pairs) ctrl_.emplace_back(std::move(pair.first));
  // mesh + child ctrl ends close here (vector destruction at scope exit):
  // from now on the only parent descriptors are the S control channels.
}

void TcpBackend::begin_round(sim::Network& net, bool starting) {
  // Release the children into the round. The frame carries the *global*
  // silence facts so Context::network_silent() answers identically in
  // every process — a child only knows its own shard's delivery counts.
  WireWriter w;
  w.u8(kCmdRound);
  w.u64(net.round_);
  w.u8(starting ? 1 : 0);
  w.u64(net.delivered_last_round_);
  w.u64(net.carried_after_merge_);
  for (auto& ch : ctrl_) ch.send_frame(w.data(), w.size());
}

// ------------------------------------------------------------------ child

void TcpBackend::child_main(sim::Network& net) {
  try {
    // The child is a sequential sub-engine: no pool, no tracer, no
    // checker (their state is the parent's; a forked copy must not write
    // artifacts or bind lanes). release(), not reset(): the Tracer's
    // destructor finalizes the trace artifact, which only the parent may
    // do — the child leaks the forked copies and exits via _exit, which
    // runs no destructors anyway.
    (void)net.trace_.release();
    (void)net.check_.release();
    net.check_probe_ = nullptr;

    // Rebind the execution plan to the process partition: one lane per
    // *sender shard* (the merge orders lanes ascending within each
    // destination, so sender-shard lanes reproduce the canonical
    // ascending-sender order), one admission chunk per shard.
    const NodeId n = net.graph_->num_nodes();
    const auto s = static_cast<unsigned>(parts_.size());
    net.shards_ = parts_;
    net.lanes_.resize(s);
    for (auto& lane : net.lanes_) {
      if (lane.dest_counts.size() != n) {
        lane.dest_counts.assign(n, 0);
        lane.cursors.assign(n, 0);
      }
    }
    step_lane_.dest_counts.assign(n, 0);
    step_lane_.cursors.assign(n, 0);
    chunk_weight_.assign(s, 0);
    if (net.congest_.enforced()) {
      congest_edges_.assign(2 * static_cast<std::size_t>(net.graph_->num_edges()),
                            EdgeBudgetState{});
      congest_chunks_ = std::vector<CongestChunk>(s);
      congest_counts_.assign(n, 0);
    }

    while (true) {
      auto frame = ctrl_.front().recv_frame();
      WireReader r(frame.data(), frame.size());
      const std::uint8_t cmd = r.u8();
      if (cmd == kCmdShutdown) _exit(0);
      if (cmd != kCmdRound) child_die("unknown control command");
      const std::uint64_t round = r.u64();
      const bool starting = r.u8() != 0;
      net.delivered_last_round_ = r.u64();
      net.carried_after_merge_ = r.u64();
      if (round != net.round_) child_die("control round out of sync");
      child_round(net, starting);
    }
  } catch (const std::exception& e) {
    child_die(e.what());
  } catch (...) {
    child_die("unknown exception");
  }
}

void TcpBackend::child_round(sim::Network& net, bool starting) {
  const NodeId n = net.graph_->num_nodes();
  const auto s = static_cast<unsigned>(parts_.size());
  const auto rank = static_cast<unsigned>(rank_);
  const sim::ShardRange mine = parts_[rank];
  child_wire_bytes_ = 0;

  // Pre-run sends (tests enqueue through a pre-run Context before the
  // first round) sit in the inherited lane-0 outbox, in caller order. The
  // oracle delivers them at the head of lane 0, so each child keeps the
  // ones addressed to its own shard — order preserved — and stages them
  // for the front of its lane 0. They never cross a socket: they are
  // harness inputs, not protocol traffic.
  sim::MessagePlanes prerun;
  if (starting) {
    auto& lane0 = net.lanes_.front().outbox;
    for (std::size_t i = 0; i < lane0.size(); ++i) {
      if (owner_of(lane0.header(i).to) == rank)
        prerun.push_back(lane0.header(i), std::move(lane0.payload(i)));
    }
    for (auto& lane : net.lanes_) {
      lane.outbox.clear();
      lane.dest_counts.assign(n, 0);
      lane.words = 0;
    }
  }

  // Step this shard's programs into the scratch lane.
  for (NodeId v = mine.begin; v < mine.end; ++v) {
    sim::Context ctx(net, v, step_lane_);
    if (starting) {
      net.programs_[v]->on_start(ctx);
    } else {
      net.programs_[v]->on_round(ctx, net.inbox_span(v));
    }
    net.done_state_[v] = net.programs_[v]->done() ? 1 : 0;
  }

  // Demux: same-shard sends feed lane `rank` directly; foreign sends are
  // wire-encoded into one frame per destination shard. Frame layout per
  // message: header fields (u32 edge/from/to/size_hint), u64 wire type
  // id, u32 payload byte count, payload bytes.
  std::vector<WireWriter> out(s);
  sim::MessagePlanes locals;
  for (std::size_t i = 0; i < step_lane_.outbox.size(); ++i) {
    const MessageHeader& h = step_lane_.outbox.header(i);
    Payload& p = step_lane_.outbox.payload(i);
    step_lane_.dest_counts[h.to] = 0;  // undo enqueue's counting
    const unsigned q = owner_of(h.to);
    if (q == rank) {
      locals.push_back(h, std::move(p));
      continue;
    }
    WireWriter& w = out[q];
    w.u32(h.edge);
    w.u32(h.from);
    w.u32(h.to);
    w.u32(h.size_hint_words);
    w.u64(p.wire_type());
    const std::size_t len_slot = w.reserve_u32();
    p.wire_encode(w);  // throws WireError naming the type if not encodable
    w.patch_u32(len_slot,
                static_cast<std::uint32_t>(w.size() - len_slot - 4));
  }
  step_lane_.outbox.clear();
  step_lane_.words = 0;

  // All-to-all frame swap with every peer shard (poll-driven; see
  // channel.hpp for why the naive send-then-recv loop would deadlock).
  std::vector<Socket*> peers;
  std::vector<std::vector<std::uint8_t>> outgoing;
  for (unsigned q = 0; q < s; ++q) {
    if (q == rank) continue;
    peers.push_back(&mesh_[q]);
    outgoing.emplace_back(std::move(out[q].buffer()));
  }
  const auto incoming =
      exchange_frames(peers, outgoing, &child_wire_bytes_);

  // Build the sender-shard lanes: lane q holds shard q's messages for this
  // shard, in shard q's send order. Lane 0 additionally starts with the
  // pre-run messages on the first round — exactly where the oracle merge
  // has them.
  auto deposit = [&](unsigned lane_idx, const MessageHeader& h, Payload&& p) {
    sim::SendLane& lane = net.lanes_[lane_idx];
    ++lane.dest_counts[h.to];
    lane.outbox.push_back(h, std::move(p));
  };
  if (starting) {
    for (std::size_t i = 0; i < prerun.size(); ++i)
      deposit(0, prerun.header(i), std::move(prerun.payload(i)));
  }
  for (std::size_t i = 0; i < locals.size(); ++i)
    deposit(rank, locals.header(i), std::move(locals.payload(i)));
  std::size_t peer_idx = 0;
  for (unsigned q = 0; q < s; ++q) {
    if (q == rank) continue;
    const auto& bytes = incoming[peer_idx++];
    WireReader r(bytes.data(), bytes.size());
    while (r.remaining() > 0) {
      MessageHeader h;
      h.edge = r.u32();
      h.from = r.u32();
      h.to = r.u32();
      h.size_hint_words = r.u32();
      const std::uint64_t id = r.u64();
      const std::uint32_t len = r.u32();
      WireReader body(r.take(len).data(), len);
      Payload p = Payload::wire_decode(id, body);
      if (body.remaining() != 0)
        throw WireError("shard frame payload has trailing bytes");
      if (owner_of(h.to) != rank)
        throw WireError("shard frame message addressed to a foreign shard");
      deposit(q, h, std::move(p));
    }
  }

  // The same merge + admission engine as in-process, sequentially over
  // all S lanes/chunks.
  std::uint64_t total = 0;
  for (const auto& lane : net.lanes_) total += lane.outbox.size();
  merge_lanes(net, total);
  if (net.congest_.enforced()) congest_admit(net);

  // Round-sync barrier report: counts, per-directed-edge word tallies,
  // and the admitted stream with wire-encoded payloads (the parent swaps
  // those into its arena after verifying them against the oracle).
  std::uint64_t done = 0;
  for (NodeId v = mine.begin; v < mine.end; ++v) done += net.done_state_[v];
  std::map<std::uint64_t, std::uint64_t> tallies;
  for (std::size_t i = 0; i < arena_.size(); ++i) {
    const MessageHeader& h = arena_.header(i);
    const std::uint64_t key =
        2 * static_cast<std::uint64_t>(h.edge) + (h.to > h.from ? 1 : 0);
    tallies[key] += h.size_hint_words;
  }
  WireWriter report;
  report.u64(net.round_);
  report.u64(arena_.size());
  report.u64(carry_total_);
  report.u64(done);
  report.u64(child_wire_bytes_);
  report.u32(static_cast<std::uint32_t>(tallies.size()));
  for (const auto& [key, words] : tallies) {
    report.u64(key);
    report.u64(words);
  }
  report.u32(static_cast<std::uint32_t>(arena_.size()));
  for (std::size_t i = 0; i < arena_.size(); ++i) {
    const MessageHeader& h = arena_.header(i);
    report.u32(h.edge);
    report.u32(h.from);
    report.u32(h.to);
    report.u32(h.size_hint_words);
    report.u64(arena_.payload(i).wire_type());
    const std::size_t len_slot = report.reserve_u32();
    arena_.payload(i).wire_encode(report);
    report.patch_u32(len_slot,
                     static_cast<std::uint32_t>(report.size() - len_slot - 4));
  }
  ++net.round_;
  ctrl_.front().send_frame(report.data(), report.size());
}

// ----------------------------------------------------------------- parent

std::uint64_t TcpBackend::merge_barrier(sim::Network& net) {
  // The oracle merge first: the parent stepped every node itself, so this
  // produces the canonical arena the children must match.
  const std::uint64_t count = InProcessBackend::merge_barrier(net);
  {
    const obs::SpanScope span(net.trace_.get(), obs::SpanKind::NetBarrier, 0,
                              net.round_);
    const std::uint64_t t0 = obs::Clock::now_ns();
    parent_verify_round(net);
    stats_.rounds += 1;
    stats_.barrier_ns += obs::Clock::now_ns() - t0;
  }
  return count;
}

void TcpBackend::parent_verify_round(sim::Network& net) {
  const auto s = static_cast<unsigned>(parts_.size());
  const std::size_t round = net.round_;
  auto where = [&](unsigned r) {
    return " (backend " + std::string(name_) + ", shard " + std::to_string(r) +
           ", round " + std::to_string(round) + ")";
  };

  // Encodability pre-pass over everything the engine is holding this
  // round (delivered arena + congest carry). A non-encodable payload
  // kills the child at send time; checking here first turns the resulting
  // confusing control-channel EOF into a WireError naming the type.
  auto require_encodable = [&](const Payload& p) {
    if (p.can_wire_encode()) return;
    throw WireError(
        "the tcp backend requires wire-encodable payloads; offending type: " +
        (p.type() != nullptr ? sim::detail::type_name(*p.type())
                             : std::string("<empty payload>")) +
        " (declare its fields with FL_WIRE_FIELDS)");
  };
  for (std::size_t i = 0; i < arena_.size(); ++i)
    require_encodable(arena_.payload(i));
  for (const auto& chunk : congest_chunks_)
    for (std::size_t i = 0; i < chunk.carry.size(); ++i)
      require_encodable(chunk.carry.payload(i));

  std::uint64_t carried_sum = 0;
  for (unsigned r = 0; r < s; ++r) {
    auto frame = ctrl_[r].recv_frame();
    WireReader rd(frame.data(), frame.size());
    const std::uint64_t child_round = rd.u64();
    const std::uint64_t delivered = rd.u64();
    const std::uint64_t carried = rd.u64();
    const std::uint64_t done = rd.u64();
    const std::uint64_t wire_bytes = rd.u64();
    if (child_round != round)
      throw BackendMismatch("shard round " + std::to_string(child_round) +
                            " != parent round" + where(r));

    const std::uint32_t begin_slot = arena_offsets_[parts_[r].begin];
    const std::uint32_t end_slot = arena_offsets_[parts_[r].end];
    if (delivered != end_slot - begin_slot)
      throw BackendMismatch(
          "shard delivered " + std::to_string(delivered) + " messages, oracle " +
          std::to_string(end_slot - begin_slot) + where(r));

    std::uint64_t parent_done = 0;
    for (NodeId v = parts_[r].begin; v < parts_[r].end; ++v)
      parent_done += net.done_state_[v];
    if (done != parent_done)
      throw BackendMismatch("shard reports " + std::to_string(done) +
                            " done programs, oracle " +
                            std::to_string(parent_done) + where(r));

    // Per-directed-edge word tallies: the round-sync barrier's CONGEST
    // ledger. The oracle recomputes the shard's slice from its own arena.
    std::map<std::uint64_t, std::uint64_t> expect;
    for (std::uint32_t i = begin_slot; i < end_slot; ++i) {
      const MessageHeader& h = arena_.header(i);
      expect[2 * static_cast<std::uint64_t>(h.edge) + (h.to > h.from ? 1 : 0)] +=
          h.size_hint_words;
    }
    const std::uint32_t tally_count = rd.u32();
    if (tally_count != expect.size())
      throw BackendMismatch("shard reports " + std::to_string(tally_count) +
                            " active directed edges, oracle " +
                            std::to_string(expect.size()) + where(r));
    auto it = expect.begin();
    for (std::uint32_t i = 0; i < tally_count; ++i, ++it) {
      const std::uint64_t key = rd.u64();
      const std::uint64_t words = rd.u64();
      if (key != it->first || words != it->second)
        throw BackendMismatch(
            "per-edge word tally diverges at directed edge key " +
            std::to_string(key) + ": shard " + std::to_string(words) +
            " words, oracle expects key " + std::to_string(it->first) + " = " +
            std::to_string(it->second) + where(r));
    }

    // The admitted stream: headers must match the oracle arena slot for
    // slot; payloads are wire-decoded and *replace* the oracle's copies,
    // so the bytes protocols consume next round really crossed a socket.
    const std::uint32_t stream_count = rd.u32();
    if (stream_count != delivered)
      throw BackendMismatch("shard stream has " + std::to_string(stream_count) +
                            " messages, header said " +
                            std::to_string(delivered) + where(r));
    for (std::uint32_t i = 0; i < stream_count; ++i) {
      const std::uint32_t slot = begin_slot + i;
      MessageHeader h;
      h.edge = rd.u32();
      h.from = rd.u32();
      h.to = rd.u32();
      h.size_hint_words = rd.u32();
      const MessageHeader& o = arena_.header(slot);
      if (h.edge != o.edge || h.from != o.from || h.to != o.to ||
          h.size_hint_words != o.size_hint_words)
        throw BackendMismatch(
            "delivered stream diverges at slot " + std::to_string(slot) +
            ": shard (edge " + std::to_string(h.edge) + ", " +
            std::to_string(h.from) + " -> " + std::to_string(h.to) + ", " +
            std::to_string(h.size_hint_words) + "w), oracle (edge " +
            std::to_string(o.edge) + ", " + std::to_string(o.from) + " -> " +
            std::to_string(o.to) + ", " + std::to_string(o.size_hint_words) +
            "w)" + where(r));
      const std::uint64_t id = rd.u64();
      if (id != arena_.payload(slot).wire_type())
        throw BackendMismatch(
            "payload wire type diverges at slot " + std::to_string(slot) +
            where(r));
      const std::uint32_t len = rd.u32();
      WireReader body(rd.take(len).data(), len);
      Payload p = Payload::wire_decode(id, body);
      if (body.remaining() != 0)
        throw BackendMismatch("payload stream has trailing bytes at slot " +
                              std::to_string(slot) + where(r));
      arena_.payload(slot) = std::move(p);
    }
    if (rd.remaining() != 0)
      throw BackendMismatch("report frame has trailing bytes" + where(r));
    carried_sum += carried;
    stats_.wire_bytes += wire_bytes + frame.size();
  }
  if (carried_sum != carry_total_)
    throw BackendMismatch(
        "shards carry " + std::to_string(carried_sum) +
        " deferred messages in total, oracle " + std::to_string(carry_total_) +
        " (backend " + std::string(name_) + ", round " + std::to_string(round) +
        ")");
}

void TcpBackend::shutdown_children() {
  WireWriter w;
  w.u8(kCmdShutdown);
  for (auto& ch : ctrl_) {
    if (!ch.valid()) continue;
    try {
      ch.send_frame(w.data(), w.size());
    } catch (const ChannelError&) {
      // Already dead — reaped below.
    }
  }
  // Closing the control channels unblocks any child still waiting on a
  // command; mesh EOFs then cascade through children blocked mid-exchange.
  ctrl_.clear();
  for (const pid_t pid : pids_) {
    if (pid <= 0) continue;
    // Bounded reap: a healthy child exits promptly on shutdown/EOF; a
    // wedged one gets SIGKILL after ~5s rather than hanging the parent.
    bool reaped = false;
    int status = 0;
    for (int spin = 0; spin < 500 && !reaped; ++spin) {
      const pid_t got = ::waitpid(pid, &status, WNOHANG);
      if (got == pid || got < 0) {
        reaped = true;
        break;
      }
      ::usleep(10 * 1000);
    }
    if (!reaped) {
      ::kill(pid, SIGKILL);
      ::waitpid(pid, &status, 0);
    }
  }
  pids_.clear();
}

const TcpStats* tcp_stats(const sim::DeliveryBackend& backend) {
  const auto* tcp = dynamic_cast<const TcpBackend*>(&backend);
  return tcp != nullptr ? &tcp->stats() : nullptr;
}

std::unique_ptr<sim::DeliveryBackend> make_tcp_backend(std::size_t num_nodes,
                                                       unsigned shards) {
  return std::make_unique<TcpBackend>(num_nodes, shards);
}

}  // namespace fl::net
