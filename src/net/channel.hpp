// Loopback stream channels for the TCP delivery backend.
//
// Every raw socket syscall in the repo lives in channel.cpp — fl_lint
// FL011 bans socket/bind/htons-and-friends everywhere outside src/net/,
// so the rest of the codebase talks frames, never file descriptors. Two
// abstractions:
//
//   * Socket — a move-only RAII fd. Factories cover the two transports
//     the backend needs: loopback TCP pairs (listen_loopback /
//     connect_loopback / accept_one, with TCP_NODELAY set — a round-sync
//     barrier is exactly the workload Nagle ruins) and AF_UNIX
//     socketpairs for parent<->child control channels.
//   * StreamChannel — blocking length-prefixed frames over a Socket: a
//     u32 little-endian byte count, then the bytes. The framing matches
//     sim/wire.hpp's conventions, so a frame body is usually a WireWriter
//     buffer.
//
// exchange_frames is the deadlock-free all-to-all primitive: every shard
// process sends one frame to and receives one frame from each peer,
// poll()-driven and non-blocking for the duration, so two peers with
// full-pipe simultaneous sends still make progress (the naive
// send-then-receive loop deadlocks once frames outgrow the kernel's
// socket buffers).
//
// Failure model: every EOF or socket error throws ChannelError. A dead
// shard process closes its descriptors, which surfaces as EOF at every
// peer — errors cascade through the mesh instead of wedging it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace fl::net {

class ChannelError : public std::runtime_error {
 public:
  explicit ChannelError(const std::string& what) : std::runtime_error(what) {}
};

/// Move-only RAII file descriptor.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void close();

 private:
  int fd_ = -1;
};

/// Bind + listen on 127.0.0.1 with a kernel-chosen port; returns the
/// listener and the port to connect to.
std::pair<Socket, std::uint16_t> listen_loopback();

/// Connect to 127.0.0.1:port (TCP_NODELAY set).
Socket connect_loopback(std::uint16_t port);

/// Accept exactly one connection (TCP_NODELAY set on the result).
Socket accept_one(Socket& listener);

/// AF_UNIX stream socketpair — the parent<->shard control channel.
std::pair<Socket, Socket> socket_pair();

/// Blocking length-prefixed frames (u32 LE count + bytes) over a Socket.
class StreamChannel {
 public:
  StreamChannel() = default;
  explicit StreamChannel(Socket sock) : sock_(std::move(sock)) {}

  bool valid() const { return sock_.valid(); }
  Socket& socket() { return sock_; }

  /// One frame out; throws ChannelError on any short write.
  void send_frame(const void* data, std::size_t size);
  /// One frame in; throws ChannelError on EOF or a short read.
  std::vector<std::uint8_t> recv_frame();

 private:
  Socket sock_;
};

/// All-to-all frame swap: send outgoing[i] to peers[i] while receiving one
/// frame from each into the returned vector (indexed like peers). Poll-
/// based and non-blocking throughout, so simultaneous full-pipe sends
/// cannot deadlock. Returns the received frames; `wire_bytes`, when given,
/// accumulates the total bytes moved in both directions (prefix included).
std::vector<std::vector<std::uint8_t>> exchange_frames(
    std::span<Socket*> peers,
    const std::vector<std::vector<std::uint8_t>>& outgoing,
    std::uint64_t* wire_bytes = nullptr);

}  // namespace fl::net
