// E4 — Theorem 9: the stretch of H is at most 2·3^k − 1 whp.
//
// For each family and k we report the *measured* maximum edge stretch
// (exact over all G-edges on small instances, sampled on larger ones)
// against the theorem's bound, plus the violation count — the paper
// predicts zero violations whp.
#include "bench_common.hpp"
#include "core/config.hpp"
#include "core/sampler.hpp"
#include "graph/generators.hpp"
#include "graph/spanner_check.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace fl;
  const auto env = bench::Env::parse(argc, argv);
  const graph::NodeId n = env.quick ? 300 : 800;

  util::Table table({"family", "k", "bound 2·3^k-1", "max stretch",
                     "mean stretch", "violations", "|S|/m"});

  const std::vector<graph::Family> families{
      graph::Family::ErdosRenyi,     graph::Family::Complete,
      graph::Family::Grid,           graph::Family::Hypercube,
      graph::Family::BarabasiAlbert, graph::Family::RandomGeometric,
      graph::Family::Dumbbell,       graph::Family::Torus};
  for (const auto family : families) {
    const graph::NodeId nn =
        family == graph::Family::Complete ? std::min<graph::NodeId>(n, 400) : n;
    util::Xoshiro256 rng(env.seed);
    // Dense parameters: sparsification (and hence non-trivial stretch) only
    // happens where the input exceeds the spanner budget, so ER/BA/RGG get
    // a high density dial; grids/tori stay sparse and show stretch 1.
    const auto g = graph::make_family(family, nn, 48.0, rng);
    for (unsigned k = 1; k <= 2; ++k) {
      // The bench profile keeps budgets below the dense degrees; paper
      // constants at this n would query everything and report stretch 1.
      const auto cfg = core::SamplerConfig::bench_profile(k, 3, env.seed + k);
      const auto res = core::build_spanner(g, cfg);
      const auto rep =
          graph::check_spanner_exact(g, res.edges, cfg.stretch_bound());
      table.add(graph::family_name(family), k, cfg.stretch_bound(),
                rep.max_edge_stretch, util::fixed(rep.mean_edge_stretch, 3),
                rep.violations,
                util::fixed(static_cast<double>(res.edges.size()) /
                                static_cast<double>(g.num_edges()),
                            3));
    }
  }
  env.emit(table, "E4 / Theorem 9 — measured stretch vs 2·3^k−1 "
                  "(violations predicted 0)");
  return 0;
}
