// E1 — Lemma 4: level sizes of the Sampler hierarchy.
//
// Predicted: n_j ≈ n · p̂_{j−1} = n^{1 − (2^j − 1)δ}, within factor 3/2 whp.
// Measured: virtual node counts recorded by the centralized Sampler trace,
// across graph families and hierarchy depths.
#include <cmath>

#include "bench_common.hpp"
#include "core/config.hpp"
#include "core/sampler.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace fl;
  const auto env = bench::Env::parse(argc, argv);
  const graph::NodeId n = env.quick ? 1024 : 4096;

  util::Table table({"family", "k", "level", "n_j predicted", "n_j measured",
                     "ratio", "within 3/2?"});

  const std::vector<graph::Family> families{
      graph::Family::ErdosRenyi, graph::Family::Complete,
      graph::Family::RandomGeometric};
  std::uint64_t family_salt = 0;
  for (const auto family : families) {
    ++family_salt;
    // Complete graphs get expensive fast; cap their size.
    const graph::NodeId nn =
        family == graph::Family::Complete ? std::min<graph::NodeId>(n, 2048) : n;
    util::Xoshiro256 rng(env.seed);
    const auto g = graph::make_family(family, nn, 16.0, rng);
    for (unsigned k = 1; k <= 3; ++k) {
      // Salt the seed per family: Lemma 4's prediction is graph-independent
      // and the center coins are keyed by node id, so an unsalted seed
      // would (correctly but confusingly) repeat the same counts.
      const auto cfg = core::SamplerConfig::paper_faithful(
          k, 2, env.seed + 1000 * family_salt);
      const auto res = core::build_spanner(g, cfg);
      const double delta = cfg.delta();
      for (unsigned j = 1; j <= k; ++j) {
        const double predicted =
            std::pow(static_cast<double>(g.num_nodes()),
                     1.0 - (std::exp2(static_cast<double>(j)) - 1.0) * delta);
        const double measured = res.trace.levels[j].virtual_nodes;
        const double ratio = measured / predicted;
        table.add(graph::family_name(family), k, j, predicted, measured,
                  util::fixed(ratio, 3),
                  (ratio >= 2.0 / 3.0 && ratio <= 1.5) ? "yes" : "no");
      }
    }
  }
  env.emit(table, "E1 / Lemma 4 — hierarchy level sizes n_j vs n^{1-(2^j-1)δ}");
  return 0;
}
