// E8 — Lemma 12: t-local broadcast complexities.
//
// First branch of the lemma: for parameter γ, t-local broadcast costs
// Õ(t·n^{1+2/(2^{γ+1}−1)}) messages and O(3^γ·t + 6^γ) rounds. We sweep t
// and γ, measure the broadcast stage over the Sampler spanner (with
// k = γ, h = 2^{γ+1}−1 as the proof of Lemma 12 sets them), and compare
// against native flooding over G.
#include <cmath>

#include "bench_common.hpp"
#include "core/config.hpp"
#include "core/distributed_sampler.hpp"
#include "graph/generators.hpp"
#include "localsim/tlocal_broadcast.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace fl;
  const auto env = bench::Env::parse(argc, argv);
  const graph::NodeId n = env.quick ? 512 : 1024;

  util::Xoshiro256 rng(env.seed);
  const auto g = graph::erdos_renyi_gnm(n, 32ull * n, rng);

  // Lemma 12 states O(3^γ·t + 6^γ) rounds; the concrete constant of the
  // construction is α·t + (spanner rounds), α = 2·3^γ − 1.
  util::Table table({"γ", "t", "α=2·3^γ-1", "round bound α·t+6^γ",
                     "bcast rounds", "bcast msgs", "native msgs",
                     "bcast/native"});

  for (unsigned gamma = 1; gamma <= 2; ++gamma) {
    const unsigned h = (1u << (gamma + 1)) - 1;  // per Lemma 12's setting
    auto cfg = core::SamplerConfig::bench_profile(gamma, h, env.seed);
    const auto spanner = core::run_distributed_sampler(g, cfg);
    for (unsigned t : {1u, 2u, 4u, 8u}) {
      const auto radius =
          static_cast<unsigned>(spanner.stretch_bound) * t;
      const auto reduced =
          localsim::run_tlocal_broadcast(g, spanner.edges, radius, env.seed);
      const auto native =
          localsim::run_tlocal_broadcast(g, localsim::all_edges(g), t, env.seed);
      const double round_bound =
          spanner.stretch_bound * t + std::pow(6.0, gamma);
      table.add(gamma, t, spanner.stretch_bound, round_bound,
                reduced.stats.rounds, reduced.stats.messages,
                native.stats.messages,
                util::fixed(static_cast<double>(reduced.stats.messages) /
                                static_cast<double>(native.stats.messages),
                            3));
    }
  }
  env.emit(table,
           "E8 / Lemma 12 — t-local broadcast over the Sampler spanner vs "
           "native flooding (dense ER, deg 64)");
  return 0;
}
