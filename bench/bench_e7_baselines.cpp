// E7 — the free lunch vs the Ω(m) baselines.
//
// The paper's conceptual table: every earlier distributed spanner
// construction sends Ω(m) messages; Sampler sends Õ(n^{1+δ+ε}). We sweep
// density at fixed n and report message counts for
//   * distributed Sampler,
//   * distributed Baswana–Sen (announce-to-all-neighbours clustering),
//   * full topology collection at a leader,
// plus round counts (Sampler and BS are O(1)-ish; collection pays Θ(D)),
// and the density at which Sampler overtakes each baseline.
#include "baseline/baswana_sen.hpp"
#include "baseline/topology_collect.hpp"
#include "bench_common.hpp"
#include "core/config.hpp"
#include "core/distributed_sampler.hpp"
#include "graph/generators.hpp"
#include "graph/spanner_check.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace fl;
  const auto env = bench::Env::parse(argc, argv);
  const graph::NodeId n = env.quick ? 512 : 1024;

  util::Table table({"avg deg", "m", "sampler msgs", "baswana-sen msgs",
                     "collect msgs", "sampler rounds", "bs rounds",
                     "collect rounds", "sampler/bs", "sampler/collect"});

  auto cfg = core::SamplerConfig::bench_profile(2, 3, env.seed);
  // The rounds columns record the LOCAL timetable — pin it so an
  // FL_SIM_CONGEST env probe cannot swap in event-driven barriers.
  cfg.congest = sim::CongestConfig{};
  // The crossover sits where m exceeds the Sampler's Õ(n^{1+δ+ε}) bill,
  // i.e. deg ≳ n^{δ+ε}·polylog — the sweep must run into that regime.
  std::vector<double> degs{8, 32, 128, 256};
  if (!env.quick) degs.push_back(512);
  degs.push_back(static_cast<double>(n - 1));  // complete

  double crossover_bs = -1.0;
  double crossover_tc = -1.0;
  for (const double deg : degs) {
    util::Xoshiro256 rng(env.seed);
    const auto g =
        deg >= static_cast<double>(n - 1)
            ? graph::complete(n)
            : graph::erdos_renyi_gnm(
                  n, static_cast<std::size_t>(deg * n / 2), rng);
    const auto sampler = core::run_distributed_sampler(g, cfg);
    const auto bs = baseline::run_distributed_baswana_sen(g, 3, env.seed);
    const auto tc = baseline::run_topology_collect(g, 3, env.seed);
    const double rbs = static_cast<double>(sampler.stats.messages) /
                       static_cast<double>(bs.stats.messages);
    const double rtc = static_cast<double>(sampler.stats.messages) /
                       static_cast<double>(tc.stats.messages);
    if (rbs < 1.0 && crossover_bs < 0) crossover_bs = deg;
    if (rtc < 1.0 && crossover_tc < 0) crossover_tc = deg;
    table.add(deg, static_cast<std::size_t>(g.num_edges()),
              sampler.stats.messages, bs.stats.messages, tc.stats.messages,
              sampler.stats.rounds, bs.stats.rounds, tc.stats.rounds,
              util::fixed(rbs, 3), util::fixed(rtc, 3));
  }
  env.emit(table, "E7 — Sampler vs Ω(m) baselines, density sweep at fixed n");

  util::Table cross({"comparison", "crossover avg deg (sampler wins beyond)"});
  cross.add("vs Baswana-Sen",
            crossover_bs < 0 ? "not reached" : util::fixed(crossover_bs, 0));
  cross.add("vs topology collection",
            crossover_tc < 0 ? "not reached" : util::fixed(crossover_tc, 0));
  env.emit(cross, "E7 — crossover densities");

  // Quality check so the win is not bought with a broken spanner.
  util::Table quality({"construction", "|S|", "stretch bound", "max stretch",
                       "violations"});
  util::Xoshiro256 rng(env.seed + 7);
  const auto g = graph::erdos_renyi_gnm(env.quick ? 300u : 600u, 16ull * (env.quick ? 300 : 600), rng);
  {
    const auto cfgq = core::SamplerConfig::paper_faithful(2, 2, env.seed);
    const auto run = core::run_distributed_sampler(g, cfgq);
    const auto rep = graph::check_spanner_exact(g, run.edges, run.stretch_bound);
    quality.add("sampler (k=2)", run.edges.size(), run.stretch_bound,
                rep.max_edge_stretch, rep.violations);
  }
  {
    const auto bs = baseline::run_distributed_baswana_sen(g, 3, env.seed);
    const auto rep = graph::check_spanner_exact(g, bs.result.edges,
                                                bs.result.stretch_bound());
    quality.add("baswana-sen (k=3)", bs.result.edges.size(),
                bs.result.stretch_bound(), rep.max_edge_stretch,
                rep.violations);
  }
  env.emit(quality, "E7 — spanner quality cross-check");
  return 0;
}
