// E10 — Section 6 two-stage scheme (Theorem 3, second branch).
//
// Stage 1: Sampler spanner H (stretch α1, size s1). Stage 2: simulate an
// off-the-shelf LOCAL spanner algorithm over H — our Voronoi nearly-
// additive stage (DESIGN.md records the substitution for Derbel et al.) —
// yielding H' with a different stretch/size tradeoff. Payload broadcasts
// then run over H' instead of H. For large payload radii t the smaller
// per-round edge budget of H' wins even though its stretch is worse than
// native G: we chart messages vs t for one-stage and two-stage delivery.
#include "baseline/nearly_additive.hpp"
#include "bench_common.hpp"
#include "core/config.hpp"
#include "core/distributed_sampler.hpp"
#include "graph/generators.hpp"
#include "localsim/tlocal_broadcast.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace fl;
  const auto env = bench::Env::parse(argc, argv);
  const graph::NodeId n = env.quick ? 512 : 1024;

  util::Xoshiro256 rng(env.seed);
  const auto g = graph::erdos_renyi_gnm(n, 32ull * n, rng);

  // Stage 1: Sampler spanner H1.
  auto cfg = core::SamplerConfig::bench_profile(1, 3, env.seed);
  // The setup table records LOCAL construction rounds — pin them env-immune.
  cfg.congest = sim::CongestConfig{};
  const auto h1 = core::run_distributed_sampler(g, cfg);

  // Stage 2: the (2r+1)-stretch Voronoi spanner H2, built by a (r+1)-round
  // LOCAL algorithm. Its construction is simulated over H1: the messages
  // for that simulation are a broadcast of radius α1·(r+1) over H1.
  const unsigned r = 2;
  const auto h2 = baseline::build_nearly_additive(g, r, env.seed + 1);
  const auto stage2_radius =
      static_cast<unsigned>(h1.stretch_bound) * (r + 1);
  const auto stage2_sim =
      localsim::run_tlocal_broadcast(g, h1.edges, stage2_radius, env.seed);

  util::Table setup({"stage", "edges", "stretch", "construction msgs",
                     "construction rounds"});
  setup.add("H1 (Sampler k=1)", h1.edges.size(), h1.stretch_bound,
            h1.stats.messages, h1.stats.rounds);
  setup.add("H2 (Voronoi r=2, simulated over H1)", h2.edges.size(),
            h2.stretch_bound(),
            h1.stats.messages + stage2_sim.stats.messages,
            h1.stats.rounds + stage2_sim.stats.rounds);
  env.emit(setup, "E10 — two-stage setup costs");

  // Payload delivery: t-local broadcast via H1 directly vs via H2.
  util::Table table({"t", "native msgs", "via H1 msgs", "via H2 msgs",
                     "H1 rounds", "H2 rounds", "two-stage wins?"});
  for (unsigned t : {1u, 2u, 4u, 8u, 16u}) {
    const auto native =
        localsim::run_tlocal_broadcast(g, localsim::all_edges(g), t, env.seed);
    const auto via_h1 = localsim::run_tlocal_broadcast(
        g, h1.edges, static_cast<unsigned>(h1.stretch_bound) * t, env.seed);
    const auto via_h2 = localsim::run_tlocal_broadcast(
        g, h2.edges, static_cast<unsigned>(h2.stretch_bound()) * t, env.seed);
    table.add(t, native.stats.messages, via_h1.stats.messages,
              via_h2.stats.messages, via_h1.stats.rounds, via_h2.stats.rounds,
              via_h2.stats.messages < via_h1.stats.messages);
  }
  env.emit(table,
           "E10 — payload broadcast: one-stage (H1) vs two-stage (H2) vs "
           "native, t sweep");
  return 0;
}
