// E3 — Lemma 10 / Theorem 2: spanner size |S| = Õ(n^{1+δ}).
//
// The bound only binds when the input has MORE than Õ(n^{1+δ}) edges, so
// the sweep runs on complete graphs (m = n(n−1)/2): we fit the log-log
// slope of |S| vs n per k and compare against the predicted exponent
// 1 + δ = 1 + 1/(2^{k+1}−1) (a +o(1) from the log n factor in the budget is
// expected). A second table shows dense-ER inputs at a fixed n with growing
// degree: once deg crosses the budget, |S| detaches from m and flattens.
// Uses the bench profile so the polynomial part is visible at laptop scale
// (DESIGN.md §2).
#include <cmath>

#include "bench_common.hpp"
#include "core/config.hpp"
#include "core/sampler.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace fl;
  const auto env = bench::Env::parse(argc, argv);

  // (a) n sweep on K_n.
  std::vector<graph::NodeId> sizes{181, 256, 362, 512, 724, 1024, 1448};
  if (!env.quick) sizes.push_back(2048);

  util::Table table({"k", "n", "m", "|S|", "|S|/m"});
  util::Table fits({"k", "δ", "predicted exponent 1+δ", "raw slope",
                    "log-corrected slope", "R²", "corrected-pred"});
  for (unsigned k = 1; k <= 3; ++k) {
    const auto cfg0 = core::SamplerConfig::bench_profile(k, 3, env.seed);
    std::vector<double> xs, ys, ys_corr;
    for (const auto n : sizes) {
      const auto g = graph::complete(n);
      auto cfg = cfg0;
      cfg.seed = env.seed + n;
      const auto res = core::build_spanner(g, cfg);
      xs.push_back(static_cast<double>(n));
      ys.push_back(static_cast<double>(res.edges.size()));
      // The bench-profile budget is c·n^{2^jδ}·log n, so Õ hides exactly
      // one log n factor; dividing it out isolates the polynomial exponent.
      ys_corr.push_back(ys.back() / std::log2(static_cast<double>(n)));
      table.add(k, static_cast<std::size_t>(n),
                static_cast<std::size_t>(g.num_edges()), res.edges.size(),
                util::fixed(static_cast<double>(res.edges.size()) /
                                static_cast<double>(g.num_edges()),
                            3));
    }
    const auto raw = util::fit_loglog(xs, ys);
    const auto corr = util::fit_loglog(xs, ys_corr);
    fits.add(k, util::fixed(cfg0.delta(), 4),
             util::fixed(1.0 + cfg0.delta(), 4), util::fixed(raw.slope, 4),
             util::fixed(corr.slope, 4), util::fixed(corr.r_squared, 4),
             util::fixed(corr.slope - 1.0 - cfg0.delta(), 4));
  }
  env.emit(table, "E3 / Lemma 10 — spanner size on K_n (bound binds)");
  env.emit(fits,
           "E3 — fitted growth exponents vs predicted 1+δ (Õ hides one "
           "log n: the corrected column divides it out)");

  // (b) density sweep at fixed n: |S| must detach from m.
  {
    const graph::NodeId n = env.quick ? 512 : 1024;
    const auto cfg0 = core::SamplerConfig::bench_profile(2, 3, env.seed);
    util::Table detach({"avg deg", "m", "|S|", "|S|/m"});
    std::vector<double> degs{8, 16, 32, 64, 128, 256};
    for (const double deg : degs) {
      util::Xoshiro256 rng(env.seed);
      const auto g = graph::erdos_renyi_gnm(
          n, static_cast<std::size_t>(deg * n / 2), rng);
      const auto res = core::build_spanner(g, cfg0);
      detach.add(deg, static_cast<std::size_t>(g.num_edges()),
                 res.edges.size(),
                 util::fixed(static_cast<double>(res.edges.size()) /
                                 static_cast<double>(g.num_edges()),
                             3));
    }
    env.emit(detach,
             "E3b — |S| vs density at fixed n: flat once deg exceeds the "
             "budget (the spanner cap binds)");
  }
  return 0;
}
