// Micro timing benchmarks: wall-clock throughput of the main building
// blocks. These measure *our implementation's* speed, not the paper's model
// quantities — the model quantities live in bench_e1..e10.
//
// Two sections:
//   * a delivery-throughput sweep over the simulator's round engine —
//     sequential vs `--threads N` execution lanes, across dense, sparse
//     and skewed (power-law) graph families — run when any of the common
//     bench flags (--delivery, --json, --csv, --quick, --seed) is present;
//     --json emits the machine-readable record that the BENCH_*.json
//     trajectory tracking consumes;
//   * the google-benchmark suite of building-block timings, run otherwise
//     (all --benchmark_* flags pass through).
#include <benchmark/benchmark.h>

#include <sys/resource.h>
#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include "baseline/baswana_sen.hpp"
#include "bench_common.hpp"
#include "core/config.hpp"
#include "core/distributed_sampler.hpp"
#include "core/sampler.hpp"
#include "graph/algorithms.hpp"
#include "graph/spanner_check.hpp"
#include "graph/generators.hpp"
#include "localsim/tlocal_broadcast.hpp"
#include "net/tcp_backend.hpp"
#include "obs/trace.hpp"
#include "sim/backend.hpp"
#include "sim/network.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace fl;

graph::Graph make_er(graph::NodeId n, std::size_t deg) {
  util::Xoshiro256 rng(42 + n);
  return graph::erdos_renyi_gnm(n, deg * n / 2, rng);
}

void BM_GraphBuild(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(make_er(n, 16));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n) * 8);
}
BENCHMARK(BM_GraphBuild)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_Bfs(benchmark::State& state) {
  const auto g = make_er(static_cast<graph::NodeId>(state.range(0)), 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::bfs_distances(g, 0));
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_Bfs)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_SamplerCentralized(benchmark::State& state) {
  const auto g = make_er(static_cast<graph::NodeId>(state.range(0)), 16);
  const auto cfg = core::SamplerConfig::bench_profile(2, 3, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::build_spanner(g, cfg));
  }
  state.SetItemsProcessed(state.iterations() * g.num_nodes());
}
BENCHMARK(BM_SamplerCentralized)->Arg(1024)->Arg(4096);

void BM_SamplerDistributed(benchmark::State& state) {
  const auto g = make_er(static_cast<graph::NodeId>(state.range(0)), 16);
  const auto cfg = core::SamplerConfig::bench_profile(2, 2, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::run_distributed_sampler(g, cfg));
  }
  state.SetItemsProcessed(state.iterations() * g.num_nodes());
}
BENCHMARK(BM_SamplerDistributed)->Arg(512)->Arg(1024);

void BM_BaswanaSenCentralized(benchmark::State& state) {
  const auto g = make_er(static_cast<graph::NodeId>(state.range(0)), 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(baseline::build_baswana_sen(g, 3, 11));
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_BaswanaSenCentralized)->Arg(1024)->Arg(4096);

void BM_TLocalBroadcast(benchmark::State& state) {
  const auto g = make_er(1024, 16);
  const auto edges = localsim::all_edges(g);
  const auto t = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(localsim::run_tlocal_broadcast(g, edges, t, 13));
  }
}
BENCHMARK(BM_TLocalBroadcast)->Arg(1)->Arg(2)->Arg(4);

void BM_SpannerCheckExact(benchmark::State& state) {
  const auto g = make_er(static_cast<graph::NodeId>(state.range(0)), 16);
  const auto cfg = core::SamplerConfig::bench_profile(2, 3, 17);
  const auto res = core::build_spanner(g, cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::check_spanner_exact(g, res.edges));
  }
}
BENCHMARK(BM_SpannerCheckExact)->Arg(512)->Arg(1024);

// ------------------------------------------------- delivery throughput

/// Traffic driver: every node re-broadcasts a word over every incident edge
/// for `rounds` rounds, so each round delivers exactly 2m messages. The
/// per-round work is dominated by the simulator's enqueue + delivery path —
/// the quantity this sweep measures. `words` sets the self-reported message
/// size (default 1): the congest sweep sends multi-word messages so a
/// finite per-edge budget actually binds.
class FloodRounds final : public sim::NodeProgram {
 public:
  FloodRounds(graph::NodeId self, unsigned rounds, std::uint32_t words = 1)
      : self_(self), rounds_(rounds), words_(words) {}

  void on_start(sim::Context& ctx) override {
    send_all(ctx);
    sent_ = 1;
  }

  void on_round(sim::Context& ctx, sim::InboxView inbox) override {
    for (const auto& m : inbox) checksum_ += sim::payload_as<graph::NodeId>(m);
    if (sent_ < rounds_) {
      send_all(ctx);
      ++sent_;
    }
  }

  bool done() const override { return sent_ >= rounds_; }

  std::uint64_t checksum() const { return checksum_; }

 private:
  void send_all(sim::Context& ctx) {
    for (const graph::EdgeId e : ctx.incident_edges())
      ctx.send(e, self_, words_);
  }

  graph::NodeId self_;
  unsigned rounds_;
  std::uint32_t words_ = 1;
  unsigned sent_ = 0;
  std::uint64_t checksum_ = 0;
};

struct DeliveryResult {
  sim::RunStats stats;
  std::uint64_t checksum = 0;
  double seconds = 0.0;

  double msgs_per_sec() const {
    return seconds > 0.0 ? static_cast<double>(stats.messages) / seconds : 0.0;
  }
};

DeliveryResult run_delivery(const graph::Graph& g, unsigned rounds,
                            std::uint64_t seed, unsigned threads = 1,
                            sim::BackendConfig backend = {},
                            fl::net::TcpStats* transport_out = nullptr) {
  sim::Network net(g, sim::Knowledge::EdgeIds, seed);
  // Pin the backend explicitly: every sweep column names the backend it
  // measures, so an ambient FL_SIM_BACKEND must not retarget the rows.
  net.set_backend(backend);
  net.set_parallelism({threads});
  net.install_all<FloodRounds>(rounds);
  // Timed region = net.run() only: the full phase pipeline (step shards,
  // merge lanes, quiesce checks) including any storage growth inside the
  // run. Network construction and program install are identical across
  // configurations and excluded. For the TCP backend the timed region
  // therefore includes forking the shard processes and building the
  // loopback mesh — part of what that transport costs.
  DeliveryResult res;
  util::Timer timer;
  res.stats = net.run(static_cast<std::size_t>(rounds) + 4);
  res.seconds = timer.seconds();
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v)
    res.checksum += net.program_as<FloodRounds>(v).checksum();
  if (transport_out != nullptr) {
    const fl::net::TcpStats* ts = fl::net::tcp_stats(net.backend());
    FL_REQUIRE(ts != nullptr,
               "backend sweep expected a tcp run but got no transport stats");
    *transport_out = *ts;
  }
  return res;
}

struct SweepRow {
  graph::NodeId n = 0;
  std::string family;
  std::uint64_t edges = 0;
  unsigned threads = 1;   ///< thread count of the parallel (flat_mt) column
  DeliveryResult flat;    ///< sequential (1 lane)
  DeliveryResult flat_mt; ///< `threads` execution lanes

  bool stats_match() const {
    return flat.stats.rounds == flat_mt.stats.rounds &&
           flat.stats.messages == flat_mt.stats.messages &&
           flat.stats.terminated == flat_mt.stats.terminated &&
           flat.checksum == flat_mt.checksum;
  }
  double parallel_speedup() const {
    return flat.msgs_per_sec() > 0.0
               ? flat_mt.msgs_per_sec() / flat.msgs_per_sec()
               : 0.0;
  }
};

/// Best-of-`reps` timing for both configurations, interleaving the runs so
/// machine drift hits every side equally.
void best_of_pair(const graph::Graph& g, unsigned rounds, std::uint64_t seed,
                  SweepRow& row) {
  const int reps = 7;
  for (int r = 0; r < reps; ++r) {
    DeliveryResult flat = run_delivery(g, rounds, seed);
    DeliveryResult flat_mt = run_delivery(g, rounds, seed, row.threads);
    if (r == 0 || flat.seconds < row.flat.seconds) row.flat = flat;
    if (r == 0 || flat_mt.seconds < row.flat_mt.seconds) row.flat_mt = flat_mt;
  }
}

std::vector<SweepRow> run_delivery_sweep(const bench::Env& env,
                                         unsigned threads) {
  // Two send-rounds per run matches the repo's workloads: tlocal_broadcast
  // (E8 sweeps t ∈ {1, 2, 4}) builds a fresh Network per short protocol
  // run, so first-round storage growth is not amortized over a long run —
  // that churn is part of what delivery throughput means here.
  //
  // Three families: dense (ER, avg degree 16), sparse (random tree), and
  // skewed (Barabási–Albert, avg degree ≈ 16 with power-law hubs) — the
  // skewed rows exercise the degree-weighted shard balancing that uniform
  // families cannot distinguish from ShardBalance::Uniform.
  const unsigned rounds = 2;
  std::vector<graph::NodeId> sizes{1000, 10000, 100000};
  if (env.quick) sizes = {1000, 10000};

  std::vector<SweepRow> rows;
  for (const graph::NodeId n : sizes) {
    for (const char* family : {"dense", "sparse", "skewed"}) {
      const bool dense = std::string(family) == "dense";
      const bool skewed = std::string(family) == "skewed";
      util::Xoshiro256 rng(env.seed + n + (dense ? 1 : 0) + (skewed ? 2 : 0));
      const graph::Graph g =
          dense    ? graph::erdos_renyi_gnm(n, 8ull * n, rng)
          : skewed ? graph::barabasi_albert(n, 8, rng)
                   : graph::random_tree(n, rng);
      SweepRow row;
      row.n = n;
      row.family = family;
      row.edges = g.num_edges();
      row.threads = threads;
      best_of_pair(g, rounds, env.seed, row);
      rows.push_back(std::move(row));
    }
  }
  return rows;
}

void emit_delivery_json(const std::vector<SweepRow>& rows,
                        const bench::Env& env) {
  std::printf("{\n  \"bench\": \"delivery_throughput\",\n");
  std::printf("  \"seed\": %llu,\n  \"quick\": %s,\n",
              static_cast<unsigned long long>(env.seed),
              env.quick ? "true" : "false");
  std::printf("  \"results\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SweepRow& r = rows[i];
    std::printf(
        "    {\"n\": %u, \"family\": \"%s\", \"edges\": %llu, "
        "\"rounds\": %zu, \"messages\": %llu, \"threads\": %u, "
        "\"flat_msgs_per_sec\": %.0f, \"flat_mt_msgs_per_sec\": %.0f, "
        "\"mt_over_flat\": %.3f, "
        "\"stats_match\": %s}%s\n",
        r.n, r.family.c_str(), static_cast<unsigned long long>(r.edges),
        r.flat.stats.rounds,
        static_cast<unsigned long long>(r.flat.stats.messages), r.threads,
        r.flat.msgs_per_sec(), r.flat_mt.msgs_per_sec(), r.parallel_speedup(),
        r.stats_match() ? "true" : "false",
        i + 1 < rows.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
}

// ------------------------------------------------- CONGEST budget sweep

struct CongestRow {
  graph::NodeId n = 0;
  std::string family;
  std::uint64_t edges = 0;
  std::uint32_t words = 0;   ///< words per message
  std::uint64_t budget = 0;  ///< words per edge per round
  sim::RunStats local;
  sim::RunStats congest;
  std::uint64_t deferrals = 0;
  std::uint64_t carry_peak = 0;  ///< deepest total carry backlog seen
  /// Metrics::barrier_rounds_saved — rounds an event-driven phase barrier
  /// saved vs the slack-stretched timetable. 0 for the flood rows (the
  /// flood has no timetable); live on the "sampler" row.
  std::uint64_t barrier_saved = 0;
  double congest_seconds = 0.0;
};

/// LOCAL vs budgeted rounds for the flood driver: every edge carries
/// `words`-word messages against a `budget`-word budget, so the Defer
/// engine must stretch the schedule by about words/budget while delivering
/// exactly the same messages. This is the model-quantity record for the
/// budget engine (the stretch is deterministic); the wall-clock column
/// meters the admission pass's overhead on top of delivery.
std::vector<CongestRow> run_congest_sweep(const bench::Env& env) {
  const unsigned rounds = 2;
  const std::uint32_t words = 8;
  const std::uint64_t budget = 4;
  std::vector<graph::NodeId> sizes{1000, 10000};
  if (env.quick) sizes = {1000};

  std::vector<CongestRow> rows;
  for (const graph::NodeId n : sizes) {
    for (const char* family : {"dense", "sparse"}) {
      const bool dense = std::string(family) == "dense";
      util::Xoshiro256 rng(env.seed + n + (dense ? 1 : 0));
      const graph::Graph g = dense
                                 ? graph::erdos_renyi_gnm(n, 8ull * n, rng)
                                 : graph::random_tree(n, rng);
      CongestRow row;
      row.n = n;
      row.family = family;
      row.edges = g.num_edges();
      row.words = words;
      row.budget = budget;
      {
        sim::Network net(g, sim::Knowledge::EdgeIds, env.seed);
        net.install_all<FloodRounds>(rounds, words);
        row.local = net.run(static_cast<std::size_t>(rounds) + 4);
      }
      {
        sim::Network net(g, sim::Knowledge::EdgeIds, env.seed);
        net.set_congest({budget, sim::CongestPolicy::Defer});
        net.install_all<FloodRounds>(rounds, words);
        util::Timer timer;
        row.congest = net.run(64 * (static_cast<std::size_t>(rounds) + 4));
        row.congest_seconds = timer.seconds();
        row.deferrals = net.metrics().deferrals_total;
        row.carry_peak = net.metrics().carry_peak;
      }
      FL_REQUIRE(row.local.terminated && row.congest.terminated,
                 "congest sweep run did not terminate");
      FL_REQUIRE(row.congest.messages == row.local.messages,
                 "Defer must deliver every message eventually");
      rows.push_back(std::move(row));
    }
  }
  // One Sampler row: the protocol that actually *uses* event-driven phase
  // barriers, so barrier_rounds_saved is live here (the flood rows have no
  // timetable to save against). LOCAL baseline pinned env-immune.
  {
    util::Xoshiro256 rng(env.seed + 7);
    const graph::Graph g = graph::erdos_renyi_gnm(256, 1024, rng);
    auto cfg = core::SamplerConfig::bench_profile(2, 2, env.seed);
    cfg.congest = sim::CongestConfig{};
    const auto local = core::run_distributed_sampler(g, cfg);
    cfg.congest = sim::CongestConfig{8, sim::CongestPolicy::Defer};
    cfg.barriers = core::BarrierMode::EventDriven;
    util::Timer timer;
    const auto adaptive = core::run_distributed_sampler(g, cfg);
    CongestRow row;
    row.n = g.num_nodes();
    row.family = "sampler";
    row.edges = g.num_edges();
    row.words = static_cast<std::uint32_t>(local.metrics.max_message_words);
    row.budget = 8;
    row.local = local.stats;
    row.congest = adaptive.stats;
    row.congest_seconds = timer.seconds();
    row.deferrals = adaptive.metrics.deferrals_total;
    row.carry_peak = adaptive.metrics.carry_peak;
    row.barrier_saved = adaptive.metrics.barrier_rounds_saved;
    FL_REQUIRE(row.congest.messages == row.local.messages,
               "budgeted sampler must deliver exactly the LOCAL messages");
    FL_REQUIRE(row.barrier_saved > 0,
               "adaptive sampler saved no rounds against its provisioned "
               "timetable — the event-driven barrier is not engaging");
    rows.push_back(std::move(row));
  }
  return rows;
}

void emit_congest_json(const std::vector<CongestRow>& rows,
                       const bench::Env& env) {
  std::printf("{\n  \"bench\": \"congest_stretch\",\n");
  std::printf("  \"seed\": %llu,\n  \"quick\": %s,\n",
              static_cast<unsigned long long>(env.seed),
              env.quick ? "true" : "false");
  std::printf("  \"results\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const CongestRow& r = rows[i];
    std::printf(
        "    {\"n\": %u, \"family\": \"%s\", \"edges\": %llu, "
        "\"words_per_msg\": %u, \"budget\": %llu, "
        "\"local_rounds\": %zu, \"congest_rounds\": %zu, "
        "\"messages\": %llu, \"deferrals\": %llu, \"carry_peak\": %llu, "
        "\"barrier_rounds_saved\": %llu, "
        "\"congest_msgs_per_sec\": %.0f}%s\n",
        r.n, r.family.c_str(), static_cast<unsigned long long>(r.edges),
        r.words, static_cast<unsigned long long>(r.budget), r.local.rounds,
        r.congest.rounds, static_cast<unsigned long long>(r.congest.messages),
        static_cast<unsigned long long>(r.deferrals),
        static_cast<unsigned long long>(r.carry_peak),
        static_cast<unsigned long long>(r.barrier_saved),
        r.congest_seconds > 0.0
            ? static_cast<double>(r.congest.messages) / r.congest_seconds
            : 0.0,
        i + 1 < rows.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
}

int run_congest_bench(const bench::Env& env) {
  const auto rows = run_congest_sweep(env);
  if (env.json) {
    emit_congest_json(rows, env);
  } else {
    util::Table table({"n", "family", "edges", "words/msg", "budget",
                       "LOCAL rounds", "budgeted rounds", "stretch",
                       "deferrals", "carry peak", "barrier saved",
                       "congest Mmsg/s"});
    for (const CongestRow& r : rows) {
      table.add(static_cast<std::size_t>(r.n), r.family,
                static_cast<unsigned long long>(r.edges), r.words,
                static_cast<unsigned long long>(r.budget), r.local.rounds,
                r.congest.rounds,
                util::fixed(static_cast<double>(r.congest.rounds) /
                                static_cast<double>(r.local.rounds),
                            2),
                static_cast<unsigned long long>(r.deferrals),
                static_cast<unsigned long long>(r.carry_peak),
                static_cast<unsigned long long>(r.barrier_saved),
                util::fixed(r.congest_seconds > 0.0
                                ? static_cast<double>(r.congest.messages) /
                                      r.congest_seconds / 1e6
                                : 0.0,
                            2));
    }
    env.emit(table, "CONGEST budget: LOCAL vs budgeted rounds (Defer)");
  }
  for (const CongestRow& r : rows) {
    // The flood rows must stretch (fixed send schedule, binding budget).
    // The sampler row is exempt: its event-driven barriers can finish in
    // *fewer* rounds than the LOCAL timetable when the phases drain early
    // — barrier_saved > 0 is its bind check (FL_REQUIRE'd in the sweep).
    if (r.family != "sampler" &&
        r.congest.rounds <= r.local.rounds) {  // the budget must bind
      std::fprintf(stderr,
                   "congest sweep: budget failed to stretch rounds at n=%u "
                   "%s (local %zu, budgeted %zu)\n",
                   r.n, r.family.c_str(), r.local.rounds, r.congest.rounds);
      return 1;
    }
  }
  return 0;
}

// ------------------------------------------------- delivery backends

/// In-process vs TCP shard processes on the same flood, same seed. The
/// model columns (rounds, messages, checksum agreement) are the C14
/// contract made a tracked snapshot: any divergence between the backends
/// is an engine bug, never noise. wire_bytes is model too — the wire
/// format is explicit little-endian with deterministic framing, so the
/// byte count moves only when the format (or the traffic) changes. The
/// throughput and barrier columns are wall-clock advisory data: loopback
/// sockets against a shared-memory arena, priced per message and per
/// round-sync barrier.
struct BackendRow {
  graph::NodeId n = 0;
  std::string family;
  std::uint64_t edges = 0;
  unsigned shards = 0;
  DeliveryResult inproc;
  DeliveryResult tcp;
  fl::net::TcpStats transport;

  bool stats_match() const {
    return inproc.stats.rounds == tcp.stats.rounds &&
           inproc.stats.messages == tcp.stats.messages &&
           inproc.stats.terminated == tcp.stats.terminated &&
           inproc.checksum == tcp.checksum;
  }
  double tcp_over_inproc() const {
    return inproc.msgs_per_sec() > 0.0
               ? tcp.msgs_per_sec() / inproc.msgs_per_sec()
               : 0.0;
  }
  double barrier_ns_per_round() const {
    return transport.rounds > 0
               ? static_cast<double>(transport.barrier_ns) /
                     static_cast<double>(transport.rounds)
               : 0.0;
  }
};

std::vector<BackendRow> run_backend_sweep(const bench::Env& env) {
  const unsigned rounds = 4;
  std::vector<graph::NodeId> sizes{500, 2000};
  if (env.quick) sizes = {500};

  std::vector<BackendRow> rows;
  for (const graph::NodeId n : sizes) {
    for (const char* family : {"dense", "sparse"}) {
      const bool dense = std::string(family) == "dense";
      util::Xoshiro256 rng(env.seed + n + (dense ? 1 : 0));
      const graph::Graph g = dense
                                 ? graph::erdos_renyi_gnm(n, 8ull * n, rng)
                                 : graph::random_tree(n, rng);
      for (const unsigned shards : {2u, 4u}) {
        BackendRow row;
        row.n = n;
        row.family = family;
        row.edges = g.num_edges();
        row.shards = shards;
        // Best of 3, interleaved like the delivery sweep. Both sides run
        // the sequential engine: the row prices the transport, not the
        // scheduler. The TCP side re-forks its shard processes every rep
        // — that setup is part of the transport's cost (see run_delivery).
        const int reps = 3;
        for (int r = 0; r < reps; ++r) {
          DeliveryResult ip = run_delivery(g, rounds, env.seed);
          fl::net::TcpStats ts;
          DeliveryResult tc =
              run_delivery(g, rounds, env.seed, 1,
                           {sim::BackendKind::Tcp, shards}, &ts);
          if (r == 0 || ip.seconds < row.inproc.seconds) row.inproc = ip;
          if (r == 0 || tc.seconds < row.tcp.seconds) {
            row.tcp = tc;
            row.transport = ts;
          }
        }
        rows.push_back(std::move(row));
      }
    }
  }
  return rows;
}

void emit_backend_json(const std::vector<BackendRow>& rows,
                       const bench::Env& env) {
  std::printf("{\n  \"bench\": \"net_backend\",\n");
  std::printf("  \"seed\": %llu,\n  \"quick\": %s,\n",
              static_cast<unsigned long long>(env.seed),
              env.quick ? "true" : "false");
  std::printf("  \"results\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const BackendRow& r = rows[i];
    std::printf(
        "    {\"n\": %u, \"family\": \"%s\", \"edges\": %llu, "
        "\"shards\": %u, \"rounds\": %zu, \"messages\": %llu, "
        "\"wire_bytes\": %llu, \"stats_match\": %s, "
        "\"inproc_msgs_per_sec\": %.0f, \"tcp_msgs_per_sec\": %.0f, "
        "\"tcp_over_inproc\": %.4f, \"barrier_ns_per_round\": %.0f}%s\n",
        r.n, r.family.c_str(), static_cast<unsigned long long>(r.edges),
        r.shards, r.tcp.stats.rounds,
        static_cast<unsigned long long>(r.tcp.stats.messages),
        static_cast<unsigned long long>(r.transport.wire_bytes),
        r.stats_match() ? "true" : "false", r.inproc.msgs_per_sec(),
        r.tcp.msgs_per_sec(), r.tcp_over_inproc(), r.barrier_ns_per_round(),
        i + 1 < rows.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
}

int run_backend_bench(const bench::Env& env) {
  const auto rows = run_backend_sweep(env);
  if (env.json) {
    emit_backend_json(rows, env);
  } else {
    util::Table table({"n", "family", "edges", "shards", "rounds",
                       "messages", "wire KiB", "inproc Mmsg/s",
                       "tcp Mmsg/s", "tcp/inproc", "barrier us/round",
                       "match?"});
    for (const BackendRow& r : rows) {
      table.add(static_cast<std::size_t>(r.n), r.family,
                static_cast<unsigned long long>(r.edges), r.shards,
                r.tcp.stats.rounds,
                static_cast<unsigned long long>(r.tcp.stats.messages),
                util::fixed(static_cast<double>(r.transport.wire_bytes) /
                                1024.0,
                            1),
                util::fixed(r.inproc.msgs_per_sec() / 1e6, 2),
                util::fixed(r.tcp.msgs_per_sec() / 1e6, 2),
                util::fixed(r.tcp_over_inproc(), 3),
                util::fixed(r.barrier_ns_per_round() / 1e3, 1),
                r.stats_match());
    }
    env.emit(table,
             "Delivery backends: in-process vs TCP shard processes (C14)");
  }
  for (const BackendRow& r : rows) {
    if (!r.stats_match()) {
      std::fprintf(stderr,
                   "backend sweep: tcp:%u diverged from in-process at n=%u "
                   "%s — contract C14 is broken\n",
                   r.shards, r.n, r.family.c_str());
      return 1;
    }
    if (r.transport.rounds != r.tcp.stats.rounds ||
        r.transport.wire_bytes == 0) {
      std::fprintf(stderr,
                   "backend sweep: tcp:%u transport stats implausible at "
                   "n=%u %s (%llu barrier rounds over %zu engine rounds, "
                   "%llu wire bytes)\n",
                   r.shards, r.n, r.family.c_str(),
                   static_cast<unsigned long long>(r.transport.rounds),
                   r.tcp.stats.rounds,
                   static_cast<unsigned long long>(r.transport.wire_bytes));
      return 1;
    }
  }
  return 0;
}

// ------------------------------------------------- capacity (n=1M–10M)

/// Peak resident set of this process so far, in MiB. ru_maxrss is
/// process-monotone (a high-water mark), so capacity rows run in
/// ascending-n order and each row's reading is attributed to the largest
/// run so far — which is exactly that row.
double peak_rss_mb() {
  struct rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0.0;
  return static_cast<double>(ru.ru_maxrss) / 1024.0;  // Linux: KiB
}

/// Physical RAM in MiB (0 when the sysconf probe is unavailable).
double physical_ram_mb() {
  const long pages = sysconf(_SC_PHYS_PAGES);
  const long page = sysconf(_SC_PAGE_SIZE);
  if (pages <= 0 || page <= 0) return 0.0;
  return static_cast<double>(pages) / 1024.0 *
         (static_cast<double>(page) / 1024.0);
}

struct CapacityRow {
  graph::NodeId n = 0;
  std::string family;
  std::uint64_t edges = 0;
  std::size_t rounds = 0;
  std::uint64_t messages = 0;
  unsigned threads = 1;
  double msgs_per_sec = 0.0;
  double peak_rss_mb = 0.0;
  double rss_ceiling_mb = 0.0;
  bool rss_within_ceiling = false;
};

/// The scale rows the SoA/streamed engine exists for: a tree flood at
/// n=1M (and, with RAM to spare and no --quick, n=10M), 8 send-rounds
/// each. The peak-RSS ceiling is the frontier-scaling proof: the engine's
/// steady footprint at n=1M sparse is ~440 MiB (graph + per-node state +
/// two arena buffers + outboxes), and the ceiling of 672 MiB per million
/// nodes leaves headroom for allocator slack but NOT for materializing
/// the run — eight rounds of retained deliveries (~700 MiB more) blow it.
std::vector<CapacityRow> run_capacity_sweep(const bench::Env& env,
                                            unsigned threads) {
  constexpr double kCeilingMbPerMillionNodes = 672.0;
  const unsigned rounds = 8;
  std::vector<graph::NodeId> sizes{1000000};
  // The n=10M row needs ~4.5 GiB steady; ask for comfortable headroom so
  // the full sweep never swaps a CI box to death.
  if (!env.quick && physical_ram_mb() >= 12288.0) sizes.push_back(10000000);

  std::vector<CapacityRow> rows;  // ascending n — see peak_rss_mb()
  for (const graph::NodeId n : sizes) {
    util::Xoshiro256 rng(env.seed + n);
    const graph::Graph g = graph::random_tree(n, rng);
    CapacityRow row;
    row.n = n;
    row.family = "sparse";
    row.edges = g.num_edges();
    row.threads = threads;
    // Best of 3: the first run pays the cold page faults for the whole
    // footprint inside the timed region; the repeats measure the engine.
    // Peak RSS is unaffected (same footprint each run, monotone reading).
    DeliveryResult res = run_delivery(g, rounds, env.seed, threads);
    for (int rep = 1; rep < 3; ++rep) {
      DeliveryResult again = run_delivery(g, rounds, env.seed, threads);
      FL_REQUIRE(again.stats.messages == res.stats.messages &&
                     again.checksum == res.checksum,
                 "capacity repeats must reproduce the run exactly");
      if (again.seconds < res.seconds) res = again;
    }
    row.rounds = res.stats.rounds;
    row.messages = res.stats.messages;
    row.msgs_per_sec = res.msgs_per_sec();
    row.peak_rss_mb = peak_rss_mb();
    row.rss_ceiling_mb =
        kCeilingMbPerMillionNodes * static_cast<double>(n) / 1e6;
    row.rss_within_ceiling = row.peak_rss_mb <= row.rss_ceiling_mb;
    rows.push_back(std::move(row));
  }
  return rows;
}

void emit_capacity_json(const std::vector<CapacityRow>& rows,
                        const bench::Env& env) {
  std::printf("{\n  \"bench\": \"capacity\",\n");
  std::printf("  \"seed\": %llu,\n  \"quick\": %s,\n",
              static_cast<unsigned long long>(env.seed),
              env.quick ? "true" : "false");
  std::printf("  \"results\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const CapacityRow& r = rows[i];
    std::printf(
        "    {\"n\": %u, \"family\": \"%s\", \"edges\": %llu, "
        "\"rounds\": %zu, \"messages\": %llu, \"threads\": %u, "
        "\"msgs_per_sec\": %.0f, \"peak_rss_mb\": %.1f, "
        "\"rss_ceiling_mb\": %.1f, \"rss_within_ceiling\": %s}%s\n",
        r.n, r.family.c_str(), static_cast<unsigned long long>(r.edges),
        r.rounds, static_cast<unsigned long long>(r.messages), r.threads,
        r.msgs_per_sec, r.peak_rss_mb, r.rss_ceiling_mb,
        r.rss_within_ceiling ? "true" : "false",
        i + 1 < rows.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
}

int run_capacity_bench(const bench::Env& env, unsigned threads) {
  const auto rows = run_capacity_sweep(env, threads);
  if (env.json) {
    emit_capacity_json(rows, env);
  } else {
    util::Table table({"n", "family", "edges", "rounds", "messages",
                       "threads", "Mmsg/s", "peak RSS MiB", "ceiling MiB",
                       "within?"});
    for (const CapacityRow& r : rows) {
      table.add(static_cast<std::size_t>(r.n), r.family,
                static_cast<unsigned long long>(r.edges), r.rounds,
                static_cast<unsigned long long>(r.messages), r.threads,
                util::fixed(r.msgs_per_sec / 1e6, 2),
                util::fixed(r.peak_rss_mb, 1),
                util::fixed(r.rss_ceiling_mb, 1), r.rss_within_ceiling);
    }
    env.emit(table, "Capacity: tree flood at n=1M-10M, peak-RSS ceiling");
  }
  for (const CapacityRow& r : rows) {
    if (!r.rss_within_ceiling) {
      std::fprintf(stderr,
                   "capacity: peak RSS %.1f MiB exceeds the %.1f MiB "
                   "ceiling at n=%u — the engine materialized more than "
                   "the current+next frontier\n",
                   r.peak_rss_mb, r.rss_ceiling_mb, r.n);
      return 1;
    }
  }
  return 0;
}

// ------------------------------------------------- round profile (tracing on)

/// One report row per engine round, read back from the tracer's
/// RoundProfile timeline after a traced flood. Model columns (messages,
/// words, deferrals, carry depth) are bit-identical across thread counts;
/// the *_ns columns are wall-clock advisory data and never diffed.
struct ProfileRow {
  std::size_t round = 0;
  std::uint64_t messages = 0;
  std::uint64_t words = 0;
  std::uint64_t deferrals = 0;
  std::uint64_t carry_depth = 0;
  std::size_t lanes = 0;
  std::uint64_t quiesce_ns = 0;
  std::uint64_t step_ns = 0;
  std::uint64_t merge_ns = 0;
  std::uint64_t admit_ns = 0;
  std::uint64_t busy_max_ns = 0;
  std::uint64_t busy_avg_ns = 0;
  double max_over_avg_busy = 0.0;
  std::uint64_t rss_kb = 0;
};

void emit_profile_json(const std::vector<ProfileRow>& rows,
                       const bench::Env& env, unsigned threads,
                       const char* trace_path) {
  std::printf("{\n  \"bench\": \"round_profile\",\n");
  std::printf("  \"seed\": %llu,\n  \"quick\": %s,\n",
              static_cast<unsigned long long>(env.seed),
              env.quick ? "true" : "false");
  std::printf("  \"threads\": %u,\n  \"trace\": \"%s\",\n", threads,
              trace_path);
  std::printf("  \"results\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ProfileRow& r = rows[i];
    std::printf(
        "    {\"round\": %zu, \"messages\": %llu, \"words\": %llu, "
        "\"deferrals\": %llu, \"carry_depth\": %llu, \"lanes\": %zu, "
        "\"quiesce_ns\": %llu, \"step_ns\": %llu, \"merge_ns\": %llu, "
        "\"admit_ns\": %llu, \"busy_max_ns\": %llu, \"busy_avg_ns\": %llu, "
        "\"max_over_avg_busy\": %.4f, \"rss_kb\": %llu}%s\n",
        r.round, static_cast<unsigned long long>(r.messages),
        static_cast<unsigned long long>(r.words),
        static_cast<unsigned long long>(r.deferrals),
        static_cast<unsigned long long>(r.carry_depth), r.lanes,
        static_cast<unsigned long long>(r.quiesce_ns),
        static_cast<unsigned long long>(r.step_ns),
        static_cast<unsigned long long>(r.merge_ns),
        static_cast<unsigned long long>(r.admit_ns),
        static_cast<unsigned long long>(r.busy_max_ns),
        static_cast<unsigned long long>(r.busy_avg_ns), r.max_over_avg_busy,
        static_cast<unsigned long long>(r.rss_kb),
        i + 1 < rows.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
}

/// Traced flood: run the delivery driver with tracing ON, report the
/// per-round phase/lane timeline, and leave the Chrome-trace artifact (plus
/// its .jsonl profile dump) in the working directory for Perfetto. Exits
/// nonzero if the artifact is missing/empty or the per-lane data the
/// acceptance contract promises (step:lane spans, busy times) is absent.
int run_profile_bench(const bench::Env& env, unsigned threads) {
  const graph::NodeId n = env.quick ? 10000 : 100000;
  const unsigned rounds = 4;
  const char* trace_path = "TRACE_micro_perf.json";
  util::Xoshiro256 rng(env.seed + n + 1);
  const graph::Graph g = graph::erdos_renyi_gnm(n, 8ull * n, rng);

  std::vector<ProfileRow> rows;
  std::uint64_t step_lane_spans = 0;
  std::uint64_t dropped = 0;
  {
    sim::Network net(g, sim::Knowledge::EdgeIds, env.seed);
    net.set_parallelism({threads});
    obs::TraceConfig tcfg;
    tcfg.enabled = true;
    tcfg.path = trace_path;
    tcfg.level = obs::TraceLevel::Spans;
    net.set_trace(std::move(tcfg));
    net.install_all<FloodRounds>(rounds);
    const sim::RunStats stats = net.run(static_cast<std::size_t>(rounds) + 4);
    FL_REQUIRE(stats.terminated, "profile flood did not terminate");
    for (const obs::RoundProfile& p : net.profile()) {
      ProfileRow row;
      row.round = p.round;
      row.messages = p.messages;
      row.words = p.words;
      row.deferrals = p.deferrals;
      row.carry_depth = p.carry_depth;
      row.lanes = p.lane_busy_ns.size();
      row.quiesce_ns = p.quiesce_ns;
      row.step_ns = p.step_ns;
      row.merge_ns = p.merge_ns;
      row.admit_ns = p.admit_ns;
      std::uint64_t busy_max = 0;
      std::uint64_t busy_sum = 0;
      for (const std::uint64_t b : p.lane_busy_ns) {
        if (b > busy_max) busy_max = b;
        busy_sum += b;
      }
      row.busy_max_ns = busy_max;
      row.busy_avg_ns =
          p.lane_busy_ns.empty() ? 0 : busy_sum / p.lane_busy_ns.size();
      row.max_over_avg_busy = p.max_over_avg_busy;
      row.rss_kb = p.rss_kb;
      rows.push_back(row);
    }
    for (std::size_t t = 0; t < net.tracer()->ring_count(); ++t)
      net.tracer()->ring(t).for_each([&](const obs::SpanEvent& ev) {
        if (ev.kind == obs::SpanKind::StepLane) ++step_lane_spans;
      });
    dropped = net.tracer()->dropped_spans();
  }  // ~Network finalizes trace_path and trace_path.jsonl

  if (env.json) {
    emit_profile_json(rows, env, threads, trace_path);
  } else {
    util::Table table({"round", "messages", "words", "carry", "lanes",
                       "quiesce us", "step us", "merge us", "admit us",
                       "busy max/avg", "RSS MiB"});
    for (const ProfileRow& r : rows) {
      table.add(r.round, static_cast<unsigned long long>(r.messages),
                static_cast<unsigned long long>(r.words),
                static_cast<unsigned long long>(r.carry_depth), r.lanes,
                util::fixed(static_cast<double>(r.quiesce_ns) / 1e3, 1),
                util::fixed(static_cast<double>(r.step_ns) / 1e3, 1),
                util::fixed(static_cast<double>(r.merge_ns) / 1e3, 1),
                util::fixed(static_cast<double>(r.admit_ns) / 1e3, 1),
                util::fixed(r.max_over_avg_busy, 2),
                util::fixed(static_cast<double>(r.rss_kb) / 1024.0, 1));
    }
    env.emit(table, "Round profile: traced flood at n=" + std::to_string(n) +
                        ", " + std::to_string(threads) + " lanes (trace: " +
                        trace_path + ")");
    if (dropped > 0)
      std::fprintf(stderr, "profile: %llu spans dropped to ring overflow\n",
                   static_cast<unsigned long long>(dropped));
  }

  // Artifact checks: the acceptance contract is a Perfetto-loadable trace
  // with per-lane step spans and per-round phase timings.
  if (rows.empty()) {
    std::fprintf(stderr, "profile: tracer produced no round profiles\n");
    return 1;
  }
  for (const ProfileRow& r : rows) {
    if (r.lanes != threads) {
      std::fprintf(stderr,
                   "profile: round %zu reports %zu lane busy slots, "
                   "expected %u\n",
                   r.round, r.lanes, threads);
      return 1;
    }
  }
  if (step_lane_spans < rows.size()) {
    std::fprintf(stderr,
                 "profile: only %llu step:lane spans recorded over %zu "
                 "rounds\n",
                 static_cast<unsigned long long>(step_lane_spans),
                 rows.size());
    return 1;
  }
  std::FILE* f = std::fopen(trace_path, "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "profile: trace artifact %s was not written\n",
                 trace_path);
    return 1;
  }
  std::fseek(f, 0, SEEK_END);
  const long bytes = std::ftell(f);
  std::fclose(f);
  if (bytes <= 0) {
    std::fprintf(stderr, "profile: trace artifact %s is empty\n", trace_path);
    return 1;
  }
  return 0;
}

int run_delivery_bench(const bench::Env& env, unsigned threads) {
  const auto rows = run_delivery_sweep(env, threads);
  if (env.json) {
    emit_delivery_json(rows, env);
  } else {
    util::Table table({"n", "family", "edges", "rounds", "messages",
                       "flat Mmsg/s", "flat@T Mmsg/s", "T/1",
                       "stats match?"});
    for (const SweepRow& r : rows) {
      table.add(static_cast<std::size_t>(r.n), r.family,
                static_cast<unsigned long long>(r.edges), r.flat.stats.rounds,
                static_cast<unsigned long long>(r.flat.stats.messages),
                util::fixed(r.flat.msgs_per_sec() / 1e6, 2),
                util::fixed(r.flat_mt.msgs_per_sec() / 1e6, 2),
                util::fixed(r.parallel_speedup(), 3), r.stats_match());
    }
    env.emit(table, "Delivery throughput: flat arena at 1 and " +
                        std::to_string(threads) + " execution lanes");
  }
  // Identical counts are part of the contract, not just a report column.
  for (const SweepRow& r : rows)
    if (!r.stats_match()) return 1;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto has_flag = [&](const char* flag) {
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      if (a == flag || a.rfind(std::string(flag) + "=", 0) == 0) return true;
    }
    return false;
  };
  const bool sweep_section = [&] {
    for (const char* flag :
         {"--delivery", "--json", "--csv", "--quick", "--seed", "--threads",
          "--congest", "--capacity", "--profile", "--backend"})
      if (has_flag(flag)) return true;
    return false;
  }();
  if (sweep_section) {
    // --threads N sets the parallel column's lane count (default 8); the
    // sequential flat column always runs single-threaded. --congest adds
    // the CONGEST budget sweep (LOCAL vs budgeted rounds) after the
    // delivery sweep. --capacity runs the n=1M–10M capacity rows *instead*
    // of the delivery sweep (peak RSS is a process-monotone high-water
    // mark, so the capacity rows must be the only large runs in the
    // process); pass --delivery explicitly to get both, capacity first.
    // --profile runs a traced flood instead of the delivery sweep (same
    // instead-of rule: its report includes RSS readings) and drops the
    // Chrome-trace artifact next to the report. --backend runs the
    // in-process-vs-TCP backend comparison instead of the delivery sweep
    // (it forks shard processes; keeping it its own section keeps the
    // default sweep fork-free).
    const fl::util::Options opt(argc, argv);
    const std::int64_t threads = opt.get_int("threads", 8);
    FL_REQUIRE(threads >= 1 && threads <= 1024,
               "--threads must be in [1, 1024]");
    const auto env = fl::bench::Env::parse(argc, argv);
    const bool capacity = has_flag("--capacity");
    const bool profile = has_flag("--profile");
    const bool backend = has_flag("--backend");
    int rc = 0;
    if (capacity)
      rc = run_capacity_bench(env, static_cast<unsigned>(threads));
    if (profile) {
      const int profile_rc =
          run_profile_bench(env, static_cast<unsigned>(threads));
      if (rc == 0) rc = profile_rc;
    }
    if (backend) {
      const int backend_rc = run_backend_bench(env);
      if (rc == 0) rc = backend_rc;
    }
    if ((!capacity && !profile && !backend) || has_flag("--delivery")) {
      const int delivery_rc =
          run_delivery_bench(env, static_cast<unsigned>(threads));
      if (rc == 0) rc = delivery_rc;
    }
    if (opt.get_bool("congest", false)) {
      const int congest_rc = run_congest_bench(env);
      if (rc == 0) rc = congest_rc;
    }
    return rc;
  }
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
