// Micro timing benchmarks (google-benchmark): wall-clock throughput of the
// main building blocks. These measure *our implementation's* speed, not the
// paper's model quantities — the model quantities live in bench_e1..e10.
#include <benchmark/benchmark.h>

#include "baseline/baswana_sen.hpp"
#include "core/config.hpp"
#include "core/distributed_sampler.hpp"
#include "core/sampler.hpp"
#include "graph/algorithms.hpp"
#include "graph/spanner_check.hpp"
#include "graph/generators.hpp"
#include "localsim/tlocal_broadcast.hpp"
#include "util/rng.hpp"

namespace {

using namespace fl;

graph::Graph make_er(graph::NodeId n, std::size_t deg) {
  util::Xoshiro256 rng(42 + n);
  return graph::erdos_renyi_gnm(n, deg * n / 2, rng);
}

void BM_GraphBuild(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(make_er(n, 16));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n) * 8);
}
BENCHMARK(BM_GraphBuild)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_Bfs(benchmark::State& state) {
  const auto g = make_er(static_cast<graph::NodeId>(state.range(0)), 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::bfs_distances(g, 0));
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_Bfs)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_SamplerCentralized(benchmark::State& state) {
  const auto g = make_er(static_cast<graph::NodeId>(state.range(0)), 16);
  const auto cfg = core::SamplerConfig::bench_profile(2, 3, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::build_spanner(g, cfg));
  }
  state.SetItemsProcessed(state.iterations() * g.num_nodes());
}
BENCHMARK(BM_SamplerCentralized)->Arg(1024)->Arg(4096);

void BM_SamplerDistributed(benchmark::State& state) {
  const auto g = make_er(static_cast<graph::NodeId>(state.range(0)), 16);
  const auto cfg = core::SamplerConfig::bench_profile(2, 2, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::run_distributed_sampler(g, cfg));
  }
  state.SetItemsProcessed(state.iterations() * g.num_nodes());
}
BENCHMARK(BM_SamplerDistributed)->Arg(512)->Arg(1024);

void BM_BaswanaSenCentralized(benchmark::State& state) {
  const auto g = make_er(static_cast<graph::NodeId>(state.range(0)), 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(baseline::build_baswana_sen(g, 3, 11));
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_BaswanaSenCentralized)->Arg(1024)->Arg(4096);

void BM_TLocalBroadcast(benchmark::State& state) {
  const auto g = make_er(1024, 16);
  const auto edges = localsim::all_edges(g);
  const auto t = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(localsim::run_tlocal_broadcast(g, edges, t, 13));
  }
}
BENCHMARK(BM_TLocalBroadcast)->Arg(1)->Arg(2)->Arg(4);

void BM_SpannerCheckExact(benchmark::State& state) {
  const auto g = make_er(static_cast<graph::NodeId>(state.range(0)), 16);
  const auto cfg = core::SamplerConfig::bench_profile(2, 3, 17);
  const auto res = core::build_spanner(g, cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::check_spanner_exact(g, res.edges));
  }
}
BENCHMARK(BM_SpannerCheckExact)->Arg(512)->Arg(1024);

}  // namespace

BENCHMARK_MAIN();
