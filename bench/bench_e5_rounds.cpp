// E5 — Theorem 11 (rounds): the distributed Sampler runs in O(3^k · h)
// rounds, independent of the graph.
//
// Measured: actual simulator rounds across (k, h) and across families at
// fixed (k, h); predicted: the precomputed schedule length and the 3^k·h
// scaling (we fit measured rounds against 3^k·h and report the constant).
#include "bench_common.hpp"
#include "core/config.hpp"
#include "core/distributed_sampler.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace fl;
  const auto env = bench::Env::parse(argc, argv);
  const graph::NodeId n = env.quick ? 256 : 512;

  util::Table table({"k", "h", "3^k·h", "schedule rounds", "measured rounds",
                     "rounds / (3^k·h)"});
  util::Xoshiro256 rng(env.seed);
  const auto g = graph::erdos_renyi_gnm(n, 8ull * n, rng);
  for (unsigned k = 1; k <= 3; ++k) {
    for (unsigned h = 1; h <= (env.quick ? 3u : 4u); ++h) {
      auto cfg = core::SamplerConfig::paper_faithful(k, h, env.seed);
      // E5 measures the LOCAL timetable — pin it so an FL_SIM_CONGEST env
      // probe cannot swap in event-driven barriers and shrink the rounds.
      cfg.congest = sim::CongestConfig{};
      const auto sched = core::Schedule::build(cfg);
      const auto run = core::run_distributed_sampler(g, cfg);
      const double scale = core::SamplerConfig::pow3(k) * h;
      table.add(k, h, scale, sched.total_rounds, run.stats.rounds,
                util::fixed(static_cast<double>(run.stats.rounds) / scale, 3));
    }
  }
  env.emit(table, "E5 / Theorem 11 — rounds vs O(3^k·h)");

  // Graph independence at fixed parameters.
  util::Table indep({"family", "n", "m", "measured rounds"});
  auto cfg = core::SamplerConfig::paper_faithful(2, 2, env.seed);
  cfg.congest = sim::CongestConfig{};  // LOCAL pin, as above
  for (const auto family :
       {graph::Family::Ring, graph::Family::ErdosRenyi,
        graph::Family::Complete, graph::Family::Grid,
        graph::Family::Hypercube}) {
    util::Xoshiro256 rng2(env.seed + 1);
    const graph::NodeId nn =
        family == graph::Family::Complete ? 256 : n;
    const auto gg = graph::make_family(family, nn, 8.0, rng2);
    const auto run = core::run_distributed_sampler(gg, cfg);
    indep.add(graph::family_name(family), static_cast<std::size_t>(gg.num_nodes()),
              static_cast<std::size_t>(gg.num_edges()), run.stats.rounds);
  }
  env.emit(indep, "E5 — round count is graph-independent at fixed (k=2, h=2)");
  return 0;
}
