// E2 — Lemma 6: the light/heavy dichotomy.
//
// Predicted: with "sufficiently large" constants every node finishes light
// or heavy (zero "neither") and the whole final level is light. We measure
// the neither-rate with paper constants, then *ablate*: starved constants
// (c « 1) and disabled parallel-edge peeling (the Section 1.3 key idea) —
// both should surface failures, quantifying how much the two mechanisms buy.
#include "bench_common.hpp"
#include "core/config.hpp"
#include "core/sampler.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace fl;
  const auto env = bench::Env::parse(argc, argv);
  const graph::NodeId n = env.quick ? 512 : 2048;
  const unsigned seeds = env.quick ? 3 : 10;

  util::Table table({"variant", "family", "light", "heavy", "neither",
                     "query edges", "final level all light?"});

  struct Variant {
    const char* name;
    core::SamplerConfig cfg;
  };
  std::vector<Variant> variants;
  {
    // Baseline: the paper's constants — Lemma 6 predicts neither = 0.
    Variant paper{"paper c=2", core::SamplerConfig::paper_faithful(2, 2, 0)};
    // Ablation 1 — violate "sufficiently large c" asymmetrically: inflate
    // the budget (log³ n) so heaviness is unreachable while starving the
    // per-trial sample count (log⁰ n). High-degree nodes then finish the
    // 2h trials with unexplored edges and land in the "neither" failure
    // state the whp analysis excludes.
    Variant starved{"starved trials",
                    core::SamplerConfig::bench_profile(2, 2, 0)};
    starved.cfg.log_exp_budget = 3.0;
    starved.cfg.log_exp_trial = 0.0;
    // Ablation 2 — disable the Section 1.3 parallel-edge peeling under the
    // selective (bench) profile: multiplicity bias at levels >= 1 wastes
    // samples on already-queried neighbours.
    Variant nopeel{"no peeling", core::SamplerConfig::bench_profile(2, 2, 0)};
    nopeel.cfg.peel_parallel_edges = false;
    // Control for ablation 2.
    Variant peel{"with peeling", core::SamplerConfig::bench_profile(2, 2, 0)};
    variants = {paper, starved, nopeel, peel};
  }

  const std::vector<graph::Family> families{graph::Family::ErdosRenyi,
                                            graph::Family::BarabasiAlbert,
                                            graph::Family::Dumbbell};
  for (auto& variant : variants) {
    for (const auto family : families) {
      std::size_t light = 0, heavy = 0, neither = 0;
      std::uint64_t queries = 0;
      bool final_light = true;
      for (unsigned s = 0; s < seeds; ++s) {
        util::Xoshiro256 rng(env.seed + s);
        // Dense dial: the failure modes need degrees above the budgets.
        const auto g = graph::make_family(family, n, 96.0, rng);
        auto cfg = variant.cfg;
        cfg.seed = env.seed + s;
        const auto res = core::build_spanner(g, cfg);
        for (const auto& lt : res.trace.levels) {
          light += lt.light;
          heavy += lt.heavy;
          neither += lt.neither;
          queries += lt.query_edges;
        }
        const auto& last = res.trace.levels.back();
        if (last.light != last.virtual_nodes) final_light = false;
      }
      table.add(variant.name, graph::family_name(family), light, heavy,
                neither, queries, final_light);
    }
  }
  env.emit(table,
           "E2 / Lemma 6 — light/heavy dichotomy and ablations "
           "(paper predicts neither = 0 for the first variant)");
  return 0;
}
