// Shared helpers for the experiment harness binaries.
//
// Every bench prints aligned predicted-vs-measured tables (fl::util::Table)
// and accepts --quick (smaller sweeps) plus --csv / --json (machine-readable
// dumps) and --seed. The experiment ids (E1..E10) are indexed in
// docs/EXPERIMENTS.md; the binaries themselves live in bench/.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "util/options.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace fl::bench {

struct Env {
  bool quick = false;
  bool csv = false;
  bool json = false;
  std::uint64_t seed = 1;

  static Env parse(int argc, const char* const* argv) {
    util::Options opt(argc, argv);
    Env env;
    env.quick = opt.get_bool("quick", false);
    env.csv = opt.get_bool("csv", false);
    env.json = opt.get_bool("json", false);
    env.seed = static_cast<std::uint64_t>(opt.get_int("seed", 1));
    return env;
  }

  /// Render one result table in the selected format. With --json each
  /// table becomes one JSON object on stdout (concatenated JSON /
  /// JSON-lines style when a bench emits several tables), keyed by its
  /// title — the machine-readable record the per-PR BENCH_*.json
  /// trajectory snapshots consume; E1–E10 all route through here.
  void emit(const util::Table& table, const std::string& title) const {
    if (json) {
      table.print_json(std::cout, title);
    } else if (csv) {
      table.print_csv(std::cout);
    } else {
      table.print(std::cout, title);
      std::cout << '\n';
    }
  }
};

inline std::string ratio_cell(double measured, double predicted) {
  if (predicted <= 0.0) return "-";
  return util::fixed(measured / predicted, 3);
}

}  // namespace fl::bench
