// E6 — Theorem 11 (messages): the distributed Sampler sends
// Õ(n^{1+δ+ε}) messages whp, *independent of |E|*.
//
// Two sweeps:
//   (a) density sweep at fixed n — message count must flatten out while
//       m grows by orders of magnitude (the "free lunch" headline);
//   (b) n sweep at fixed density — log-log slope vs predicted 1+δ+ε.
#include <cmath>

#include "bench_common.hpp"
#include "core/config.hpp"
#include "core/distributed_sampler.hpp"
#include "graph/generators.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace fl;
  const auto env = bench::Env::parse(argc, argv);
  const util::Options opt(argc, argv);
  const bool congest_section = opt.get_bool("congest", false);

  // (a) density sweep.
  {
    const graph::NodeId n = env.quick ? 512 : 1024;
    // The "words" column meters logical message sizes: Sampler responses
    // carry whole boundary-edge lists, which is free in LOCAL but shows why
    // the result does NOT transfer to CONGEST as-is.
    util::Table table({"n", "avg deg", "m", "messages", "msgs/m",
                       "msgs/n^{1+δ+ε}", "words"});
    const auto cfg = core::SamplerConfig::bench_profile(2, 3, env.seed);
    std::vector<double> degs{4, 8, 16, 32, 64};
    if (!env.quick) {
      degs.push_back(128);
      degs.push_back(256);
    }
    for (const double deg : degs) {
      util::Xoshiro256 rng(env.seed);
      const auto m = static_cast<std::size_t>(deg * n / 2);
      const auto g = graph::erdos_renyi_gnm(n, m, rng);
      const auto run = core::run_distributed_sampler(g, cfg);
      const double pred = std::pow(static_cast<double>(n),
                                   cfg.message_exponent());
      table.add(static_cast<std::size_t>(n), deg,
                static_cast<std::size_t>(g.num_edges()), run.stats.messages,
                util::fixed(static_cast<double>(run.stats.messages) /
                                static_cast<double>(g.num_edges()),
                            3),
                util::fixed(static_cast<double>(run.stats.messages) / pred, 3),
                run.metrics.words_total);
    }
    // The complete graph as the extreme point.
    {
      const graph::NodeId nc = env.quick ? 512 : 1024;
      const auto g = graph::complete(nc);
      const auto run = core::run_distributed_sampler(g, cfg);
      const double pred =
          std::pow(static_cast<double>(nc), cfg.message_exponent());
      table.add(static_cast<std::size_t>(nc), "complete",
                static_cast<std::size_t>(g.num_edges()), run.stats.messages,
                util::fixed(static_cast<double>(run.stats.messages) /
                                static_cast<double>(g.num_edges()),
                            3),
                util::fixed(static_cast<double>(run.stats.messages) / pred, 3),
                run.metrics.words_total);
    }
    env.emit(table,
             "E6a / Theorem 11 — messages vs density at fixed n: msgs/m "
             "falls toward 0 and msgs plateau at the Õ(n^{1+δ+ε}) cap "
             "(visible once deg exceeds the trial size Õ(n^{δ+ε}))");

    // Theorem 11's accounting, by protocol role.
    {
      const graph::NodeId nb = env.quick ? 512 : 1024;
      util::Xoshiro256 rng(env.seed + 3);
      const auto g = graph::erdos_renyi_gnm(nb, 32ull * nb, rng);
      const auto run = core::run_distributed_sampler(g, cfg);
      util::Table roles({"role", "messages", "share"});
      const double total = static_cast<double>(run.breakdown.total());
      auto share = [&](std::uint64_t v) {
        return util::fixed(100.0 * static_cast<double>(v) / total, 1) + "%";
      };
      roles.add("queries + replies (Õ(n^{1+δ+ε}) term)",
                run.breakdown.queries, share(run.breakdown.queries));
      roles.add("cluster-tree flood/echo (O(n)/session term)",
                run.breakdown.tree_sessions, share(run.breakdown.tree_sessions));
      roles.add("center queries + replies", run.breakdown.center,
                share(run.breakdown.center));
      roles.add("attach + death control", run.breakdown.control,
                share(run.breakdown.control));
      env.emit(roles, "E6c — message breakdown by protocol role (deg-64 ER)");
    }
  }

  // (b) n sweep in the regime where the cap binds: complete graphs
  // (m = n(n−1)/2 exceeds n^{1+δ+ε} at every size), so the fitted exponent
  // measures the theorem's bound rather than the m-bound regime.
  {
    util::Table table({"k", "h", "n", "m", "messages"});
    util::Table fits({"k", "h", "predicted exponent 1+δ+ε", "raw slope",
                      "log-corrected slope", "R²"});
    std::vector<graph::NodeId> sizes{181, 256, 362, 512, 724, 1024};
    if (!env.quick) sizes.push_back(1448);
    for (const auto& [k, h] : {std::pair<unsigned, unsigned>{1, 2},
                              std::pair<unsigned, unsigned>{2, 3},
                              std::pair<unsigned, unsigned>{3, 3}}) {
      const auto cfg0 = core::SamplerConfig::bench_profile(k, h, env.seed);
      std::vector<double> xs, ys, ys_corr;
      for (const auto n : sizes) {
        const auto g = graph::complete(n);
        auto cfg = cfg0;
        cfg.seed = env.seed + n;
        const auto run = core::run_distributed_sampler(g, cfg);
        xs.push_back(static_cast<double>(n));
        ys.push_back(static_cast<double>(run.stats.messages));
        // The bench-profile trial size carries one log n (Õ factor).
        ys_corr.push_back(ys.back() / std::log2(static_cast<double>(n)));
        table.add(k, h, static_cast<std::size_t>(n),
                  static_cast<std::size_t>(g.num_edges()),
                  run.stats.messages);
      }
      const auto raw = util::fit_loglog(xs, ys);
      const auto corr = util::fit_loglog(xs, ys_corr);
      fits.add(k, h, util::fixed(cfg0.message_exponent(), 4),
               util::fixed(raw.slope, 4), util::fixed(corr.slope, 4),
               util::fixed(corr.r_squared, 4));
    }
    env.emit(table, "E6b — message counts, n sweep on K_n (cap binds)");
    env.emit(fits, "E6b — fitted message exponents vs predicted 1+δ+ε");
  }

  // (d) --congest: the same Sampler under an enforced per-edge word budget
  // (sim/congest.hpp), A/B'd between the two barrier modes. The fixed
  // timetable provisions every phase window for the worst case (slack =
  // ceil(2W/B)+1 rounds per scheduled round, W the largest LOCAL message);
  // the event-driven barrier instead advances a phase the merge round its
  // traffic drains, so it pays only what the deferrals actually cost.
  // Message counts and the spanner must match the LOCAL run exactly in
  // *both* modes: a budget delays traffic, it never drops or reorders a
  // decision (core's root handlers canonicalise their accumulation order).
  //
  // The fixed baseline is executed at deg 4 and 8; at deg 16 and 32 the
  // boundary lists (hence the slack) grow so large that running the
  // stretched timetable would dominate the whole bench, so those rows
  // report the provisioned timetable length (base rounds x slack — the
  // same model quantity Metrics::barrier_rounds_saved is measured
  // against) in the "fixed rounds" column instead.
  if (congest_section) {
    const std::uint64_t budget = 8;
    util::Table table({"n", "avg deg", "budget", "max msg words", "slack",
                       "local rounds", "fixed rounds", "adaptive rounds",
                       "stretch", "rounds_saved_vs_slack", "deferrals",
                       "messages", "words", "spanner == local?"});
    for (const double deg : {4.0, 8.0, 16.0, 32.0}) {
      const graph::NodeId n = env.quick ? 256 : 512;
      util::Xoshiro256 rng(env.seed);
      const auto m = static_cast<std::size_t>(deg * n / 2);
      const auto g = graph::erdos_renyi_gnm(n, m, rng);
      auto cfg = core::SamplerConfig::bench_profile(2, 2, env.seed);
      // Pin the baseline LOCAL explicitly so an FL_SIM_CONGEST env probe
      // cannot budget it out from under the comparison.
      cfg.congest = sim::CongestConfig{};
      const auto local = core::run_distributed_sampler(g, cfg);
      const std::uint64_t max_words = local.metrics.max_message_words;
      const auto slack =
          static_cast<unsigned>((2 * max_words + budget - 1) / budget + 1);

      cfg.congest = sim::CongestConfig{budget, sim::CongestPolicy::Defer};
      cfg.barriers = core::BarrierMode::EventDriven;
      const auto adaptive = core::run_distributed_sampler(g, cfg);
      FL_REQUIRE(adaptive.stats.messages == local.stats.messages,
                 "adaptive budgeted sampler sent a different message count "
                 "than LOCAL — the budget must delay, never drop");
      FL_REQUIRE(adaptive.edges == local.edges,
                 "adaptive budgeted sampler built a different spanner than "
                 "LOCAL — a root handler is delivery-order dependent");

      std::size_t fixed_rounds =
          adaptive.stats.rounds + adaptive.metrics.barrier_rounds_saved;
      if (deg <= 8.0) {
        cfg.barriers = core::BarrierMode::FixedSchedule;
        cfg.schedule_slack = slack;
        const auto fixed = core::run_distributed_sampler(g, cfg);
        FL_REQUIRE(fixed.stats.messages == local.stats.messages,
                   "fixed budgeted sampler sent a different message count — "
                   "its schedule slack no longer covers the deferral delays");
        FL_REQUIRE(fixed.edges == local.edges,
                   "fixed budgeted sampler built a different spanner than "
                   "LOCAL");
        FL_REQUIRE(adaptive.stats.rounds < fixed.stats.rounds,
                   "event-driven barriers failed to beat the slack-stretched "
                   "timetable");
        fixed_rounds = fixed.stats.rounds;
      }
      table.add(static_cast<std::size_t>(n), deg, budget, max_words, slack,
                local.stats.rounds, fixed_rounds, adaptive.stats.rounds,
                util::fixed(static_cast<double>(adaptive.stats.rounds) /
                                static_cast<double>(local.stats.rounds),
                            2),
                adaptive.metrics.barrier_rounds_saved,
                adaptive.metrics.deferrals_total, adaptive.stats.messages,
                adaptive.metrics.words_total, adaptive.edges == local.edges);
    }
    env.emit(table,
             "E6d — Sampler under a CONGEST word budget: fixed "
             "slack-stretched timetable vs event-driven phase barriers "
             "(Defer, message counts and spanner pinned to LOCAL)");
  }
  return 0;
}
