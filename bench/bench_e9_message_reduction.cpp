// E9 — Theorem 3 end-to-end: transform concrete LOCAL algorithms.
//
// For each payload (Luby MIS, coloring, BFS layers, leader election) on a
// dense graph we report native vs transformed message/round costs, verify
// output equality, and chart the amortization: how many payload executions
// until the one-time Sampler preprocessing is paid back.
#include <memory>

#include "bench_common.hpp"
#include "core/config.hpp"
#include "core/distributed_sampler.hpp"
#include "graph/generators.hpp"
#include "localsim/algorithms.hpp"
#include "localsim/transformer.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace fl;
  const auto env = bench::Env::parse(argc, argv);
  const graph::NodeId n = env.quick ? 512 : 1024;

  const auto g = graph::complete(n);
  const auto cfg = core::SamplerConfig::bench_profile(2, 3, env.seed);
  const auto spanner = core::run_distributed_sampler(g, cfg);

  std::vector<std::unique_ptr<localsim::LocalAlgorithm>> payloads;
  payloads.push_back(std::make_unique<localsim::LubyMis>(env.seed + 1, 6));
  payloads.push_back(
      std::make_unique<localsim::GreedyColoring>(env.seed + 2, 5));
  payloads.push_back(std::make_unique<localsim::BfsLayers>(4));
  payloads.push_back(std::make_unique<localsim::LeaderElection>(3));
  payloads.push_back(std::make_unique<localsim::LocalMin>(3));

  util::Table table({"payload", "t", "native msgs", "reduced msgs (bcast)",
                     "native rounds", "reduced rounds (bcast)",
                     "outputs equal?", "bcast/native msgs"});

  std::uint64_t native_total = 0, reduced_total = 0;
  for (const auto& alg : payloads) {
    const auto native = localsim::run_native(g, *alg, env.seed);
    const auto reduced = localsim::run_over_spanner(
        g, *alg, spanner.edges, spanner.stretch_bound, env.seed);
    native_total += native.messages;
    reduced_total += reduced.messages;
    table.add(alg->name(), alg->radius(g), native.messages, reduced.messages,
              native.rounds, reduced.rounds,
              reduced.outputs == native.outputs,
              util::fixed(static_cast<double>(reduced.messages) /
                              static_cast<double>(native.messages),
                          3));
  }
  env.emit(table, "E9 / Theorem 3 — payload transformations on K_n");

  util::Table amort({"quantity", "value"});
  amort.add("sampler preprocessing msgs", spanner.stats.messages);
  amort.add("sampler preprocessing rounds", spanner.stats.rounds);
  amort.add("spanner edges |S|", spanner.edges.size());
  amort.add("graph edges m", static_cast<std::size_t>(g.num_edges()));
  const double avg_native = static_cast<double>(native_total) /
                            static_cast<double>(payloads.size());
  const double avg_reduced = static_cast<double>(reduced_total) /
                             static_cast<double>(payloads.size());
  amort.add("avg native msgs / payload", avg_native);
  amort.add("avg reduced msgs / payload", avg_reduced);
  const double saving = avg_native - avg_reduced;
  amort.add("payloads to amortize preprocessing",
            saving > 0
                ? util::fixed(
                      static_cast<double>(spanner.stats.messages) / saving, 2)
                : std::string("never (native cheaper)"));
  const double one_shot = static_cast<double>(spanner.stats.messages) +
                          avg_reduced;
  amort.add("one-shot reduced total (pre + 1 payload)", one_shot);
  amort.add("one-shot reduced/native", util::fixed(one_shot / avg_native, 3));
  env.emit(amort, "E9 — preprocessing amortization on K_n");
  return 0;
}
