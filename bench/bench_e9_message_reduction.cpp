// E9 — Theorem 3 end-to-end: transform concrete LOCAL algorithms.
//
// For each payload (Luby MIS, coloring, BFS layers, leader election) on a
// dense graph we report native vs transformed message/round costs, verify
// output equality, and chart the amortization: how many payload executions
// until the one-time Sampler preprocessing is paid back.
#include <memory>

#include "bench_common.hpp"
#include "core/config.hpp"
#include "core/distributed_sampler.hpp"
#include "graph/generators.hpp"
#include "localsim/algorithms.hpp"
#include "localsim/transformer.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace fl;
  const auto env = bench::Env::parse(argc, argv);
  const util::Options opt(argc, argv);
  const bool congest_section = opt.get_bool("congest", false);
  const graph::NodeId n = env.quick ? 512 : 1024;

  const auto g = graph::complete(n);
  const auto cfg = core::SamplerConfig::bench_profile(2, 3, env.seed);
  const auto spanner = core::run_distributed_sampler(g, cfg);

  std::vector<std::unique_ptr<localsim::LocalAlgorithm>> payloads;
  payloads.push_back(std::make_unique<localsim::LubyMis>(env.seed + 1, 6));
  payloads.push_back(
      std::make_unique<localsim::GreedyColoring>(env.seed + 2, 5));
  payloads.push_back(std::make_unique<localsim::BfsLayers>(4));
  payloads.push_back(std::make_unique<localsim::LeaderElection>(3));
  payloads.push_back(std::make_unique<localsim::LocalMin>(3));

  util::Table table({"payload", "t", "native msgs", "reduced msgs (bcast)",
                     "native rounds", "reduced rounds (bcast)",
                     "outputs equal?", "bcast/native msgs"});

  std::uint64_t native_total = 0, reduced_total = 0;
  // Kept for the --congest section, which reuses these LOCAL runs as the
  // baseline instead of re-flooding K_n per payload.
  std::vector<localsim::ExecutionReport> native_local, reduced_local;
  for (const auto& alg : payloads) {
    auto native = localsim::run_native(g, *alg, env.seed);
    auto reduced = localsim::run_over_spanner(
        g, *alg, spanner.edges, spanner.stretch_bound, env.seed);
    native_total += native.messages;
    reduced_total += reduced.messages;
    table.add(alg->name(), alg->radius(g), native.messages, reduced.messages,
              native.rounds, reduced.rounds,
              reduced.outputs == native.outputs,
              util::fixed(static_cast<double>(reduced.messages) /
                              static_cast<double>(native.messages),
                          3));
    native_local.push_back(std::move(native));
    reduced_local.push_back(std::move(reduced));
  }
  env.emit(table, "E9 / Theorem 3 — payload transformations on K_n");

  util::Table amort({"quantity", "value"});
  amort.add("sampler preprocessing msgs", spanner.stats.messages);
  amort.add("sampler preprocessing rounds", spanner.stats.rounds);
  amort.add("spanner edges |S|", spanner.edges.size());
  amort.add("graph edges m", static_cast<std::size_t>(g.num_edges()));
  const double avg_native = static_cast<double>(native_total) /
                            static_cast<double>(payloads.size());
  const double avg_reduced = static_cast<double>(reduced_total) /
                             static_cast<double>(payloads.size());
  amort.add("avg native msgs / payload", avg_native);
  amort.add("avg reduced msgs / payload", avg_reduced);
  const double saving = avg_native - avg_reduced;
  amort.add("payloads to amortize preprocessing",
            saving > 0
                ? util::fixed(
                      static_cast<double>(spanner.stats.messages) / saving, 2)
                : std::string("never (native cheaper)"));
  const double one_shot = static_cast<double>(spanner.stats.messages) +
                          avg_reduced;
  amort.add("one-shot reduced total (pre + 1 payload)", one_shot);
  amort.add("one-shot reduced/native", util::fixed(one_shot / avg_native, 3));
  env.emit(amort, "E9 — preprocessing amortization on K_n");

  // --congest: the transformed executions under an enforced per-edge word
  // budget. Bundled flooding ships whole origin batches in one message —
  // free in LOCAL, but through B-word edges every bundle pays
  // ceil(words/B) rounds. Both paths must still compute the native
  // outputs (the hop-budgeted flood reaches exactly B_H(v, R) under any
  // delivery schedule); what the budget changes is the round bill, and
  // the spanner path pays it on 2|S| edge-channels instead of 2m.
  if (congest_section) {
    const sim::CongestConfig budget{8, sim::CongestPolicy::Defer};
    util::Table table({"payload", "t", "native rounds (LOCAL)",
                       "native rounds (budget)", "reduced rounds (LOCAL)",
                       "reduced rounds (budget)", "native deferrals",
                       "reduced deferrals", "outputs equal?"});
    for (std::size_t i = 0; i < payloads.size(); ++i) {
      const auto& alg = payloads[i];
      const auto native_budget =
          localsim::run_native(g, *alg, env.seed, budget);
      const auto reduced_budget = localsim::run_over_spanner(
          g, *alg, spanner.edges, spanner.stretch_bound, env.seed, budget);
      table.add(alg->name(), alg->radius(g), native_local[i].rounds,
                native_budget.rounds, reduced_local[i].rounds,
                reduced_budget.rounds, native_budget.deferrals,
                reduced_budget.deferrals,
                native_budget.outputs == native_local[i].outputs &&
                    reduced_budget.outputs == native_local[i].outputs);
    }
    env.emit(table,
             "E9c — payload broadcasts under a CONGEST word budget "
             "(Defer, 8 words/edge/round): LOCAL vs budgeted rounds");
  }
  return 0;
}
