#!/usr/bin/env bash
# Single entry point for CI and the tier-1 verify:
#   configure -> build -> ctest -> one quick bench smoke.
# Usage: scripts/check.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j
ctest --test-dir "$BUILD_DIR" --output-on-failure -j

# Bench smoke: the delivery-throughput sweep at quick sizes, JSON to stdout.
# Exits nonzero if the flat and legacy delivery paths ever disagree on
# RunStats, so CI catches semantic drift, not just crashes.
"$BUILD_DIR"/bench/bench_micro_perf --quick --json

echo "check.sh: all green"
