#!/usr/bin/env bash
# Single entry point for CI and the tier-1 verify:
#   configure -> build -> ctest -> one quick bench smoke.
# Usage: scripts/check.sh [build-dir]   (default: build)
# Extra configure flags (e.g. -DFL_WERROR=ON) can be passed via the
# FL_CMAKE_ARGS environment variable; FL_SIM_THREADS=N runs everything on
# the parallel round engine (results are bit-identical by contract).
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

# Determinism-contract lint: first prove every violation class still fires
# (the self-test fixtures), then lint src/ against the tracked allowlist.
python3 scripts/fl_lint.py --self-test
python3 scripts/fl_lint.py

# shellcheck disable=SC2086  # FL_CMAKE_ARGS is intentionally word-split
cmake -B "$BUILD_DIR" -S . ${FL_CMAKE_ARGS:-}
cmake --build "$BUILD_DIR" -j
ctest --test-dir "$BUILD_DIR" --output-on-failure -j

# Bench smoke: the delivery-throughput sweep at quick sizes plus the
# CONGEST budget sweep (LOCAL vs budgeted rounds under a binding per-edge
# word budget), JSON teed into the per-PR trajectory snapshot at the repo
# root. Exits nonzero if the sequential and parallel engines ever disagree
# on RunStats, or if a finite budget fails to stretch the schedule, so CI
# catches semantic drift, not just crashes. The committed
# BENCH_micro_perf.json is this same quick record, so bench_diff below has
# a matching baseline; FL_BENCH_FULL=1 additionally refreshes the tracked
# full-sweep record (adds the n=100k rows — a couple of minutes).
"$BUILD_DIR"/bench/bench_micro_perf --quick --congest --json | tee BENCH_micro_perf.json

# Backend smoke: the same flood under the in-process engine and under TCP
# shard processes (bench_micro_perf --backend), teed into the tracked
# BENCH_net.json. The model columns are contract C14 in snapshot form —
# rounds, messages and the stats_match verdict must never move — and the
# binary itself exits nonzero on any cross-backend divergence. On top of
# that, a byte-level diff of the quickstart example across backends: the
# cheapest end-to-end proof that FL_SIM_BACKEND is a transport knob, not a
# semantic one.
"$BUILD_DIR"/bench/bench_micro_perf --backend --quick --json | tee BENCH_net.json
diff <("$BUILD_DIR"/examples/quickstart) \
     <(FL_SIM_BACKEND=tcp:2 "$BUILD_DIR"/examples/quickstart) \
  || { echo "check.sh: quickstart output differs across backends (C14)"; exit 1; }
echo "check.sh: quickstart byte-identical across backends"
if [ -n "${FL_BENCH_FULL:-}" ]; then
  "$BUILD_DIR"/bench/bench_micro_perf --delivery --congest --json | tee BENCH_micro_perf_full.json
fi
# FL_BENCH_CAPACITY=1 refreshes the tracked capacity record: the n=1M
# sparse flood with its peak-RSS ceiling (~half a minute, ~0.5 GiB). Run
# at one lane — the row meters the engine, not the scheduler, and peak RSS
# is a process high-water mark, so capacity must be its own process run.
if [ -n "${FL_BENCH_CAPACITY:-}" ]; then
  "$BUILD_DIR"/bench/bench_micro_perf --capacity --quick --threads=1 --json | tee BENCH_capacity.json
fi
# FL_BENCH_PROFILE=1 runs the traced flood: tracing ON, per-round phase
# timeline teed into BENCH_profile.json, and the Perfetto-loadable
# TRACE_micro_perf.json (+ .jsonl profile dump) dropped at the repo root,
# then lint-checked for well-formedness. Exits nonzero if the trace
# artifact is missing per-lane step spans or busy data. The timings are
# advisory (never diffed) — the committed BENCH_profile.json is a shape
# record, refreshed only under this gate.
if [ -n "${FL_BENCH_PROFILE:-}" ]; then
  "$BUILD_DIR"/bench/bench_micro_perf --profile --quick --threads=2 --json | tee BENCH_profile.json
  python3 scripts/trace_lint.py TRACE_micro_perf.json TRACE_micro_perf.json.jsonl
fi

# Trajectory snapshots: every experiment's --quick --json record lands in a
# tracked BENCH_e<N>.json at the repo root, then bench_diff.py compares the
# fresh snapshots against the committed ones and flags >10% drift. Model
# quantities (rounds, messages, sizes) are deterministic per seed, so any
# drift there is a genuine behaviour change; wall-clock fields are reported
# but marked as noisy. The diff warns by default (pass --strict to fail).
# E6 and E9 additionally run their --congest sections (the Sampler and the
# payload broadcasts under an enforced per-edge word budget), so the
# LOCAL-vs-budgeted round tables are part of the tracked trajectory.
for bench in e1_hierarchy e2_light_heavy e3_spanner_size e4_stretch \
             e5_rounds e6_messages e7_baselines e8_tlocal_broadcast \
             e9_message_reduction e10_two_stage; do
  id="${bench%%_*}"
  extra=""
  case "$bench" in
    e6_messages|e9_message_reduction) extra="--congest" ;;
  esac
  # shellcheck disable=SC2086  # $extra is intentionally word-split
  "$BUILD_DIR"/bench/"bench_$bench" --quick $extra --json > "BENCH_$id.json"
  echo "snapshot: BENCH_$id.json"
done
python3 scripts/bench_diff.py

echo "check.sh: all green"
