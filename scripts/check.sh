#!/usr/bin/env bash
# Single entry point for CI and the tier-1 verify:
#   configure -> build -> ctest -> one quick bench smoke.
# Usage: scripts/check.sh [build-dir]   (default: build)
# Extra configure flags (e.g. -DFL_WERROR=ON) can be passed via the
# FL_CMAKE_ARGS environment variable; FL_SIM_LEGACY_INBOX=1 exercises the
# legacy delivery path end to end.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

# shellcheck disable=SC2086  # FL_CMAKE_ARGS is intentionally word-split
cmake -B "$BUILD_DIR" -S . ${FL_CMAKE_ARGS:-}
cmake --build "$BUILD_DIR" -j
ctest --test-dir "$BUILD_DIR" --output-on-failure -j

# Bench smoke: the delivery-throughput sweep at quick sizes, JSON teed into
# the per-PR trajectory snapshot at the repo root. Exits nonzero if the
# flat and legacy delivery paths ever disagree on RunStats, so CI catches
# semantic drift, not just crashes.
"$BUILD_DIR"/bench/bench_micro_perf --quick --json | tee BENCH_micro_perf.json

echo "check.sh: all green"
