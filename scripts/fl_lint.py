#!/usr/bin/env python3
"""fl_lint — determinism-contract lint for the fl source tree.

The simulator's whole value proposition is bit-identical runs at every
thread count, balance mode, and (non-binding) congest budget. The contracts
that guarantee it are structural, repo-specific, and invisible to a generic
linter, so this pass checks them directly over ``src/``:

  FL001 banned-rng        std::rand / srand / random_device in engine or
                          protocol code — all randomness must flow through
                          the seeded per-node util::Xoshiro256 streams.
  FL002 wall-clock        time() / std::chrono / clock_gettime — round
                          logic must never observe wall-clock time. The one
                          sanctioned reader is the observability layer:
                          files under src/obs/ are exempt (obs::Clock is
                          the single door the ban leaves open), and FL009
                          polices the other side of that door.
  FL003 unordered-iter    range-for over a std::unordered_{map,set}
                          declared in the same file: hash-order iteration
                          feeding sends, metrics, or outputs is the classic
                          silent determinism leak.
  FL004 pointer-ordered   std::map/std::set keyed on a pointer type —
                          address order varies run to run (ASLR, allocator).
  FL005 pointer-hash      std::hash over a pointer type, same failure mode.
  FL006 size-hint-zero    a literal 0 passed as size_hint_words to send():
                          words accounting treats the hint as the message's
                          CONGEST width, and 0-word messages are banned by
                          the admission pass (it would divide by the budget).
  FL007 payload-assert    a struct passed to Context::send by braced init
                          must carry a static_assert pinning
                          Payload::stores_inline<T> (and, for hot-path
                          types, trivially_relocatable<T>) in the same
                          file, so a grown field cannot silently fall back
                          to the heap path and change words accounting.
  FL008 message-aos       a std::vector of MessageHeader / Payload declared
                          outside sim/message.hpp: bulk message storage must
                          be a MessagePlanes (the structure-of-arrays plane
                          container), never a hand-rolled array — parallel
                          planes that drift apart break the zipped-view
                          contract and the sticky-capacity accounting.
  FL009 obs-feedback      code under src/{sim,core,baseline,localsim}
                          consumes an fl::obs timing value (obs::Clock,
                          RoundProfile's *_ns fields, busy times, the
                          imbalance ratio): observability is one-way by
                          contract (CONTRACTS.md C12) — the engine opens
                          spans and reports model counters, but a timing
                          fed back into a scheduling or protocol decision
                          would make wall-clock an input again, undoing
                          everything FL002 protects.
  FL010 schedule-length   code under src/ outside core/distributed_sampler.*
                          consumes Schedule::total_rounds. Under
                          event-driven phase barriers (CONTRACTS.md C13) the
                          slack-stretched timetable length is a provisioning
                          *model* — the run advances on the network-silence
                          fact and may finish in far fewer (or, mid-phase,
                          more) rounds — so sizing a loop, cap, or buffer
                          from total_rounds outside the sampler driver
                          silently re-couples callers to the retired fixed
                          schedule.
  FL011 raw-transport     socket-layer calls (htons/ntohl and friends,
                          ::socket, socketpair, AF_*/SOCK_STREAM, the
                          socket headers) or ad-hoc byte-pointer
                          reinterpret_cast framing outside ``src/net/``.
                          The net layer is the one sanctioned door to the
                          socket API: everywhere else, cross-process bytes
                          go through sim/wire.hpp (WireWriter/WireReader,
                          explicit little-endian) and delivery goes through
                          the DeliveryBackend interface — a hand-rolled
                          transport would bypass both the C14 oracle and
                          the endianness guarantees.

Violations that are understood and accepted live in the tracked allowlist
(``scripts/fl_lint_allowlist.txt``); everything else fails the build.

Usage:
  fl_lint.py [--root REPO] [--allowlist FILE]   lint src/, exit 1 on findings
  fl_lint.py --self-test                        prove each check still fires
"""

from __future__ import annotations

import argparse
import os
import re
import sys
import tempfile

CHECK_IDS = (
    "FL001", "FL002", "FL003", "FL004", "FL005", "FL006", "FL007", "FL008",
    "FL009", "FL010", "FL011",
)


def strip_comments(text: str) -> str:
    """Blank out // and /* */ comments and string/char literals, preserving
    line structure so reported line numbers stay exact."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            out.append("".join(ch if ch == "\n" else " " for ch in text[i:j]))
            i = j
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(quote + " " * (j - i - 2) + (quote if j - i >= 2 else ""))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


class Finding:
    def __init__(self, path: str, line: int, check: str, message: str):
        self.path = path
        self.line = line
        self.check = check
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.check} {self.message}"


def line_of(text: str, pos: int) -> int:
    return text.count("\n", 0, pos) + 1


# --------------------------------------------------------------- FL001/2/4/5

PATTERN_CHECKS = [
    ("FL001", re.compile(r"\bstd::rand\b|\bsrand\s*\(|\bstd::random_device\b"),
     "banned RNG source; use the seeded per-node util::Xoshiro256 stream"),
    ("FL002", re.compile(
        r"\bstd::chrono\b|\bgettimeofday\s*\(|\bclock_gettime\s*\(|"
        r"(?<![\w.:])time\s*\(\s*(?:NULL|nullptr|0|&|\))"),
     "wall-clock observation in deterministic code"),
    ("FL004", re.compile(r"\bstd::(?:multi)?(?:map|set)\s*<[^<>,;]*\*"),
     "ordered container keyed on a pointer (address order is not stable)"),
    ("FL005", re.compile(r"\bstd::hash\s*<[^<>;]*\*"),
     "std::hash of a pointer (hash of an address is not stable)"),
]


# The sanctioned-clock carve-out: src/obs/ is the observability layer, the
# one place allowed to read steady_clock (obs::Clock). FL009 below checks
# the other direction — nothing outside obs may consume what it measures.
OBS_DIR = re.compile(r"(?:^|/)src/obs/")


def check_patterns(path: str, code: str) -> list:
    in_obs = OBS_DIR.search(path.replace("\\", "/")) is not None
    findings = []
    for check, rx, msg in PATTERN_CHECKS:
        if check == "FL002" and in_obs:
            continue
        for m in rx.finditer(code):
            findings.append(Finding(path, line_of(code, m.start()), check, msg))
    return findings


# --------------------------------------------------------------------- FL003

UNORDERED_DECL = re.compile(
    r"\bstd::unordered_(?:map|set|multimap|multiset)\s*<[^;{]*?>\s*"
    r"(\w+)\s*[;({=]")
RANGE_FOR = re.compile(r"\bfor\s*\(\s*(?:const\s+)?[\w:<>,&*\s]+?[&\s]"
                       r"(?:\[[^\]]*\]|\w+)\s*:\s*(\w+)\s*\)")


def check_unordered_iteration(path: str, code: str) -> list:
    names = set(UNORDERED_DECL.findall(code))
    if not names:
        return []
    findings = []
    for m in RANGE_FOR.finditer(code):
        if m.group(1) in names:
            findings.append(Finding(
                path, line_of(code, m.start()), "FL003",
                f"iteration over unordered container '{m.group(1)}' "
                "(hash order must not feed sends, metrics, or outputs)"))
    return findings


# --------------------------------------------------------------- FL006/FL007

SEND_CALL = re.compile(r"\bsend\s*\(")


def split_call(code: str, open_paren: int):
    """Return (args, end) for the call whose '(' is at open_paren, with args
    split at top-level commas. None if the parenthesis never closes."""
    depth, i, n = 0, open_paren, len(code)
    args, start = [], open_paren + 1
    while i < n:
        c = code[i]
        if c in "([{<":
            # '<' is only a bracket in template-ish position; treating every
            # '<' as one would desync on comparisons, so only track ([{.
            if c != "<":
                depth += 1
        elif c in ")]}":
            depth -= 1
            if depth == 0:
                args.append(code[start:i])
                return args, i
        elif c == "," and depth == 1:
            args.append(code[start:i])
            start = i + 1
        i += 1
    return None, n


def check_send_sites(path: str, code: str) -> list:
    findings = []
    asserted = set(re.findall(
        r"stores_inline\s*<\s*(\w+)\s*>|trivially_relocatable\s*<\s*(\w+)\s*>",
        code))
    asserted = {a or b for a, b in asserted}
    seen_types = set()
    for m in SEND_CALL.finditer(code):
        args, _ = split_call(code, m.end() - 1)
        if args is None or len(args) < 2:
            continue
        line = line_of(code, m.start())
        if len(args) >= 3 and args[-1].strip() == "0":
            findings.append(Finding(
                path, line, "FL006",
                "literal 0 passed as size_hint_words (a message is never "
                "0 CONGEST words; the admission pass rejects it)"))
        tm = re.match(r"\s*([A-Z]\w*)\s*\{", args[1])
        if tm:
            t = tm.group(1)
            if t not in asserted and (path, t) not in seen_types:
                seen_types.add((path, t))
                findings.append(Finding(
                    path, line, "FL007",
                    f"payload struct '{t}' is sent without a "
                    f"static_assert(sim::Payload::stores_inline<{t}>) in "
                    "this file (growth must not silently change words "
                    "accounting)"))
    return findings


# --------------------------------------------------------------------- FL008

MESSAGE_VECTOR = re.compile(
    r"\bstd::vector\s*<\s*(?:fl::)?(?:sim::)?(?:MessageHeader|Payload)\s*>")


def check_message_planes(path: str, code: str) -> list:
    # sim/message.hpp IS the plane container — its two vectors are the one
    # legal declaration site.
    if path.replace("\\", "/").endswith("sim/message.hpp"):
        return []
    findings = []
    for m in MESSAGE_VECTOR.finditer(code):
        findings.append(Finding(
            path, line_of(code, m.start()), "FL008",
            "raw vector of message headers/payloads; bulk message storage "
            "must be a sim::MessagePlanes (structure-of-arrays planes)"))
    return findings


# --------------------------------------------------------------------- FL009

# Decision-path code: the engine and every protocol layer. src/obs itself,
# src/util (Timer is bench/example reporting) and src/graph are out of
# scope — nothing there makes round-engine decisions.
FL009_SCOPE = re.compile(r"(?:^|/)src/(?:sim|core|baseline|localsim)/")

# What "consuming a timing" looks like at the token level: the sanctioned
# clock itself, or any of the advisory wall-clock fields/accessors the
# tracer exposes. Engine code legitimately *constructs* scopes and calls
# end_round with model counters — none of those tokens appear here.
FL009_TOKENS = re.compile(
    r"\bobs::Clock\b|\bnow_ns\s*\(|"
    r"\b(?:quiesce_ns|step_ns|merge_ns|admit_ns|end_ns|elapsed_ns|"
    r"lane_busy_ns|busy_ns|max_over_avg_busy)\b")


def check_obs_feedback(path: str, code: str) -> list:
    if not FL009_SCOPE.search(path.replace("\\", "/")):
        return []
    findings = []
    for m in FL009_TOKENS.finditer(code):
        findings.append(Finding(
            path, line_of(code, m.start()), "FL009",
            "engine/protocol code consumes an obs timing value — "
            "observability is one-way (CONTRACTS.md C12): wall-clock data "
            "must never feed a scheduling or protocol decision"))
    return findings


# --------------------------------------------------------------------- FL010

# The sampler driver and its Schedule definition are the one legal consumer:
# the driver derives the *fixed-mode* stall cap and the provisioned-rounds
# baseline for barrier_rounds_saved from the timetable length.
FL010_EXEMPT = re.compile(r"(?:^|/)src/core/distributed_sampler\.[a-z]+$")
FL010_TOKEN = re.compile(r"\btotal_rounds\b")


def check_schedule_length(path: str, code: str) -> list:
    if FL010_EXEMPT.search(path.replace("\\", "/")):
        return []
    findings = []
    for m in FL010_TOKEN.finditer(code):
        findings.append(Finding(
            path, line_of(code, m.start()), "FL010",
            "Schedule::total_rounds consumed outside the sampler driver — "
            "the timetable length is a provisioning model under "
            "event-driven barriers (CONTRACTS.md C13), not a run-length "
            "promise"))
    return findings


# --------------------------------------------------------------------- FL011

# The transport carve-out: src/net/ is the delivery-backend layer, the one
# place allowed to speak to the socket API and to alias bytes for framing
# (its sockaddr casts and length-prefix frames ARE the transport). FL011
# polices everywhere else on two fronts: the socket layer itself, and the
# byte-pointer reinterpret_cast that hand-rolled framing always starts with
# — wire bytes anywhere else must come from sim/wire.hpp's explicit
# little-endian WireWriter/WireReader, and delivery from a DeliveryBackend.
NET_DIR = re.compile(r"(?:^|/)src/net/")

FL011_SOCKET = re.compile(
    r"#\s*include\s*<(?:sys/socket\.h|sys/un\.h|netinet/[^>]*|arpa/inet\.h)>|"
    r"\b(?:htons|htonl|ntohs|ntohl|socketpair|setsockopt|getsockname)\s*\(|"
    r"::socket\s*\(|\bAF_(?:INET6?|UNIX)\b|\bSOCK_STREAM\b")
FL011_FRAMING = re.compile(
    r"reinterpret_cast\s*<\s*(?:const\s+)?(?:unsigned\s+char|signed\s+char|"
    r"char|std::uint8_t|uint8_t|std::byte)\s*(?:const\s+)?\*\s*>")


def check_raw_transport(path: str, code: str) -> list:
    if NET_DIR.search(path.replace("\\", "/")):
        return []
    findings = []
    for m in FL011_SOCKET.finditer(code):
        findings.append(Finding(
            path, line_of(code, m.start()), "FL011",
            "raw socket-layer call outside src/net/ — transport code lives "
            "behind the DeliveryBackend interface (FL_SIM_BACKEND selects "
            "it; see net/channel.hpp)"))
    for m in FL011_FRAMING.finditer(code):
        findings.append(Finding(
            path, line_of(code, m.start()), "FL011",
            "ad-hoc byte-pointer reinterpret_cast framing outside src/net/ "
            "— cross-process bytes must go through sim/wire.hpp's "
            "WireWriter/WireReader (explicit little-endian)"))
    return findings


# ----------------------------------------------------------------- allowlist

def load_allowlist(path: str) -> list:
    """Each entry: (check_id, file_glob-ish path, optional substring). A
    finding is suppressed when the check matches, the finding's path ends
    with the entry path, and (if given) the substring occurs in the
    finding's source line."""
    entries = []
    if not os.path.exists(path):
        return entries
    with open(path, encoding="utf-8") as f:
        for raw in f:
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split(None, 2)
            if len(parts) < 2 or parts[0] not in CHECK_IDS:
                print(f"fl_lint: malformed allowlist entry: {line!r}",
                      file=sys.stderr)
                sys.exit(2)
            entries.append((parts[0], parts[1],
                            parts[2] if len(parts) > 2 else None))
    return entries


def suppressed(finding: Finding, source_lines: list, allow: list) -> bool:
    for check, path_suffix, substr in allow:
        if check != finding.check:
            continue
        if not finding.path.endswith(path_suffix):
            continue
        if substr is not None:
            text = (source_lines[finding.line - 1]
                    if finding.line <= len(source_lines) else "")
            if substr not in text:
                continue
        return True
    return False


# ---------------------------------------------------------------------- main

def lint_file(path: str, rel: str, allow: list) -> list:
    with open(path, encoding="utf-8") as f:
        text = f.read()
    code = strip_comments(text)
    findings = []
    findings += check_patterns(rel, code)
    findings += check_unordered_iteration(rel, code)
    findings += check_send_sites(rel, code)
    findings += check_message_planes(rel, code)
    findings += check_obs_feedback(rel, code)
    findings += check_schedule_length(rel, code)
    findings += check_raw_transport(rel, code)
    lines = text.split("\n")
    return [f for f in findings if not suppressed(f, lines, allow)]


def lint_tree(root: str, allowlist_path: str) -> int:
    allow = load_allowlist(allowlist_path)
    src = os.path.join(root, "src")
    if not os.path.isdir(src):
        print(f"fl_lint: no src/ under {root}", file=sys.stderr)
        return 2
    findings = []
    for dirpath, _, files in os.walk(src):
        for name in sorted(files):
            if not name.endswith((".hpp", ".cpp", ".h", ".cc")):
                continue
            path = os.path.join(dirpath, name)
            rel = os.path.relpath(path, root)
            findings += lint_file(path, rel, allow)
    findings.sort(key=lambda f: (f.path, f.line))
    for f in findings:
        print(f)
    if findings:
        counts = {}
        for f in findings:
            counts[f.check] = counts.get(f.check, 0) + 1
        summary = ", ".join(f"{k}: {v}" for k, v in sorted(counts.items()))
        print(f"fl_lint: {len(findings)} finding(s) ({summary})",
              file=sys.stderr)
        return 1
    return 0


# ------------------------------------------------------------------ selftest

# Each fixture is (repo-relative path, body): path-scoped rules (the FL002
# obs exemption, FL009's decision-path scope) are exercised with the same
# paths the tree lint would report.
FIXTURES = {
    # one fixture per violation class; each must trip exactly its check
    "FL001": ("src/fixture_fl001.cpp",
              "int f() { return std::rand(); }\n"),
    "FL002": ("src/fixture_fl002.cpp",
              "#include <chrono>\ndouble f() { return"
              " std::chrono::steady_clock::now().time_since_epoch().count();"
              " }\n"),
    "FL003": ("src/fixture_fl003.cpp",
              "#include <unordered_map>\nvoid f(Ctx& ctx) {\n"
              "  std::unordered_map<int, int> acc;\n"
              "  for (const auto& [k, v] : acc) ctx.send(k, v, 1);\n}\n"),
    "FL004": ("src/fixture_fl004.cpp",
              "#include <map>\nstd::map<Node*, int> rank_;\n"),
    "FL005": ("src/fixture_fl005.cpp",
              "#include <functional>\nstd::size_t h(Node* p) {"
              " return std::hash<Node*>{}(p); }\n"),
    "FL006": ("src/fixture_fl006.cpp",
              "void f(Ctx& ctx) { ctx.send(e, MsgPing{}, 0); }\n"
              "static_assert(sim::Payload::stores_inline<MsgPing>);\n"),
    "FL007": ("src/fixture_fl007.cpp",
              "struct MsgPing { int x; };\n"
              "void f(Ctx& ctx) { ctx.send(e, MsgPing{1}, 1); }\n"),
    "FL008": ("src/fixture_fl008.cpp",
              "#include <vector>\n"
              "std::vector<sim::MessageHeader> headers_;\n"
              "std::vector<fl::sim::Payload> payloads_;\n"),
    # A scheduling decision fed by a RoundProfile timing — exactly the
    # adaptive-sharding shortcut C12 forbids until it is designed for.
    "FL009": ("src/sim/fixture_fl009.cpp",
              "#include \"obs/trace.hpp\"\n"
              "void rebalance(const obs::RoundProfile& p, Plan& plan) {\n"
              "  if (p.step_ns > plan.budget_ns) plan.shrink_hot_shard();\n"
              "}\n"),
    # A run cap derived from the timetable length outside the sampler
    # driver — exactly the fixed-schedule coupling C13 retires.
    "FL010": ("src/sim/fixture_fl010.cpp",
              "#include \"core/distributed_sampler.hpp\"\n"
              "std::size_t cap(const core::Schedule& s) {\n"
              "  return s.total_rounds * 64 + 4096;\n"
              "}\n"),
    # A protocol hand-rolling its own transport: socket calls plus the
    # byte-pointer cast that ad-hoc framing always starts with — both must
    # fire outside src/net/.
    "FL011": ("src/sim/fixture_fl011.cpp",
              "#include <sys/socket.h>\n"
              "std::uint32_t ship(const Msg& m, int fd) {\n"
              "  const char* raw = reinterpret_cast<const char*>(&m);\n"
              "  (void)fd;\n"
              "  return htonl(static_cast<std::uint32_t>(raw[0]));\n"
              "}\n"),
}

# Files that must produce no findings: a compliant protocol, the obs layer
# reading the clock it is sanctioned to read (FL002's carve-out), and
# engine code that *constructs* trace scopes without consuming timings
# (the write-only side FL009 must not flag).
CLEAN_FIXTURES = [
    ("src/fixture_clean.cpp",
     "// a compliant protocol file\n"
     "struct MsgPing { int x; };\n"
     "static_assert(sim::Payload::stores_inline<MsgPing> &&\n"
     "              sim::Payload::trivially_relocatable<MsgPing>);\n"
     "void f(Ctx& ctx) {\n"
     "  for (const EdgeId e : ctx.incident_edges())\n"
     "    ctx.send(e, MsgPing{1}, 1);  // std::rand() in a comment is fine\n"
     "}\n"),
    ("src/obs/fixture_clean_obs.cpp",
     "#include <chrono>\n"
     "std::uint64_t sanctioned_now() {\n"
     "  return std::chrono::steady_clock::now().time_since_epoch().count();\n"
     "}\n"),
    ("src/sim/fixture_clean_sim.cpp",
     "#include \"obs/trace.hpp\"\n"
     "void phase(obs::Tracer* trace, unsigned s, std::size_t round) {\n"
     "  const obs::SpanScope span(trace, obs::SpanKind::StepLane, s, round);\n"
     "}\n"),
    # FL010's carve-out: the sampler driver is the one legal consumer of
    # the timetable length (fixed-mode stall cap, provisioned baseline).
    ("src/core/distributed_sampler.cpp",
     "std::size_t fixed_cap(const Schedule& s) {\n"
     "  return s.total_rounds + 4;\n"
     "}\n"),
    # FL011's carve-out: src/net/ IS the transport — socket calls, sockaddr
    # setup and byte framing are its job, and must produce no findings.
    ("src/net/fixture_clean_net.cpp",
     "#include <netinet/in.h>\n"
     "#include <sys/socket.h>\n"
     "int listen_any(std::uint16_t port) {\n"
     "  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);\n"
     "  sockaddr_in addr{};\n"
     "  addr.sin_port = htons(port);\n"
     "  (void)::bind(fd, reinterpret_cast<const sockaddr*>(&addr),\n"
     "               sizeof(addr));\n"
     "  return fd;\n"
     "}\n"),
]


def self_test() -> int:
    failures = []
    with tempfile.TemporaryDirectory() as tmp:
        def write_fixture(rel, body):
            path = os.path.join(tmp, rel)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w", encoding="utf-8") as f:
                f.write(body)
            return path

        for check, (rel, body) in FIXTURES.items():
            path = write_fixture(rel, body)
            got = lint_file(path, rel, allow=[])
            if not any(f.check == check for f in got):
                failures.append(f"{check}: fixture did not trip its check "
                                f"(got: {[str(f) for f in got]})")
            os.remove(path)
        for rel, body in CLEAN_FIXTURES:
            path = write_fixture(rel, body)
            got = lint_file(path, rel, allow=[])
            if got:
                failures.append(
                    f"clean fixture {rel} tripped: {[str(f) for f in got]}")
            os.remove(path)
        # The allowlist mechanism itself: a suppressed finding must vanish.
        rel = "src/allowed.cpp"
        path = write_fixture(rel, FIXTURES["FL001"][1])
        got = lint_file(path, rel, allow=[("FL001", "allowed.cpp", None)])
        if got:
            failures.append(f"allowlist did not suppress: "
                            f"{[str(f) for f in got]}")
    for msg in failures:
        print(f"fl_lint self-test FAILED: {msg}", file=sys.stderr)
    if not failures:
        print(f"fl_lint self-test OK: {len(FIXTURES)} violation classes "
              f"fire, {len(CLEAN_FIXTURES)} clean fixtures pass, allowlist "
              "suppresses")
    return 1 if failures else 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))),
        help="repository root (default: this script's parent's parent)")
    ap.add_argument("--allowlist", default=None,
                    help="allowlist file (default: scripts/fl_lint_allowlist"
                         ".txt under --root)")
    ap.add_argument("--self-test", action="store_true",
                    help="run the violation-class fixtures instead of "
                         "linting the tree")
    args = ap.parse_args()
    if args.self_test:
        return self_test()
    allowlist = args.allowlist or os.path.join(
        args.root, "scripts", "fl_lint_allowlist.txt")
    return lint_tree(args.root, allowlist)


if __name__ == "__main__":
    sys.exit(main())
