#!/usr/bin/env python3
"""Diff the working-tree BENCH_*.json snapshots against the committed ones.

The per-PR bench trajectory: scripts/check.sh regenerates BENCH_e1..e10.json
and BENCH_micro_perf.json on every run (and BENCH_capacity.json under
FL_BENCH_CAPACITY=1, BENCH_profile.json under FL_BENCH_PROFILE=1 — the
traced round-profile timeline from bench_micro_perf --profile); this script
compares each regenerated file against the version committed at HEAD
(`git show HEAD:<file>`) and flags every numeric field that moved by more
than --threshold (default 10%).

Most E-bench fields are *model* quantities (rounds, messages, spanner sizes)
that are bit-deterministic given the seed, so any drift there is a real
behaviour change, not noise. Wall-clock fields (msgs_per_sec, ...) and
resident-set readings (peak_rss_mb, rss_ceiling_mb — allocator- and
kernel-dependent) are noisy on a busy box — they are still reported, clearly
marked, but only model-field drift makes --strict fail; the capacity rows'
rss_within_ceiling verdict is a bool, hence model-strict like every
non-numeric field. Schema changes are model drift too: a row that
gains or loses a column between snapshots (e.g. a bench grew a --congest
column) is reported field by field, never silently skipped.

Exit status: 0 unless --strict is given and at least one non-timing field
regressed. Usage:  scripts/bench_diff.py [--strict] [--threshold PCT] [files...]
"""

import argparse
import json
import math
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

# "_over_" marks ratio columns whose numerator and denominator are both
# wall-clock rates (mt_over_flat, ...): a quotient of two noisy timings is
# itself a timing, so it must never fail --strict.
# "rss" covers the capacity rows' peak_rss_mb / rss_ceiling_mb: resident-set
# readings vary with allocator and kernel, so they advise rather than gate
# (the boolean rss_within_ceiling verdict stays model-strict).
# "_ns" covers the round-profile timeline (quiesce_ns, step_ns, busy_*_ns):
# nanosecond phase durations from the tracing layer are wall-clock by
# definition (CONTRACTS.md C12 — timing is advisory, never model).
TIMING_MARKERS = ("per_sec", "sec", "ms/", "time", "wall", "_over_", "rss",
                  "_ns")

# "rounds_saved" covers E6d's rounds_saved_vs_slack and the micro-perf
# sweep's barrier_rounds_saved: both are a *difference* of two model
# quantities (provisioned timetable minus executed adaptive rounds), fully
# deterministic per seed, but the subtraction amplifies any drift in the
# inputs (slack derives from max_message_words, so a one-word message
# change can swing the saved count by orders of magnitude) — and those
# inputs are already strict-gated in the same rows. Advisory: reported,
# never a --strict failure on its own.
ADVISORY_MARKERS = ("rounds_saved",)

# Records whose schema this script understands beyond "flat scalar rows":
# every listed column must be present in each row, and every *other* numeric
# column must carry a timing marker — a profile snapshot can only gain
# model columns deliberately (extend this map), never by accident.
REQUIRED_MODEL_COLUMNS = {
    "round_profile": {"round", "messages", "words", "deferrals",
                      "carry_depth", "lanes"},
    # bench_micro_perf --backend: in-process vs TCP shard processes on the
    # same seed. Everything except the throughput/barrier timings is the
    # C14 cross-backend contract — rounds, messages and the stats_match
    # verdict are bit-pinned, and wire_bytes is model too (the wire format
    # is explicit little-endian with deterministic framing, so the byte
    # count moves only when the format or the traffic changes).
    "net_backend": {"n", "family", "edges", "shards", "rounds", "messages",
                    "wire_bytes", "stats_match"},
    # E6d's fixed-vs-adaptive barrier A/B (bench_e6_messages --congest):
    # every round count is a model quantity — "adaptive rounds" especially,
    # since the event-driven barrier contract (CONTRACTS.md C13) pins it
    # bit-identical across thread counts. rounds_saved_vs_slack is the
    # advisory exception (see ADVISORY_MARKERS above).
    "E6d — Sampler under a CONGEST word budget: fixed slack-stretched "
    "timetable vs event-driven phase barriers (Defer, message counts and "
    "spanner pinned to LOCAL)": {
        "n", "avg deg", "budget", "max msg words", "slack", "local rounds",
        "fixed rounds", "adaptive rounds", "stretch", "deferrals",
        "messages", "words", "spanner == local?"},
}


def is_timing_field(name: str) -> bool:
    low = name.lower()
    return any(marker in low
               for marker in TIMING_MARKERS + ADVISORY_MARKERS)


def parse_concatenated_json(text: str):
    """Parse a stream of concatenated JSON objects (JSON-lines style)."""
    decoder = json.JSONDecoder()
    objs = []
    idx = 0
    while idx < len(text):
        while idx < len(text) and text[idx].isspace():
            idx += 1
        if idx >= len(text):
            break
        obj, end = decoder.raw_decode(text, idx)
        objs.append(obj)
        idx = end
    return objs


def committed_version(path: Path) -> str | None:
    rel = path.resolve().relative_to(REPO)
    res = subprocess.run(
        ["git", "-C", str(REPO), "show", f"HEAD:{rel.as_posix()}"],
        capture_output=True, text=True)
    return res.stdout if res.returncode == 0 else None


def collect_tables(objs):
    """Map table_key -> {row_key: row} for every table in a snapshot.

    Two shapes exist: the Env::emit tables ({"table": t, "rows": [...]}) and
    bench_micro_perf's dedicated record ({"bench": t, "results": [...]}).
    The table key folds in the sweep profile ("quick") so a quick snapshot
    is never diffed against a full one, and rows are keyed by their
    identifying fields (n / family / the first few non-numeric cells) rather
    than file position, as docs/EXPERIMENTS.md requires.
    """
    tables = {}
    for obj in objs:
        title = obj.get("table") or obj.get("bench") or "?"
        if "quick" in obj:
            title = f"{title} (quick={obj['quick']})"
        rows = obj.get("rows") or obj.get("results") or []
        keyed = tables.setdefault(title, {})
        for i, row in enumerate(rows):
            ident = tuple(
                (f, v) for f, v in row.items()
                if f in ("n", "family", "threads")
                or isinstance(v, str))
            key = (ident, sum(1 for k in keyed if k[0] == ident))
            keyed[key] = row
    return tables


def describe(key):
    ident, dup = key
    label = ", ".join(f"{f}={v}" for f, v in ident) or f"#{dup}"
    return label if dup == 0 else f"{label} #{dup}"


def diff_snapshots(old_objs, new_objs, threshold):
    """Return (model_flags, timing_flags, notes) lists of printable lines."""
    old_tables = collect_tables(old_objs)
    new_tables = collect_tables(new_objs)
    model_flags, timing_flags, notes = [], [], []
    for title, new_rows in new_tables.items():
        old_rows = old_tables.get(title)
        if old_rows is None:
            notes.append(f"  [{title}]: no baseline table, skipped")
            continue
        for key, new_row in new_rows.items():
            old_row = old_rows.get(key)
            if old_row is None:
                model_flags.append(f"  [{title}] {describe(key)}: new row")
                continue
            for field, new_val in new_row.items():
                # A column gained or lost between snapshots is a schema
                # change (e.g. a bench grew a --congest column): report it
                # explicitly as model drift instead of silently skipping
                # the field (or crashing on a missing key).
                if field not in old_row:
                    model_flags.append(
                        f"  [{title}] {describe(key)} {field}: "
                        f"column gained (absent from the HEAD snapshot)")
                    continue
                old_val = old_row[field]
                if not isinstance(new_val, (int, float)) or isinstance(new_val, bool):
                    if old_val != new_val:
                        model_flags.append(
                            f"  [{title}] {describe(key)} {field}: "
                            f"{old_val!r} -> {new_val!r}")
                    continue
                if not isinstance(old_val, (int, float)) or isinstance(old_val, bool):
                    model_flags.append(
                        f"  [{title}] {describe(key)} {field}: "
                        f"type changed ({old_val!r} -> {new_val!r})")
                    continue
                if old_val == new_val:
                    continue
                base = max(abs(old_val), abs(new_val))
                delta = (new_val - old_val) / base if base > 0 else math.inf
                if abs(delta) <= threshold:
                    continue
                line = (f"  [{title}] {describe(key)} {field}: "
                        f"{old_val:g} -> {new_val:g} ({delta:+.1%})")
                (timing_flags if is_timing_field(field)
                 else model_flags).append(line)
            for field in old_row:
                if field not in new_row:
                    model_flags.append(
                        f"  [{title}] {describe(key)} {field}: "
                        f"column lost (present in the HEAD snapshot)")
        for key in old_rows:
            if key not in new_rows:
                model_flags.append(
                    f"  [{title}] {describe(key)}: row disappeared")
    for title in old_tables:
        if title not in new_tables:
            model_flags.append(
                f"  [{title}]: table disappeared from the snapshot")
    return model_flags, timing_flags, notes


def lint_schema(files) -> int:
    """Validate snapshot structure without any baseline: every file parses,
    every record names its table and carries a row list, every row is a flat
    dict of scalars, and all rows of one table agree on their column set.
    The diff keys on exactly this shape, so schema rot here silently
    degrades drift detection — this is its self-check."""
    problems = []
    for path in files:
        if not path.exists():
            problems.append(f"{path.name}: listed but missing")
            continue
        try:
            objs = parse_concatenated_json(path.read_text())
        except json.JSONDecodeError as e:
            problems.append(f"{path.name}: unparseable ({e})")
            continue
        if not objs:
            problems.append(f"{path.name}: empty snapshot")
            continue
        for i, obj in enumerate(objs):
            if not isinstance(obj, dict):
                problems.append(f"{path.name} record {i}: not an object")
                continue
            title = obj.get("table") or obj.get("bench")
            if not isinstance(title, str) or not title:
                problems.append(
                    f"{path.name} record {i}: no 'table'/'bench' name")
                continue
            rows = obj.get("rows", obj.get("results"))
            if not isinstance(rows, list):
                problems.append(
                    f"{path.name} [{title}]: no 'rows'/'results' list")
                continue
            columns = None
            for j, row in enumerate(rows):
                if not isinstance(row, dict):
                    problems.append(
                        f"{path.name} [{title}] row {j}: not an object")
                    continue
                bad = [f for f, v in row.items()
                       if not isinstance(v, (str, int, float, bool))
                       and v is not None]
                if bad:
                    problems.append(
                        f"{path.name} [{title}] row {j}: non-scalar "
                        f"field(s) {bad} (the diff cannot compare these)")
                if columns is None:
                    columns = set(row)
                elif set(row) != columns:
                    problems.append(
                        f"{path.name} [{title}] row {j}: column set "
                        f"differs from row 0 "
                        f"({sorted(set(row) ^ columns)})")
            model = REQUIRED_MODEL_COLUMNS.get(title)
            if model is not None and columns is not None:
                missing = sorted(model - columns)
                if missing:
                    problems.append(
                        f"{path.name} [{title}]: model column(s) {missing} "
                        f"missing from the rows")
                unmarked = sorted(
                    f for f in columns
                    if f not in model and not is_timing_field(f))
                if unmarked:
                    problems.append(
                        f"{path.name} [{title}]: column(s) {unmarked} are "
                        f"neither declared model columns nor timing-marked "
                        f"— extend REQUIRED_MODEL_COLUMNS or rename them")
    for line in problems:
        print(f"bench_diff --lint-schema: {line}")
    if not problems:
        print(f"bench_diff --lint-schema: {len(files)} snapshot(s) "
              "well-formed")
    return 1 if problems else 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("files", nargs="*",
                    help="snapshots to diff (default: BENCH_*.json at repo root)")
    ap.add_argument("--threshold", type=float, default=10.0,
                    help="flag relative changes above this percentage")
    ap.add_argument("--strict", action="store_true",
                    help="exit 1 when a non-timing field drifted")
    ap.add_argument("--lint-schema", action="store_true",
                    help="validate snapshot structure (no baseline diff)")
    args = ap.parse_args()

    if args.files:
        files = [Path(f) for f in args.files]
    else:
        # Union of working-tree and committed snapshots, so a regenerated
        # file that *disappeared* (a bench stopped emitting) is flagged
        # rather than silently dropped from the sweep.
        res = subprocess.run(
            ["git", "-C", str(REPO), "ls-tree", "--name-only", "HEAD"],
            capture_output=True, text=True)
        committed = {REPO / f for f in res.stdout.split()
                     if f.startswith("BENCH_") and f.endswith(".json")}
        files = sorted(committed | set(REPO.glob("BENCH_*.json")))
    if args.lint_schema:
        return lint_schema(files)
    threshold = args.threshold / 100.0
    any_model_drift = False

    for path in files:
        old_text = committed_version(path)
        if not path.exists():
            if old_text is None:
                print(f"bench_diff: {path.name}: missing everywhere, skipped")
            else:
                print(f"bench_diff: {path.name}: committed snapshot was not "
                      f"regenerated — did its bench stop emitting?")
                any_model_drift = True
            continue
        if old_text is None:
            print(f"bench_diff: {path.name}: not committed yet, no baseline")
            continue
        try:
            old_objs = parse_concatenated_json(old_text)
            new_objs = parse_concatenated_json(path.read_text())
        except json.JSONDecodeError as e:
            print(f"bench_diff: {path.name}: unparseable snapshot ({e})")
            any_model_drift = True
            continue
        model_flags, timing_flags, notes = diff_snapshots(
            old_objs, new_objs, threshold)
        if not model_flags and not timing_flags and not notes:
            print(f"bench_diff: {path.name}: OK (within {args.threshold:g}%)")
            continue
        print(f"bench_diff: {path.name}:")
        for line in notes:
            print(line)
        for line in model_flags:
            print(line)
        for line in timing_flags:
            print(line + "  [timing — noisy]")
        if model_flags:
            any_model_drift = True

    if any_model_drift and args.strict:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
