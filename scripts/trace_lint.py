#!/usr/bin/env python3
"""Validate trace artifacts emitted by the fl::obs tracing layer.

Two artifact kinds, distinguished by filename:

  *.json        Chrome-trace-event file (Perfetto-loadable): one top-level
                object with "traceEvents". Checked: parses as JSON; has the
                displayTimeUnit hint; every event is an object with a
                string "name" and a "ph" in {M, X, C}; complete (X) events
                carry numeric ts >= 0, dur >= 0, integer tid, and an
                integer args.round; X-event timestamps are non-decreasing
                in file order (the exporter sorts globally, so a single
                linear pass proves chronological well-formedness); at
                least one "step:lane" span exists (the per-lane evidence
                the acceptance contract promises).

  *.jsonl       Round-profile dump: one flat JSON object per line — the
                per-round rows first (each with the model fields round /
                messages / words / deferrals / carry_depth, rounds strictly
                ascending, busy_ns a list), then histogram lines (each with
                "histogram", "count", and a "buckets" list whose entries
                carry lo <= hi and n >= 1).

Usage:  scripts/trace_lint.py FILE [FILE...]
Exit status: 0 when every file is well-formed, 1 otherwise. Never run this
on a trace written by several concurrent Networks (e.g. a whole ctest suite
sharing one FL_SIM_TRACE path): finalize() truncates, so the file is
whichever Network died last — fine for neutrality smoke, not lintable.
"""

import json
import sys
from pathlib import Path

REQUIRED_ROUND_FIELDS = ("round", "messages", "words", "deferrals",
                         "carry_depth")
VALID_PHASES = {"M", "X", "C"}


def lint_chrome(path: Path, problems: list) -> None:
    try:
        doc = json.loads(path.read_text())
    except json.JSONDecodeError as e:
        problems.append(f"{path.name}: unparseable JSON ({e})")
        return
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        problems.append(f"{path.name}: no top-level 'traceEvents' list")
        return
    if doc.get("displayTimeUnit") not in ("ms", "ns"):
        problems.append(f"{path.name}: missing/odd displayTimeUnit")
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        problems.append(f"{path.name}: traceEvents empty or not a list")
        return
    last_ts = None
    step_lane_spans = 0
    x_events = 0
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            problems.append(f"{path.name} event {i}: not an object")
            continue
        name = ev.get("name")
        ph = ev.get("ph")
        if not isinstance(name, str) or not name:
            problems.append(f"{path.name} event {i}: no string 'name'")
            continue
        if ph not in VALID_PHASES:
            problems.append(
                f"{path.name} event {i} ({name}): ph {ph!r} not in "
                f"{sorted(VALID_PHASES)}")
            continue
        if ph != "X":
            continue
        x_events += 1
        ts, dur, tid = ev.get("ts"), ev.get("dur"), ev.get("tid")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{path.name} event {i} ({name}): bad ts {ts!r}")
            continue
        if not isinstance(dur, (int, float)) or dur < 0:
            problems.append(f"{path.name} event {i} ({name}): bad dur {dur!r}")
        if not isinstance(tid, int):
            problems.append(f"{path.name} event {i} ({name}): bad tid {tid!r}")
        args = ev.get("args")
        if not isinstance(args, dict) or not isinstance(
                args.get("round"), int):
            problems.append(
                f"{path.name} event {i} ({name}): args.round missing or "
                f"not an integer")
        if last_ts is not None and ts < last_ts:
            problems.append(
                f"{path.name} event {i} ({name}): ts {ts} precedes the "
                f"previous X event ({last_ts}) — file is not "
                f"chronologically sorted")
        last_ts = ts
        if name == "step:lane":
            step_lane_spans += 1
    if x_events == 0:
        problems.append(f"{path.name}: no complete (X) span events at all")
    elif step_lane_spans == 0:
        problems.append(
            f"{path.name}: no 'step:lane' spans — the per-lane timeline "
            f"the trace exists for is absent")


def lint_profile_jsonl(path: Path, problems: list) -> None:
    lines = [ln for ln in path.read_text().splitlines() if ln.strip()]
    if not lines:
        problems.append(f"{path.name}: empty profile dump")
        return
    prev_round = None
    saw_round = False
    saw_histogram = False
    for i, line in enumerate(lines):
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as e:
            problems.append(f"{path.name} line {i}: unparseable ({e})")
            continue
        if not isinstance(obj, dict):
            problems.append(f"{path.name} line {i}: not an object")
            continue
        if "histogram" in obj:
            saw_histogram = True
            if not isinstance(obj.get("count"), int):
                problems.append(
                    f"{path.name} line {i} (histogram "
                    f"{obj.get('histogram')!r}): no integer 'count'")
            buckets = obj.get("buckets")
            if not isinstance(buckets, list):
                problems.append(
                    f"{path.name} line {i} (histogram "
                    f"{obj.get('histogram')!r}): no 'buckets' list")
                continue
            for j, b in enumerate(buckets):
                if (not isinstance(b, dict)
                        or not isinstance(b.get("lo"), int)
                        or not isinstance(b.get("hi"), int)
                        or not isinstance(b.get("n"), int)
                        or b["lo"] > b["hi"] or b["n"] < 1):
                    problems.append(
                        f"{path.name} line {i} bucket {j}: malformed "
                        f"(need integer lo <= hi, n >= 1)")
            continue
        saw_round = True
        missing = [f for f in REQUIRED_ROUND_FIELDS
                   if not isinstance(obj.get(f), int)]
        if missing:
            problems.append(
                f"{path.name} line {i}: round row lacks integer model "
                f"field(s) {missing}")
            continue
        if saw_histogram:
            problems.append(
                f"{path.name} line {i}: round row after histogram lines "
                f"(rounds must come first)")
        if prev_round is not None and obj["round"] <= prev_round:
            problems.append(
                f"{path.name} line {i}: round {obj['round']} does not "
                f"ascend past {prev_round}")
        prev_round = obj["round"]
        busy = obj.get("busy_ns")
        if not isinstance(busy, list) or not all(
                isinstance(b, int) and b >= 0 for b in busy):
            problems.append(
                f"{path.name} line {i}: busy_ns missing or not a list of "
                f"non-negative integers")
    if not saw_round:
        problems.append(f"{path.name}: no round-profile rows")
    if not saw_histogram:
        problems.append(f"{path.name}: no histogram lines")


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__)
        return 2
    problems = []
    for arg in sys.argv[1:]:
        path = Path(arg)
        if not path.exists():
            problems.append(f"{path.name}: missing")
            continue
        if path.name.endswith(".jsonl"):
            lint_profile_jsonl(path, problems)
        else:
            lint_chrome(path, problems)
    for line in problems:
        print(f"trace_lint: {line}")
    if not problems:
        print(f"trace_lint: {len(sys.argv) - 1} artifact(s) well-formed")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
