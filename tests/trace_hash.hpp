// Pinned golden-trace hashing for the delivery-order regression tests.
//
// The legacy (seed) inbox engine is gone; what anchors the simulator's
// observable behaviour now is a set of golden trace hashes pinned in the
// tests: FNV-1a 64 over an explicitly serialized event stream (fixed-width
// little-endian integers, length-prefixed strings), so the value is a pure
// function of the simulation — platform, endianness and container layout
// never leak in. PR 2/PR 3 proved the flat engine bit-identical to the
// seed's per-node inboxes; the pinned hashes freeze exactly that behaviour.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace fl::testing {

class TraceHash {
 public:
  /// Fixed-width, little-endian — the only integer entry point, so a
  /// caller cannot accidentally hash a platform-sized type.
  TraceHash& u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) byte(static_cast<unsigned char>(v >> (8 * i)));
    return *this;
  }

  TraceHash& str(std::string_view s) {
    u64(s.size());
    for (const char c : s) byte(static_cast<unsigned char>(c));
    return *this;
  }

  std::uint64_t value() const { return h_; }

 private:
  void byte(unsigned char b) {
    h_ ^= b;
    h_ *= 1099511628211ull;  // FNV-1a 64 prime
  }

  std::uint64_t h_ = 14695981039346656037ull;  // FNV-1a 64 offset basis
};

}  // namespace fl::testing
