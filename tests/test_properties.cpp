// Property-based parameterized sweeps: the paper's guarantees must hold on
// every graph family, every hierarchy depth k and across seeds.
#include <gtest/gtest.h>

#include <tuple>

#include "core/config.hpp"
#include "core/sampler.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "graph/spanner_check.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace fl {
namespace {

using core::SamplerConfig;
using graph::Family;
using graph::Graph;

// ---------------------------------------------------------------- family × k

using FamilyK = std::tuple<Family, unsigned>;

class SpannerProperty : public ::testing::TestWithParam<FamilyK> {
 protected:
  Graph make() const {
    util::Xoshiro256 rng(977);
    return graph::make_family(std::get<0>(GetParam()), 140, 0.0, rng);
  }
  SamplerConfig config() const {
    return SamplerConfig::paper_faithful(std::get<1>(GetParam()), 2, 1234);
  }
};

TEST_P(SpannerProperty, ValidSubsetConnectedAndStretchBounded) {
  const Graph g = make();
  const auto cfg = config();
  const auto res = core::build_spanner(g, cfg);
  ASSERT_TRUE(graph::is_valid_edge_subset(g, res.edges));
  const auto rep = graph::check_spanner_exact(g, res.edges, cfg.stretch_bound());
  EXPECT_TRUE(rep.connected);
  EXPECT_EQ(rep.violations, 0u)
      << "max stretch " << rep.max_edge_stretch << " vs "
      << cfg.stretch_bound();
}

TEST_P(SpannerProperty, HierarchyInvariants) {
  const Graph g = make();
  const auto cfg = config();
  const auto res = core::build_spanner(g, cfg);
  // Node conservation per level and monotone level shrinkage.
  for (unsigned j = 0; j < cfg.k; ++j) {
    const auto& lt = res.trace.levels[j];
    EXPECT_EQ(lt.light + lt.heavy + lt.neither, lt.virtual_nodes);
    EXPECT_EQ(lt.centers + lt.clustered + lt.unclustered, lt.virtual_nodes);
    EXPECT_LE(res.trace.levels[j + 1].virtual_nodes, lt.virtual_nodes);
  }
  // The physical partition maps are consistent with the level node counts.
  for (unsigned j = 0; j < res.trace.phys_cluster_at.size(); ++j) {
    graph::NodeId max_cluster = 0;
    for (const auto c : res.trace.phys_cluster_at[j])
      if (c != graph::kInvalidNode) max_cluster = std::max(max_cluster, c);
    EXPECT_LT(max_cluster, res.trace.levels[j].virtual_nodes);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, SpannerProperty,
    ::testing::Combine(::testing::Values(Family::ErdosRenyi, Family::Complete,
                                         Family::Grid, Family::Hypercube,
                                         Family::BarabasiAlbert,
                                         Family::RandomGeometric,
                                         Family::Dumbbell, Family::RandomTree),
                       ::testing::Values(1u, 2u)),
    [](const ::testing::TestParamInfo<FamilyK>& info) {
      return graph::family_name(std::get<0>(info.param)) + "_k" +
             std::to_string(std::get<1>(info.param));
    });

// --------------------------------------------------------------- seed sweep

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, StretchHoldsAcrossSeeds) {
  // "whp" in practice: no violation over a seed battery with paper
  // constants.
  util::Xoshiro256 rng(31);
  const Graph g = graph::erdos_renyi_gnm(160, 1400, rng);
  const auto cfg = SamplerConfig::paper_faithful(2, 2, GetParam());
  const auto res = core::build_spanner(g, cfg);
  const auto rep = graph::check_spanner_exact(g, res.edges, cfg.stretch_bound());
  EXPECT_EQ(rep.violations, 0u) << "seed " << GetParam();
  EXPECT_TRUE(rep.connected);
}

TEST_P(SeedSweep, NoNeitherNodesWithPaperConstants) {
  util::Xoshiro256 rng(37);
  const Graph g = graph::erdos_renyi_gnm(200, 2400, rng);
  const auto cfg = SamplerConfig::paper_faithful(2, 2, GetParam());
  const auto res = core::build_spanner(g, cfg);
  for (const auto& lt : res.trace.levels) EXPECT_EQ(lt.neither, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

// ------------------------------------------------------------ h sensitivity

class HSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(HSweep, MoreTrialsNeverBreakCorrectness) {
  util::Xoshiro256 rng(41);
  const Graph g = graph::erdos_renyi_gnm(150, 1100, rng);
  const auto cfg = SamplerConfig::paper_faithful(2, GetParam(), 7);
  const auto res = core::build_spanner(g, cfg);
  const auto rep = graph::check_spanner_exact(g, res.edges, cfg.stretch_bound());
  EXPECT_EQ(rep.violations, 0u) << "h=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(H, HSweep, ::testing::Values(1u, 2u, 3u, 4u, 6u));

// -------------------------------------------------- size scaling (Lemma 10)

TEST(SizeScaling, ExponentTracksDelta) {
  // Fit |S| ~ n^b over a size sweep on dense ER graphs; b must be within
  // sampling slack of 1 + δ (and decisively below the dense-graph m ~ n²).
  const auto cfg_base = SamplerConfig::bench_profile(2, 3, 5);
  std::vector<double> xs, ys;
  for (const graph::NodeId n : {256u, 512u, 1024u, 2048u}) {
    util::Xoshiro256 rng(43 + n);
    // Keep density superlinear so the spanner, not the graph, is the cap.
    const Graph g = graph::erdos_renyi_gnm(n, 16ull * n, rng);
    auto cfg = cfg_base;
    const auto res = core::build_spanner(g, cfg);
    xs.push_back(static_cast<double>(n));
    ys.push_back(static_cast<double>(res.edges.size()));
  }
  const auto fit = util::fit_loglog(xs, ys);
  EXPECT_GT(fit.slope, 0.8);
  EXPECT_LT(fit.slope, 1.0 + cfg_base.delta() + 0.25);
  EXPECT_GT(fit.r_squared, 0.95);
}

}  // namespace
}  // namespace fl
