// Wire-encoding tests: explicit little-endian framing primitives, the
// default and FL_WIRE_FIELDS codecs, Payload's encode/decode registry
// (including heap-fallback and over-aligned storage classes), and the
// per-protocol round-trip hooks covering every payload struct in the
// repo (topology_collect, baswana_sen, the distributed sampler's 18
// structs, tlocal_broadcast).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "baseline/baswana_sen.hpp"
#include "baseline/topology_collect.hpp"
#include "core/distributed_sampler.hpp"
#include "localsim/tlocal_broadcast.hpp"
#include "sim/payload.hpp"
#include "sim/wire.hpp"
#include "sim/wire_check.hpp"

namespace fl::sim {
namespace {

// ------------------------------------------------- framing primitives

TEST(Wire, PrimitivesAreExplicitLittleEndian) {
  WireWriter w;
  w.u8(0xAB);
  w.u16(0x1234);
  w.u32(0xDEADBEEF);
  w.u64(0x0102030405060708ULL);
  const std::uint8_t expect[] = {0xAB, 0x34, 0x12, 0xEF, 0xBE, 0xAD, 0xDE,
                                 0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02,
                                 0x01};
  ASSERT_EQ(w.size(), sizeof(expect));
  for (std::size_t i = 0; i < sizeof(expect); ++i)
    EXPECT_EQ(w.data()[i], expect[i]) << "byte " << i;

  WireReader r(w.span());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0102030405060708ULL);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Wire, ReaderUnderflowThrows) {
  WireWriter w;
  w.u16(7);
  WireReader r(w.span());
  EXPECT_EQ(r.u8(), 7);
  EXPECT_EQ(r.u8(), 0);
  EXPECT_THROW(r.u8(), WireError);

  WireReader r2(w.span());
  EXPECT_THROW(r2.u64(), WireError);  // 2 bytes present, 8 wanted
}

TEST(Wire, LengthPrefixPatching) {
  WireWriter w;
  const std::size_t slot = w.reserve_u32();
  w.u64(42);
  w.patch_u32(slot, static_cast<std::uint32_t>(w.size() - slot - 4));
  WireReader r(w.span());
  EXPECT_EQ(r.u32(), 8u);
  EXPECT_EQ(r.u64(), 42u);
}

TEST(Wire, DefaultCodecsRoundTrip) {
  WireWriter w;
  wire_put(w, std::int32_t{-5});
  wire_put(w, true);
  wire_put(w, 2.5);
  wire_put(w, std::vector<std::uint32_t>{1, 2, 3});
  wire_put(w, std::string("round-sync"));
  wire_put(w, std::make_shared<std::uint64_t>(99));
  wire_put(w, std::shared_ptr<std::uint64_t>{});

  WireReader r(w.span());
  EXPECT_EQ(wire_get<std::int32_t>(r), -5);
  EXPECT_EQ(wire_get<bool>(r), true);
  EXPECT_EQ(wire_get<double>(r), 2.5);
  EXPECT_EQ((wire_get<std::vector<std::uint32_t>>(r)),
            (std::vector<std::uint32_t>{1, 2, 3}));
  EXPECT_EQ(wire_get<std::string>(r), "round-sync");
  auto p = wire_get<std::shared_ptr<std::uint64_t>>(r);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(*p, 99u);
  EXPECT_EQ(wire_get<std::shared_ptr<std::uint64_t>>(r), nullptr);
  EXPECT_EQ(r.remaining(), 0u);
}

// -------------------------------------------- encodability as a trait

struct PaddedNoCodec {  // trivially copyable but padded: no default codec
  std::uint64_t a = 0;
  bool b = false;
};

struct UniqueRepr {  // no padding: raw-bytes default applies
  std::uint32_t a = 0;
  std::uint32_t b = 0;
};

TEST(Wire, EncodabilityFollowsRepresentation) {
  static_assert(wire_encodable_v<std::uint32_t>);
  static_assert(wire_encodable_v<bool>);
  static_assert(wire_encodable_v<UniqueRepr>);
  static_assert(wire_encodable_v<std::vector<UniqueRepr>>);
  static_assert(wire_encodable_v<std::shared_ptr<const UniqueRepr>>);
  // Padding bytes are indeterminate, so a padded struct must not default
  // to raw-bytes framing — it needs FL_WIRE_FIELDS.
  static_assert(!wire_encodable_v<PaddedNoCodec>);
  static_assert(!wire_encodable_v<std::vector<PaddedNoCodec>>);
}

// ------------------------------- Payload storage classes on the wire

struct HeapHeld {  // > 24 bytes: Payload stores it behind a heap pointer
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t c = 0;
  std::uint64_t d = 0;
};
FL_WIRE_FIELDS(HeapHeld, a, b, c, d);
static_assert(!Payload::stores_inline<HeapHeld>);
static_assert(Payload::wire_encodable<HeapHeld>);

struct alignas(32) OverAligned {  // over-aligned: heap fallback too
  std::uint64_t x = 0;
};
FL_WIRE_FIELDS(OverAligned, x);
static_assert(!Payload::stores_inline<OverAligned>);
static_assert(Payload::wire_encodable<OverAligned>);

struct InlineShared {  // inline but not trivially copyable
  std::shared_ptr<std::vector<std::uint32_t>> items;
};
FL_WIRE_FIELDS(InlineShared, items);
static_assert(Payload::stores_inline<InlineShared>);
static_assert(!Payload::trivially_relocatable<InlineShared>);

struct NotEncodable {  // padded, no FL_WIRE_FIELDS: stays in-process only
  std::uint64_t a = 0;
  bool b = false;
};
static_assert(!Payload::wire_encodable<NotEncodable>);

TEST(Wire, PayloadRoundTripsEveryStorageClass) {
  wire_roundtrip_check(UniqueRepr{3, 4},
                       [](const UniqueRepr& a, const UniqueRepr& b) {
                         return a.a == b.a && a.b == b.b;
                       });
  wire_roundtrip_check(HeapHeld{1, 2, 3, 4},
                       [](const HeapHeld& a, const HeapHeld& b) {
                         return a.a == b.a && a.b == b.b && a.c == b.c &&
                                a.d == b.d;
                       });
  wire_roundtrip_check(OverAligned{77},
                       [](const OverAligned& a, const OverAligned& b) {
                         return a.x == b.x;
                       });
  wire_roundtrip_check(
      InlineShared{std::make_shared<std::vector<std::uint32_t>>(
          std::vector<std::uint32_t>{5, 10, 15})},
      [](const InlineShared& a, const InlineShared& b) {
        return (a.items == nullptr) == (b.items == nullptr) &&
               (a.items == nullptr || *a.items == *b.items);
      });
}

TEST(Wire, NonEncodablePayloadThrowsWithTypeName) {
  Payload p{NotEncodable{1, true}};
  EXPECT_FALSE(p.can_wire_encode());
  EXPECT_EQ(p.wire_type(), 0u);
  WireWriter w;
  try {
    p.wire_encode(w);
    FAIL() << "expected WireError";
  } catch (const WireError& e) {
    EXPECT_NE(std::string(e.what()).find("NotEncodable"), std::string::npos)
        << e.what();
  }
}

TEST(Wire, EmptyPayloadRefusesToEncode) {
  Payload p;
  WireWriter w;
  EXPECT_THROW(p.wire_encode(w), WireError);
}

TEST(Wire, UnknownWireIdThrows) {
  WireWriter w;
  WireReader r(w.span());
  EXPECT_THROW(Payload::wire_decode(0xF1CE0000DEAD0000ULL, r), WireError);
}

TEST(Wire, WireTypeIdsAreStablePerType) {
  Payload a{UniqueRepr{1, 2}};
  Payload b{UniqueRepr{3, 4}};
  Payload c{HeapHeld{}};
  EXPECT_NE(a.wire_type(), 0u);
  EXPECT_EQ(a.wire_type(), b.wire_type());
  EXPECT_NE(a.wire_type(), c.wire_type());
}

TEST(Wire, TruncatedStreamThrowsNotCorrupts) {
  Payload p{HeapHeld{10, 20, 30, 40}};
  WireWriter w;
  p.wire_encode(w);
  // Chop the stream one byte short of every prefix length.
  for (std::size_t len = 0; len < w.size(); ++len) {
    WireReader r(w.data(), len);
    EXPECT_THROW(Payload::wire_decode(p.wire_type(), r), WireError)
        << "prefix length " << len;
  }
}

// -------------------------------------- every protocol payload struct

TEST(WireProtocols, TopologyCollectRoundTrips) {
  baseline::topology_collect_wire_selftest();
}

TEST(WireProtocols, BaswanaSenRoundTrips) { baseline::baswana_sen_wire_selftest(); }

TEST(WireProtocols, DistributedSamplerRoundTrips) {
  core::distributed_sampler_wire_selftest();
}

TEST(WireProtocols, TLocalBroadcastRoundTrips) {
  localsim::tlocal_broadcast_wire_selftest();
}

}  // namespace
}  // namespace fl::sim
