// Tests for the utility substrate: RNG determinism and distribution sanity,
// statistics (including the log-log exponent fits the benches rely on),
// tables and option parsing.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "util/assert.hpp"
#include "util/options.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace fl::util {
namespace {

TEST(Rng, DeterministicStreams) {
  StreamFactory f(42);
  auto a = f.node_stream(7);
  auto b = f.node_stream(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DistinctKeysDistinctStreams) {
  StreamFactory f(42);
  auto a = f.node_stream(7);
  auto b = f.node_stream(8);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, TrialStreamsIndependentOfEachOther) {
  StreamFactory f(1);
  auto a = f.trial_stream(3, 1, 0);
  auto b = f.trial_stream(3, 1, 1);
  auto c = f.trial_stream(3, 2, 0);
  EXPECT_NE(a(), b());
  EXPECT_NE(a(), c());
}

TEST(Rng, BelowIsUnbiasedEnough) {
  Xoshiro256 rng(123);
  const std::uint64_t bound = 10;
  std::vector<std::size_t> hist(bound, 0);
  const std::size_t draws = 100000;
  for (std::size_t i = 0; i < draws; ++i) ++hist[rng.below(bound)];
  for (const auto h : hist) {
    EXPECT_GT(h, draws / bound * 8 / 10);
    EXPECT_LT(h, draws / bound * 12 / 10);
  }
}

TEST(Rng, Uniform01InRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, BernoulliMatchesProbability) {
  Xoshiro256 rng(11);
  std::size_t hits = 0;
  const std::size_t draws = 100000;
  for (std::size_t i = 0; i < draws; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / draws, 0.3, 0.02);
}

TEST(Rng, BernoulliEdgeCases) {
  Xoshiro256 rng(13);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
  EXPECT_FALSE(rng.bernoulli(-0.5));
  EXPECT_TRUE(rng.bernoulli(1.5));
}

TEST(Rng, UniformIntCoversRange) {
  Xoshiro256 rng(17);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(-3, 3));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.begin(), -3);
  EXPECT_EQ(*seen.rbegin(), 3);
}

TEST(Rng, SampleWithoutReplacement) {
  Xoshiro256 rng(19);
  const auto sample = sample_without_replacement(100, 10, rng);
  EXPECT_EQ(sample.size(), 10u);
  std::set<std::size_t> uniq(sample.begin(), sample.end());
  EXPECT_EQ(uniq.size(), 10u);
  for (const auto s : sample) EXPECT_LT(s, 100u);
  // Degenerate: k >= n returns everything.
  const auto all = sample_without_replacement(5, 10, rng);
  EXPECT_EQ(all.size(), 5u);
}

TEST(Rng, ShuffleIsPermutation) {
  Xoshiro256 rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto w = v;
  shuffle(w, rng);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Stats, AccumulatorBasics) {
  Accumulator acc;
  for (double x : {1.0, 2.0, 3.0, 4.0}) acc.add(x);
  EXPECT_EQ(acc.count(), 4u);
  EXPECT_DOUBLE_EQ(acc.mean(), 2.5);
  EXPECT_DOUBLE_EQ(acc.min(), 1.0);
  EXPECT_DOUBLE_EQ(acc.max(), 4.0);
  EXPECT_NEAR(acc.stddev(), std::sqrt(5.0 / 3.0), 1e-12);
  EXPECT_DOUBLE_EQ(acc.sum(), 10.0);
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25), 2.0);
  EXPECT_DOUBLE_EQ(median({2.0, 1.0}), 1.5);
}

TEST(Stats, FitLineExact) {
  const std::vector<double> x{1, 2, 3, 4};
  const std::vector<double> y{3, 5, 7, 9};  // y = 1 + 2x
  const auto fit = fit_line(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(Stats, FitLoglogRecoversExponent) {
  // y = 5 * x^{1.5} -> log-log slope 1.5. This is the measurement machinery
  // behind the E3/E6 exponent benches.
  std::vector<double> x, y;
  for (double v : {256.0, 512.0, 1024.0, 2048.0, 4096.0}) {
    x.push_back(v);
    y.push_back(5.0 * std::pow(v, 1.5));
  }
  const auto fit = fit_loglog(x, y);
  EXPECT_NEAR(fit.slope, 1.5, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-9);
}

TEST(Stats, GeometricMean) {
  EXPECT_NEAR(geometric_mean({1.0, 4.0}), 2.0, 1e-12);
  EXPECT_NEAR(geometric_mean({8.0}), 8.0, 1e-12);
}

TEST(Stats, ContractViolations) {
  EXPECT_THROW(percentile({}, 50), ContractViolation);
  EXPECT_THROW(fit_line({1}, {1}), ContractViolation);
  EXPECT_THROW(fit_loglog({1, -2}, {1, 2}), ContractViolation);
  EXPECT_THROW(geometric_mean({}), ContractViolation);
}

TEST(Table, AlignsAndCounts) {
  Table t({"name", "value"});
  t.add("alpha", 1.5);
  t.add("beta", std::size_t{42});
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cols(), 2u);
  std::ostringstream os;
  t.print(os, "demo");
  const std::string s = os.str();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("42"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.add(1, 2);
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, RejectsAritiyMismatch) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractViolation);
}

TEST(Options, ParsesAllForms) {
  const char* argv[] = {"prog", "--n", "128", "--ratio=2.5", "--verbose",
                        "--sizes=1,2,3"};
  Options opt(6, argv);
  EXPECT_EQ(opt.get_int("n", 0), 128);
  EXPECT_DOUBLE_EQ(opt.get_double("ratio", 0.0), 2.5);
  EXPECT_TRUE(opt.get_bool("verbose", false));
  const auto sizes = opt.get_int_list("sizes", {});
  ASSERT_EQ(sizes.size(), 3u);
  EXPECT_EQ(sizes[2], 3);
  EXPECT_EQ(opt.get_int("missing", 7), 7);
}

TEST(Options, RejectsMalformedInput) {
  const char* bad1[] = {"prog", "notanoption"};
  EXPECT_THROW(Options(2, bad1), ContractViolation);
  const char* bad2[] = {"prog", "--n", "abc"};
  Options opt(3, bad2);
  EXPECT_THROW(opt.get_int("n", 0), ContractViolation);
}

}  // namespace
}  // namespace fl::util
