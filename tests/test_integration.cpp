// End-to-end integration tests across modules: the full message-reduction
// pipeline, the two-stage scheme of Section 6, and cross-baseline plumbing.
#include <gtest/gtest.h>

#include <algorithm>

#include "baseline/baswana_sen.hpp"
#include "baseline/nearly_additive.hpp"
#include "baseline/topology_collect.hpp"
#include "core/config.hpp"
#include "core/distributed_sampler.hpp"
#include "core/sampler.hpp"
#include "sim/congest.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "graph/spanner_check.hpp"
#include "localsim/algorithms.hpp"
#include "localsim/tlocal_broadcast.hpp"
#include "localsim/transformer.hpp"
#include "util/rng.hpp"

namespace fl {
namespace {

using core::SamplerConfig;
using graph::EdgeId;
using graph::Graph;
using graph::NodeId;

TEST(Integration, FullPipelineDistributedSpannerThenPayloads) {
  // Distributed Sampler -> t-local broadcast over H -> local evaluation,
  // compared against reference semantics, across families.
  const auto cfg = SamplerConfig::paper_faithful(1, 2, 3);
  util::Xoshiro256 rng(5);
  for (const Graph& g : {graph::erdos_renyi_gnm(140, 900, rng),
                         graph::grid(12, 12), graph::hypercube(7)}) {
    const auto spanner = core::run_distributed_sampler(g, cfg);
    const localsim::LubyMis mis(77, 5);
    const auto reduced = localsim::run_over_spanner(
        g, mis, spanner.edges, spanner.stretch_bound, 7);
    EXPECT_EQ(reduced.outputs, localsim::run_reference(g, mis)) << g.summary();
  }
}

TEST(Integration, TwoStageSchemeReconstructsStage2Spanner) {
  // Theorem 3 second branch: use the Sampler spanner H1 to simulate an
  // off-the-shelf LOCAL spanner algorithm (our Voronoi nearly-additive
  // stage, a (r+1)-round LOCAL algorithm), then verify that every node can
  // reconstruct its stage-2 output from the information collected over H1
  // and that the union equals the direct construction.
  util::Xoshiro256 rng(7);
  const Graph g = graph::erdos_renyi_gnm(160, 1300, rng);
  const unsigned r = 2;
  const std::uint64_t stage2_seed = 11;

  const auto cfg = SamplerConfig::paper_faithful(1, 2, 13);
  const auto h1 = core::run_distributed_sampler(g, cfg);

  // Simulating a t-round algorithm needs B_G(v, t) with t = r + 1: flood
  // over H1 with radius alpha * t.
  const auto radius = static_cast<unsigned>(h1.stretch_bound) * (r + 1);
  const auto broadcast =
      localsim::run_tlocal_broadcast(g, h1.edges, radius, 17);

  // Coverage: every node collected its whole G-ball of radius r+1.
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto dist = graph::bfs_distances_bounded(g, v, r + 1);
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      if (dist[u] == graph::kUnreachable) continue;
      EXPECT_TRUE(std::binary_search(broadcast.reached[v].begin(),
                                     broadcast.reached[v].end(), u))
          << "node " << v << " missing " << u;
    }
  }

  // Each node now computes its stage-2 contribution ball-locally; the
  // union must equal the direct (centralized) stage-2 spanner.
  std::vector<bool> in_union(g.num_edges(), false);
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    for (const EdgeId e :
         baseline::nearly_additive_local_edges(g, v, r, stage2_seed))
      in_union[e] = true;
  const auto direct = baseline::build_nearly_additive(g, r, stage2_seed);
  std::vector<EdgeId> union_edges;
  for (EdgeId e = 0; e < g.num_edges(); ++e)
    if (in_union[e]) union_edges.push_back(e);
  EXPECT_EQ(union_edges, direct.edges);

  // And the stage-2 spanner must itself be usable for payload delivery.
  const localsim::LeaderElection alg(2);
  const auto final_run = localsim::run_over_spanner(
      g, alg, direct.edges, direct.stretch_bound(), 19);
  EXPECT_EQ(final_run.outputs, localsim::run_reference(g, alg));
}

TEST(Integration, SamplerSpannerFeedsBaswanaSenSimulation) {
  // Mixed pipeline: broadcast over the Sampler spanner can also carry the
  // state Baswana–Sen needs (its k-round execution reads k-balls). We
  // verify ball coverage for t = k announcements.
  util::Xoshiro256 rng(23);
  const Graph g = graph::erdos_renyi_gnm(150, 1100, rng);
  const unsigned k = 3;
  const auto cfg = SamplerConfig::paper_faithful(1, 2, 29);
  const auto h1 = core::run_distributed_sampler(g, cfg);
  const auto radius = static_cast<unsigned>(h1.stretch_bound) * k;
  const auto broadcast = localsim::run_tlocal_broadcast(g, h1.edges, radius, 31);
  for (NodeId v = 0; v < g.num_nodes(); v += 7) {
    const auto dist = graph::bfs_distances_bounded(g, v, k);
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      if (dist[u] == graph::kUnreachable) continue;
      EXPECT_TRUE(std::binary_search(broadcast.reached[v].begin(),
                                     broadcast.reached[v].end(), u));
    }
  }
}

TEST(Integration, MessageOrderingAcrossStrategiesOnDenseGraph) {
  // The paper's qualitative table on K_n: topology-collection and
  // Baswana–Sen pay Ω(m); Sampler pays Õ(n^{1+δ+ε}). Verify the ordering
  // sampler < both baselines on a dense instance.
  const Graph g = graph::complete(256);
  const auto sampler =
      core::run_distributed_sampler(g, SamplerConfig::bench_profile(2, 3, 37));
  const auto bs = baseline::run_distributed_baswana_sen(g, 3, 41);
  const auto tc = baseline::run_topology_collect(g, 3, 43);
  EXPECT_LT(sampler.stats.messages, bs.stats.messages);
  EXPECT_LT(sampler.stats.messages, tc.stats.messages);
}

TEST(Integration, AllSpannersVerifyOnTheSameInstance) {
  // One instance, three construction strategies, one oracle.
  util::Xoshiro256 rng(47);
  const Graph g = graph::erdos_renyi_gnm(220, 2600, rng);

  const auto cfg = SamplerConfig::paper_faithful(2, 2, 53);
  const auto sampler = core::build_spanner(g, cfg);
  EXPECT_EQ(graph::check_spanner_exact(g, sampler.edges, cfg.stretch_bound())
                .violations,
            0u);

  const auto bs = baseline::build_baswana_sen(g, 3, 59);
  EXPECT_EQ(
      graph::check_spanner_exact(g, bs.edges, bs.stretch_bound()).violations,
      0u);

  const auto na = baseline::build_nearly_additive(g, 2, 61);
  EXPECT_EQ(
      graph::check_spanner_exact(g, na.edges, na.stretch_bound()).violations,
      0u);
}

TEST(Integration, RoundPreservationHeadline) {
  // Question 1 of the paper: simulate in O(t) rounds. For fixed gamma the
  // broadcast phase must be within the constant alpha of native t, and the
  // sampler preprocessing must not depend on t at all.
  util::Xoshiro256 rng(67);
  const Graph g = graph::erdos_renyi_gnm(200, 2000, rng);
  auto cfg = SamplerConfig::paper_faithful(1, 2, 71);
  // Spanner-round equality across t is a fixed-timetable fact; pin LOCAL
  // delivery so an ambient FL_SIM_CONGEST (adaptive barriers) cannot make
  // the preprocessing rounds traffic-dependent.
  cfg.congest = sim::CongestConfig{};
  const localsim::BfsLayers small_t(2);
  const localsim::BfsLayers big_t(6);
  const auto run_small = localsim::run_simulated(g, small_t, cfg);
  const auto run_big = localsim::run_simulated(g, big_t, cfg);
  EXPECT_EQ(run_small.spanner_rounds, run_big.spanner_rounds);
  EXPECT_LE(run_big.broadcast_rounds,
            static_cast<std::size_t>(cfg.stretch_bound()) * 6 + 2);
}

}  // namespace
}  // namespace fl
