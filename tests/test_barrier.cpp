// Event-driven phase barriers (BarrierMode::EventDriven).
//
// The barrier is the merge-barrier silence predicate
// (Network::round_silent, surfaced as Context::network_silent): a phase
// ends on the first round in which the last merge delivered nothing and no
// message is parked in a congest carry queue. These tests pin the contract
// that makes it usable (docs/CONTRACTS.md C13):
//   * bit-identical delivery at every FL_SIM_THREADS, for binding and
//     never-binding budgets, across graph families;
//   * spanner output and message counts identical to the fixed timetable
//     (the barrier changes *when* phases start, never what they do);
//   * the predicate survives stop/resume mid-phase with live carry queues;
//   * observational tooling (FL_SIM_CHECK, FL_SIM_TRACE / contract C12)
//     stays neutral with the barrier active.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/distributed_sampler.hpp"
#include "graph/generators.hpp"
#include "sim/congest.hpp"
#include "sim/network.hpp"
#include "util/rng.hpp"

namespace fl {
namespace {

using core::BarrierMode;
using core::SamplerConfig;
using graph::EdgeId;
using graph::Graph;
using graph::NodeId;

// RAII env override (the network probes FL_SIM_* at construction).
class EnvGuard {
 public:
  EnvGuard(const char* name, const std::string& value) : name_(name) {
    setenv(name, value.c_str(), 1);
  }
  ~EnvGuard() { unsetenv(name_); }
  EnvGuard(const EnvGuard&) = delete;
  EnvGuard& operator=(const EnvGuard&) = delete;

 private:
  const char* name_;
};

Graph family_graph(const std::string& family) {
  util::Xoshiro256 rng(29);
  if (family == "dense") return graph::erdos_renyi_gnm(64, 640, rng);
  if (family == "sparse") return graph::erdos_renyi_gnm(96, 150, rng);
  return graph::ensure_connected(graph::barabasi_albert(80, 6, rng), rng);
}

SamplerConfig barrier_cfg(std::uint64_t budget) {
  auto cfg = SamplerConfig::bench_profile(2, 2, 7);
  if (budget == 0) {
    // Budget 0 spells "plain LOCAL, pinned" (a 0-word budget would never
    // deliver anything): the barrier still runs, every round is silent or
    // draining exactly as in a budgeted run, with no admission pass.
    cfg.congest = sim::CongestConfig{};
  } else {
    cfg.congest = sim::CongestConfig{budget, sim::CongestPolicy::Defer};
  }
  cfg.barriers = BarrierMode::EventDriven;
  return cfg;
}

TEST(Barrier, BitIdenticalAcrossThreadsBudgetsAndFamilies) {
  for (const char* family : {"dense", "sparse", "skewed"}) {
    const Graph g = family_graph(family);
    for (const std::uint64_t budget :
         {std::uint64_t{0}, std::uint64_t{2}, std::uint64_t{8},
          std::uint64_t{1000000000}}) {
      const auto cfg = barrier_cfg(budget);
      core::DistributedSpannerRun base;
      for (const unsigned threads : {1u, 2u, 8u}) {
        const EnvGuard env("FL_SIM_THREADS", std::to_string(threads));
        const auto run = core::run_distributed_sampler(g, cfg);
        ASSERT_TRUE(run.stats.terminated)
            << family << " budget=" << budget << " threads=" << threads;
        if (threads == 1) {
          base = run;
          continue;
        }
        const std::string at = std::string(family) +
                               " budget=" + std::to_string(budget) +
                               " threads=" + std::to_string(threads);
        EXPECT_EQ(run.edges, base.edges) << at;
        EXPECT_EQ(run.stats.rounds, base.stats.rounds) << at;
        EXPECT_EQ(run.stats.messages, base.stats.messages) << at;
        EXPECT_EQ(run.metrics.messages_per_round,
                  base.metrics.messages_per_round)
            << at;
        EXPECT_EQ(run.metrics.deferrals_total, base.metrics.deferrals_total)
            << at;
        EXPECT_EQ(run.metrics.barrier_rounds_saved,
                  base.metrics.barrier_rounds_saved)
            << at;
      }
    }
  }
}

TEST(Barrier, AdaptiveMatchesFixedTimetableOutputs) {
  // The barrier only re-times phase starts; every send is drawn from the
  // same phase-indexed RNG streams, so spanner edges, message counts and
  // the role breakdown must be bit-identical to the fixed timetable — in
  // plain LOCAL mode and at a never-binding budget (where the fixed
  // timetable is also correct). Only rounds may differ.
  util::Xoshiro256 rng(31);
  const Graph g = graph::erdos_renyi_gnm(96, 700, rng);

  auto fixed_local = SamplerConfig::bench_profile(2, 2, 11);
  fixed_local.congest = sim::CongestConfig{};
  fixed_local.barriers = BarrierMode::FixedSchedule;
  const auto want = core::run_distributed_sampler(g, fixed_local);

  for (const std::uint64_t budget : {std::uint64_t{0}, std::uint64_t{8},
                                     std::uint64_t{1000000000}}) {
    auto cfg = barrier_cfg(budget);
    cfg.seed = 11;
    const auto run = core::run_distributed_sampler(g, cfg);
    ASSERT_TRUE(run.stats.terminated) << "budget=" << budget;
    EXPECT_EQ(run.edges, want.edges) << "budget=" << budget;
    EXPECT_EQ(run.stats.messages, want.stats.messages) << "budget=" << budget;
    EXPECT_EQ(run.metrics.words_total, want.metrics.words_total)
        << "budget=" << budget;
    EXPECT_EQ(run.breakdown.queries, want.breakdown.queries)
        << "budget=" << budget;
    EXPECT_EQ(run.breakdown.tree_sessions, want.breakdown.tree_sessions)
        << "budget=" << budget;
    EXPECT_EQ(run.breakdown.center, want.breakdown.center)
        << "budget=" << budget;
    EXPECT_EQ(run.breakdown.control, want.breakdown.control)
        << "budget=" << budget;
  }
}

// Minimal phase-scheduled protocol over the raw barrier primitive: node 0
// pulses a multi-word message over every incident edge once per phase, the
// receivers ack, and everyone advances its phase counter on silence — the
// sampler's advancement rule without the sampler. Lets the test drive
// Network::run directly to stop mid-phase with a live carry backlog.
class PhasedPulse final : public sim::NodeProgram {
 public:
  PhasedPulse(NodeId self, unsigned phases) : self_(self), phases_(phases) {}

  void on_start(sim::Context&) override {}

  void on_round(sim::Context& ctx, sim::InboxView inbox) override {
    for (const auto& m : inbox) {
      if (m.header().size_hint_words > 1) {
        ctx.send(m.edge(), std::uint32_t{1}, 1);  // ack the pulse
      } else {
        ++acks_;
      }
    }
    if (ctx.network_silent() && consumed_ < phases_) {
      ++consumed_;
      if (self_ == 0) {
        for (const EdgeId e : ctx.incident_edges())
          ctx.send(e, std::uint32_t{consumed_}, /*size_hint_words=*/12);
      }
    }
  }

  bool done() const override { return consumed_ >= phases_; }

  unsigned consumed() const { return consumed_; }
  std::uint64_t acks() const { return acks_; }

 private:
  NodeId self_;
  unsigned phases_;
  unsigned consumed_ = 0;
  std::uint64_t acks_ = 0;
};

TEST(Barrier, SurvivesStopResumeMidPhaseWithLiveCarry) {
  // A 12-word pulse against a 2-word budget needs 6 banking rounds per
  // edge, so stopping the run early parks a real backlog. The resumed run
  // must replay to exactly the uninterrupted run's rounds, messages and
  // per-node phase counters — the silence predicate is engine state, not
  // per-run bookkeeping, so a pause must not perturb it.
  const Graph g = graph::star(12);
  const unsigned phases = 3;
  const sim::CongestConfig budget{2, sim::CongestPolicy::Defer};

  sim::Network full(g, sim::Knowledge::EdgeIds, 5);
  full.set_congest(budget);
  full.install_all<PhasedPulse>(phases);
  const sim::RunStats want = full.run_until_drained(phases + 4);
  ASSERT_TRUE(want.terminated);
  ASSERT_GT(full.metrics().deferrals_total, 0u)
      << "the scenario under test must actually defer";

  sim::Network half(g, sim::Knowledge::EdgeIds, 5);
  half.set_congest(budget);
  half.install_all<PhasedPulse>(phases);
  sim::RunStats stats = half.run(3);
  ASSERT_FALSE(stats.terminated);
  ASSERT_GT(half.carried_messages(), 0u) << "stop point must hold a backlog";
  stats = half.run_until_drained(phases + 4);
  ASSERT_TRUE(stats.terminated);

  EXPECT_EQ(stats.rounds, want.rounds);
  EXPECT_EQ(stats.messages, want.messages);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(half.program_as<PhasedPulse>(v).consumed(),
              full.program_as<PhasedPulse>(v).consumed())
        << "node " << v;
    EXPECT_EQ(half.program_as<PhasedPulse>(v).acks(),
              full.program_as<PhasedPulse>(v).acks())
        << "node " << v;
  }
}

TEST(Barrier, OwnershipCheckerNeutralWithBarrierActive) {
  // FL_SIM_CHECK instruments every touch but must not change one bit of
  // the run — including the silence predicate's timing (contract C7/C8
  // neutrality, now with the barrier consuming merge-barrier facts).
  util::Xoshiro256 rng(37);
  const Graph g = graph::erdos_renyi_gnm(64, 400, rng);
  const auto cfg = barrier_cfg(8);
  const auto plain = core::run_distributed_sampler(g, cfg);
  core::DistributedSpannerRun checked;
  {
    const EnvGuard env("FL_SIM_CHECK", "1");
    checked = core::run_distributed_sampler(g, cfg);
  }
  EXPECT_EQ(checked.edges, plain.edges);
  EXPECT_EQ(checked.stats.rounds, plain.stats.rounds);
  EXPECT_EQ(checked.stats.messages, plain.stats.messages);
  EXPECT_EQ(checked.metrics.deferrals_total, plain.metrics.deferrals_total);
}

TEST(Barrier, TracingNeutralWithBarrierActive) {
  // Contract C12 with the barrier active: a traced adaptive run is
  // bit-identical to the untraced one. Collect-only tracing (empty path)
  // keeps the filesystem out of the test.
  util::Xoshiro256 rng(41);
  const Graph g = graph::erdos_renyi_gnm(64, 400, rng);
  const auto cfg = barrier_cfg(8);
  const auto plain = core::run_distributed_sampler(g, cfg);
  core::DistributedSpannerRun traced;
  {
    const EnvGuard env("FL_SIM_TRACE", "");
    traced = core::run_distributed_sampler(g, cfg);
  }
  EXPECT_EQ(traced.edges, plain.edges);
  EXPECT_EQ(traced.stats.rounds, plain.stats.rounds);
  EXPECT_EQ(traced.stats.messages, plain.stats.messages);
  EXPECT_EQ(traced.metrics.messages_per_round,
            plain.metrics.messages_per_round);
  EXPECT_EQ(traced.metrics.barrier_rounds_saved,
            plain.metrics.barrier_rounds_saved);
}

TEST(Barrier, AdaptiveBeatsSlackStretchedTimetable) {
  // The headline: under a binding budget the event-driven run takes
  // strictly fewer rounds than the fixed timetable stretched by the slack
  // the old E6d table derived (ceil(2 * max_words / budget) + 1).
  util::Xoshiro256 rng(43);
  const Graph g = graph::erdos_renyi_gnm(64, 256, rng);

  auto adaptive = barrier_cfg(8);
  const auto fast = core::run_distributed_sampler(g, adaptive);
  ASSERT_TRUE(fast.stats.terminated);
  EXPECT_GT(fast.metrics.barrier_rounds_saved, 0u);

  auto fixed = SamplerConfig::bench_profile(2, 2, 7);
  fixed.congest = sim::CongestConfig{8, sim::CongestPolicy::Defer};
  fixed.barriers = BarrierMode::FixedSchedule;
  fixed.schedule_slack = static_cast<unsigned>(
      (2 * fast.metrics.max_message_words + 7) / 8 + 1);
  const auto slow = core::run_distributed_sampler(g, fixed);
  ASSERT_TRUE(slow.stats.terminated);

  EXPECT_LT(fast.stats.rounds, slow.stats.rounds);
  EXPECT_EQ(fast.edges, slow.edges)
      << "both modes must produce the same spanner";
}

}  // namespace
}  // namespace fl
