// Tests for the spanner verification oracle itself (the checker must be
// trustworthy before it can certify Theorem 9).
#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "graph/spanner_check.hpp"
#include "util/rng.hpp"

namespace fl::graph {
namespace {

TEST(SpannerCheck, FullGraphIsOneSpanner) {
  util::Xoshiro256 rng(3);
  const Graph g = erdos_renyi_gnm(60, 200, rng);
  std::vector<EdgeId> all(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) all[e] = e;
  const auto rep = check_spanner_exact(g, all, 1.0);
  EXPECT_TRUE(rep.connected);
  EXPECT_DOUBLE_EQ(rep.max_edge_stretch, 1.0);
  EXPECT_DOUBLE_EQ(rep.mean_edge_stretch, 1.0);
  EXPECT_EQ(rep.violations, 0u);
  EXPECT_EQ(rep.edges_checked, g.num_edges());
}

TEST(SpannerCheck, RingMinusOneEdge) {
  // C_n minus one edge: that edge's endpoints are n-1 apart in H.
  const NodeId n = 10;
  const Graph g = ring(n);
  std::vector<EdgeId> edges;
  for (EdgeId e = 1; e < g.num_edges(); ++e) edges.push_back(e);
  const auto rep = check_spanner_exact(g, edges, static_cast<double>(n - 2));
  EXPECT_TRUE(rep.connected);
  EXPECT_DOUBLE_EQ(rep.max_edge_stretch, static_cast<double>(n - 1));
  EXPECT_EQ(rep.violations, 1u);
}

TEST(SpannerCheck, DisconnectedSpannerFlagged) {
  const Graph g = ring(8);
  const std::vector<EdgeId> half{0, 1, 2};
  const auto rep = check_spanner_exact(g, half, 100.0);
  EXPECT_FALSE(rep.connected);
  EXPECT_GT(rep.violations, 0u);  // missing edges read as dist n
}

TEST(SpannerCheck, SpanningTreeStretchOnGrid) {
  const Graph g = grid(5, 5);
  const auto tree = spanning_forest(g);
  const auto rep = check_spanner_exact(g, tree, 0.0);
  EXPECT_TRUE(rep.connected);
  // BFS-tree stretch of a grid edge is odd and small; just sanity-check
  // bounds: at least 1, at most 2*diameter.
  EXPECT_GE(rep.max_edge_stretch, 2.0);
  EXPECT_LE(rep.max_edge_stretch, 2.0 * diameter_exact(g) + 1);
}

TEST(SpannerCheck, SampledAgreesWithExactOnMax) {
  util::Xoshiro256 rng(5);
  const Graph g = erdos_renyi_gnm(80, 240, rng);
  const auto tree = spanning_forest(g);
  const auto exact = check_spanner_exact(g, tree, 0.0);
  util::Xoshiro256 rng2(7);
  // Sampling ALL edges with a deep cap must reproduce the exact max.
  const auto sampled = check_spanner_sampled(g, tree, g.num_edges(),
                                             g.num_nodes(), rng2, 0.0);
  EXPECT_DOUBLE_EQ(sampled.max_edge_stretch, exact.max_edge_stretch);
  EXPECT_EQ(sampled.edges_checked, exact.edges_checked);
}

TEST(SpannerCheck, SampledDepthCapSaturates) {
  const NodeId n = 12;
  const Graph g = ring(n);
  std::vector<EdgeId> edges;
  for (EdgeId e = 1; e < g.num_edges(); ++e) edges.push_back(e);
  util::Xoshiro256 rng(11);
  const auto rep = check_spanner_sampled(g, edges, g.num_edges(), 3, rng, 0.0);
  // The removed edge's endpoints are 11 apart; the cap reports cap+1 = 4.
  EXPECT_DOUBLE_EQ(rep.max_edge_stretch, 4.0);
}

TEST(SpannerCheck, PairwiseStretchSaneOnTree) {
  const Graph g = star(20);
  std::vector<EdgeId> all(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) all[e] = e;
  util::Xoshiro256 rng(13);
  EXPECT_DOUBLE_EQ(sampled_pairwise_stretch(g, all, 5, rng), 1.0);
}

TEST(SpannerCheck, ValidatesEdgeSubset) {
  const Graph g = complete(5);
  EXPECT_TRUE(is_valid_edge_subset(g, std::vector<EdgeId>{0, 3, 9}));
  EXPECT_FALSE(is_valid_edge_subset(g, std::vector<EdgeId>{0, 0}));
  EXPECT_FALSE(is_valid_edge_subset(g, std::vector<EdgeId>{10}));
  EXPECT_THROW(check_spanner_exact(g, std::vector<EdgeId>{0, 0}),
               util::ContractViolation);
}

}  // namespace
}  // namespace fl::graph
