// Tests for the centralized Sampler (paper Sections 3–4).
//
// Covers: Pseudocode 1/2 mechanics, Lemma 4 (level sizes), Lemma 6
// (light/heavy dichotomy), Lemma 8 (cluster diameters), Theorem 9 (stretch)
// and Lemma 10 (size) — exact verification on test-sized graphs with
// paper-faithful constants, where "whp" means "every seed we try".
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/config.hpp"
#include "core/sampler.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "graph/spanner_check.hpp"
#include "util/rng.hpp"

namespace fl {
namespace {

using core::NodeStatus;
using core::SamplerConfig;
using graph::EdgeId;
using graph::Graph;
using graph::kInvalidNode;
using graph::NodeId;

SamplerConfig faithful(unsigned k, unsigned h, std::uint64_t seed) {
  return SamplerConfig::paper_faithful(k, h, seed);
}

TEST(Sampler, ProducesValidEdgeSubset) {
  util::Xoshiro256 rng(7);
  const Graph g = graph::erdos_renyi_gnm(200, 1500, rng);
  const auto res = core::build_spanner(g, faithful(2, 3, 42));
  EXPECT_TRUE(graph::is_valid_edge_subset(g, res.edges));
  EXPECT_LE(res.edges.size(), g.num_edges());
  EXPECT_FALSE(res.edges.empty());
}

TEST(Sampler, SpannerPreservesConnectivity) {
  util::Xoshiro256 rng(11);
  const Graph g = graph::erdos_renyi_gnm(300, 3000, rng);
  const auto res = core::build_spanner(g, faithful(2, 3, 1));
  const graph::SubgraphView h(g, res.edges);
  EXPECT_TRUE(h.preserves_connectivity());
}

TEST(Sampler, StretchWithinTheorem9Bound) {
  // Theorem 9: H is a (2·3^k − 1)-spanner whp. With paper-faithful
  // constants at this scale the failure probability is negligible.
  util::Xoshiro256 rng(13);
  for (unsigned k = 1; k <= 2; ++k) {
    const Graph g = graph::erdos_renyi_gnm(220, 2200, rng);
    const auto cfg = faithful(k, 3, 99 + k);
    const auto res = core::build_spanner(g, cfg);
    const auto rep = graph::check_spanner_exact(g, res.edges, cfg.stretch_bound());
    EXPECT_TRUE(rep.connected) << "k=" << k;
    EXPECT_EQ(rep.violations, 0u)
        << "k=" << k << " max stretch " << rep.max_edge_stretch
        << " allowed " << cfg.stretch_bound();
  }
}

TEST(Sampler, StretchHoldsOnCompleteGraph) {
  // Paper-faithful constants at n=256 exceed every degree (trial sizes are
  // Õ(n^{δ+ε})·log³n), so the asymptotic sparsification regime needs the
  // scaled bench profile: budgets/trials stay well below deg = n−1.
  const Graph g = graph::complete(256);
  const auto cfg = SamplerConfig::bench_profile(2, 3, 5);
  const auto res = core::build_spanner(g, cfg);
  const auto rep = graph::check_spanner_exact(g, res.edges, cfg.stretch_bound());
  EXPECT_EQ(rep.violations, 0u);
  // The free lunch: the spanner must be much sparser than K_n. (At n=256
  // the Õ(n^{1+δ}) bound with its log factors is ~n·logn·(k+1)·budget —
  // about 30% of K_n's edges; the gap widens with n, see bench E3.)
  EXPECT_LT(res.edges.size(), g.num_edges() / 3);
}

TEST(Sampler, StretchHoldsOnHighDiameterGraphs) {
  const Graph grid = graph::grid(15, 15);
  const auto cfg = faithful(1, 2, 3);
  const auto res = core::build_spanner(grid, cfg);
  const auto rep =
      graph::check_spanner_exact(grid, res.edges, cfg.stretch_bound());
  EXPECT_TRUE(rep.connected);
  EXPECT_EQ(rep.violations, 0u);
}

TEST(Sampler, TreeInputKeepsEveryEdge) {
  // A tree has no redundant edges; any spanner preserving connectivity
  // must contain all n−1 edges.
  util::Xoshiro256 rng(17);
  const Graph g = graph::random_tree(150, rng);
  const auto res = core::build_spanner(g, faithful(2, 3, 21));
  EXPECT_EQ(res.edges.size(), g.num_edges());
}

TEST(Sampler, Lemma4LevelSizesShrinkAsPredicted) {
  // n_j should concentrate around n^{1 − (2^j − 1)δ} (Lemma 4: within
  // factor 3/2 whp). We allow a generous factor 3 at this scale.
  util::Xoshiro256 rng(19);
  const NodeId n = 4096;
  const Graph g = graph::erdos_renyi_gnm(n, 16 * n, rng);
  const auto cfg = faithful(2, 3, 7);
  const auto res = core::build_spanner(g, cfg);
  const double delta = cfg.delta();
  ASSERT_EQ(res.trace.levels.size(), cfg.k + 1);
  for (unsigned j = 1; j <= cfg.k; ++j) {
    const double predicted =
        std::pow(static_cast<double>(n),
                 1.0 - (std::exp2(static_cast<double>(j)) - 1.0) * delta);
    const double measured = res.trace.levels[j].virtual_nodes;
    EXPECT_LE(measured, 3.0 * predicted) << "level " << j;
    EXPECT_GE(measured, predicted / 3.0) << "level " << j;
  }
}

TEST(Sampler, Lemma6EveryNodeLightOrHeavy) {
  util::Xoshiro256 rng(23);
  const Graph g = graph::erdos_renyi_gnm(500, 6000, rng);
  const auto res = core::build_spanner(g, faithful(2, 3, 31));
  for (const auto& lt : res.trace.levels)
    EXPECT_EQ(lt.neither, 0u) << "level " << lt.level;
}

TEST(Sampler, Lemma6FinalLevelAllLight) {
  util::Xoshiro256 rng(29);
  const Graph g = graph::erdos_renyi_gnm(500, 8000, rng);
  const auto res = core::build_spanner(g, faithful(2, 3, 37));
  const auto& last = res.trace.levels.back();
  EXPECT_EQ(last.heavy, 0u);
  EXPECT_EQ(last.neither, 0u);
  EXPECT_EQ(last.light, last.virtual_nodes);
}

TEST(Sampler, Lemma8ClusterDiametersBounded) {
  // Every level-j cluster must induce a subgraph of H with diameter
  // <= 3^j − 1.
  util::Xoshiro256 rng(31);
  const Graph g = graph::erdos_renyi_gnm(400, 4000, rng);
  const auto cfg = faithful(2, 3, 41);
  const auto res = core::build_spanner(g, cfg);
  const graph::SubgraphView h(g, res.edges);

  for (unsigned j = 1; j < res.trace.phys_cluster_at.size(); ++j) {
    const auto& assign = res.trace.phys_cluster_at[j];
    const double bound = SamplerConfig::pow3(j) - 1.0;
    // Group physical nodes by cluster.
    std::vector<std::vector<NodeId>> members;
    for (NodeId p = 0; p < g.num_nodes(); ++p) {
      if (assign[p] == kInvalidNode) continue;
      if (assign[p] >= members.size()) members.resize(assign[p] + 1);
      members[assign[p]].push_back(p);
    }
    for (const auto& cluster : members) {
      if (cluster.size() <= 1) continue;
      // BFS in H from one member; all others must be within `bound` AND
      // reachable through H (we additionally check the path stays inside
      // the cluster implicitly via the distance bound).
      const auto dist = h.bfs_distances(cluster.front());
      for (const NodeId p : cluster) {
        ASSERT_NE(dist[p], graph::kUnreachable);
        EXPECT_LE(dist[p], bound) << "level " << j;
      }
    }
  }
}

TEST(Sampler, Lemma10SizeWithinBound) {
  // |S| <= Õ(n^{1+δ}); with the explicit constants of the proof the level-j
  // contribution is bounded by 2h · budget_j · trial-additions. We check
  // the concrete bound |S| <= 2h·(k+1)·c²·n^{1+δ}·log³n — loose but
  // explicit — plus the sanity |S| <= m.
  util::Xoshiro256 rng(37);
  const NodeId n = 1024;
  const Graph g = graph::erdos_renyi_gnm(n, 20 * n, rng);
  const auto cfg = faithful(2, 3, 43);
  const auto res = core::build_spanner(g, cfg);
  const double logn = std::log2(static_cast<double>(n));
  const double explicit_bound = 2.0 * cfg.h * (cfg.k + 1) * cfg.c * cfg.c *
                                std::pow(n, 1.0 + cfg.delta()) * logn * logn *
                                logn;
  EXPECT_LE(static_cast<double>(res.edges.size()), explicit_bound);
  EXPECT_LE(res.edges.size(), g.num_edges());
}

TEST(Sampler, DeterministicGivenSeed) {
  util::Xoshiro256 rng(41);
  const Graph g = graph::erdos_renyi_gnm(300, 2400, rng);
  const auto a = core::build_spanner(g, faithful(2, 3, 77));
  const auto b = core::build_spanner(g, faithful(2, 3, 77));
  EXPECT_EQ(a.edges, b.edges);
}

TEST(Sampler, DifferentSeedsDifferentSpanners) {
  // Needs the scaled profile: with paper constants at this n, trial sizes
  // exceed all degrees, sampling degenerates to exhaustive querying, and
  // the output is seed-independent (correctly so).
  const Graph g = graph::complete(256);
  const auto a = core::build_spanner(g, SamplerConfig::bench_profile(2, 3, 1));
  const auto b = core::build_spanner(g, SamplerConfig::bench_profile(2, 3, 2));
  EXPECT_NE(a.edges, b.edges);
}

TEST(Sampler, QueryVolumeSublinearInDensity) {
  // The conceptual headline (Question 1): message volume (≈ query edges)
  // must not scale with m. Going from average degree 16 to the complete
  // graph multiplies density by ~32; queries must grow far slower.
  util::Xoshiro256 rng(47);
  const NodeId n = 512;
  const Graph sparse = graph::erdos_renyi_gnm(n, 8 * n, rng);
  const Graph dense = graph::complete(n);
  const auto cfg = SamplerConfig::bench_profile(2, 3, 3);
  const auto rs = core::build_spanner(sparse, cfg);
  const auto rd = core::build_spanner(dense, cfg);
  const double qs = static_cast<double>(rs.trace.total_query_edges());
  const double qd = static_cast<double>(rd.trace.total_query_edges());
  const double density_ratio = static_cast<double>(dense.num_edges()) /
                               static_cast<double>(sparse.num_edges());
  EXPECT_LT(qd / qs, 0.5 * density_ratio) << "queries scaled with density";
}

TEST(Sampler, ForceLightCompletionRemovesNeitherNodes) {
  // Under deliberately starved constants some nodes finish neither light
  // nor heavy; the completion flag must patch all of them.
  util::Xoshiro256 rng(53);
  const Graph g = graph::erdos_renyi_gnm(600, 12000, rng);
  SamplerConfig starved = SamplerConfig::bench_profile(2, 2, 5);
  starved.c = 0.05;  // far below "sufficiently large"
  const auto raw = core::build_spanner(g, starved);
  starved.force_light_completion = true;
  const auto fixed = core::build_spanner(g, starved);
  std::size_t raw_neither = 0;
  for (const auto& lt : raw.trace.levels) raw_neither += lt.neither;
  std::size_t fixed_neither = 0;
  for (const auto& lt : fixed.trace.levels) fixed_neither += lt.neither;
  EXPECT_EQ(fixed_neither, 0u);
  // And with completion the stretch guarantee is restored unconditionally.
  const auto rep =
      graph::check_spanner_exact(g, fixed.edges, starved.stretch_bound());
  EXPECT_EQ(rep.violations, 0u);
  (void)raw_neither;  // may or may not be zero; informational
}

TEST(Sampler, PeelingAblationStillCoversSimpleGraphs) {
  // On a *simple* graph level 0 has no parallel edges, so disabling peeling
  // only slows discovery; correctness-critical coverage happens because
  // blocks are single edges at level 0. Higher levels may degrade — the
  // flag exists for the E2 ablation bench; here we only require the run to
  // complete and produce a valid subset.
  util::Xoshiro256 rng(59);
  const Graph g = graph::erdos_renyi_gnm(200, 1000, rng);
  SamplerConfig cfg = faithful(2, 3, 11);
  cfg.peel_parallel_edges = false;
  const auto res = core::build_spanner(g, cfg);
  EXPECT_TRUE(graph::is_valid_edge_subset(g, res.edges));
}

TEST(Sampler, RunSamplingStepLightOnLowDegree) {
  // A ring has degree 2 everywhere: every node must finish light and add
  // both its edges.
  const Graph ring = graph::ring(100);
  const auto m = graph::Multigraph::from_graph(ring);
  std::vector<NodeId> rep(m.num_nodes());
  for (NodeId v = 0; v < m.num_nodes(); ++v) rep[v] = v;
  const auto cfg = faithful(1, 2, 13);
  const auto outcomes = core::run_sampling_step(m, cfg, 100.0, 0, rep);
  for (const auto& out : outcomes) {
    EXPECT_EQ(out.status, NodeStatus::Light);
    EXPECT_EQ(out.f_edges.size(), 2u);
  }
}

TEST(Sampler, RunSamplingStepPeelsParallelEdges) {
  // Craft a two-node multigraph with heavy multiplicity: one trial must
  // peel the whole block, so the node ends light with a single F edge.
  std::vector<graph::Multigraph::MEdge> edges;
  for (EdgeId i = 0; i < 50; ++i) edges.push_back({0, 1, i});
  const graph::Multigraph m(2, std::move(edges));
  std::vector<NodeId> rep{0, 1};
  const auto cfg = faithful(1, 2, 17);
  const auto outcomes = core::run_sampling_step(m, cfg, 1000.0, 0, rep);
  for (const auto& out : outcomes) {
    EXPECT_EQ(out.status, NodeStatus::Light);
    EXPECT_EQ(out.f_edges.size(), 1u);
  }
}

TEST(Sampler, MultiplicityBiasPeeledAcrossTrials) {
  // The Section 1.3 scenario: node 0 has one neighbour with massive edge
  // multiplicity and many singleton neighbours. The iterative trials must
  // peel the big block and still find all the singletons (node 0 light).
  std::vector<graph::Multigraph::MEdge> edges;
  EdgeId id = 0;
  for (EdgeId i = 0; i < 200; ++i) edges.push_back({0, 1, id++});  // big block
  const NodeId extra = 30;
  for (NodeId u = 2; u < 2 + extra; ++u) edges.push_back({0, u, id++});
  const graph::Multigraph m(2 + extra, std::move(edges));
  std::vector<NodeId> rep(m.num_nodes());
  for (NodeId v = 0; v < m.num_nodes(); ++v) rep[v] = v;
  const auto cfg = faithful(2, 3, 19);
  const auto outcomes = core::run_sampling_step(m, cfg, 4096.0, 0, rep);
  EXPECT_EQ(outcomes[0].status, NodeStatus::Light);
  EXPECT_EQ(outcomes[0].f_edges.size(), 1u + extra);
}

TEST(Sampler, HierarchyTraceShapesConsistent) {
  util::Xoshiro256 rng(61);
  const Graph g = graph::erdos_renyi_gnm(256, 2048, rng);
  const auto cfg = faithful(2, 2, 23);
  const auto res = core::build_spanner(g, cfg);
  ASSERT_EQ(res.trace.levels.size(), cfg.k + 1);
  ASSERT_EQ(res.trace.phys_cluster_at.size(), cfg.k + 1);
  // Level 0 starts with the physical graph.
  EXPECT_EQ(res.trace.levels[0].virtual_nodes, g.num_nodes());
  EXPECT_EQ(res.trace.levels[0].virtual_edges, g.num_edges());
  for (unsigned j = 0; j < cfg.k; ++j) {
    const auto& lt = res.trace.levels[j];
    EXPECT_EQ(lt.light + lt.heavy + lt.neither, lt.virtual_nodes);
    EXPECT_EQ(lt.centers + lt.clustered + lt.unclustered, lt.virtual_nodes);
    // Next level's node count equals this level's center count.
    EXPECT_EQ(res.trace.levels[j + 1].virtual_nodes, lt.centers);
  }
}

TEST(Sampler, StretchBoundFieldMatchesConfig) {
  util::Xoshiro256 rng(67);
  const Graph g = graph::erdos_renyi_gnm(100, 400, rng);
  for (unsigned k = 1; k <= 3; ++k) {
    const auto cfg = faithful(k, 2, 29);
    const auto res = core::build_spanner(g, cfg);
    EXPECT_DOUBLE_EQ(res.stretch_bound, 2.0 * SamplerConfig::pow3(k) - 1.0);
  }
}

TEST(Sampler, RejectsBadParameters) {
  util::Xoshiro256 rng(71);
  const Graph g = graph::erdos_renyi_gnm(64, 256, rng);
  SamplerConfig cfg = faithful(2, 3, 1);
  cfg.k = 0;
  EXPECT_THROW(core::build_spanner(g, cfg), util::ContractViolation);
  cfg = faithful(2, 3, 1);
  cfg.h = 0;
  EXPECT_THROW(core::build_spanner(g, cfg), util::ContractViolation);
  cfg = faithful(2, 3, 1);
  cfg.h = 1000;  // > log n
  EXPECT_THROW(core::build_spanner(g, cfg), util::ContractViolation);
}

}  // namespace
}  // namespace fl
