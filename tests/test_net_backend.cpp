// Cross-backend determinism tests for the TCP delivery backend — contract
// C14 (docs/CONTRACTS.md): for any fixed seed and congest config, RunStats,
// Metrics, per-node delivery logs and the pinned golden trace are
// bit-identical whether delivery runs in-process or across forked shard
// processes over loopback sockets. The TcpBackend verifies itself against
// the in-process oracle every round, so these tests double as an
// end-to-end exercise of the wire codecs, the frame channels and the
// round-sync barrier under real traffic.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <tuple>
#include <vector>

#include "graph/generators.hpp"
#include "net/tcp_backend.hpp"
#include "sim/backend.hpp"
#include "sim/congest.hpp"
#include "sim/network.hpp"
#include "sim/wire.hpp"
#include "trace_hash.hpp"
#include "util/assert.hpp"

namespace fl::sim {
namespace {

using graph::EdgeId;
using graph::Graph;
using graph::NodeId;

/// Save/restore FL_SIM_BACKEND around tests that mutate it, so the suite
/// behaves identically whether or not CI launched it under tcp:<S>.
class ScopedBackendEnv {
 public:
  ScopedBackendEnv() {
    const char* cur = std::getenv("FL_SIM_BACKEND");
    had_ = cur != nullptr;
    if (had_) saved_ = cur;
  }
  ~ScopedBackendEnv() {
    if (had_) {
      setenv("FL_SIM_BACKEND", saved_.c_str(), 1);
    } else {
      unsetenv("FL_SIM_BACKEND");
    }
  }

 private:
  bool had_ = false;
  std::string saved_;
};

// ----------------------------------------------------- config & selection

TEST(BackendConfig, DefaultsToInProcess) {
  const ScopedBackendEnv guard;
  unsetenv("FL_SIM_BACKEND");
  EXPECT_EQ(default_backend_config().kind, BackendKind::InProcess);
  setenv("FL_SIM_BACKEND", "inproc", 1);
  EXPECT_EQ(default_backend_config().kind, BackendKind::InProcess);
  setenv("FL_SIM_BACKEND", "in-process", 1);
  EXPECT_EQ(default_backend_config().kind, BackendKind::InProcess);
}

TEST(BackendConfig, ParsesTcpShardCounts) {
  const ScopedBackendEnv guard;
  setenv("FL_SIM_BACKEND", "tcp:4", 1);
  const BackendConfig cfg = default_backend_config();
  EXPECT_EQ(cfg.kind, BackendKind::Tcp);
  EXPECT_EQ(cfg.tcp_shards, 4u);
}

TEST(BackendConfig, RejectsMalformedValues) {
  const ScopedBackendEnv guard;
  for (const char* bad : {"tcp", "tcp:", "tcp:0", "tcp:33", "tcp:two", "udp:2",
                          "tcp:2x"}) {
    setenv("FL_SIM_BACKEND", bad, 1);
    EXPECT_THROW(default_backend_config(), util::ContractViolation)
        << "accepted FL_SIM_BACKEND=" << bad;
  }
}

TEST(BackendConfig, NetworkPicksUpEnvAndNamesItself) {
  const ScopedBackendEnv guard;
  setenv("FL_SIM_BACKEND", "tcp:3", 1);
  const Graph g = graph::ring(6);
  Network net(g, Knowledge::EdgeIds, 1);
  EXPECT_EQ(net.backend_config().kind, BackendKind::Tcp);
  EXPECT_EQ(net.backend_config().tcp_shards, 3u);
  EXPECT_EQ(net.backend().name(), "tcp:3");
  unsetenv("FL_SIM_BACKEND");
  Network inproc(g, Knowledge::EdgeIds, 1);
  EXPECT_EQ(inproc.backend().name(), "in-process");
}

TEST(BackendConfig, SetBackendLockedOnceStarted) {
  const Graph g = graph::ring(4);
  Network net(g, Knowledge::EdgeIds, 1);
  net.install([](NodeId) {
    class Silent final : public NodeProgram {
     public:
      void on_start(Context&) override {}
      void on_round(Context&, InboxView) override {}
      bool done() const override { return true; }
    };
    return std::make_unique<Silent>();
  });
  net.run(2);
  EXPECT_THROW(net.set_backend({BackendKind::Tcp, 2}),
               util::ContractViolation);
}

// -------------------------------------------------- cross-backend chatter

/// The determinism workload from test_exec.cpp: full per-node delivery
/// logs under pseudo-random sends that exercise both send-resolution
/// paths. Payloads are std::uint64_t — wire-encodable by default.
class ChatterProbe final : public NodeProgram {
 public:
  ChatterProbe(NodeId self, unsigned active, std::uint32_t words = 1)
      : self_(self), active_(active), words_(words) {}

  std::vector<std::tuple<std::size_t, NodeId, EdgeId, std::uint64_t>> heard;

  void on_start(Context& ctx) override { maybe_send(ctx); }

  void on_round(Context& ctx, InboxView inbox) override {
    for (const auto& m : inbox) {
      EXPECT_EQ(m.to(), self_);
      heard.emplace_back(ctx.round(), m.from(), m.edge(),
                         payload_as<std::uint64_t>(m));
    }
    maybe_send(ctx);
  }

  bool done() const override { return true; }

 private:
  void maybe_send(Context& ctx) {
    if (ctx.round() >= active_) return;
    for (const EdgeId e : ctx.incident_edges()) {
      if (ctx.rng().bernoulli(0.25)) continue;
      ctx.send(e, ctx.rng()(), words_);
    }
  }

  NodeId self_;
  unsigned active_;
  std::uint32_t words_;
};

struct ChatterResult {
  RunStats stats;
  Metrics metrics;
  std::vector<std::vector<std::tuple<std::size_t, NodeId, EdgeId,
                                     std::uint64_t>>> logs;
};

ChatterResult run_chatter(const Graph& g, const BackendConfig& backend,
                          const CongestConfig& congest = {},
                          std::uint32_t words = 1) {
  Network net(g, Knowledge::EdgeIds, 7);
  net.set_backend(backend);
  net.set_congest(congest);
  net.install_all<ChatterProbe>(8u, words);
  ChatterResult res;
  res.stats = net.run(600);
  EXPECT_TRUE(res.stats.terminated);
  res.metrics = net.metrics();
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    res.logs.push_back(net.program_as<ChatterProbe>(v).heard);
  return res;
}

void expect_identical(const ChatterResult& a, const ChatterResult& b) {
  EXPECT_EQ(a.stats.rounds, b.stats.rounds);
  EXPECT_EQ(a.stats.messages, b.stats.messages);
  EXPECT_EQ(a.stats.terminated, b.stats.terminated);
  EXPECT_EQ(a.metrics.messages_total, b.metrics.messages_total);
  EXPECT_EQ(a.metrics.words_total, b.metrics.words_total);
  EXPECT_EQ(a.metrics.deferrals_total, b.metrics.deferrals_total);
  EXPECT_EQ(a.metrics.carry_peak, b.metrics.carry_peak);
  EXPECT_EQ(a.metrics.messages_per_round, b.metrics.messages_per_round);
  EXPECT_EQ(a.metrics.messages_per_node, b.metrics.messages_per_node);
  EXPECT_EQ(a.logs, b.logs);
}

TEST(TcpBackend, BitIdenticalToInProcessOnEveryFamily) {
  // The C14 matrix: dense (ER), sparse (tree) and skewed (power-law)
  // graphs, each at 1, 2 and 4 shard processes — RunStats, Metrics and
  // every per-node delivery log must equal the in-process run. (The
  // backend also self-verifies per round; a divergence would have thrown
  // BackendMismatch long before these EXPECTs see it.)
  util::Xoshiro256 dense_rng(123), sparse_rng(124), skew_rng(125);
  const Graph dense = graph::erdos_renyi_gnm(61, 240, dense_rng);
  const Graph sparse = graph::random_tree(67, sparse_rng);
  const Graph skewed = graph::barabasi_albert(56, 5, skew_rng);
  for (const Graph* g : {&dense, &sparse, &skewed}) {
    const auto oracle = run_chatter(*g, {BackendKind::InProcess});
    EXPECT_GT(oracle.stats.messages, 0u);
    for (const unsigned shards : {1u, 2u, 4u}) {
      const auto tcp = run_chatter(*g, {BackendKind::Tcp, shards});
      expect_identical(oracle, tcp);
    }
  }
}

TEST(TcpBackend, BitIdenticalUnderBindingCongestBudget) {
  // A binding CONGEST budget makes the carry queues and the per-edge
  // banking logic load-bearing: deferred messages must survive rounds of
  // re-admission identically in every shard process.
  util::Xoshiro256 rng(321);
  const Graph g = graph::erdos_renyi_gnm(48, 180, rng);
  CongestConfig congest;
  congest.words_per_edge_per_round = 2;
  congest.policy = CongestPolicy::Defer;
  // 3-word messages against a 2-word budget: every message needs a round
  // of banked capacity, so the carry queues stay busy for the whole run.
  const auto oracle =
      run_chatter(g, {BackendKind::InProcess}, congest, /*words=*/3);
  EXPECT_GT(oracle.metrics.deferrals_total, 0u)
      << "budget not binding — the congest leg of C14 is not exercised";
  for (const unsigned shards : {2u, 4u}) {
    const auto tcp =
        run_chatter(g, {BackendKind::Tcp, shards}, congest, /*words=*/3);
    expect_identical(oracle, tcp);
  }
}

TEST(TcpBackend, MatchesThePinnedGoldenTrace) {
  // The same pinned hash that anchors the thread-count matrix
  // (test_exec.cpp) — the strongest form of C14: a tcp:2 run reproduces
  // the exact event stream the in-process engine has certified since the
  // seed, bit for bit.
  util::Xoshiro256 rng(123);
  const Graph g = graph::erdos_renyi_gnm(97, 400, rng);
  const auto run = run_chatter(g, {BackendKind::Tcp, 2});
  fl::testing::TraceHash h;
  h.u64(run.stats.rounds).u64(run.stats.messages);
  h.u64(run.metrics.words_total);
  for (const auto c : run.metrics.messages_per_round) h.u64(c);
  for (const auto c : run.metrics.messages_per_node) h.u64(c);
  for (const auto& log : run.logs) {
    h.u64(log.size());
    for (const auto& [round, from, edge, payload] : log)
      h.u64(round).u64(from).u64(edge).u64(payload);
  }
  EXPECT_EQ(h.value(), 0xb76783e3caeb7eb4ull)
      << "tcp:2 golden trace diverged from the in-process anchor: 0x"
      << std::hex << h.value();
}

// ------------------------------------------------------- engine edge cases

/// Node 0 sends four numbered payloads over the single edge in round 0.
class Burst final : public NodeProgram {
 public:
  explicit Burst(NodeId self) : self_(self) {}
  std::vector<unsigned> got;

  void on_start(Context& ctx) override {
    if (self_ == 0)
      for (unsigned i = 1; i <= 4; ++i) ctx.send(ctx.incident_edges()[0], i);
  }
  void on_round(Context&, InboxView inbox) override {
    for (const auto& m : inbox) got.push_back(payload_as<unsigned>(m));
  }
  bool done() const override { return true; }

 private:
  NodeId self_;
};

TEST(TcpBackend, PreRunSendsArriveFirstInShardProcesses) {
  // Pre-run sends live in lane 0 before the backend exists; each shard
  // process must deliver its own share ahead of round-0 traffic, exactly
  // as the in-process merge does.
  const Graph g = graph::path(2);
  for (const unsigned shards : {1u, 2u}) {
    Network net(g, Knowledge::EdgeIds, 1);
    net.set_backend({BackendKind::Tcp, shards});
    net.install_all<Burst>();  // node 0 sends 1..4 in on_start
    Context pre(net, 1);
    pre.send(pre.incident_edges()[0], unsigned{99});
    const RunStats stats = net.run(5);
    EXPECT_TRUE(stats.terminated);
    EXPECT_EQ(stats.messages, 5u);
    EXPECT_EQ(net.program_as<Burst>(0).got, (std::vector<unsigned>{99}));
    EXPECT_EQ(net.program_as<Burst>(1).got,
              (std::vector<unsigned>{1, 2, 3, 4}));
  }
}

TEST(TcpBackend, SteppedRunsKeepShardProcessesInSync) {
  // Layered protocols drive the network through step(); every step
  // releases a round to the shard processes and must resume cleanly.
  util::Xoshiro256 rng(31);
  const Graph g = graph::erdos_renyi_gnm(40, 120, rng);
  auto run_stepped = [&](const BackendConfig& backend) {
    Network net(g, Knowledge::EdgeIds, 3);
    net.set_backend(backend);
    net.install_all<ChatterProbe>(6u);
    net.step(4);
    net.step(4);
    net.run(60);
    std::vector<std::vector<std::tuple<std::size_t, NodeId, EdgeId,
                                       std::uint64_t>>> logs;
    for (NodeId v = 0; v < g.num_nodes(); ++v)
      logs.push_back(net.program_as<ChatterProbe>(v).heard);
    return std::pair{net.metrics().messages_total, std::move(logs)};
  };
  EXPECT_EQ(run_stepped({BackendKind::InProcess}),
            run_stepped({BackendKind::Tcp, 2}));
}

TEST(TcpBackend, MoreShardsThanNodesClampsToSingletons) {
  const Graph g = graph::ring(3);
  const auto oracle = run_chatter(g, {BackendKind::InProcess});
  const auto tcp = run_chatter(g, {BackendKind::Tcp, 32});
  expect_identical(oracle, tcp);
}

TEST(TcpBackend, StrictCongestViolationNamesTheBackend) {
  // Burst pushes 4 words through a 2-word Strict budget in one round; the
  // violation must cite the delivering backend so a cross-backend repro
  // names the transport it happened on.
  const Graph g = graph::path(2);
  Network net(g, Knowledge::EdgeIds, 1);
  net.set_backend({BackendKind::Tcp, 2});
  CongestConfig congest;
  congest.words_per_edge_per_round = 2;
  congest.policy = CongestPolicy::Strict;
  net.set_congest(congest);
  net.install_all<Burst>();
  try {
    net.run(5);
    FAIL() << "Strict overflow did not throw";
  } catch (const CongestViolation& e) {
    EXPECT_NE(std::string(e.what()).find("delivery backend: tcp:2"),
              std::string::npos)
        << "violation does not name the backend: " << e.what();
  }
}

// A payload with internal padding and no FL_WIRE_FIELDS declaration: it
// works in-process (payloads move as values) but cannot cross a socket.
struct Unencodable {
  std::uint8_t tag = 1;
  std::uint64_t value = 2;  // 7 padding bytes before this field
};
static_assert(!wire_encodable_v<Unencodable>,
              "test premise: Unencodable must have no wire codec");

class SendsUnencodable final : public NodeProgram {
 public:
  explicit SendsUnencodable(NodeId) {}
  void on_start(Context& ctx) override {
    if (ctx.self() == 0) ctx.send(ctx.incident_edges()[0], Unencodable{});
  }
  void on_round(Context&, InboxView) override {}
  bool done() const override { return true; }
};

TEST(TcpBackend, NonEncodablePayloadFailsFastWithTheTypeName) {
  // In-process: fine. Over sockets: the parent's encodability pre-pass
  // must throw WireError naming the offending type, not let the shard
  // processes die into an opaque channel EOF.
  const Graph g = graph::path(2);
  {
    Network net(g, Knowledge::EdgeIds, 1);
    net.set_backend({});  // pin in-process: an ambient FL_SIM_BACKEND=tcp
                          // would (correctly) reject this payload too
    net.install_all<SendsUnencodable>();
    EXPECT_TRUE(net.run(3).terminated);
  }
  Network net(g, Knowledge::EdgeIds, 1);
  net.set_backend({BackendKind::Tcp, 2});
  net.install_all<SendsUnencodable>();
  try {
    net.run(3);
    FAIL() << "non-encodable payload crossed the tcp backend";
  } catch (const WireError& e) {
    EXPECT_NE(std::string(e.what()).find("Unencodable"), std::string::npos)
        << "WireError does not name the payload type: " << e.what();
  }
}

TEST(TcpBackend, TcpStatsExposedOnlyForTcpRuns) {
  const Graph g = graph::ring(8);
  {
    Network net(g, Knowledge::EdgeIds, 2);
    net.set_backend({});  // pin in-process regardless of FL_SIM_BACKEND
    net.install_all<ChatterProbe>(4u);
    net.run(60);
    EXPECT_EQ(fl::net::tcp_stats(net.backend()), nullptr);
  }
  Network net(g, Knowledge::EdgeIds, 2);
  net.set_backend({BackendKind::Tcp, 2});
  net.install_all<ChatterProbe>(4u);
  const RunStats stats = net.run(60);
  const fl::net::TcpStats* ts = fl::net::tcp_stats(net.backend());
  ASSERT_NE(ts, nullptr);
  EXPECT_EQ(ts->rounds, stats.rounds);
  EXPECT_GT(ts->wire_bytes, 0u);
}

}  // namespace
}  // namespace fl::sim
