// Fine-grained tests for the distributed Sampler's phase schedule — the
// deterministic timetable that realizes Theorem 11's round bound — plus the
// logging/timer utility surface.
#include <gtest/gtest.h>

#include <map>

#include "core/config.hpp"
#include "core/distributed_sampler.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace fl {
namespace {

using core::PhaseSpec;
using core::SamplerConfig;
using core::Schedule;
using Kind = core::PhaseSpec::Kind;

TEST(Schedule, LevelStructureComplete) {
  const auto cfg = SamplerConfig::bench_profile(2, 3, 1);
  const auto sched = Schedule::build(cfg);
  // Per level: 3 init phases + 5 per trial; post-level block (7 phases) on
  // all but the last level.
  std::map<unsigned, std::size_t> per_level;
  for (const auto& p : sched.phases) ++per_level[p.level];
  ASSERT_EQ(per_level.size(), cfg.k + 1u);
  const std::size_t trials = cfg.trials_per_level();
  for (unsigned j = 0; j <= cfg.k; ++j) {
    const std::size_t expected = 3 + 5 * trials + (j < cfg.k ? 7 : 0);
    EXPECT_EQ(per_level[j], expected) << "level " << j;
  }
}

TEST(Schedule, PhaseOrderWithinTrial) {
  const auto cfg = SamplerConfig::bench_profile(1, 2, 1);
  const auto sched = Schedule::build(cfg);
  // Every QuerySend is immediately followed by QueryRespond, then collect,
  // then apply — the causality chain queries -> replies -> decisions.
  for (std::size_t i = 0; i + 3 < sched.phases.size(); ++i) {
    if (sched.phases[i].kind != Kind::QuerySend) continue;
    EXPECT_EQ(sched.phases[i + 1].kind, Kind::QueryRespond);
    EXPECT_EQ(sched.phases[i + 2].kind, Kind::TrialCollectEcho);
    EXPECT_EQ(sched.phases[i + 3].kind, Kind::TrialApplyFlood);
    EXPECT_EQ(sched.phases[i].length, 1u);
    EXPECT_EQ(sched.phases[i + 1].length, 1u);
  }
}

TEST(Schedule, WindowsMatchClusterDiameterBound) {
  // Flood/echo phases at level j are allotted W_j = 3^j − 1 rounds — the
  // Lemma 8 cluster-tree height bound.
  const auto cfg = SamplerConfig::bench_profile(3, 2, 1);
  const auto sched = Schedule::build(cfg);
  for (const auto& p : sched.phases) {
    const auto w = static_cast<std::size_t>(
        SamplerConfig::pow3(p.level)) - 1;
    switch (p.kind) {
      case Kind::FloodSetup:
      case Kind::GatherEcho:
      case Kind::FloodBoundary:
      case Kind::TrialRateFlood:
      case Kind::TrialCollectEcho:
      case Kind::TrialApplyFlood:
      case Kind::CenterFlood:
      case Kind::CenterCollectEcho:
      case Kind::JoinFlood:
        EXPECT_EQ(p.length, w) << "level " << p.level;
        break;
      case Kind::QuerySend:
      case Kind::QueryRespond:
      case Kind::CenterQuery:
      case Kind::CenterRespond:
      case Kind::AttachNotify:
      case Kind::DeathAnnounce:
        EXPECT_EQ(p.length, 1u);
        break;
      case Kind::TrialGatherEcho:
        break;  // unused by the current protocol
    }
  }
}

TEST(Schedule, TrialIndicesSequential) {
  const auto cfg = SamplerConfig::bench_profile(2, 4, 1);
  const auto sched = Schedule::build(cfg);
  std::map<unsigned, int> next_trial;  // expected next index per level
  for (const auto& p : sched.phases) {
    if (p.kind != Kind::TrialRateFlood) continue;
    EXPECT_EQ(p.trial, next_trial[p.level]) << "level " << p.level;
    ++next_trial[p.level];
  }
  for (unsigned j = 0; j <= cfg.k; ++j)
    EXPECT_EQ(next_trial[j], static_cast<int>(cfg.trials_per_level()));
}

TEST(Schedule, GrowsGeometricallyWithK) {
  std::size_t prev = 0;
  for (unsigned k = 1; k <= 4; ++k) {
    const auto sched = Schedule::build(SamplerConfig::bench_profile(k, 2, 1));
    EXPECT_GT(sched.total_rounds, prev);
    prev = sched.total_rounds;
  }
}

TEST(Log, LevelFilterWorks) {
  const auto saved = util::log_level();
  util::set_log_level(util::LogLevel::Error);
  EXPECT_EQ(util::log_level(), util::LogLevel::Error);
  FL_LOG(Debug) << "this line must be filtered";  // no crash, no output
  util::set_log_level(saved);
}

TEST(Timer, MeasuresElapsedTime) {
  util::Timer t;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + i * 0.5;
  EXPECT_GE(t.seconds(), 0.0);
  EXPECT_GE(t.millis(), t.seconds());  // millis = seconds * 1000
  t.reset();
  EXPECT_LT(t.seconds(), 1.0);
}

}  // namespace
}  // namespace fl
