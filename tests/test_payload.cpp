// Tests for the small-buffer payload engine: inline vs. heap storage
// classes, move-only ownership, cast diagnostics, and a pinned golden
// delivery trace covering every payload category.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "graph/generators.hpp"
#include "sim/network.hpp"
#include "sim/payload.hpp"
#include "trace_hash.hpp"

namespace fl::sim {
namespace {

using graph::EdgeId;
using graph::Graph;
using graph::NodeId;

// ------------------------------------------------------ storage classes

struct TrivialSmall {  // inline, memcpy-relocatable
  std::uint64_t a = 0;
  std::uint32_t b = 0;
};
static_assert(Payload::stores_inline<TrivialSmall>);
static_assert(Payload::trivially_relocatable<TrivialSmall>);
FL_WIRE_FIELDS(TrivialSmall, a, b);  // padded: field-wise, never raw bytes

struct SharedSmall {  // inline, but needs real move/destroy calls
  std::shared_ptr<int> p;
};
static_assert(Payload::stores_inline<SharedSmall>);
// If the arena ever started memcpy-relocating a shared_ptr-owning type,
// this is the assert that must fire.
static_assert(!Payload::trivially_relocatable<SharedSmall>);
FL_WIRE_FIELDS(SharedSmall, p);

struct Oversized {  // > kInlineSize: heap fallback
  std::uint64_t words[5] = {0, 0, 0, 0, 0};
};
static_assert(sizeof(Oversized) > Payload::kInlineSize);
static_assert(!Payload::stores_inline<Oversized>);
// No padding: the raw-bytes default codec applies, no declaration needed.
static_assert(wire_encodable_v<Oversized>);

struct Overaligned {  // alignment the inline buffer cannot honour
  alignas(32) std::uint64_t v = 0;
};
static_assert(!Payload::stores_inline<Overaligned>);
FL_WIRE_FIELDS(Overaligned, v);  // alignment padding must not ship

struct OversizedOwner {  // heap fallback that owns a resource
  std::shared_ptr<int> p;
  std::uint64_t pad[4] = {0, 0, 0, 0};
};
static_assert(!Payload::stores_inline<OversizedOwner>);
// Hand-written codec: FL_WIRE_FIELDS cannot spell a C-array field.
inline void fl_wire_put(WireWriter& w, const OversizedOwner& v) {
  wire_put(w, v.p);
  for (const auto x : v.pad) w.u64(x);
}
inline OversizedOwner fl_wire_get(WireReader& r, WireTag<OversizedOwner>) {
  OversizedOwner v;
  wire_get_into(r, v.p);
  for (auto& x : v.pad) x = r.u64();
  return v;
}
static_assert(wire_encodable_v<OversizedOwner>);

TEST(Payload, InlineRoundTrip) {
  Payload p(TrivialSmall{41, 7});
  ASSERT_TRUE(p.has_value());
  const auto* v = p.get_if<TrivialSmall>();
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->a, 41u);
  EXPECT_EQ(v->b, 7u);
  EXPECT_EQ(p.get_if<int>(), nullptr);  // wrong type: null, no throw
}

TEST(Payload, HeapFallbackRoundTrip) {
  Payload p(Oversized{{1, 2, 3, 4, 5}});
  const auto* v = p.get_if<Oversized>();
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->words[4], 5u);

  Payload q(Overaligned{99});
  const auto* w = q.get_if<Overaligned>();
  ASSERT_NE(w, nullptr);
  EXPECT_EQ(w->v, 99u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(w) % alignof(Overaligned), 0u);
}

TEST(Payload, MoveTransfersOwnershipPerStorageClass) {
  // Inline non-trivial: the shared_ptr must survive the relocation and
  // the moved-from payload must be empty, not a double owner.
  auto token = std::make_shared<int>(5);
  Payload a{SharedSmall{token}};
  EXPECT_EQ(token.use_count(), 2);
  Payload b(std::move(a));
  EXPECT_FALSE(a.has_value());
  EXPECT_EQ(token.use_count(), 2);
  EXPECT_EQ(b.get_if<SharedSmall>()->p.get(), token.get());

  // Heap-held: relocation moves the owning pointer, and destruction of
  // the new holder releases the resource exactly once.
  {
    Payload c{OversizedOwner{token, {}}};
    EXPECT_EQ(token.use_count(), 3);
    Payload d(std::move(c));
    EXPECT_FALSE(c.has_value());
    EXPECT_EQ(token.use_count(), 3);
    d = Payload{TrivialSmall{}};  // move-assign over it: releases the owner
    EXPECT_EQ(token.use_count(), 2);
  }
  b.reset();
  EXPECT_EQ(token.use_count(), 1);
}

TEST(Payload, MoveOnlyPayloadType) {
  Payload p(std::make_unique<int>(123));
  auto* held = p.get_if<std::unique_ptr<int>>();
  ASSERT_NE(held, nullptr);
  EXPECT_EQ(**held, 123);
  Payload q(std::move(p));
  EXPECT_FALSE(p.has_value());
  EXPECT_EQ(**q.get_if<std::unique_ptr<int>>(), 123);
  // Take the value back out through the mutable accessor.
  std::unique_ptr<int> out = std::move(*q.get_if<std::unique_ptr<int>>());
  EXPECT_EQ(*out, 123);
}

// ------------------------------------------------------ cast diagnostics

TEST(Payload, CrossTypeCastNamesBothTypes) {
  const Payload p(TrivialSmall{});
  try {
    (void)payload_as<Oversized>(p);
    FAIL() << "expected BadPayloadCast";
  } catch (const BadPayloadCast& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("Oversized"), std::string::npos) << what;
    EXPECT_NE(what.find("TrivialSmall"), std::string::npos) << what;
  }
}

TEST(Payload, EmptyPayloadCastSaysEmpty) {
  const Payload p{};  // empty
  EXPECT_EQ(p.type(), nullptr);
  try {
    (void)payload_as<TrivialSmall>(p);
    FAIL() << "expected BadPayloadCast";
  } catch (const BadPayloadCast& e) {
    EXPECT_NE(std::string(e.what()).find("empty"), std::string::npos);
  }
  EXPECT_EQ(payload_if<TrivialSmall>(p), nullptr);
}

TEST(Payload, PayloadIfMatchesAndDispatches) {
  const Payload p(SharedSmall{std::make_shared<int>(9)});
  EXPECT_EQ(payload_if<TrivialSmall>(p), nullptr);
  const auto* s = payload_if<SharedSmall>(p);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(*s->p, 9);
}

// The zipped view is two pointers; a view (and references through it) must
// stay valid exactly as long as the planes it points into are unmutated.
TEST(Payload, MessageViewReadsBothPlanes) {
  MessagePlanes planes;
  MessageHeader h;
  h.edge = 7;
  h.from = 1;
  h.to = 2;
  h.size_hint_words = 3;
  planes.push_back(h, Payload(TrivialSmall{11, 22}));
  const MessageView m = planes.view(0);
  EXPECT_EQ(m.edge(), 7u);
  EXPECT_EQ(m.from(), 1u);
  EXPECT_EQ(m.to(), 2u);
  EXPECT_EQ(m.size_hint_words(), 3u);
  EXPECT_EQ(&m.header(), &planes.header(0));
  EXPECT_EQ(&m.payload(), &planes.payload(0));
  EXPECT_EQ(payload_as<TrivialSmall>(m).a, 11u);
}

// --------------------------------------- delivery golden trace (pinned)

/// Sends one payload of every storage class per active round — trivial
/// inline, shared inline, heap oversized — over edges in *reverse*
/// incidence order (defeating the send-side cursor fast path on purpose),
/// and logs everything received in order.
class MixedPayloadProbe final : public NodeProgram {
 public:
  MixedPayloadProbe(NodeId self, unsigned active) : self_(self), active_(active) {}

  std::vector<std::tuple<std::size_t, NodeId, std::string>> heard;

  void on_start(Context& ctx) override { maybe_send(ctx); }

  void on_round(Context& ctx, InboxView inbox) override {
    // (Tags built via += — GCC 12's -Wrestrict false-positives on
    // char* + std::string temporaries under -Werror.)
    auto tag = [](char kind, std::uint64_t v) {
      std::string s(1, kind);
      s += std::to_string(v);
      return s;
    };
    for (const auto& m : inbox) {
      if (const auto* t = payload_if<TrivialSmall>(m)) {
        heard.emplace_back(ctx.round(), m.from(), tag('t', t->a));
      } else if (const auto* s = payload_if<SharedSmall>(m)) {
        heard.emplace_back(ctx.round(), m.from(),
                           tag('s', static_cast<std::uint64_t>(*s->p)));
      } else {
        const auto& o = payload_as<Oversized>(m);
        heard.emplace_back(ctx.round(), m.from(), tag('o', o.words[0]));
      }
    }
    maybe_send(ctx);
  }

  bool done() const override { return true; }

 private:
  void maybe_send(Context& ctx) {
    if (ctx.round() >= active_) return;
    const auto edges = ctx.incident_edges();
    for (std::size_t i = edges.size(); i-- > 0;) {
      const auto r = static_cast<std::uint64_t>(ctx.round());
      switch ((i + self_) % 3) {
        case 0: ctx.send(edges[i], TrivialSmall{r, self_}); break;
        case 1:
          ctx.send(edges[i],
                   SharedSmall{std::make_shared<int>(static_cast<int>(r))});
          break;
        default: ctx.send(edges[i], Oversized{{r, 0, 0, 0, 0}}); break;
      }
    }
  }

  NodeId self_;
  unsigned active_;
};

/// Golden-trace anchor for payload delivery. Formerly the flat-vs-legacy
/// A/B over every storage class (the legacy engine certified the flat
/// arena bit-identical before it was deleted); the pinned hash freezes
/// that certified behaviour — per-node logs of (round, from, decoded
/// payload tag) in delivery order, plus RunStats/Metrics.
TEST(PayloadGoldenTrace, AllStorageClassesMatchPinnedTrace) {
  util::Xoshiro256 rng(7);
  const Graph g = graph::erdos_renyi_gnm(32, 96, rng);

  Network net(g, Knowledge::EdgeIds, 3);
  net.install_all<MixedPayloadProbe>(4u);
  const RunStats stats = net.run(40);
  EXPECT_TRUE(stats.terminated);
  EXPECT_EQ(stats.rounds, 5u);
  EXPECT_EQ(stats.messages, 768u);

  const Metrics& m = net.metrics();
  testing::TraceHash h;
  h.u64(stats.rounds).u64(stats.messages).u64(m.words_total);
  for (const auto c : m.messages_per_round) h.u64(c);
  for (const auto c : m.messages_per_node) h.u64(c);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto& heard = net.program_as<MixedPayloadProbe>(v).heard;
    h.u64(heard.size());
    for (const auto& [round, from, tag] : heard)
      h.u64(round).u64(from).str(tag);
  }
  EXPECT_EQ(h.value(), 0x013a6c5fba1fb3e4ull)
      << "payload golden trace moved: 0x" << std::hex << h.value();
}

/// Regression: a payload that outlives its round (the arena recycles slots
/// by move-assignment) must be destroyed exactly once.
TEST(Payload, ArenaRecyclingReleasesOwnersExactlyOnce) {
  auto token = std::make_shared<int>(0);
  {
    const Graph g = graph::path(2);
    Network net(g, Knowledge::EdgeIds, 1);
    net.install([&](NodeId v) {
      class P final : public NodeProgram {
       public:
        P(NodeId self, std::shared_ptr<int> tok)
            : self_(self), tok_(std::move(tok)) {}
        void on_start(Context& ctx) override {
          if (self_ == 0)
            for (int i = 0; i < 3; ++i)
              ctx.send(ctx.incident_edges()[0], SharedSmall{tok_});
        }
        void on_round(Context& ctx, InboxView inbox) override {
          for (const auto& m : inbox)  // echo once, then quiesce
            if (self_ == 1 && ctx.round() == 1)
              ctx.send(m.edge(), SharedSmall{payload_as<SharedSmall>(m).p});
        }
        bool done() const override { return true; }

       private:
        NodeId self_;
        std::shared_ptr<int> tok_;
      };
      return std::make_unique<P>(v, token);
    });
    const auto stats = net.run(10);
    EXPECT_TRUE(stats.terminated);
    EXPECT_EQ(stats.messages, 6u);
  }
  // Network destroyed: every in-arena/in-flight copy must be gone.
  EXPECT_EQ(token.use_count(), 1);
}

}  // namespace
}  // namespace fl::sim
