// Tests for SamplerConfig: the paper's parameter arithmetic (δ, ε, p_j,
// budgets, trial sizes, stretch bound) and validation.
#include <gtest/gtest.h>

#include <cmath>

#include "core/config.hpp"
#include "util/assert.hpp"

namespace fl::core {
namespace {

TEST(Config, DeltaMatchesFormula) {
  for (unsigned k = 1; k <= 5; ++k) {
    SamplerConfig cfg = SamplerConfig::bench_profile(k, 2, 1);
    EXPECT_DOUBLE_EQ(cfg.delta(),
                     1.0 / (std::exp2(static_cast<double>(k) + 1) - 1.0));
  }
  // Paper's headline example: k=2 -> delta = 1/7.
  EXPECT_DOUBLE_EQ(SamplerConfig::bench_profile(2, 2, 1).delta(), 1.0 / 7.0);
}

TEST(Config, EpsilonIsOneOverH) {
  for (unsigned h = 1; h <= 8; ++h)
    EXPECT_DOUBLE_EQ(SamplerConfig::bench_profile(2, h, 1).epsilon(),
                     1.0 / h);
}

TEST(Config, StretchBoundIsTwoTimesPow3Minus1) {
  EXPECT_DOUBLE_EQ(SamplerConfig::bench_profile(1, 2, 1).stretch_bound(), 5.0);
  EXPECT_DOUBLE_EQ(SamplerConfig::bench_profile(2, 2, 1).stretch_bound(), 17.0);
  EXPECT_DOUBLE_EQ(SamplerConfig::bench_profile(3, 2, 1).stretch_bound(), 53.0);
}

TEST(Config, Pow3) {
  EXPECT_DOUBLE_EQ(SamplerConfig::pow3(0), 1.0);
  EXPECT_DOUBLE_EQ(SamplerConfig::pow3(4), 81.0);
}

TEST(Config, CenterProbabilityDecreasing) {
  const SamplerConfig cfg = SamplerConfig::paper_faithful(3, 3, 1);
  const double n = 4096;
  double prev = 1.0;
  for (unsigned j = 0; j < 3; ++j) {
    const double p = cfg.center_prob(n, j);
    EXPECT_GT(p, 0.0);
    EXPECT_LT(p, prev);
    // p_j = n^{-2^j δ}.
    EXPECT_NEAR(p, std::pow(n, -std::exp2(static_cast<double>(j)) * cfg.delta()),
                1e-12);
    prev = p;
  }
}

TEST(Config, BudgetAndTrialSizeGrowWithLevel) {
  const SamplerConfig cfg = SamplerConfig::paper_faithful(3, 3, 1);
  const double n = 4096;
  for (unsigned j = 0; j + 1 < 3; ++j) {
    EXPECT_LT(cfg.budget(n, j), cfg.budget(n, j + 1));
    EXPECT_LT(cfg.trial_size(n, j), cfg.trial_size(n, j + 1));
    // Trials always oversample the budget by the n^ε·log² factor.
    EXPECT_GT(cfg.trial_size(n, j), cfg.budget(n, j));
  }
}

TEST(Config, PaperProfileUsesLogCubed) {
  const double n = 1024;  // log2 n = 10
  const auto paper = SamplerConfig::paper_faithful(2, 2, 1);
  const auto bench = SamplerConfig::bench_profile(2, 2, 1);
  // Same exponents, different polylog: paper trial size ~log³, bench ~log.
  const double ratio =
      static_cast<double>(paper.trial_size(n, 0)) /
      static_cast<double>(bench.trial_size(n, 0));
  // c_paper²/c_bench² = 4, log² = 100 -> ratio ≈ 400.
  EXPECT_NEAR(ratio, 400.0, 40.0);
}

TEST(Config, TrialsPerLevelIsTwoH) {
  EXPECT_EQ(SamplerConfig::bench_profile(2, 5, 1).trials_per_level(), 10u);
}

TEST(Config, MessageAndSizeExponents) {
  const auto cfg = SamplerConfig::bench_profile(2, 4, 1);
  EXPECT_DOUBLE_EQ(cfg.size_exponent(), 1.0 + 1.0 / 7.0);
  EXPECT_DOUBLE_EQ(cfg.message_exponent(), 1.0 + 1.0 / 7.0 + 0.25);
}

TEST(Config, ValidationRejectsOutOfRange) {
  SamplerConfig cfg = SamplerConfig::bench_profile(2, 2, 1);
  EXPECT_NO_THROW(cfg.validate(1024));
  EXPECT_THROW(cfg.validate(1), util::ContractViolation);
  cfg.k = 0;
  EXPECT_THROW(cfg.validate(1024), util::ContractViolation);
  cfg = SamplerConfig::bench_profile(2, 2, 1);
  cfg.c = 0.0;
  EXPECT_THROW(cfg.validate(1024), util::ContractViolation);
  cfg = SamplerConfig::bench_profile(9, 2, 1);  // k >> log log n
  EXPECT_THROW(cfg.validate(1024), util::ContractViolation);
}

TEST(Config, DescribeMentionsParameters) {
  const auto cfg = SamplerConfig::bench_profile(2, 3, 1);
  const std::string s = cfg.describe();
  EXPECT_NE(s.find("k=2"), std::string::npos);
  EXPECT_NE(s.find("h=3"), std::string::npos);
}

}  // namespace
}  // namespace fl::core
