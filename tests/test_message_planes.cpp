// Tests for the structure-of-arrays message storage (sim/message.hpp) and
// the engine guarantees built on it: sticky plane capacity, zero-allocation
// steady-state rounds (LOCAL and budgeted), arena reuse across stop/resume
// with carry queues, and the out-of-core edge-list loader's equivalence to
// the in-memory builder.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "sim/network.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace fl::sim {
namespace {

using graph::EdgeId;
using graph::Graph;
using graph::NodeId;

MessageHeader header(EdgeId e, NodeId from, NodeId to, std::uint32_t words = 1) {
  MessageHeader h;
  h.edge = e;
  h.from = from;
  h.to = to;
  h.size_hint_words = words;
  return h;
}

// ------------------------------------------------------- plane container

TEST(MessagePlanes, CapacityIsStickyAcrossClearAndResize) {
  MessagePlanes planes;
  planes.reserve(64);
  const std::size_t cap = planes.capacity();
  const std::uint64_t allocs = planes.allocations();
  EXPECT_GE(cap, 64u);
  for (int round = 0; round < 5; ++round) {
    for (std::uint32_t i = 0; i < 64; ++i)
      planes.push_back(header(i, 0, 1), Payload(i));
    planes.clear();
  }
  planes.resize(64);
  planes.resize(8);
  EXPECT_EQ(planes.capacity(), cap);
  EXPECT_EQ(planes.allocations(), allocs) << "steady reuse must not grow";
}

TEST(MessagePlanes, AllocationsCountsGrowthEventsOnce) {
  MessagePlanes planes;
  EXPECT_EQ(planes.allocations(), 0u);
  planes.push_back(header(0, 0, 1), Payload(1u));
  EXPECT_GE(planes.allocations(), 1u);
  const std::uint64_t after_first = planes.allocations();
  // Fill to capacity without growing: the counter must not move.
  while (planes.size() < planes.capacity())
    planes.push_back(header(0, 0, 1), Payload(1u));
  EXPECT_EQ(planes.allocations(), after_first);
  planes.push_back(header(0, 0, 1), Payload(1u));  // forces one growth
  EXPECT_EQ(planes.allocations(), after_first + 1);
}

TEST(MessagePlanes, SwapExchangesBuffersAndCounters) {
  MessagePlanes a;
  MessagePlanes b;
  a.push_back(header(7, 1, 2), Payload(11u));
  const std::uint64_t a_allocs = a.allocations();
  a.swap(b);
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(a.allocations(), 0u);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(b.header(0).edge, 7u);
  EXPECT_EQ(b.allocations(), a_allocs);
  EXPECT_EQ(payload_as<std::uint32_t>(b.view(0)), 11u);
}

TEST(MessagePlanes, RangeZipsBothPlanesInOrder) {
  MessagePlanes planes;
  for (std::uint32_t i = 0; i < 8; ++i)
    planes.push_back(header(i, i, i + 1), Payload(100 + i));
  const InboxView inbox = planes.range(2, 6);
  ASSERT_EQ(inbox.size(), 4u);
  EXPECT_FALSE(inbox.empty());
  EXPECT_EQ(inbox.front().edge(), 2u);
  std::uint32_t expect = 2;
  for (const auto& m : inbox) {
    EXPECT_EQ(m.edge(), expect);
    EXPECT_EQ(m.from(), expect);
    EXPECT_EQ(m.to(), expect + 1);
    EXPECT_EQ(payload_as<std::uint32_t>(m), 100 + expect);
    ++expect;
  }
  EXPECT_EQ(expect, 6u);
}

// A view is a pair of pointers into the planes: in-place mutation of the
// planes is visible through an existing view (the flip side of the
// documented rule that views die when the planes reallocate or rebuild).
TEST(MessagePlanes, ViewReflectsInPlaceMutation) {
  MessagePlanes planes;
  planes.reserve(2);
  planes.push_back(header(1, 0, 1), Payload(5u));
  const MessageView m = planes.view(0);
  planes.header(0).edge = 9;
  planes.payload(0) = Payload(6u);
  EXPECT_EQ(m.edge(), 9u);
  EXPECT_EQ(payload_as<std::uint32_t>(m), 6u);
}

// --------------------------------------------- zero-allocation steady state

/// Flood driver: every node re-sends one word over every incident edge for
/// `rounds` send-rounds.
class Flood final : public NodeProgram {
 public:
  Flood(NodeId self, unsigned rounds, std::uint32_t words = 1,
        bool burst = false)
      : self_(self), rounds_(rounds), words_(words), burst_(burst) {}

  void on_start(Context& ctx) override {
    send_all(ctx);
    if (burst_) send_all(ctx);  // extra round-0 copy: a permanent backlog
    sent_ = 1;
  }
  void on_round(Context& ctx, InboxView inbox) override {
    for (const auto& m : inbox) sum_ += payload_as<NodeId>(m);
    if (sent_ < rounds_) {
      send_all(ctx);
      ++sent_;
    }
  }
  bool done() const override { return sent_ >= rounds_; }

  std::uint64_t sum() const { return sum_; }

 private:
  void send_all(Context& ctx) {
    for (const EdgeId e : ctx.incident_edges()) ctx.send(e, self_, words_);
  }
  NodeId self_;
  unsigned rounds_;
  std::uint32_t words_ = 1;
  bool burst_ = false;
  unsigned sent_ = 0;
  std::uint64_t sum_ = 0;
};

Graph test_graph(NodeId n = 400) {
  util::Xoshiro256 rng(99);
  return graph::erdos_renyi_gnm(n, 4ull * n, rng);
}

TEST(PlaneReuse, SteadyStateRoundsAllocateNothing) {
  const Graph g = test_graph();
  Network net(g, Knowledge::EdgeIds, 7);
  net.install_all<Flood>(12u);
  // Two rounds of warm-up reach the steady frontier (every round after the
  // first delivers exactly 2m messages); from there the sticky-capacity
  // contract says no plane may ever grow again.
  net.step(3);
  const std::uint64_t warm = net.debug_plane_allocations();
  net.step(8);
  EXPECT_EQ(net.debug_plane_allocations(), warm)
      << "a steady-state LOCAL round reallocated a message plane";
}

TEST(PlaneReuse, SteadyStateBudgetedRoundsAllocateNothing) {
  const Graph g = test_graph();
  Network net(g, Knowledge::EdgeIds, 7);
  // Injection rate == service rate (1 word per edge per round, both ways),
  // plus a round-0 burst the budget can never catch up on: every round
  // defers one message per directed edge into the carry queue and admits
  // one out of it — a true steady state with the carry path *active*.
  net.set_congest({1, CongestPolicy::Defer});
  net.install_all<Flood>(16u, 1u, /*burst=*/true);
  net.step(4);
  const std::uint64_t warm = net.debug_plane_allocations();
  ASSERT_GT(net.carried_messages(), 0u)
      << "the steady state under test must keep the carry queues non-empty";
  net.step(8);
  ASSERT_GT(net.carried_messages(), 0u);
  EXPECT_EQ(net.debug_plane_allocations(), warm)
      << "a steady-state budgeted round reallocated a carry/admitted plane";
}

// --------------------------------------------------- stop/resume with carry

TEST(PlaneReuse, StopResumeWithCarryQueuesMatchesUninterruptedRun) {
  const Graph g = test_graph(200);
  const unsigned rounds = 6;
  const std::uint64_t budget = 1;

  auto flood_sum = [](Network& net) {
    std::uint64_t s = 0;
    for (NodeId v = 0; v < net.graph().num_nodes(); ++v)
      s += net.program_as<Flood>(v).sum();
    return s;
  };

  // Reference: one uninterrupted budgeted run.
  Network full(g, Knowledge::EdgeIds, 3);
  full.set_congest({budget, CongestPolicy::Defer});
  full.install_all<Flood>(rounds, 3u);  // 3 words vs 1-word budget: backlog
  const RunStats want = full.run_until_drained(64);
  ASSERT_TRUE(want.terminated);

  // Same run stopped mid-backlog (carry queues non-empty) and resumed: the
  // carry planes must survive the pause intact and keep their storage.
  Network half(g, Knowledge::EdgeIds, 3);
  half.set_congest({budget, CongestPolicy::Defer});
  half.install_all<Flood>(rounds, 3u);
  RunStats stats = half.run(4);
  ASSERT_FALSE(stats.terminated);
  ASSERT_GT(half.carried_messages(), 0u) << "stop point must hold a backlog";
  const std::uint64_t paused_allocs = half.debug_plane_allocations();
  stats = half.run_until_drained(64);
  ASSERT_TRUE(stats.terminated);

  EXPECT_EQ(stats.rounds, want.rounds);
  EXPECT_EQ(stats.messages, want.messages);
  EXPECT_EQ(flood_sum(half), flood_sum(full));
  EXPECT_EQ(half.debug_plane_allocations(), paused_allocs)
      << "resume must reuse the paused run's planes, not reallocate";
}

// ------------------------------------------- determinism across thread/budget

TEST(PlaneReuse, RunIsBitIdenticalAcrossThreadsAndBudgets) {
  const Graph g = test_graph();
  for (const std::uint64_t budget : {std::uint64_t{0}, std::uint64_t{2}}) {
    RunStats base;
    std::uint64_t base_sum = 0;
    std::vector<std::uint64_t> base_per_round;
    for (const unsigned threads : {1u, 2u, 8u}) {
      Network net(g, Knowledge::EdgeIds, 11);
      net.set_parallelism({threads});
      if (budget > 0) net.set_congest({budget, CongestPolicy::Defer});
      net.install_all<Flood>(6u);
      const RunStats stats = net.run_until_drained(64);
      ASSERT_TRUE(stats.terminated);
      std::uint64_t sum = 0;
      for (NodeId v = 0; v < g.num_nodes(); ++v)
        sum += net.program_as<Flood>(v).sum();
      if (threads == 1) {
        base = stats;
        base_sum = sum;
        base_per_round = net.metrics().messages_per_round;
      } else {
        EXPECT_EQ(stats.rounds, base.rounds) << "threads=" << threads;
        EXPECT_EQ(stats.messages, base.messages) << "threads=" << threads;
        EXPECT_EQ(sum, base_sum) << "threads=" << threads;
        EXPECT_EQ(net.metrics().messages_per_round, base_per_round)
            << "threads=" << threads;
      }
    }
  }
}

// ------------------------------------------------- out-of-core loader

TEST(StreamedLoader, RoundTripsIdenticallyToInMemoryReader) {
  util::Xoshiro256 rng(5);
  const Graph g = graph::erdos_renyi_gnm(300, 1200, rng);
  std::ostringstream os;
  graph::write_edge_list(os, g);
  const std::string text = os.str();

  std::istringstream in_mem(text);
  const Graph a = graph::read_edge_list(in_mem);
  // A tiny chunk forces many builder flushes — the path a 10M-edge file
  // takes, shrunk to test size.
  std::istringstream in_stream(text);
  graph::EdgeListStreamOptions opt;
  opt.chunk_edges = 7;
  opt.reserve_edges = g.num_edges();
  const Graph b = graph::read_edge_list_streamed(in_stream, opt);

  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (EdgeId e = 0; e < a.num_edges(); ++e) {
    EXPECT_EQ(a.endpoints(e).u, b.endpoints(e).u);
    EXPECT_EQ(a.endpoints(e).v, b.endpoints(e).v);
  }
  for (NodeId v = 0; v < a.num_nodes(); ++v) {
    const auto ia = a.incident(v);
    const auto ib = b.incident(v);
    ASSERT_EQ(ia.size(), ib.size()) << "node " << v;
    for (std::size_t i = 0; i < ia.size(); ++i) {
      EXPECT_EQ(ia[i].to, ib[i].to);
      EXPECT_EQ(ia[i].edge, ib[i].edge);
    }
  }
}

TEST(StreamedLoader, StreamBuilderMatchesBuilderCsr) {
  util::Xoshiro256 rng(6);
  const Graph via_builder = graph::random_tree(128, rng);
  Graph::StreamBuilder sb(via_builder.num_nodes());
  sb.reserve_edges(via_builder.num_edges());
  for (const auto& e : via_builder.edges()) sb.add_edge(e.u, e.v);
  const Graph via_stream = std::move(sb).build();
  ASSERT_EQ(via_stream.num_edges(), via_builder.num_edges());
  for (NodeId v = 0; v < via_builder.num_nodes(); ++v) {
    const auto ia = via_builder.incident(v);
    const auto ib = via_stream.incident(v);
    ASSERT_EQ(ia.size(), ib.size());
    for (std::size_t i = 0; i < ia.size(); ++i) {
      EXPECT_EQ(ia[i].to, ib[i].to);
      EXPECT_EQ(ia[i].edge, ib[i].edge);
    }
  }
}

TEST(StreamedLoader, RequiresNodeCountBeforeEdges) {
  std::istringstream is("e 0 1\nn 4\n");
  EXPECT_THROW((void)graph::read_edge_list_streamed(is),
               util::ContractViolation);
}

TEST(StreamedLoader, RejectsRangeAndSelfLoopLikeTheBuilder) {
  {
    std::istringstream is("n 4\ne 0 4\n");
    EXPECT_THROW((void)graph::read_edge_list_streamed(is),
                 util::ContractViolation);
  }
  {
    std::istringstream is("n 4\ne 2 2\n");
    EXPECT_THROW((void)graph::read_edge_list_streamed(is),
                 util::ContractViolation);
  }
}

}  // namespace
}  // namespace fl::sim
