// Tests for the workload generators: shape invariants, connectivity
// patching and determinism, parameterized across the whole family list.
#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace fl::graph {
namespace {

TEST(Generators, GnmExactEdgeCountAndConnectivity) {
  util::Xoshiro256 rng(3);
  const Graph g = erdos_renyi_gnm(100, 300, rng);
  EXPECT_GE(g.num_edges(), 300u);          // patching may add a few
  EXPECT_LE(g.num_edges(), 300u + 99u);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, GnmDenseRegime) {
  util::Xoshiro256 rng(5);
  const Graph g = erdos_renyi_gnm(40, 700, rng);  // > half of max 780
  EXPECT_EQ(g.num_edges(), 700u);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, GnpEdgeCountConcentrates) {
  util::Xoshiro256 rng(7);
  const NodeId n = 300;
  const double p = 0.1;
  const Graph g = erdos_renyi_gnp(n, p, rng);
  const double expected = p * n * (n - 1) / 2.0;
  EXPECT_GT(static_cast<double>(g.num_edges()), 0.8 * expected);
  EXPECT_LT(static_cast<double>(g.num_edges()), 1.2 * expected);
}

TEST(Generators, GnpExtremes) {
  util::Xoshiro256 rng(11);
  const Graph empty_p = erdos_renyi_gnp(20, 0.0, rng);
  EXPECT_TRUE(is_connected(empty_p));  // pure patching output: a tree
  EXPECT_EQ(empty_p.num_edges(), 19u);
  const Graph full = erdos_renyi_gnp(20, 1.0, rng);
  EXPECT_EQ(full.num_edges(), 190u);
}

TEST(Generators, CompleteAndBipartite) {
  const Graph k = complete(10);
  EXPECT_EQ(k.num_edges(), 45u);
  const Graph kb = complete_bipartite(3, 4);
  EXPECT_EQ(kb.num_edges(), 12u);
  EXPECT_EQ(kb.num_nodes(), 7u);
  EXPECT_TRUE(is_connected(kb));
}

TEST(Generators, GridShape) {
  const Graph g = grid(4, 5);
  EXPECT_EQ(g.num_nodes(), 20u);
  EXPECT_EQ(g.num_edges(), 4u * 4 + 5u * 3);  // 31
  EXPECT_EQ(diameter_exact(g), 7u);           // (4-1)+(5-1)
}

TEST(Generators, TorusIsRegular) {
  const Graph g = torus(4, 4);
  for (NodeId v = 0; v < g.num_nodes(); ++v) EXPECT_EQ(g.degree(v), 4u);
  EXPECT_EQ(g.num_edges(), 32u);
}

TEST(Generators, HypercubeShape) {
  const Graph g = hypercube(5);
  EXPECT_EQ(g.num_nodes(), 32u);
  EXPECT_EQ(g.num_edges(), 80u);  // n*d/2
  for (NodeId v = 0; v < g.num_nodes(); ++v) EXPECT_EQ(g.degree(v), 5u);
  EXPECT_EQ(diameter_exact(g), 5u);
}

TEST(Generators, RingPathStar) {
  EXPECT_EQ(ring(12).num_edges(), 12u);
  EXPECT_EQ(diameter_exact(ring(12)), 6u);
  EXPECT_EQ(path(12).num_edges(), 11u);
  EXPECT_EQ(diameter_exact(path(12)), 11u);
  EXPECT_EQ(star(12).num_edges(), 11u);
  EXPECT_EQ(diameter_exact(star(12)), 2u);
}

TEST(Generators, RandomTreeIsTree) {
  util::Xoshiro256 rng(13);
  const Graph g = random_tree(200, rng);
  EXPECT_EQ(g.num_edges(), 199u);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, BarabasiAlbertShape) {
  util::Xoshiro256 rng(17);
  const NodeId n = 300, attach = 3;
  const Graph g = barabasi_albert(n, attach, rng);
  EXPECT_EQ(g.num_nodes(), n);
  // Seed clique C(4,2)=6 plus attach per added node.
  EXPECT_EQ(g.num_edges(), 6u + (n - attach - 1) * attach);
  EXPECT_TRUE(is_connected(g));
  // Preferential attachment: max degree far above attach.
  NodeId max_deg = 0;
  for (NodeId v = 0; v < n; ++v) max_deg = std::max(max_deg, g.degree(v));
  EXPECT_GT(max_deg, 3 * attach);
}

TEST(Generators, RandomGeometricConnectedAndLocal) {
  util::Xoshiro256 rng(19);
  const Graph g = random_geometric(400, 0.12, rng);
  EXPECT_TRUE(is_connected(g));
  EXPECT_GT(g.num_edges(), 400u);
}

TEST(Generators, DumbbellShape) {
  const Graph g = dumbbell(64, 4);
  EXPECT_EQ(g.num_nodes(), 64u);
  EXPECT_TRUE(is_connected(g));
  // Two cliques of 30 plus a 4-node bridge: diameter well above clique's 1.
  EXPECT_GE(diameter_exact(g), 6u);
}

TEST(Generators, LollipopShape) {
  const Graph g = lollipop(50, 10);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(g.num_nodes(), 50u);
  EXPECT_GE(diameter_exact(g), 39u);
}

TEST(Generators, EnsureConnectedIsIdempotent) {
  util::Xoshiro256 rng(23);
  const Graph g = complete(20);
  const Graph g2 = ensure_connected(g, rng);
  EXPECT_EQ(g2.num_edges(), g.num_edges());
}

class FamilySweep : public ::testing::TestWithParam<Family> {};

TEST_P(FamilySweep, ProducesConnectedGraphOfRoughSize) {
  util::Xoshiro256 rng(29);
  const NodeId n = 150;
  const Graph g = make_family(GetParam(), n, 0.0, rng);
  EXPECT_TRUE(is_connected(g)) << family_name(GetParam());
  EXPECT_GE(g.num_nodes(), n / 2) << family_name(GetParam());
  EXPECT_LE(g.num_nodes(), 2 * n) << family_name(GetParam());
}

TEST_P(FamilySweep, DeterministicGivenSeed) {
  util::Xoshiro256 rng_a(31), rng_b(31);
  const Graph a = make_family(GetParam(), 100, 0.0, rng_a);
  const Graph b = make_family(GetParam(), 100, 0.0, rng_b);
  ASSERT_EQ(a.num_edges(), b.num_edges()) << family_name(GetParam());
  for (EdgeId e = 0; e < a.num_edges(); ++e)
    EXPECT_EQ(a.endpoints(e), b.endpoints(e));
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, FamilySweep, ::testing::ValuesIn(all_families()),
    [](const ::testing::TestParamInfo<Family>& info) {
      return family_name(info.param);
    });

}  // namespace
}  // namespace fl::graph
