// Tests for the extension surface: the shared binomial sampler, the
// multigraph-input Sampler (paper Section 1.2's parallel-edge remark), and
// the maximal-matching payload.
#include <gtest/gtest.h>

#include <cmath>

#include "core/config.hpp"
#include "core/sampler.hpp"
#include "graph/generators.hpp"
#include "graph/multigraph.hpp"
#include "graph/spanner_check.hpp"
#include "localsim/algorithms.hpp"
#include "localsim/transformer.hpp"
#include "util/distributions.hpp"
#include "util/stats.hpp"
#include "util/rng.hpp"

namespace fl {
namespace {

using graph::EdgeId;
using graph::Graph;
using graph::Multigraph;
using graph::NodeId;

// ------------------------------------------------------------ binomial_draw

TEST(BinomialDraw, EdgeCases) {
  util::Xoshiro256 rng(3);
  EXPECT_EQ(util::binomial_draw(0, 0.5, rng), 0u);
  EXPECT_EQ(util::binomial_draw(100, 0.0, rng), 0u);
  EXPECT_EQ(util::binomial_draw(100, 1.0, rng), 100u);
  EXPECT_EQ(util::binomial_draw(1000000, 1.0, rng), 1000000u);
}

TEST(BinomialDraw, SmallTExactRegimeMoments) {
  util::Xoshiro256 rng(5);
  const std::uint64_t t = 100;
  const double p = 0.3;
  util::Accumulator acc;
  for (int i = 0; i < 20000; ++i)
    acc.add(static_cast<double>(util::binomial_draw(t, p, rng)));
  EXPECT_NEAR(acc.mean(), t * p, 0.5);
  EXPECT_NEAR(acc.variance(), t * p * (1 - p), 2.0);
}

TEST(BinomialDraw, PoissonRegimeMoments) {
  // t > 256, mean < 32 -> Poisson path.
  util::Xoshiro256 rng(7);
  const std::uint64_t t = 10000;
  const double p = 0.001;  // mean 10
  util::Accumulator acc;
  for (int i = 0; i < 20000; ++i)
    acc.add(static_cast<double>(util::binomial_draw(t, p, rng)));
  EXPECT_NEAR(acc.mean(), 10.0, 0.3);
  EXPECT_NEAR(acc.variance(), 10.0, 1.0);
}

TEST(BinomialDraw, NormalRegimeMoments) {
  // t > 256, mean >= 32 -> normal approximation path.
  util::Xoshiro256 rng(11);
  const std::uint64_t t = 100000;
  const double p = 0.002;  // mean 200
  util::Accumulator acc;
  for (int i = 0; i < 20000; ++i) {
    const auto d = util::binomial_draw(t, p, rng);
    EXPECT_LE(d, t);
    acc.add(static_cast<double>(d));
  }
  EXPECT_NEAR(acc.mean(), 200.0, 2.0);
  EXPECT_NEAR(acc.stddev(), std::sqrt(200.0 * 0.998), 1.0);
}

// ------------------------------------------------ multigraph-input Sampler

/// Duplicate every edge of g `mult` times with fresh physical ids.
Multigraph replicate_edges(const Graph& g, unsigned mult) {
  std::vector<Multigraph::MEdge> edges;
  EdgeId next_id = 0;
  for (const auto& e : g.edges())
    for (unsigned i = 0; i < mult; ++i)
      edges.push_back({e.u, e.v, next_id++});
  return Multigraph(g.num_nodes(), std::move(edges));
}

TEST(MultigraphSampler, ParallelEdgeInputSupported) {
  // Paper Section 1.2: with unique edge IDs the algorithm applies to
  // graphs with parallel edges. Triplicate every edge; the spanner must
  // still certify the stretch bound on the underlying simple graph.
  util::Xoshiro256 rng(13);
  const Graph g = graph::erdos_renyi_gnm(200, 1400, rng);
  const unsigned mult = 3;
  const Multigraph mg = replicate_edges(g, mult);
  const auto cfg = core::SamplerConfig::paper_faithful(2, 2, 17);
  const auto res =
      core::build_spanner_multigraph(mg, cfg, mg.num_edges());

  // Map selected physical ids back to simple-graph edges.
  std::vector<bool> covered(g.num_edges(), false);
  for (const EdgeId phys : res.edges) covered[phys / mult] = true;
  std::vector<EdgeId> projected;
  for (EdgeId e = 0; e < g.num_edges(); ++e)
    if (covered[e]) projected.push_back(e);

  const auto rep =
      graph::check_spanner_exact(g, projected, cfg.stretch_bound());
  EXPECT_TRUE(rep.connected);
  EXPECT_EQ(rep.violations, 0u);
}

TEST(MultigraphSampler, MatchesSimplePathThroughFromGraph) {
  util::Xoshiro256 rng(19);
  const Graph g = graph::erdos_renyi_gnm(150, 900, rng);
  const auto cfg = core::SamplerConfig::paper_faithful(2, 2, 23);
  const auto via_graph = core::build_spanner(g, cfg);
  const auto via_multi = core::build_spanner_multigraph(
      Multigraph::from_graph(g), cfg, g.num_edges());
  EXPECT_EQ(via_graph.edges, via_multi.edges);
}

TEST(MultigraphSampler, RejectsOutOfRangePhysicalIds) {
  std::vector<Multigraph::MEdge> edges{{0, 1, 7}};
  const Multigraph mg(2, std::move(edges));
  const auto cfg = core::SamplerConfig::paper_faithful(1, 1, 29);
  EXPECT_THROW(core::build_spanner_multigraph(mg, cfg, 3),
               util::ContractViolation);
}

TEST(MultigraphSampler, HeavyMultiplicitySkewHandled) {
  // A star whose first spoke is duplicated 100x: the iterative peeling must
  // still find all the singleton spokes (Section 1.3's bias scenario) —
  // the hub ends light and the projected spanner keeps every spoke.
  const NodeId leaves = 20;
  std::vector<Multigraph::MEdge> edges;
  EdgeId id = 0;
  for (unsigned i = 0; i < 100; ++i) edges.push_back({0, 1, id++});
  for (NodeId v = 2; v <= leaves; ++v) edges.push_back({0, v, id++});
  const Multigraph mg(leaves + 1, std::move(edges));
  const auto cfg = core::SamplerConfig::paper_faithful(1, 2, 31);
  const auto res = core::build_spanner_multigraph(mg, cfg, mg.num_edges());
  // Every distinct neighbour pair must be covered by some selected edge.
  std::vector<bool> nb(leaves + 1, false);
  for (const EdgeId phys : res.edges) {
    const auto& me = mg.edge(phys);  // physical id == local id here
    nb[me.v] = true;
  }
  for (NodeId v = 1; v <= leaves; ++v) EXPECT_TRUE(nb[v]) << "spoke " << v;
}

// ------------------------------------------------------- maximal matching

TEST(MaximalMatching, OutputsAreConsistentPairs) {
  util::Xoshiro256 rng(37);
  const Graph g = graph::erdos_renyi_gnm(200, 800, rng);
  const localsim::MaximalMatching alg(41);
  const auto out = localsim::run_reference(g, alg);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (out[v] == 0) continue;
    const auto partner = static_cast<NodeId>(out[v] - 1);
    ASSERT_LT(partner, g.num_nodes());
    EXPECT_TRUE(g.has_edge(v, partner)) << v;
    EXPECT_EQ(out[partner], v + 1u) << "asymmetric match at " << v;
  }
}

TEST(MaximalMatching, MatchingIsMaximal) {
  util::Xoshiro256 rng(43);
  const Graph g = graph::erdos_renyi_gnm(150, 600, rng);
  const localsim::MaximalMatching alg(47);
  const auto out = localsim::run_reference(g, alg);
  // Maximality: no edge with both endpoints unmatched.
  for (const auto& e : g.edges())
    EXPECT_FALSE(out[e.u] == 0 && out[e.v] == 0)
        << "unmatched edge " << e.u << "-" << e.v;
}

TEST(MaximalMatching, TransformerPreservesOutputs) {
  util::Xoshiro256 rng(53);
  const Graph g = graph::erdos_renyi_gnm(120, 700, rng);
  const localsim::MaximalMatching alg(59, 5);
  const auto cfg = core::SamplerConfig::paper_faithful(1, 2, 61);
  const auto sim = localsim::run_simulated(g, alg, cfg);
  EXPECT_EQ(sim.outputs, localsim::run_reference(g, alg));
}

}  // namespace
}  // namespace fl
