// Tests for the CONGEST bandwidth-budget engine (sim/congest.hpp): the
// FL_SIM_CONGEST probe, budget validation, Defer's carry-queue semantics
// (FIFO per directed edge, ceil(K/B)-round crossings, stretched-but-
// complete schedules), Strict's diagnostics, bit-determinism of budgeted
// runs across thread counts and balance modes, and the words-accounting
// fixes the budget engine depends on (minimum one word per message,
// pre-run sends).
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <tuple>
#include <vector>

#include "core/config.hpp"
#include "core/distributed_sampler.hpp"
#include "graph/generators.hpp"
#include "localsim/tlocal_broadcast.hpp"
#include "sim/network.hpp"
#include "util/assert.hpp"

namespace fl::sim {
namespace {

using graph::EdgeId;
using graph::Graph;
using graph::NodeId;

CongestConfig defer(std::uint64_t words) {
  return CongestConfig{words, CongestPolicy::Defer};
}

CongestConfig strict_budget(std::uint64_t words) {
  return CongestConfig{words, CongestPolicy::Strict};
}

// ------------------------------------------------------- config plumbing

TEST(CongestConfig, EnvProbeParsesBudgetAndPolicy) {
  struct EnvGuard {
    ~EnvGuard() { unsetenv("FL_SIM_CONGEST"); }
  } guard;

  unsetenv("FL_SIM_CONGEST");
  EXPECT_FALSE(default_congest_config().enforced());

  setenv("FL_SIM_CONGEST", "64", 1);
  CongestConfig cfg = default_congest_config();
  EXPECT_TRUE(cfg.enforced());
  EXPECT_EQ(cfg.words_per_edge_per_round, 64u);
  EXPECT_EQ(cfg.policy, CongestPolicy::Defer);

  setenv("FL_SIM_CONGEST", "8:strict", 1);
  cfg = default_congest_config();
  EXPECT_EQ(cfg.words_per_edge_per_round, 8u);
  EXPECT_EQ(cfg.policy, CongestPolicy::Strict);

  setenv("FL_SIM_CONGEST", "8:defer", 1);
  EXPECT_EQ(default_congest_config().policy, CongestPolicy::Defer);

  setenv("FL_SIM_CONGEST", "0", 1);
  EXPECT_THROW(default_congest_config(), util::ContractViolation);
  setenv("FL_SIM_CONGEST", "-5", 1);  // must not wrap into a huge budget
  EXPECT_THROW(default_congest_config(), util::ContractViolation);
  setenv("FL_SIM_CONGEST", "8:fast", 1);
  EXPECT_THROW(default_congest_config(), util::ContractViolation);
  setenv("FL_SIM_CONGEST", "words", 1);
  EXPECT_THROW(default_congest_config(), util::ContractViolation);
}

TEST(CongestConfig, NetworkPicksUpTheEnvironmentDefault) {
  const Graph g = graph::path(2);
  setenv("FL_SIM_CONGEST", "16:strict", 1);
  Network net(g, Knowledge::EdgeIds, 1);
  unsetenv("FL_SIM_CONGEST");
  EXPECT_TRUE(net.congest().enforced());
  EXPECT_EQ(net.congest().words_per_edge_per_round, 16u);
  EXPECT_EQ(net.congest().policy, CongestPolicy::Strict);
}

TEST(CongestConfig, SetCongestValidation) {
  const Graph g = graph::ring(4);
  Network net(g, Knowledge::EdgeIds, 1);
  EXPECT_THROW(net.set_congest(defer(0)), util::ContractViolation);
  net.set_congest(defer(4));
  EXPECT_EQ(net.congest().words_per_edge_per_round, 4u);
  net.install([](NodeId) {
    class P final : public NodeProgram {
     public:
      void on_start(Context&) override {}
      void on_round(Context&, InboxView) override {}
      bool done() const override { return true; }
    };
    return std::make_unique<P>();
  });
  net.run(5);
  EXPECT_THROW(net.set_congest(defer(8)), util::ContractViolation);
}

// -------------------------------------------------- words accounting fixes

TEST(CongestWords, ZeroWordHintClampsToOneWord) {
  // A protocol that computes a zero size hint must not free-ride on the
  // words metric (or, under a budget, on the per-edge bandwidth).
  const Graph g = graph::path(2);
  Network net(g, Knowledge::EdgeIds, 1);
  net.install([](NodeId v) {
    class P final : public NodeProgram {
     public:
      explicit P(NodeId self) : self_(self) {}
      void on_start(Context& ctx) override {
        if (self_ == 0) ctx.send(ctx.incident_edges()[0], 0, /*words=*/0);
      }
      void on_round(Context&, InboxView) override {}
      bool done() const override { return true; }

     private:
      NodeId self_;
    };
    return std::make_unique<P>(v);
  });
  net.run(5);
  EXPECT_EQ(net.metrics().messages_total, 1u);
  EXPECT_EQ(net.metrics().words_total, 1u);
}

TEST(CongestWords, PreRunSendsLandInWordsTotal) {
  // Regression for the two-argument pre-run Context path: words sent
  // before run() must be flushed into words_total by the first merge,
  // under any thread count.
  const Graph g = graph::path(2);
  for (const unsigned threads : {1u, 8u}) {
    Network net(g, Knowledge::EdgeIds, 1);
    net.set_parallelism({threads});
    net.install([](NodeId) {
      class P final : public NodeProgram {
       public:
        void on_start(Context&) override {}
        void on_round(Context&, InboxView) override {}
        bool done() const override { return true; }
      };
      return std::make_unique<P>();
    });
    Context pre(net, 1);
    pre.send(pre.incident_edges()[0], unsigned{42}, /*words=*/7);
    pre.send(pre.incident_edges()[0], unsigned{43}, /*words=*/0);  // clamps
    const RunStats stats = net.run(5);
    EXPECT_TRUE(stats.terminated);
    EXPECT_EQ(stats.messages, 2u);
    EXPECT_EQ(net.metrics().words_total, 8u) << "threads=" << threads;
    EXPECT_EQ(net.metrics().messages_per_node[1], 2u);
  }
}

// ----------------------------------------------------------- Defer policy

/// Node 0 sends `count` messages of `words` words each over the single
/// edge in round 0; node 1 logs (arrival round, payload).
class WordBurst final : public NodeProgram {
 public:
  WordBurst(NodeId self, unsigned count, std::uint32_t words)
      : self_(self), count_(count), words_(words) {}

  std::vector<std::pair<std::size_t, unsigned>> got;

  void on_start(Context& ctx) override {
    if (self_ == 0)
      for (unsigned i = 1; i <= count_; ++i)
        ctx.send(ctx.incident_edges()[0], i, words_);
  }
  void on_round(Context& ctx, InboxView inbox) override {
    for (const auto& m : inbox)
      got.emplace_back(ctx.round(), payload_as<unsigned>(m));
  }
  bool done() const override { return true; }

 private:
  NodeId self_;
  unsigned count_;
  std::uint32_t words_;
};

TEST(CongestDefer, CarryDrainsInFifoOrderOneMessagePerRound) {
  // Four 2-word messages over one edge at 2 words/round: exactly one
  // message fits per round, so delivery is 1, 2, 3, 4 in rounds 1..4 —
  // the carry queue preserves send order while the schedule stretches.
  const Graph g = graph::path(2);
  Network net(g, Knowledge::EdgeIds, 1);
  net.set_congest(defer(2));
  net.install_all<WordBurst>(4u, std::uint32_t{2});
  const RunStats stats = net.run(50);
  EXPECT_TRUE(stats.terminated);
  EXPECT_EQ(stats.messages, 4u);
  const auto& got = net.program_as<WordBurst>(1).got;
  ASSERT_EQ(got.size(), 4u);
  for (unsigned i = 0; i < 4; ++i) {
    EXPECT_EQ(got[i].first, i + 1u) << "message " << i;  // one per round
    EXPECT_EQ(got[i].second, i + 1u);                    // FIFO
  }
  EXPECT_EQ(net.metrics().deferrals_total, 3u + 2u + 1u);  // 3,2,1 re-queues
  EXPECT_EQ(net.carried_messages(), 0u);
}

TEST(CongestDefer, OversizedMessageCrossesInCeilWordsOverBudgetRounds) {
  // One 10-word message through a 3-word edge: capacity banks while the
  // edge is blocked (3, 6, 9, 12), so the message lands in round
  // ceil(10/3) = 4 instead of livelocking.
  const Graph g = graph::path(2);
  Network net(g, Knowledge::EdgeIds, 1);
  net.set_congest(defer(3));
  net.install_all<WordBurst>(1u, std::uint32_t{10});
  const RunStats stats = net.run(50);
  EXPECT_TRUE(stats.terminated);
  const auto& got = net.program_as<WordBurst>(1).got;
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].first, 4u);
  EXPECT_EQ(net.metrics().deferrals_total, 3u);  // bumped in rounds 0..2
}

TEST(CongestDefer, StrictlyMoreRoundsOnOverBudgetWorkload) {
  // The acceptance shape: identical workload, LOCAL vs finite budget —
  // same messages and words in the end, strictly more rounds, and the
  // per-round delivery profile visibly stretched.
  const Graph g = graph::star(6);
  auto run_once = [&](CongestConfig congest) {
    Network net(g, Knowledge::EdgeIds, 3);
    net.set_congest(congest);
    net.install_all<WordBurst>(5u, std::uint32_t{4});
    const RunStats stats = net.run(200);
    EXPECT_TRUE(stats.terminated);
    return std::tuple{stats.rounds, stats.messages,
                      net.metrics().words_total,
                      net.metrics().deferrals_total};
  };
  const auto local = run_once(CongestConfig{});
  const auto budgeted = run_once(defer(4));
  EXPECT_GT(std::get<0>(budgeted), std::get<0>(local));
  EXPECT_EQ(std::get<1>(budgeted), std::get<1>(local));
  EXPECT_EQ(std::get<2>(budgeted), std::get<2>(local));
  EXPECT_EQ(std::get<3>(local), 0u);
  EXPECT_GT(std::get<3>(budgeted), 0u);
}

TEST(CongestDefer, RunCanStopAndResumeWithCarryPending) {
  // max_rounds expires while messages sit in carry queues: the run must
  // report non-termination (the carry is in-flight traffic), and a later
  // run() call must drain it.
  const Graph g = graph::path(2);
  Network net(g, Knowledge::EdgeIds, 1);
  net.set_congest(defer(1));
  net.install_all<WordBurst>(6u, std::uint32_t{1});
  const RunStats mid = net.run(3);
  EXPECT_FALSE(mid.terminated);
  EXPECT_GT(net.carried_messages(), 0u);
  const RunStats done = net.run(50);
  EXPECT_TRUE(done.terminated);
  EXPECT_EQ(net.carried_messages(), 0u);
  EXPECT_EQ(done.messages, 6u);
  EXPECT_EQ(net.program_as<WordBurst>(1).got.size(), 6u);
}

// ---------------------------------------------------------- Strict policy

TEST(CongestStrict, ThrowsWithEdgeRoundAndPayloadDiagnostics) {
  const Graph g = graph::path(2);
  Network net(g, Knowledge::EdgeIds, 1);
  net.set_congest(strict_budget(4));
  net.install_all<WordBurst>(2u, std::uint32_t{3});  // 6 words > 4
  try {
    net.run(5);
    FAIL() << "expected CongestViolation";
  } catch (const CongestViolation& v) {
    EXPECT_EQ(v.edge, 0u);
    EXPECT_EQ(v.from, 0u);
    EXPECT_EQ(v.to, 1u);
    EXPECT_EQ(v.round, 0u);
    EXPECT_EQ(v.words, 6u);
    EXPECT_EQ(v.budget, 4u);
    const std::string what = v.what();
    EXPECT_NE(what.find("edge 0"), std::string::npos) << what;
    EXPECT_NE(what.find("round 0"), std::string::npos) << what;
    EXPECT_NE(what.find("unsigned int"), std::string::npos)
        << "payload type missing from: " << what;
  }
}

TEST(CongestStrict, SingleOversizedMessageIsAViolation) {
  // Strict is a compliance check, not a scheduler: a message that could
  // never fit any round's budget fails even alone on its edge.
  const Graph g = graph::path(2);
  Network net(g, Knowledge::EdgeIds, 1);
  net.set_congest(strict_budget(4));
  net.install_all<WordBurst>(1u, std::uint32_t{5});
  EXPECT_THROW(net.run(5), CongestViolation);
}

TEST(CongestStrict, CompliantTrafficRunsToCompletionUnchanged) {
  const Graph g = graph::star(5);
  auto run_once = [&](CongestConfig congest) {
    Network net(g, Knowledge::EdgeIds, 3);
    net.set_congest(congest);
    net.install_all<WordBurst>(2u, std::uint32_t{2});
    const RunStats stats = net.run(50);
    EXPECT_TRUE(stats.terminated);
    return std::tuple{stats.rounds, stats.messages,
                      net.program_as<WordBurst>(1).got};
  };
  EXPECT_EQ(run_once(CongestConfig{}), run_once(strict_budget(4)));
}

TEST(CongestStrict, ViolationSurfacesFromWorkerLanes) {
  // The offending destination lives in a high shard; the admission pass
  // runs on a worker thread there, and the pool must rethrow.
  util::Xoshiro256 rng(8);
  const Graph g = graph::random_tree(40, rng);
  Network net(g, Knowledge::EdgeIds, 1);
  net.set_parallelism({8});
  net.set_congest(strict_budget(1));
  net.install_all<WordBurst>(3u, std::uint32_t{1});  // 3 words > 1 per edge
  EXPECT_THROW(net.run(5), CongestViolation);
}

// --------------------------------------- determinism across thread counts

/// Chatty multi-word workload: pseudo-random payload sizes (1..6 words)
/// over pseudo-randomly skipped edges for several rounds, so a small
/// budget defers heavily and the carry queues see mixed traffic.
class WordChatter final : public NodeProgram {
 public:
  WordChatter(NodeId self, unsigned active) : self_(self), active_(active) {}

  std::vector<std::tuple<std::size_t, NodeId, EdgeId, std::uint64_t>> heard;

  void on_start(Context& ctx) override { maybe_send(ctx); }
  void on_round(Context& ctx, InboxView inbox) override {
    for (const auto& m : inbox) {
      EXPECT_EQ(m.to(), self_);
      heard.emplace_back(ctx.round(), m.from(), m.edge(),
                         payload_as<std::uint64_t>(m));
    }
    maybe_send(ctx);
  }
  bool done() const override { return true; }  // quiesce on silence

 private:
  void maybe_send(Context& ctx) {
    if (ctx.round() >= active_) return;
    for (const EdgeId e : ctx.incident_edges()) {
      if (ctx.rng().bernoulli(0.25)) continue;
      const std::uint64_t v = ctx.rng()();
      ctx.send(e, v, static_cast<std::uint32_t>(1 + v % 6));
    }
  }

  NodeId self_;
  unsigned active_;
};

struct ChatterResult {
  RunStats stats;
  Metrics metrics;
  std::vector<std::vector<std::tuple<std::size_t, NodeId, EdgeId,
                                     std::uint64_t>>> logs;
};

ChatterResult run_word_chatter(const Graph& g, ParallelConfig par,
                               CongestConfig congest) {
  Network net(g, Knowledge::EdgeIds, 7);
  net.set_parallelism(par);
  net.set_congest(congest);
  net.install_all<WordChatter>(6u);
  ChatterResult res;
  res.stats = net.run(600);
  EXPECT_TRUE(res.stats.terminated);
  res.metrics = net.metrics();
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    res.logs.push_back(net.program_as<WordChatter>(v).heard);
  return res;
}

void expect_identical(const ChatterResult& a, const ChatterResult& b) {
  EXPECT_EQ(a.stats.rounds, b.stats.rounds);
  EXPECT_EQ(a.stats.messages, b.stats.messages);
  EXPECT_EQ(a.stats.terminated, b.stats.terminated);
  EXPECT_EQ(a.metrics.messages_total, b.metrics.messages_total);
  EXPECT_EQ(a.metrics.words_total, b.metrics.words_total);
  EXPECT_EQ(a.metrics.deferrals_total, b.metrics.deferrals_total);
  EXPECT_EQ(a.metrics.messages_per_round, b.metrics.messages_per_round);
  EXPECT_EQ(a.metrics.messages_per_node, b.metrics.messages_per_node);
  EXPECT_EQ(a.logs, b.logs);
}

TEST(CongestDeterminism, DeferBitIdenticalAcrossThreadCountsOnEveryFamily) {
  // The acceptance matrix: dense, sparse and skewed families under a
  // binding Defer budget, at 1, 2 and 8 lanes and both balance modes —
  // RunStats, Metrics (deferrals included) and every per-node delivery
  // log must be bit-identical, exactly like the unbudgeted engine.
  util::Xoshiro256 dense_rng(123), sparse_rng(124), skew_rng(125);
  const Graph dense = graph::erdos_renyi_gnm(97, 400, dense_rng);
  const Graph sparse = graph::random_tree(101, sparse_rng);
  const Graph skewed = graph::barabasi_albert(90, 6, skew_rng);
  for (const Graph* g : {&dense, &sparse, &skewed}) {
    const auto seq = run_word_chatter(*g, {1}, defer(3));
    EXPECT_GT(seq.stats.messages, 0u);
    EXPECT_GT(seq.metrics.deferrals_total, 0u);  // the budget must bind
    for (const unsigned threads : {2u, 8u}) {
      for (const ShardBalance balance :
           {ShardBalance::Uniform, ShardBalance::Degree}) {
        expect_identical(seq, run_word_chatter(*g, {threads, balance},
                                               defer(3)));
      }
    }
  }
}

TEST(CongestDeterminism, NeverBindingBudgetMatchesLocalBitForBit) {
  // budget -> infinity degenerates to LOCAL: the admission pass runs (the
  // config is enforced) but defers nothing, and every observable —
  // including per-round counts and full delivery logs — matches the
  // unlimited run. The pinned golden traces stay valid by transitivity.
  util::Xoshiro256 rng(123);
  const Graph g = graph::erdos_renyi_gnm(97, 400, rng);
  const auto local = run_word_chatter(g, {1}, CongestConfig{});
  const auto huge = run_word_chatter(g, {1}, defer(std::uint64_t{1} << 40));
  expect_identical(local, huge);
  EXPECT_EQ(huge.metrics.deferrals_total, 0u);
}

// ------------------------------------------------- protocols under budget

TEST(CongestProtocols, BroadcastReachesSameSetsWithMoreRounds) {
  // Lemma 12 under bandwidth: hop-budgeted flooding must reach exactly
  // B_H(v, t) regardless of how the budget delays bundles — only the
  // round count (and possibly the message count, via re-forwards) grows.
  util::Xoshiro256 rng(17);
  const Graph g = graph::erdos_renyi_gnm(60, 180, rng);
  const auto edges = localsim::all_edges(g);
  const auto local = localsim::run_tlocal_broadcast(g, edges, 3, 9);
  const auto budgeted =
      localsim::run_tlocal_broadcast(g, edges, 3, 9, defer(2));
  EXPECT_EQ(local.reached, budgeted.reached);
  EXPECT_GT(budgeted.stats.rounds, local.stats.rounds);
  EXPECT_GE(budgeted.stats.messages, local.stats.messages);
  EXPECT_GT(budgeted.metrics.deferrals_total, 0u);
}

TEST(CongestProtocols, BroadcastReforwardDedupSavesWordsKeepsCoverage) {
  // A/B over the re-forward dedup knob. A binding budget delays some
  // bundles past the BFS-shortest arrival, so origins arrive again with a
  // *larger* remaining hop budget and get re-forwarded; with dedup the
  // improvement batch skips its arrival edge (the sender provably already
  // holds those origins at a higher budget). Coverage is untouched; the
  // words bill strictly shrinks.
  util::Xoshiro256 rng(17);
  const Graph g = graph::erdos_renyi_gnm(60, 180, rng);
  const auto edges = localsim::all_edges(g);
  const auto dedup =
      localsim::run_tlocal_broadcast(g, edges, 4, 9, defer(1));
  const auto full = localsim::run_tlocal_broadcast(
      g, edges, 4, 9, defer(1), /*dedup_reforward=*/false);
  EXPECT_GT(full.metrics.deferrals_total, 0u);  // the budget binds
  EXPECT_EQ(dedup.reached, full.reached);
  EXPECT_LT(dedup.metrics.words_total, full.metrics.words_total);

  // In LOCAL mode improvements never occur (the first arrival rides the
  // BFS-shortest path, hence the maximal budget), so the knob must be
  // bit-invisible: same trace-relevant stats, messages, and words. Pin the
  // LOCAL runs explicitly so an FL_SIM_CONGEST env probe cannot budget them.
  const auto local_dedup =
      localsim::run_tlocal_broadcast(g, edges, 4, 9, sim::CongestConfig{});
  const auto local_full = localsim::run_tlocal_broadcast(
      g, edges, 4, 9, sim::CongestConfig{}, /*dedup_reforward=*/false);
  EXPECT_EQ(local_dedup.reached, local_full.reached);
  EXPECT_EQ(local_dedup.stats.rounds, local_full.stats.rounds);
  EXPECT_EQ(local_dedup.stats.messages, local_full.stats.messages);
  EXPECT_EQ(local_dedup.metrics.words_total, local_full.metrics.words_total);
  EXPECT_EQ(local_dedup.metrics.deferrals_total, 0u);
}

TEST(CongestProtocols, BroadcastBudgetedRunIsThreadCountInvariant) {
  util::Xoshiro256 rng(21);
  const Graph g = graph::erdos_renyi_gnm(50, 150, rng);
  const auto edges = localsim::all_edges(g);
  auto run_with_threads = [&](unsigned threads) {
    if (threads == 1) {
      unsetenv("FL_SIM_THREADS");
    } else {
      setenv("FL_SIM_THREADS", std::to_string(threads).c_str(), 1);
    }
    auto run = localsim::run_tlocal_broadcast(g, edges, 3, 9, defer(2));
    unsetenv("FL_SIM_THREADS");
    return run;
  };
  const auto seq = run_with_threads(1);
  for (const unsigned threads : {2u, 8u}) {
    const auto par = run_with_threads(threads);
    EXPECT_EQ(seq.reached, par.reached);
    EXPECT_EQ(seq.stats.rounds, par.stats.rounds);
    EXPECT_EQ(seq.stats.messages, par.stats.messages);
    EXPECT_EQ(seq.metrics.deferrals_total, par.metrics.deferrals_total);
  }
}

TEST(CongestProtocols, SamplerRunsBudgetedWithScheduleSlack) {
  // The fixed timetable assumes LOCAL delivery; with a finite budget plus
  // proportional schedule slack (BarrierMode::FixedSchedule — the
  // compatibility path; event-driven barriers are covered by
  // tests/test_barrier.cpp) the run must still terminate, take strictly
  // more rounds than its LOCAL twin, and stay deterministic across thread
  // counts. Both runs pin their congest config explicitly so the test
  // means the same thing under any ambient FL_SIM_CONGEST.
  util::Xoshiro256 rng(5);
  const Graph g = graph::erdos_renyi_gnm(64, 256, rng);
  auto cfg = core::SamplerConfig::bench_profile(2, 2, 7);

  cfg.congest = sim::CongestConfig{};  // plain LOCAL baseline
  const auto local = core::run_distributed_sampler(g, cfg);

  cfg.congest = defer(8);
  cfg.barriers = core::BarrierMode::FixedSchedule;
  cfg.schedule_slack = 4;
  auto run_with_threads = [&](unsigned threads) {
    if (threads == 1) {
      unsetenv("FL_SIM_THREADS");
    } else {
      setenv("FL_SIM_THREADS", std::to_string(threads).c_str(), 1);
    }
    auto run = core::run_distributed_sampler(g, cfg);
    unsetenv("FL_SIM_THREADS");
    return run;
  };
  const auto seq = run_with_threads(1);
  EXPECT_GT(seq.stats.rounds, local.stats.rounds);
  EXPECT_FALSE(seq.edges.empty());
  for (const unsigned threads : {2u, 8u}) {
    const auto par = run_with_threads(threads);
    EXPECT_EQ(seq.edges, par.edges);
    EXPECT_EQ(seq.stats.rounds, par.stats.rounds);
    EXPECT_EQ(seq.stats.messages, par.stats.messages);
    EXPECT_EQ(seq.metrics.deferrals_total, par.metrics.deferrals_total);
  }
}

}  // namespace
}  // namespace fl::sim
