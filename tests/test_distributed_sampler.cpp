// Tests for the distributed Sampler (paper Section 5).
//
// The distributed run must (a) produce a spanner with the Theorem 9 / Lemma
// 10 guarantees, (b) finish within its precomputed O(3^k h) schedule, and
// (c) send Õ(n^{1+δ+ε}) messages independent of |E| — all verified against
// the simulator's own metering.
#include <gtest/gtest.h>

#include <cmath>

#include "core/config.hpp"
#include "core/distributed_sampler.hpp"
#include "core/sampler.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "graph/spanner_check.hpp"
#include "sim/congest.hpp"
#include "util/rng.hpp"

namespace fl {
namespace {

using core::SamplerConfig;
using core::Schedule;
using graph::Graph;

TEST(Schedule, RoundBoundMatchesTheorem11) {
  // Schedule length must be O(3^k · h): concretely it is
  // sum_j [3W_j + 2h(3W_j + 2) + (4W_j + 4)] with W_j = 3^j − 1.
  for (unsigned k = 1; k <= 4; ++k) {
    for (unsigned h = 1; h <= 6; ++h) {
      const auto cfg = SamplerConfig::bench_profile(k, h, 1);
      const auto sched = Schedule::build(cfg);
      const double bound = 40.0 * SamplerConfig::pow3(k) * h;
      EXPECT_LE(static_cast<double>(sched.total_rounds), bound)
          << "k=" << k << " h=" << h;
      EXPECT_FALSE(sched.phases.empty());
      // Phases tile the timeline without gaps or overlaps.
      std::size_t cursor = 0;
      for (const auto& p : sched.phases) {
        EXPECT_EQ(p.start, cursor);
        cursor += p.length;
      }
      EXPECT_EQ(cursor, sched.total_rounds);
    }
  }
}

TEST(DistributedSampler, TerminatesWithinSchedule) {
  util::Xoshiro256 rng(3);
  const Graph g = graph::erdos_renyi_gnm(200, 1200, rng);
  auto cfg = SamplerConfig::paper_faithful(2, 2, 17);
  // This test is about the *fixed timetable's* round bound; pin plain
  // LOCAL delivery so an ambient FL_SIM_CONGEST cannot flip the run to
  // event-driven barriers (whose round count is graph-dependent).
  cfg.congest = sim::CongestConfig{};
  const auto run = core::run_distributed_sampler(g, cfg);
  EXPECT_TRUE(run.stats.terminated);
  const auto sched = Schedule::build(cfg);
  EXPECT_LE(run.stats.rounds, sched.total_rounds + 4);
}

TEST(DistributedSampler, SpannerValidAndConnected) {
  util::Xoshiro256 rng(5);
  const Graph g = graph::erdos_renyi_gnm(250, 2000, rng);
  const auto run =
      core::run_distributed_sampler(g, SamplerConfig::paper_faithful(2, 2, 23));
  EXPECT_TRUE(graph::is_valid_edge_subset(g, run.edges));
  const graph::SubgraphView h(g, run.edges);
  EXPECT_TRUE(h.preserves_connectivity());
}

TEST(DistributedSampler, StretchWithinTheorem9Bound) {
  util::Xoshiro256 rng(7);
  for (unsigned k = 1; k <= 2; ++k) {
    const Graph g = graph::erdos_renyi_gnm(180, 1400, rng);
    const auto cfg = SamplerConfig::paper_faithful(k, 2, 31 + k);
    const auto run = core::run_distributed_sampler(g, cfg);
    const auto rep =
        graph::check_spanner_exact(g, run.edges, cfg.stretch_bound());
    EXPECT_TRUE(rep.connected) << "k=" << k;
    EXPECT_EQ(rep.violations, 0u)
        << "k=" << k << " max " << rep.max_edge_stretch;
  }
}

TEST(DistributedSampler, StretchOnStructuredTopologies) {
  const auto cfg = SamplerConfig::paper_faithful(1, 2, 41);
  for (const Graph& g : {graph::grid(12, 12), graph::hypercube(7),
                         graph::torus(10, 10), graph::dumbbell(100, 8)}) {
    const auto run = core::run_distributed_sampler(g, cfg);
    const auto rep =
        graph::check_spanner_exact(g, run.edges, cfg.stretch_bound());
    EXPECT_TRUE(rep.connected) << g.summary();
    EXPECT_EQ(rep.violations, 0u) << g.summary();
  }
}

TEST(DistributedSampler, AgreesWithCentralizedOnGuarantees) {
  // Not bit-identical (sampling is distributed-binomial vs multinomial) but
  // both must deliver the same guarantees and similar sizes.
  util::Xoshiro256 rng(11);
  const Graph g = graph::erdos_renyi_gnm(300, 2500, rng);
  const auto cfg = SamplerConfig::paper_faithful(2, 2, 53);
  const auto central = core::build_spanner(g, cfg);
  const auto dist = core::run_distributed_sampler(g, cfg);
  const double ratio = static_cast<double>(dist.edges.size()) /
                       static_cast<double>(central.edges.size());
  EXPECT_GT(ratio, 0.5);
  EXPECT_LT(ratio, 2.0);
}

TEST(DistributedSampler, DeterministicGivenSeed) {
  util::Xoshiro256 rng(13);
  const Graph g = graph::erdos_renyi_gnm(150, 900, rng);
  const auto cfg = SamplerConfig::paper_faithful(2, 2, 61);
  const auto a = core::run_distributed_sampler(g, cfg);
  const auto b = core::run_distributed_sampler(g, cfg);
  EXPECT_EQ(a.edges, b.edges);
  EXPECT_EQ(a.stats.messages, b.stats.messages);
  EXPECT_EQ(a.stats.rounds, b.stats.rounds);
}

TEST(DistributedSampler, MessageCountSublinearInDensity) {
  // The headline free-lunch property, now with *real* messages: density
  // x32 must not cost anywhere near x32 messages.
  util::Xoshiro256 rng(17);
  const graph::NodeId n = 512;
  const Graph sparse = graph::erdos_renyi_gnm(n, 8 * n, rng);
  const Graph dense = graph::complete(n);
  const auto cfg = SamplerConfig::bench_profile(2, 3, 71);
  const auto rs = core::run_distributed_sampler(sparse, cfg);
  const auto rd = core::run_distributed_sampler(dense, cfg);
  const double density_ratio = static_cast<double>(dense.num_edges()) /
                               static_cast<double>(sparse.num_edges());
  const double msg_ratio = static_cast<double>(rd.stats.messages) /
                           static_cast<double>(rs.stats.messages);
  EXPECT_LT(msg_ratio, 0.5 * density_ratio);
}

TEST(DistributedSampler, RoundsIndependentOfGraph) {
  // Round complexity depends only on (k, h) — identical schedules, so
  // near-identical round counts across very different graphs. A fixed-
  // timetable property: pin LOCAL delivery (under a budget the adaptive
  // barrier makes rounds a function of actual traffic, hence the graph).
  auto cfg = SamplerConfig::paper_faithful(2, 2, 73);
  cfg.congest = sim::CongestConfig{};
  util::Xoshiro256 rng(19);
  const auto r1 = core::run_distributed_sampler(graph::ring(100), cfg);
  const auto r2 = core::run_distributed_sampler(graph::complete(100), cfg);
  const auto r3 = core::run_distributed_sampler(
      graph::erdos_renyi_gnm(100, 2000, rng), cfg);
  EXPECT_LE(r1.stats.rounds, r2.stats.rounds + 4);
  EXPECT_GE(r1.stats.rounds + 4, r2.stats.rounds);
  EXPECT_LE(r2.stats.rounds, r3.stats.rounds + 4);
  EXPECT_GE(r2.stats.rounds + 4, r3.stats.rounds);
}

TEST(DistributedSampler, BreakdownAccountsForEveryMessage) {
  util::Xoshiro256 rng(101);
  const Graph g = graph::erdos_renyi_gnm(200, 1600, rng);
  const auto cfg = SamplerConfig::paper_faithful(2, 2, 103);
  const auto run = core::run_distributed_sampler(g, cfg);
  EXPECT_EQ(run.breakdown.total(), run.stats.messages);
  EXPECT_GT(run.breakdown.queries, 0u);
  EXPECT_GT(run.breakdown.tree_sessions, 0u);
}

TEST(DistributedSampler, LevelDiagnosticsConsistent) {
  util::Xoshiro256 rng(23);
  const Graph g = graph::erdos_renyi_gnm(300, 3000, rng);
  const auto cfg = SamplerConfig::paper_faithful(2, 2, 83);
  const auto run = core::run_distributed_sampler(g, cfg);
  ASSERT_EQ(run.levels.size(), cfg.k + 1);
  EXPECT_EQ(run.levels[0].virtual_nodes, g.num_nodes());
  for (unsigned j = 0; j + 1 <= cfg.k; ++j) {
    const auto& lt = run.levels[j];
    EXPECT_EQ(lt.light + lt.heavy + lt.neither, lt.virtual_nodes)
        << "level " << j;
    EXPECT_EQ(run.levels[j + 1].virtual_nodes, lt.centers) << "level " << j;
  }
}

TEST(DistributedSampler, WorksOnTrees) {
  util::Xoshiro256 rng(29);
  const Graph g = graph::random_tree(120, rng);
  const auto cfg = SamplerConfig::paper_faithful(2, 2, 89);
  const auto run = core::run_distributed_sampler(g, cfg);
  // A tree's only spanner preserving connectivity is the tree itself.
  EXPECT_EQ(run.edges.size(), g.num_edges());
}

class DistributedFamilySweep : public ::testing::TestWithParam<graph::Family> {};

TEST_P(DistributedFamilySweep, GuaranteesHoldPerFamily) {
  util::Xoshiro256 rng(733);
  const Graph g = graph::make_family(GetParam(), 130, 0.0, rng);
  const auto cfg = SamplerConfig::paper_faithful(1, 2, 737);
  const auto run = core::run_distributed_sampler(g, cfg);
  EXPECT_TRUE(run.stats.terminated);
  ASSERT_TRUE(graph::is_valid_edge_subset(g, run.edges));
  const auto rep = graph::check_spanner_exact(g, run.edges, run.stretch_bound);
  EXPECT_TRUE(rep.connected) << graph::family_name(GetParam());
  EXPECT_EQ(rep.violations, 0u) << graph::family_name(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Families, DistributedFamilySweep,
    ::testing::ValuesIn(graph::all_families()),
    [](const ::testing::TestParamInfo<graph::Family>& info) {
      return graph::family_name(info.param);
    });

TEST(DistributedSampler, WorksOnTinyGraphs) {
  const auto cfg = SamplerConfig::paper_faithful(1, 1, 97);
  const Graph g = graph::path(2);
  const auto run = core::run_distributed_sampler(g, cfg);
  EXPECT_EQ(run.edges.size(), 1u);
  const Graph tri = graph::ring(3);
  const auto run3 = core::run_distributed_sampler(tri, cfg);
  EXPECT_GE(run3.edges.size(), 2u);
}

}  // namespace
}  // namespace fl
