// Tests for BFS / connectivity / diameter / subgraph views.
#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace fl::graph {
namespace {

TEST(Bfs, DistancesOnPath) {
  const Graph g = path(6);
  const auto d = bfs_distances(g, 0);
  for (NodeId v = 0; v < 6; ++v) EXPECT_EQ(d[v], v);
}

TEST(Bfs, BoundedTruncates) {
  const Graph g = path(10);
  const auto d = bfs_distances_bounded(g, 0, 3);
  EXPECT_EQ(d[3], 3u);
  EXPECT_EQ(d[4], kUnreachable);
}

TEST(Bfs, UnreachableAcrossComponents) {
  Graph::Builder b(4);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  const Graph g = std::move(b).build();
  const auto d = bfs_distances(g, 0);
  EXPECT_EQ(d[1], 1u);
  EXPECT_EQ(d[2], kUnreachable);
}

TEST(Components, CountsAndLabels) {
  Graph::Builder b(5);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  const Graph g = std::move(b).build();
  const auto c = connected_components(g);
  EXPECT_EQ(c.count, 3u);
  EXPECT_EQ(c.label[0], c.label[1]);
  EXPECT_EQ(c.label[2], c.label[3]);
  EXPECT_NE(c.label[0], c.label[2]);
  EXPECT_NE(c.label[4], c.label[0]);
  EXPECT_FALSE(is_connected(g));
}

TEST(Diameter, ExactMatchesKnownValues) {
  EXPECT_EQ(diameter_exact(ring(10)), 5u);
  EXPECT_EQ(diameter_exact(complete(10)), 1u);
  EXPECT_EQ(diameter_exact(star(10)), 2u);
  EXPECT_EQ(diameter_exact(grid(3, 7)), 8u);
}

TEST(Diameter, DoubleSweepLowerBoundsExact) {
  util::Xoshiro256 rng(3);
  for (int i = 0; i < 5; ++i) {
    const Graph g = erdos_renyi_gnm(80, 160, rng);
    const auto exact = diameter_exact(g);
    const auto sweep = diameter_double_sweep(g);
    EXPECT_LE(sweep, exact);
    EXPECT_GE(2 * sweep, exact);  // classic 2-approximation guarantee
  }
}

TEST(Eccentricity, MatchesBfs) {
  const Graph g = path(9);
  EXPECT_EQ(eccentricity(g, 0), 8u);
  EXPECT_EQ(eccentricity(g, 4), 4u);
}

TEST(SpanningForest, SizeAndAcyclicity) {
  util::Xoshiro256 rng(5);
  const Graph g = erdos_renyi_gnm(100, 400, rng);
  const auto forest = spanning_forest(g);
  EXPECT_EQ(forest.size(), 99u);  // connected: n-1 edges
  const SubgraphView view(g, forest);
  EXPECT_TRUE(view.preserves_connectivity());
}

TEST(SpanningForest, PerComponent) {
  Graph::Builder b(6);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(0, 2);
  b.add_edge(3, 4);
  const Graph g = std::move(b).build();
  EXPECT_EQ(spanning_forest(g).size(), 3u);  // 2 + 1
}

TEST(SubgraphView, RestrictsDistances) {
  // Ring of 8; keep only 7 edges -> a path; distances stretch accordingly.
  const Graph g = ring(8);
  std::vector<EdgeId> edges;
  for (EdgeId e = 0; e + 1 < g.num_edges(); ++e) edges.push_back(e);
  const SubgraphView h(g, edges);
  EXPECT_EQ(h.num_edges(), 7u);
  const auto dg = bfs_distances(g, 0);
  const auto dh = h.bfs_distances(0);
  // In G the two ring neighbours are at distance 1; in the path one of
  // them is at distance 7.
  std::uint32_t max_h = 0;
  for (const auto d : dh) max_h = std::max(max_h, d);
  EXPECT_EQ(max_h, 7u);
  std::uint32_t max_g = 0;
  for (const auto d : dg) max_g = std::max(max_g, d);
  EXPECT_EQ(max_g, 4u);
}

TEST(SubgraphView, DetectsDisconnection) {
  const Graph g = ring(6);
  const std::vector<EdgeId> too_few{0, 1};
  const SubgraphView h(g, too_few);
  EXPECT_FALSE(h.preserves_connectivity());
}

TEST(SubgraphView, EmptyEdgeSet) {
  const Graph g = complete(4);
  const SubgraphView h(g, {});
  EXPECT_EQ(h.num_edges(), 0u);
  const auto d = h.bfs_distances(0);
  EXPECT_EQ(d[0], 0u);
  EXPECT_EQ(d[1], kUnreachable);
}

}  // namespace
}  // namespace fl::graph
