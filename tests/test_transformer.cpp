// Tests for the message-reduction transformer (paper Theorem 3).
//
// The gold property: the transformed execution computes *identical outputs*
// to the native LOCAL execution and to the reference semantics, while
// sending asymptotically fewer messages on dense graphs.
#include <gtest/gtest.h>

#include <memory>

#include "core/config.hpp"
#include "core/distributed_sampler.hpp"
#include "core/sampler.hpp"
#include "graph/generators.hpp"
#include "localsim/algorithms.hpp"
#include "localsim/tlocal_broadcast.hpp"
#include "localsim/transformer.hpp"
#include "util/rng.hpp"

namespace fl {
namespace {

using core::SamplerConfig;
using graph::Graph;

std::vector<std::unique_ptr<localsim::LocalAlgorithm>> payloads() {
  std::vector<std::unique_ptr<localsim::LocalAlgorithm>> out;
  out.push_back(std::make_unique<localsim::LubyMis>(101, 6));
  out.push_back(std::make_unique<localsim::GreedyColoring>(103, 5));
  out.push_back(std::make_unique<localsim::BfsLayers>(3));
  out.push_back(std::make_unique<localsim::LeaderElection>(2));
  out.push_back(std::make_unique<localsim::LocalMin>(2));
  return out;
}

TEST(Transformer, NativeMatchesReference) {
  util::Xoshiro256 rng(3);
  const Graph g = graph::erdos_renyi_gnm(150, 900, rng);
  for (const auto& alg : payloads()) {
    const auto native = localsim::run_native(g, *alg, 7);
    const auto ref = localsim::run_reference(g, *alg);
    EXPECT_EQ(native.outputs, ref) << alg->name();
  }
}

TEST(Transformer, SimulatedMatchesReference) {
  // The headline fidelity property of Theorem 3.
  util::Xoshiro256 rng(5);
  const Graph g = graph::erdos_renyi_gnm(150, 1200, rng);
  const auto cfg = SamplerConfig::paper_faithful(1, 2, 11);
  for (const auto& alg : payloads()) {
    const auto sim = localsim::run_simulated(g, *alg, cfg);
    const auto ref = localsim::run_reference(g, *alg);
    EXPECT_EQ(sim.outputs, ref) << alg->name();
  }
}

TEST(Transformer, SimulatedMatchesOnStructuredGraphs) {
  const auto cfg = SamplerConfig::paper_faithful(1, 2, 13);
  const localsim::LeaderElection alg(3);
  for (const Graph& g :
       {graph::grid(10, 10), graph::hypercube(6), graph::dumbbell(80, 6)}) {
    const auto sim = localsim::run_simulated(g, alg, cfg);
    EXPECT_EQ(sim.outputs, localsim::run_reference(g, alg)) << g.summary();
  }
}

TEST(Transformer, MessageSavingsOnDenseGraph) {
  // On K_n the native t-round execution costs Θ(m) messages per payload;
  // the reduced execution pays the (density-independent) Õ(n^{1+δ+ε})
  // sampler preprocessing ONCE plus Õ(|S|·αt) flooding per payload. At
  // n=300 the preprocessing constant still rivals a single native run
  // (bench E9 shows the one-shot crossover at larger n), so we assert the
  // two regimes the theorem actually promises at this scale:
  //   (a) steady state: per-payload flooding beats native flooding;
  //   (b) amortized over a few payloads the total wins too.
  const Graph g = graph::complete(300);
  const auto cfg = SamplerConfig::bench_profile(2, 3, 17);
  const auto spanner_run = core::build_spanner(g, cfg);

  std::uint64_t native_total = 0;
  std::uint64_t reduced_total = 0;
  const unsigned payload_count = 3;
  for (unsigned i = 0; i < payload_count; ++i) {
    const localsim::LocalMin alg(4 + i);
    const auto native = localsim::run_native(g, alg, 17 + i);
    const auto reduced = localsim::run_over_spanner(
        g, alg, spanner_run.edges, cfg.stretch_bound(), 17 + i);
    EXPECT_EQ(reduced.outputs, native.outputs) << "payload " << i;
    EXPECT_LT(reduced.messages, native.messages) << "payload " << i;  // (a)
    native_total += native.messages;
    reduced_total += reduced.messages;
  }
  // (b): one distributed-sampler preprocessing amortized over the payloads.
  const auto pre = core::run_distributed_sampler(g, cfg);
  EXPECT_LT(pre.stats.messages + reduced_total, native_total);
}

TEST(Transformer, RoundOverheadIsConstantFactor) {
  // O(3^γ·t + 6^γ) rounds: for γ=1, alpha=5, so rounds <= ~5t + spanner
  // schedule. Verify against the concrete schedule constant.
  util::Xoshiro256 rng(19);
  const Graph g = graph::erdos_renyi_gnm(200, 1500, rng);
  const localsim::BfsLayers alg(4);
  const auto cfg = SamplerConfig::paper_faithful(1, 2, 19);
  const auto sim = localsim::run_simulated(g, alg, cfg);
  const auto native = localsim::run_native(g, alg, 19);
  EXPECT_LE(sim.broadcast_rounds,
            static_cast<std::size_t>(cfg.stretch_bound()) * native.rounds + 4);
  EXPECT_GT(sim.spanner_rounds, 0u);
}

TEST(Transformer, StageBreakdownAddsUp) {
  util::Xoshiro256 rng(23);
  const Graph g = graph::erdos_renyi_gnm(120, 700, rng);
  const localsim::LeaderElection alg(2);
  const auto cfg = SamplerConfig::paper_faithful(1, 2, 23);
  const auto sim = localsim::run_simulated(g, alg, cfg);
  EXPECT_EQ(sim.messages, sim.spanner_messages + sim.broadcast_messages);
  EXPECT_EQ(sim.rounds, sim.spanner_rounds + sim.broadcast_rounds);
  EXPECT_GT(sim.spanner_edges, 0u);
  EXPECT_DOUBLE_EQ(sim.alpha, cfg.stretch_bound());
}

TEST(Transformer, RunOverSpannerWithWholeGraphIsNative) {
  // Degenerate check: H = G with alpha = 1 must reproduce native behaviour.
  util::Xoshiro256 rng(29);
  const Graph g = graph::erdos_renyi_gnm(100, 400, rng);
  const localsim::LocalMin alg(3);
  const auto over = localsim::run_over_spanner(
      g, alg, localsim::all_edges(g), 1.0, 31);
  const auto native = localsim::run_native(g, alg, 31);
  EXPECT_EQ(over.outputs, native.outputs);
  EXPECT_EQ(over.messages, native.messages);
}

TEST(Transformer, TwoStagePipelineMatchesReference) {
  // Theorem 3 second branch in miniature: stage 1 = Sampler spanner H;
  // stage 2 = the Voronoi nearly-additive construction *expressed as a
  // LOCAL payload is exercised in test_integration*; here we validate the
  // plumbing run_over_spanner() used by that pipeline.
  util::Xoshiro256 rng(31);
  const Graph g = graph::erdos_renyi_gnm(150, 1000, rng);
  const auto cfg = SamplerConfig::paper_faithful(1, 2, 37);
  const auto spanner_run = core::build_spanner(g, cfg);
  const localsim::LeaderElection alg(2);
  const auto over = localsim::run_over_spanner(
      g, alg, spanner_run.edges, cfg.stretch_bound(), 41);
  EXPECT_EQ(over.outputs, localsim::run_reference(g, alg));
}

}  // namespace
}  // namespace fl
