// Tests for the baseline spanner constructions (Baswana–Sen, topology
// collection, Voronoi-cell nearly-additive stage).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "baseline/baswana_sen.hpp"
#include "baseline/nearly_additive.hpp"
#include "baseline/topology_collect.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "graph/spanner_check.hpp"
#include "util/rng.hpp"

namespace fl {
namespace {

using graph::EdgeId;
using graph::Graph;

TEST(BaswanaSen, KOneKeepsAllEdges) {
  util::Xoshiro256 rng(3);
  const Graph g = graph::erdos_renyi_gnm(100, 500, rng);
  const auto res = baseline::build_baswana_sen(g, 1, 7);
  EXPECT_EQ(res.edges.size(), g.num_edges());
}

TEST(BaswanaSen, StretchBoundHolds) {
  util::Xoshiro256 rng(5);
  for (unsigned k : {2u, 3u}) {
    const Graph g = graph::erdos_renyi_gnm(300, 4000, rng);
    const auto res = baseline::build_baswana_sen(g, k, 11 + k);
    const auto rep =
        graph::check_spanner_exact(g, res.edges, res.stretch_bound());
    EXPECT_TRUE(rep.connected) << "k=" << k;
    EXPECT_EQ(rep.violations, 0u) << "k=" << k;
  }
}

TEST(BaswanaSen, SparsifiesDenseGraphs) {
  const Graph g = graph::complete(300);
  const auto res = baseline::build_baswana_sen(g, 3, 13);
  // E|S| = O(k n^{1+1/k}); generous factor for the constants.
  const double bound = 12.0 * 3.0 * std::pow(300.0, 1.0 + 1.0 / 3.0);
  EXPECT_LT(static_cast<double>(res.edges.size()), bound);
  EXPECT_LT(res.edges.size(), g.num_edges() / 3);
}

TEST(BaswanaSen, DeterministicGivenSeed) {
  util::Xoshiro256 rng(7);
  const Graph g = graph::erdos_renyi_gnm(200, 2000, rng);
  const auto a = baseline::build_baswana_sen(g, 2, 99);
  const auto b = baseline::build_baswana_sen(g, 2, 99);
  EXPECT_EQ(a.edges, b.edges);
}

TEST(BaswanaSen, DistributedMatchesCentralized) {
  // Same keyed coins => identical decisions => identical spanners.
  util::Xoshiro256 rng(11);
  const Graph g = graph::erdos_renyi_gnm(250, 2500, rng);
  for (unsigned k : {2u, 3u}) {
    const auto central = baseline::build_baswana_sen(g, k, 31);
    const auto dist = baseline::run_distributed_baswana_sen(g, k, 31);
    EXPECT_EQ(central.edges, dist.result.edges) << "k=" << k;
  }
}

TEST(BaswanaSen, DistributedUsesOmegaMMessages) {
  // The whole point of the baseline: its message count scales with m.
  util::Xoshiro256 rng(13);
  const graph::NodeId n = 256;
  const Graph sparse = graph::erdos_renyi_gnm(n, 4 * n, rng);
  const Graph dense = graph::erdos_renyi_gnm(n, 24 * n, rng);
  const auto rs = baseline::run_distributed_baswana_sen(sparse, 2, 17);
  const auto rd = baseline::run_distributed_baswana_sen(dense, 2, 17);
  // Messages at least the first-round announcement: 2m each way.
  EXPECT_GE(rs.stats.messages, 2 * static_cast<std::uint64_t>(sparse.num_edges()));
  EXPECT_GE(rd.stats.messages, 2 * static_cast<std::uint64_t>(dense.num_edges()));
  const double ratio = static_cast<double>(rd.stats.messages) /
                       static_cast<double>(rs.stats.messages);
  EXPECT_GT(ratio, 3.0);  // ~6x density -> clearly density-scaled messages
}

TEST(BaswanaSen, DistributedRoundsLinearInK) {
  util::Xoshiro256 rng(17);
  const Graph g = graph::erdos_renyi_gnm(200, 1600, rng);
  for (unsigned k : {2u, 3u, 4u}) {
    const auto run = baseline::run_distributed_baswana_sen(g, k, 19);
    EXPECT_LE(run.stats.rounds, 2 * k + 4) << "k=" << k;
  }
}

TEST(TopologyCollect, ProducesSameSpannerAsCentralBaswanaSen) {
  util::Xoshiro256 rng(19);
  const Graph g = graph::erdos_renyi_gnm(150, 900, rng);
  const auto run = baseline::run_topology_collect(g, 2, 23);
  const auto central = baseline::build_baswana_sen(g, 2, 23);
  EXPECT_EQ(run.edges, central.edges);
}

TEST(TopologyCollect, RoundsScaleWithDiameter) {
  const Graph ringg = graph::ring(200);      // diameter 100
  const Graph clique = graph::complete(200); // diameter 1
  const auto r1 = baseline::run_topology_collect(ringg, 2, 29);
  const auto r2 = baseline::run_topology_collect(clique, 2, 29);
  EXPECT_GT(r1.stats.rounds, 20 * r2.stats.rounds);
}

TEST(TopologyCollect, MessagesScaleWithEdges) {
  util::Xoshiro256 rng(23);
  const graph::NodeId n = 200;
  const Graph sparse = graph::erdos_renyi_gnm(n, 2 * n, rng);
  const Graph dense = graph::erdos_renyi_gnm(n, 20 * n, rng);
  const auto rs = baseline::run_topology_collect(sparse, 2, 31);
  const auto rd = baseline::run_topology_collect(dense, 2, 31);
  EXPECT_GE(rd.stats.messages, 2 * static_cast<std::uint64_t>(dense.num_edges()));
  EXPECT_GT(static_cast<double>(rd.stats.messages),
            4.0 * static_cast<double>(rs.stats.messages));
}

TEST(TopologyCollect, WorksOnPathAndStar) {
  const auto p = baseline::run_topology_collect(graph::path(50), 2, 37);
  EXPECT_EQ(p.edges.size(), 49u);  // trees keep every edge
  const auto s = baseline::run_topology_collect(graph::star(50), 2, 37);
  EXPECT_EQ(s.edges.size(), 49u);
}

TEST(NearlyAdditive, StretchBoundHolds) {
  util::Xoshiro256 rng(29);
  for (unsigned r : {1u, 2u, 3u}) {
    const Graph g = graph::erdos_renyi_gnm(300, 3000, rng);
    const auto res = baseline::build_nearly_additive(g, r, 41 + r);
    const auto rep =
        graph::check_spanner_exact(g, res.edges, res.stretch_bound());
    EXPECT_TRUE(rep.connected) << "r=" << r;
    EXPECT_EQ(rep.violations, 0u) << "r=" << r;
  }
}

TEST(NearlyAdditive, LocalEdgesUnionEqualsGlobal) {
  // The ball-locality property that makes it a t-round LOCAL algorithm.
  util::Xoshiro256 rng(31);
  const Graph g = graph::erdos_renyi_gnm(200, 1400, rng);
  const unsigned r = 2;
  const std::uint64_t seed = 43;
  const auto global = baseline::build_nearly_additive(g, r, seed);
  std::vector<bool> in_union(g.num_edges(), false);
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v)
    for (const EdgeId e : baseline::nearly_additive_local_edges(g, v, r, seed))
      in_union[e] = true;
  std::vector<EdgeId> union_edges;
  for (EdgeId e = 0; e < g.num_edges(); ++e)
    if (in_union[e]) union_edges.push_back(e);
  EXPECT_EQ(union_edges, global.edges);
}

TEST(NearlyAdditive, SparsifiesDenseGraphs) {
  const Graph g = graph::complete(400);
  const auto res = baseline::build_nearly_additive(g, 2, 47);
  EXPECT_LT(res.edges.size(), g.num_edges() / 4);
  EXPECT_EQ(res.unclustered, 0u);  // K_n: everyone within 1 of any center
}

TEST(NearlyAdditive, UnclusteredNodesKeepEdges) {
  // A long path with radius 1 and few centers leaves unclustered nodes;
  // connectivity must survive because they keep their incident edges.
  const Graph g = graph::path(300);
  const auto res = baseline::build_nearly_additive(g, 1, 53);
  const graph::SubgraphView h(g, res.edges);
  EXPECT_TRUE(h.preserves_connectivity());
}

TEST(NearlyAdditive, CenterCountNearExpectation) {
  const graph::NodeId n = 4096;
  const Graph g = graph::ring(n);
  const auto res = baseline::build_nearly_additive(g, 3, 59);
  const double expected = n * baseline::nearly_additive_center_prob(n);
  EXPECT_GT(static_cast<double>(res.centers), expected / 2.0);
  EXPECT_LT(static_cast<double>(res.centers), expected * 2.0);
}

}  // namespace
}  // namespace fl
