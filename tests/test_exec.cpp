// Tests for the parallel round-execution engine (sim/exec.hpp): shard
// partitioning (uniform and degree-weighted), the worker pool, and — the
// load-bearing contract — bit determinism of RunStats, Metrics and
// protocol outputs across thread counts, balance modes and graph families
// (dense, sparse, skewed), anchored by a pinned golden trace.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <tuple>
#include <vector>

#include "core/config.hpp"
#include "core/distributed_sampler.hpp"
#include "graph/generators.hpp"
#include "localsim/tlocal_broadcast.hpp"
#include "sim/exec.hpp"
#include "sim/network.hpp"
#include "trace_hash.hpp"
#include "util/assert.hpp"

namespace fl::sim {
namespace {

using graph::EdgeId;
using graph::Graph;
using graph::NodeId;

// ------------------------------------------------------- partition_nodes

TEST(PartitionNodes, BalancedContiguousCover) {
  const auto shards = partition_nodes(10, 3);
  ASSERT_EQ(shards.size(), 3u);
  EXPECT_EQ(shards[0], (ShardRange{0, 4}));  // larger shards first
  EXPECT_EQ(shards[1], (ShardRange{4, 7}));
  EXPECT_EQ(shards[2], (ShardRange{7, 10}));
}

TEST(PartitionNodes, EvenSplit) {
  const auto shards = partition_nodes(8, 4);
  ASSERT_EQ(shards.size(), 4u);
  for (unsigned s = 0; s < 4; ++s)
    EXPECT_EQ(shards[s], (ShardRange{2 * s, 2 * s + 2}));
}

TEST(PartitionNodes, FewerNodesThanShards) {
  // Never more than one shard per node: n < threads collapses to n
  // singleton shards, all non-empty.
  const auto shards = partition_nodes(3, 8);
  ASSERT_EQ(shards.size(), 3u);
  for (NodeId v = 0; v < 3; ++v) EXPECT_EQ(shards[v], (ShardRange{v, v + 1}));
}

TEST(PartitionNodes, SingleNodeAndSingleShard) {
  EXPECT_EQ(partition_nodes(1, 8), (std::vector<ShardRange>{{0, 1}}));
  EXPECT_EQ(partition_nodes(5, 1), (std::vector<ShardRange>{{0, 5}}));
  // A zero shard request clamps to one.
  EXPECT_EQ(partition_nodes(5, 0), (std::vector<ShardRange>{{0, 5}}));
}

TEST(PartitionNodes, CoversEveryNodeExactlyOnce) {
  for (const NodeId n : {1u, 2u, 7u, 64u, 1001u}) {
    for (const unsigned t : {1u, 2u, 3u, 8u, 64u}) {
      const auto shards = partition_nodes(n, t);
      NodeId expect_begin = 0;
      for (const auto& s : shards) {
        EXPECT_EQ(s.begin, expect_begin);
        EXPECT_GT(s.end, s.begin);  // non-empty
        expect_begin = s.end;
      }
      EXPECT_EQ(expect_begin, n);
      // Balanced: sizes differ by at most one.
      NodeId lo = n, hi = 0;
      for (const auto& s : shards) {
        lo = std::min(lo, s.size());
        hi = std::max(hi, s.size());
      }
      EXPECT_LE(hi - lo, 1u);
    }
  }
}

// ------------------------------------- partition_nodes (degree-weighted)

/// Contiguous, non-empty, ascending cover of [0, n) — the structural
/// invariants every weighted cut must preserve.
void expect_partition_invariants(const std::vector<ShardRange>& shards,
                                 NodeId n, unsigned requested) {
  ASSERT_FALSE(shards.empty());
  EXPECT_LE(shards.size(), std::min<std::size_t>(requested, n));
  NodeId expect_begin = 0;
  for (const auto& s : shards) {
    EXPECT_EQ(s.begin, expect_begin);
    EXPECT_GT(s.end, s.begin);
    expect_begin = s.end;
  }
  EXPECT_EQ(expect_begin, n);
}

TEST(PartitionNodesWeighted, StarHubGetsASingletonShard) {
  // Star on 12 nodes, hub first: weights deg + 1 = {12, 2, 2, ...}. The
  // hub alone carries more than 1/4 of the total weight, so with 4 shards
  // the first cut must isolate it; the leaves split the rest.
  const NodeId n = 12;
  std::vector<std::uint64_t> w(n, 2);
  w[0] = 12;
  const auto shards = partition_nodes(n, 4, w);
  expect_partition_invariants(shards, n, 4);
  ASSERT_EQ(shards.size(), 4u);
  EXPECT_EQ(shards[0], (ShardRange{0, 1}));  // the hub, alone
  // No leaf shard is grossly imbalanced (total leaf weight 22 over 3
  // shards → 3..4 leaves each).
  for (unsigned s = 1; s < 4; ++s) {
    EXPECT_GE(shards[s].size(), 3u);
    EXPECT_LE(shards[s].size(), 4u);
  }
}

TEST(PartitionNodesWeighted, UniformWeightsMatchUniformCuts) {
  const NodeId n = 64;
  const std::vector<std::uint64_t> w(n, 5);
  EXPECT_EQ(partition_nodes(n, 8, w), partition_nodes(n, 8));
}

TEST(PartitionNodesWeighted, FewerNodesThanShards) {
  const std::vector<std::uint64_t> w{7, 1, 3};
  const auto shards = partition_nodes(3, 8, w);
  expect_partition_invariants(shards, 3, 8);
  EXPECT_EQ(shards.size(), 3u);  // one singleton shard per node
}

TEST(PartitionNodesWeighted, AllWeightOnOneNodeStillCoversEveryNode) {
  // One node holds all the weight: it gets a singleton shard and the
  // remaining (weightless) nodes are still spread over non-empty shards —
  // the clamp never starves a trailing shard.
  for (const NodeId heavy : {NodeId{0}, NodeId{5}, NodeId{9}}) {
    std::vector<std::uint64_t> w(10, 0);
    w[heavy] = 1000;
    const auto shards = partition_nodes(10, 4, w);
    expect_partition_invariants(shards, 10, 4);
    ASSERT_EQ(shards.size(), 4u);
  }
}

TEST(PartitionNodesWeighted, CutsTrackThePrefixMarks) {
  // Ascending weights: early nodes are cheap, so early shards must take
  // more nodes than late ones; every shard's weight stays within one
  // max-weight of the ideal total/k slice.
  const NodeId n = 100;
  std::vector<std::uint64_t> w(n);
  std::uint64_t total = 0;
  for (NodeId v = 0; v < n; ++v) {
    w[v] = v + 1;
    total += w[v];
  }
  const unsigned k = 5;
  const auto shards = partition_nodes(n, k, w);
  expect_partition_invariants(shards, n, k);
  ASSERT_EQ(shards.size(), k);
  EXPECT_GT(shards.front().size(), shards.back().size());
  for (const auto& s : shards) {
    std::uint64_t weight = 0;
    for (NodeId v = s.begin; v < s.end; ++v) weight += w[v];
    EXPECT_LT(weight, total / k + n + 1);  // ideal slice + one max weight
  }
}

// --------------------------------------------------------------- ExecPool

TEST(ExecPool, RunsEveryLaneOncePerCall) {
  ExecPool pool(4);
  EXPECT_EQ(pool.lanes(), 4u);
  std::vector<std::atomic<int>> hits(4);
  for (int call = 0; call < 3; ++call)
    pool.run([&](unsigned lane) { ++hits[lane]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 3);
}

TEST(ExecPool, BarriersBeforeReturning) {
  // Every lane's side effect must be visible when run() returns.
  ExecPool pool(8);
  std::vector<int> out(8, 0);
  pool.run([&](unsigned lane) { out[lane] = static_cast<int>(lane) + 1; });
  for (unsigned lane = 0; lane < 8; ++lane)
    EXPECT_EQ(out[lane], static_cast<int>(lane) + 1);
}

TEST(ExecPool, PropagatesWorkerExceptions) {
  ExecPool pool(4);
  EXPECT_THROW(pool.run([](unsigned lane) {
                 if (lane == 2) throw std::runtime_error("boom");
               }),
               std::runtime_error);
  // The pool stays usable after a throwing job.
  std::vector<std::atomic<int>> hits(4);
  pool.run([&](unsigned lane) { ++hits[lane]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ExecPool, SingleLaneRunsInline) {
  ExecPool pool(1);
  int x = 0;
  pool.run([&](unsigned) { ++x; });
  EXPECT_EQ(x, 1);
  EXPECT_THROW(pool.run([](unsigned) { throw std::runtime_error("boom"); }),
               std::runtime_error);
}

// ------------------------------------------------- network determinism

/// Chatty deterministic workload: every node records its full delivery log
/// (round, from, edge, payload) and keeps sending pseudo-random values over
/// pseudo-randomly skipped edges — exercising both send-resolution paths,
/// the per-node RNG streams, and rounds where many inboxes are empty.
class ChatterProbe final : public NodeProgram {
 public:
  ChatterProbe(NodeId self, unsigned active) : self_(self), active_(active) {}

  std::vector<std::tuple<std::size_t, NodeId, EdgeId, std::uint64_t>> heard;

  void on_start(Context& ctx) override { maybe_send(ctx); }

  void on_round(Context& ctx, InboxView inbox) override {
    for (const auto& m : inbox) {
      EXPECT_EQ(m.to(), self_);
      heard.emplace_back(ctx.round(), m.from(), m.edge(),
                         payload_as<std::uint64_t>(m));
    }
    maybe_send(ctx);
  }

  bool done() const override { return true; }  // quiesce on silence

 private:
  void maybe_send(Context& ctx) {
    if (ctx.round() >= active_) return;
    for (const EdgeId e : ctx.incident_edges()) {
      if (ctx.rng().bernoulli(0.25)) continue;  // skip → cursor misses too
      ctx.send(e, ctx.rng()());
    }
  }

  NodeId self_;
  unsigned active_;
};

struct ChatterResult {
  RunStats stats;
  Metrics metrics;
  std::vector<std::vector<std::tuple<std::size_t, NodeId, EdgeId,
                                     std::uint64_t>>> logs;
};

ChatterResult run_chatter(const Graph& g, ParallelConfig par) {
  Network net(g, Knowledge::EdgeIds, 7);
  net.set_parallelism(par);
  net.install_all<ChatterProbe>(8u);
  ChatterResult res;
  res.stats = net.run(60);
  EXPECT_TRUE(res.stats.terminated);
  res.metrics = net.metrics();
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    res.logs.push_back(net.program_as<ChatterProbe>(v).heard);
  return res;
}

void expect_identical(const ChatterResult& a, const ChatterResult& b) {
  EXPECT_EQ(a.stats.rounds, b.stats.rounds);
  EXPECT_EQ(a.stats.messages, b.stats.messages);
  EXPECT_EQ(a.stats.terminated, b.stats.terminated);
  EXPECT_EQ(a.metrics.messages_total, b.metrics.messages_total);
  EXPECT_EQ(a.metrics.words_total, b.metrics.words_total);
  EXPECT_EQ(a.metrics.messages_per_round, b.metrics.messages_per_round);
  EXPECT_EQ(a.metrics.messages_per_node, b.metrics.messages_per_node);
  EXPECT_EQ(a.logs, b.logs);
}

TEST(ParallelNetwork, BitIdenticalAcrossThreadCountsOnEveryFamily) {
  // The determinism suite: dense (ER), sparse (tree) and skewed
  // (power-law) families, each run at 1, 2 and 8 lanes and under both
  // shard-balance modes — RunStats, Metrics and every per-node delivery
  // log must be bit-identical throughout.
  util::Xoshiro256 dense_rng(123), sparse_rng(124), skew_rng(125);
  const Graph dense = graph::erdos_renyi_gnm(97, 400, dense_rng);  // odd n
  const Graph sparse = graph::random_tree(101, sparse_rng);
  const Graph skewed = graph::barabasi_albert(90, 6, skew_rng);
  for (const Graph* g : {&dense, &sparse, &skewed}) {
    const auto seq = run_chatter(*g, {1});
    EXPECT_GT(seq.stats.messages, 0u);
    for (const unsigned threads : {2u, 8u}) {
      for (const ShardBalance balance :
           {ShardBalance::Uniform, ShardBalance::Degree}) {
        const auto par = run_chatter(*g, {threads, balance});
        expect_identical(seq, par);
      }
    }
  }
}

TEST(ParallelNetwork, ChatterMatchesPinnedGoldenTrace) {
  // Golden-trace anchor (formerly the flat-vs-legacy A/B): the sequential
  // chatter run on the dense graph, hashed event by event. The thread-
  // count matrix above proves every configuration equals the sequential
  // run; this hash pins the sequential run itself to the behaviour the
  // deleted legacy engine certified.
  util::Xoshiro256 rng(123);
  const Graph g = graph::erdos_renyi_gnm(97, 400, rng);
  const auto seq = run_chatter(g, {1});
  testing::TraceHash h;
  h.u64(seq.stats.rounds).u64(seq.stats.messages);
  h.u64(seq.metrics.words_total);
  for (const auto c : seq.metrics.messages_per_round) h.u64(c);
  for (const auto c : seq.metrics.messages_per_node) h.u64(c);
  for (const auto& log : seq.logs) {
    h.u64(log.size());
    for (const auto& [round, from, edge, payload] : log)
      h.u64(round).u64(from).u64(edge).u64(payload);
  }
  EXPECT_EQ(h.value(), 0xb76783e3caeb7eb4ull)
      << "chatter golden trace moved: 0x" << std::hex << h.value();
}

TEST(ParallelNetwork, MoreThreadsThanNodes) {
  const Graph g = graph::ring(5);
  const auto seq = run_chatter(g, {1});
  const auto par = run_chatter(g, {8});
  expect_identical(seq, par);
}

/// A program that never sends: every round is an empty round.
class Silent final : public NodeProgram {
 public:
  explicit Silent(NodeId) {}
  void on_start(Context&) override {}
  void on_round(Context&, InboxView) override {}
  bool done() const override { return true; }
};

TEST(ParallelNetwork, EmptyRoundsTerminateUnderEveryThreadCount) {
  const Graph g = graph::ring(12);
  for (const unsigned threads : {1u, 2u, 8u}) {
    Network net(g, Knowledge::EdgeIds, 1);
    net.set_parallelism({threads});
    net.install_all<Silent>();
    const RunStats stats = net.run(10);
    EXPECT_TRUE(stats.terminated);
    EXPECT_EQ(stats.messages, 0u);
    for (NodeId v = 0; v < g.num_nodes(); ++v)
      EXPECT_TRUE(net.inbox_span(v).empty());
  }
}

/// Node 0 sends four numbered payloads over the single edge in round 0.
class Burst final : public NodeProgram {
 public:
  explicit Burst(NodeId self) : self_(self) {}
  std::vector<unsigned> got;

  void on_start(Context& ctx) override {
    if (self_ == 0)
      for (unsigned i = 1; i <= 4; ++i) ctx.send(ctx.incident_edges()[0], i);
  }
  void on_round(Context&, InboxView inbox) override {
    for (const auto& m : inbox) got.push_back(payload_as<unsigned>(m));
  }
  bool done() const override { return true; }

 private:
  NodeId self_;
};

TEST(ParallelNetwork, PreRunSendsSurviveLaneRepartition) {
  // A Context constructed before the run (two-argument form) must keep
  // working: its sends land in lane 0 and are delivered in the first
  // round together with the on_start sends, under any thread count.
  const Graph g = graph::path(2);
  for (const unsigned threads : {1u, 8u}) {
    Network net(g, Knowledge::EdgeIds, 1);
    net.set_parallelism({threads});
    net.install_all<Burst>();  // node 0 sends 1..4 in on_start
    Context pre(net, 1);
    pre.send(pre.incident_edges()[0], unsigned{99});
    const RunStats stats = net.run(5);
    EXPECT_TRUE(stats.terminated);
    EXPECT_EQ(stats.messages, 5u);
    EXPECT_EQ(net.program_as<Burst>(0).got, (std::vector<unsigned>{99}));
    EXPECT_EQ(net.program_as<Burst>(1).got,
              (std::vector<unsigned>{1, 2, 3, 4}));
  }
}

TEST(ParallelNetwork, ParallelismLockedOnceStarted) {
  const Graph g = graph::ring(4);
  Network net(g, Knowledge::EdgeIds, 1);
  net.set_parallelism({4});
  net.install_all<Silent>();
  net.run(5);
  EXPECT_THROW(net.set_parallelism({2}), util::ContractViolation);
}

TEST(ParallelNetwork, ContractViolationsSurfaceFromWorkerLanes) {
  // A program that sends over a foreign edge must throw out of run() even
  // when the offending node is stepped on a worker thread.
  Graph::Builder b(8);
  for (NodeId v = 0; v + 1 < 8; ++v) b.add_edge(v, v + 1);
  const EdgeId far = 0;  // edge 0-1; node 7 is not an endpoint
  const Graph g = std::move(b).build();
  Network net(g, Knowledge::EdgeIds, 1);
  net.set_parallelism({8});
  net.install([far](NodeId v) {
    class P final : public NodeProgram {
     public:
      P(NodeId self, EdgeId e) : self_(self), e_(e) {}
      void on_start(Context& ctx) override {
        if (self_ == 7) ctx.send(e_, 1);
      }
      void on_round(Context&, InboxView) override {}
      bool done() const override { return true; }

     private:
      NodeId self_;
      EdgeId e_;
    };
    return std::make_unique<P>(v, far);
  });
  EXPECT_THROW(net.run(5), util::ContractViolation);
}

// ------------------------------------- protocol outputs across threads

TEST(ParallelProtocols, SpannerEdgesInvariantUnderThreads) {
  util::Xoshiro256 rng(5);
  const Graph g = graph::erdos_renyi_gnm(120, 600, rng);
  const auto cfg = core::SamplerConfig::bench_profile(2, 2, 7);

  auto run_with_threads = [&](unsigned threads) {
    // run_distributed_sampler builds its Network internally; the engine
    // picks up FL_SIM_THREADS at construction, so thread the knob through
    // the environment exactly as a user would.
    if (threads == 1) {
      unsetenv("FL_SIM_THREADS");
    } else {
      setenv("FL_SIM_THREADS", std::to_string(threads).c_str(), 1);
    }
    auto run = core::run_distributed_sampler(g, cfg);
    unsetenv("FL_SIM_THREADS");
    return run;
  };

  const auto seq = run_with_threads(1);
  EXPECT_FALSE(seq.edges.empty());
  for (const unsigned threads : {2u, 8u}) {
    const auto par = run_with_threads(threads);
    EXPECT_EQ(seq.edges, par.edges);
    EXPECT_EQ(seq.stats.rounds, par.stats.rounds);
    EXPECT_EQ(seq.stats.messages, par.stats.messages);
    EXPECT_EQ(seq.metrics.messages_per_node, par.metrics.messages_per_node);
    EXPECT_EQ(seq.breakdown.total(), par.breakdown.total());
  }
}

TEST(ParallelProtocols, BroadcastResultsInvariantUnderThreads) {
  util::Xoshiro256 rng(17);
  const Graph g = graph::erdos_renyi_gnm(80, 240, rng);
  const auto edges = localsim::all_edges(g);

  auto run_with_threads = [&](unsigned threads) {
    if (threads == 1) {
      unsetenv("FL_SIM_THREADS");
    } else {
      setenv("FL_SIM_THREADS", std::to_string(threads).c_str(), 1);
    }
    auto run = localsim::run_tlocal_broadcast(g, edges, 3, 9);
    unsetenv("FL_SIM_THREADS");
    return run;
  };

  const auto seq = run_with_threads(1);
  for (const unsigned threads : {2u, 8u}) {
    const auto par = run_with_threads(threads);
    EXPECT_EQ(seq.reached, par.reached);
    EXPECT_EQ(seq.stats.rounds, par.stats.rounds);
    EXPECT_EQ(seq.stats.messages, par.stats.messages);
  }
}

TEST(ParallelNetwork, StepInterleavingMatchesSequential) {
  // Layered protocols drive the network through step(); the parallel
  // engine must keep partial-run state identical too.
  util::Xoshiro256 rng(31);
  const Graph g = graph::erdos_renyi_gnm(50, 150, rng);

  auto run_stepped = [&](unsigned threads) {
    Network net(g, Knowledge::EdgeIds, 3);
    net.set_parallelism({threads});
    net.install_all<ChatterProbe>(6u);
    net.step(4);
    net.step(4);
    const auto rounds_mid = net.round();
    net.run(60);
    std::vector<std::vector<std::tuple<std::size_t, NodeId, EdgeId,
                                       std::uint64_t>>> logs;
    for (NodeId v = 0; v < g.num_nodes(); ++v)
      logs.push_back(net.program_as<ChatterProbe>(v).heard);
    return std::tuple{rounds_mid, net.metrics().messages_total,
                      std::move(logs)};
  };

  EXPECT_EQ(run_stepped(1), run_stepped(8));
}

}  // namespace
}  // namespace fl::sim
