// Tests for the simple-graph substrate: construction, incidence, lookup,
// unique edge IDs, I/O round-trips and contract enforcement.
#include <gtest/gtest.h>

#include <sstream>

#include "graph/graph.hpp"
#include "graph/io.hpp"
#include "util/assert.hpp"

namespace fl::graph {
namespace {

Graph triangle() {
  Graph::Builder b(3);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(0, 2);
  return std::move(b).build();
}

TEST(Graph, BasicShape) {
  const Graph g = triangle();
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_DOUBLE_EQ(g.average_degree(), 2.0);
}

TEST(Graph, EdgeIdsAreStableAndShared) {
  // The model assumption: an edge's id is the same from both endpoints.
  const Graph g = triangle();
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Endpoints ep = g.endpoints(e);
    EXPECT_EQ(g.find_edge(ep.u, ep.v), e);
    EXPECT_EQ(g.find_edge(ep.v, ep.u), e);
    bool found_u = false, found_v = false;
    for (const auto& inc : g.incident(ep.u))
      if (inc.edge == e) found_u = true;
    for (const auto& inc : g.incident(ep.v))
      if (inc.edge == e) found_v = true;
    EXPECT_TRUE(found_u && found_v);
  }
}

TEST(Graph, EndpointsNormalized) {
  Graph::Builder b(4);
  b.add_edge(3, 1);
  const Graph g = std::move(b).build();
  const Endpoints ep = g.endpoints(0);
  EXPECT_EQ(ep.u, 1u);
  EXPECT_EQ(ep.v, 3u);
}

TEST(Graph, OtherEndpoint) {
  const Graph g = triangle();
  const EdgeId e = g.find_edge(0, 2);
  EXPECT_EQ(g.other_endpoint(e, 0), 2u);
  EXPECT_EQ(g.other_endpoint(e, 2), 0u);
  EXPECT_THROW(g.other_endpoint(e, 1), util::ContractViolation);
}

TEST(Graph, IncidenceSortedByNeighbor) {
  Graph::Builder b(5);
  b.add_edge(2, 4);
  b.add_edge(2, 0);
  b.add_edge(2, 3);
  const Graph g = std::move(b).build();
  const auto inc = g.incident(2);
  ASSERT_EQ(inc.size(), 3u);
  EXPECT_EQ(inc[0].to, 0u);
  EXPECT_EQ(inc[1].to, 3u);
  EXPECT_EQ(inc[2].to, 4u);
}

TEST(Graph, HasEdgeNegative) {
  const Graph g = triangle();
  EXPECT_FALSE(g.has_edge(0, 0));
  EXPECT_TRUE(g.has_edge(0, 1));
  Graph::Builder b(4);
  b.add_edge(0, 1);
  const Graph g2 = std::move(b).build();
  EXPECT_FALSE(g2.has_edge(2, 3));
}

TEST(Graph, BuilderRejectsBadEdges) {
  Graph::Builder b(3);
  b.add_edge(0, 1);
  EXPECT_THROW(b.add_edge(0, 1), util::ContractViolation);  // duplicate
  EXPECT_THROW(b.add_edge(1, 0), util::ContractViolation);  // dup reversed
  EXPECT_THROW(b.add_edge(1, 1), util::ContractViolation);  // self loop
  EXPECT_THROW(b.add_edge(0, 3), util::ContractViolation);  // out of range
}

TEST(Graph, EmptyAndEdgelessGraphs) {
  Graph::Builder b(4);
  const Graph g = std::move(b).build();
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.degree(2), 0u);
  EXPECT_TRUE(g.incident(1).empty());
}

TEST(GraphIo, EdgeListRoundTrip) {
  const Graph g = triangle();
  std::stringstream ss;
  write_edge_list(ss, g);
  const Graph back = read_edge_list(ss);
  EXPECT_EQ(back.num_nodes(), g.num_nodes());
  ASSERT_EQ(back.num_edges(), g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e)
    EXPECT_EQ(back.endpoints(e), g.endpoints(e));
}

TEST(GraphIo, ReadSkipsComments) {
  std::stringstream ss("# header\nn 2\n# mid\ne 0 1\n");
  const Graph g = read_edge_list(ss);
  EXPECT_EQ(g.num_nodes(), 2u);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(GraphIo, ReadRejectsGarbage) {
  std::stringstream no_n("e 0 1\n");
  EXPECT_THROW(read_edge_list(no_n), util::ContractViolation);
  std::stringstream bad_tag("n 2\nx 0 1\n");
  EXPECT_THROW(read_edge_list(bad_tag), util::ContractViolation);
}

TEST(GraphIo, DotHighlightsSpannerEdges) {
  const Graph g = triangle();
  std::ostringstream os;
  const std::vector<EdgeId> spanner{0};
  write_dot(os, g, spanner, "T");
  const std::string s = os.str();
  EXPECT_NE(s.find("graph T"), std::string::npos);
  EXPECT_NE(s.find("crimson"), std::string::npos);
}

}  // namespace
}  // namespace fl::graph
