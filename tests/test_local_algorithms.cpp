// Unit tests for the concrete LOCAL payload algorithms.
#include <gtest/gtest.h>

#include <set>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "localsim/algorithms.hpp"
#include "util/rng.hpp"

namespace fl {
namespace {

using graph::Graph;
using graph::NodeId;

TEST(LubyMis, OutputsFormIndependentSet) {
  util::Xoshiro256 rng(3);
  const Graph g = graph::erdos_renyi_gnm(200, 1200, rng);
  const localsim::LubyMis alg(7);
  const auto out = localsim::run_reference(g, alg);
  for (const auto& e : g.edges())
    EXPECT_FALSE(out[e.u] == 1 && out[e.v] == 1)
        << "adjacent MIS members " << e.u << "," << e.v;
}

TEST(LubyMis, ConvergesToMaximalSetWithFullBudget) {
  util::Xoshiro256 rng(5);
  const Graph g = graph::erdos_renyi_gnm(150, 700, rng);
  const localsim::LubyMis alg(11);  // 4 log n rounds
  const auto out = localsim::run_reference(g, alg);
  std::size_t undecided = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (out[v] == localsim::LubyMis::kUndecided) ++undecided;
    if (out[v] == 0) {
      // Every dominated node must have an MIS neighbour.
      bool covered = false;
      for (const auto& inc : g.incident(v))
        if (out[inc.to] == 1) covered = true;
      EXPECT_TRUE(covered) << "node " << v << " dominated by nobody";
    }
  }
  EXPECT_EQ(undecided, 0u);
}

TEST(LubyMis, TruncationLeavesOnlyUndecided) {
  // With a 1-round budget the set must still be independent; nodes may be
  // undecided but never inconsistently decided.
  util::Xoshiro256 rng(7);
  const Graph g = graph::erdos_renyi_gnm(100, 600, rng);
  const localsim::LubyMis alg(13, 1);
  const auto out = localsim::run_reference(g, alg);
  for (const auto& e : g.edges())
    EXPECT_FALSE(out[e.u] == 1 && out[e.v] == 1);
}

TEST(GreedyColoring, ProperColoring) {
  util::Xoshiro256 rng(11);
  const Graph g = graph::erdos_renyi_gnm(200, 1400, rng);
  const localsim::GreedyColoring alg(17);
  const auto out = localsim::run_reference(g, alg);
  for (const auto& e : g.edges()) {
    if (out[e.u] == 0 || out[e.v] == 0) continue;  // undecided
    EXPECT_NE(out[e.u], out[e.v]) << "edge " << e.u << "-" << e.v;
  }
}

TEST(GreedyColoring, FullBudgetColorsEverything) {
  util::Xoshiro256 rng(13);
  const Graph g = graph::erdos_renyi_gnm(120, 500, rng);
  const localsim::GreedyColoring alg(19);
  const auto out = localsim::run_reference(g, alg);
  std::size_t uncolored = 0;
  std::uint64_t max_color = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (out[v] == 0) ++uncolored;
    max_color = std::max(max_color, out[v]);
  }
  EXPECT_EQ(uncolored, 0u);
  // Greedy never exceeds Δ+1 colors (+1 for our 1-based encoding).
  NodeId max_deg = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    max_deg = std::max(max_deg, g.degree(v));
  EXPECT_LE(max_color, static_cast<std::uint64_t>(max_deg) + 2);
}

TEST(BfsLayers, DistancesMatchBfs) {
  util::Xoshiro256 rng(17);
  const Graph g = graph::erdos_renyi_gnm(150, 600, rng);
  const unsigned t = 4;
  const localsim::BfsLayers alg(t, 17);
  const auto out = localsim::run_reference(g, alg);
  // Brute force: multi-source BFS from all nodes with id % 17 == 0.
  std::vector<std::uint32_t> best(g.num_nodes(), t + 1);
  for (NodeId s = 0; s < g.num_nodes(); s += 17) {
    const auto dist = graph::bfs_distances_bounded(g, s, t);
    for (NodeId v = 0; v < g.num_nodes(); ++v)
      if (dist[v] != graph::kUnreachable)
        best[v] = std::min(best[v], dist[v]);
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    EXPECT_EQ(out[v], best[v]) << "node " << v;
}

TEST(LeaderElection, MaxIdWithinBall) {
  const Graph g = graph::ring(24);
  const localsim::LeaderElection alg(3);
  const auto out = localsim::run_reference(g, alg);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    NodeId expect = v;
    for (int d = -3; d <= 3; ++d) {
      const NodeId u = static_cast<NodeId>((v + 24 + d) % 24);
      expect = std::max(expect, u);
    }
    EXPECT_EQ(out[v], expect);
  }
}

TEST(LeaderElection, GlobalLeaderOnSmallDiameter) {
  const Graph g = graph::complete(50);
  const localsim::LeaderElection alg(1);
  const auto out = localsim::run_reference(g, alg);
  for (NodeId v = 0; v < g.num_nodes(); ++v) EXPECT_EQ(out[v], 49u);
}

TEST(LocalMin, ExactlyTheLocalMinima) {
  const Graph g = graph::path(10);
  const localsim::LocalMin alg(2);
  const auto out = localsim::run_reference(g, alg);
  // On a path 0-1-...-9 with radius 2, node v is a local min iff its id is
  // smaller than ids within 2 hops; ids increase along the path, so only
  // node 0 qualifies.
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    EXPECT_EQ(out[v], v == 0 ? 1u : 0u) << "node " << v;
}

TEST(LocalMin, AtLeastOneMinimumExists) {
  util::Xoshiro256 rng(23);
  const Graph g = graph::erdos_renyi_gnm(100, 300, rng);
  const localsim::LocalMin alg(1);
  const auto out = localsim::run_reference(g, alg);
  std::size_t minima = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) minima += out[v];
  EXPECT_GE(minima, 1u);  // node 0 is always a local minimum
}

TEST(BallView, MakeBallMatchesBfs) {
  util::Xoshiro256 rng(29);
  const Graph g = graph::erdos_renyi_gnm(80, 300, rng);
  const auto ball = localsim::make_ball(g, 5, 2);
  const auto dist = graph::bfs_distances_bounded(g, 5, 2);
  EXPECT_EQ(ball.dist, dist);
  EXPECT_EQ(ball.center, 5u);
  EXPECT_EQ(ball.radius, 2u);
}

}  // namespace
}  // namespace fl
