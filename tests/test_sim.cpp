// Tests for the synchronous LOCAL simulator: lockstep delivery, metering,
// knowledge-level enforcement, termination semantics, and the quiesce
// phase's done-counter contract (done() is re-read only at step time; the
// per-round check is an O(S) counter sum, never a per-node scan).
#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "graph/generators.hpp"
#include "sim/network.hpp"
#include "trace_hash.hpp"
#include "util/assert.hpp"

namespace fl::sim {
namespace {

using graph::EdgeId;
using graph::Graph;
using graph::NodeId;

/// Sends one token around a ring: node 0 starts, each holder forwards to
/// its other edge. Terminates after `hops` forwards.
class RingToken final : public NodeProgram {
 public:
  RingToken(NodeId self, unsigned hops) : self_(self), hops_(hops) {}

  unsigned received = 0;

  void on_start(Context& ctx) override {
    if (self_ == 0) ctx.send(ctx.incident_edges()[0], unsigned{1});
  }

  void on_round(Context& ctx, InboxView inbox) override {
    for (const auto& m : inbox) {
      const auto hop = payload_as<unsigned>(m);
      ++received;
      if (hop < hops_) {
        // Forward over the other edge.
        for (const EdgeId e : ctx.incident_edges())
          if (e != m.edge()) {
            ctx.send(e, hop + 1);
            break;
          }
      }
    }
  }

  bool done() const override { return true; }  // passive: quiesce on silence

 private:
  NodeId self_;
  unsigned hops_;
};

TEST(Network, TokenTravelsOneHopPerRound) {
  const Graph g = graph::ring(8);
  Network net(g, Knowledge::EdgeIds, 1);
  net.install_all<RingToken>(5u);
  const auto stats = net.run(100);
  EXPECT_TRUE(stats.terminated);
  EXPECT_EQ(stats.messages, 5u);          // five forwards
  EXPECT_EQ(stats.rounds, 5u + 1);        // plus the quiescence round
}

/// Every node sends its id over every edge in round 0, then counts.
class FloodOnce final : public NodeProgram {
 public:
  explicit FloodOnce(NodeId self) : self_(self) {}
  std::vector<NodeId> heard;

  void on_start(Context& ctx) override {
    for (const EdgeId e : ctx.incident_edges()) ctx.send(e, self_);
  }
  void on_round(Context&, InboxView inbox) override {
    for (const auto& m : inbox) heard.push_back(payload_as<NodeId>(m));
  }
  bool done() const override { return true; }

 private:
  NodeId self_;
};

TEST(Network, OneRoundNeighborExchange) {
  const Graph g = graph::complete(6);
  Network net(g, Knowledge::EdgeIds, 2);
  net.install_all<FloodOnce>();
  const auto stats = net.run(10);
  EXPECT_TRUE(stats.terminated);
  EXPECT_EQ(stats.messages, 2u * g.num_edges());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    auto& p = net.program_as<FloodOnce>(v);
    EXPECT_EQ(p.heard.size(), 5u);
    for (const NodeId u : p.heard) EXPECT_NE(u, v);
  }
}

TEST(Network, MetricsPerRoundAndPerNode) {
  const Graph g = graph::star(5);  // center 0, leaves 1..4
  Network net(g, Knowledge::EdgeIds, 3);
  net.install_all<FloodOnce>();
  net.run(10);
  const Metrics& m = net.metrics();
  EXPECT_EQ(m.messages_total, 8u);
  ASSERT_GE(m.messages_per_round.size(), 1u);
  EXPECT_EQ(m.messages_per_round[0], 8u);  // everything in round 0
  EXPECT_EQ(m.messages_per_node[0], 4u);   // the hub
  EXPECT_EQ(m.messages_per_node[1], 1u);
  EXPECT_EQ(m.max_messages_in_a_round(), 8u);
}

/// A program that insists on KT1 neighbour knowledge.
class NeedsKt1 final : public NodeProgram {
 public:
  explicit NeedsKt1(NodeId) {}
  void on_start(Context& ctx) override {
    // Legal only under KT1:
    first_neighbor = ctx.neighbor(ctx.incident_edges()[0]);
  }
  void on_round(Context&, InboxView) override {}
  bool done() const override { return true; }
  NodeId first_neighbor = graph::kInvalidNode;
};

TEST(Network, KnowledgeEnforcement) {
  const Graph g = graph::ring(4);
  // Installing a KT1-needing program on an EdgeIds network is rejected at
  // the first illegal query.
  {
    Network net(g, Knowledge::EdgeIds, 1);
    net.install_all<NeedsKt1>();
    EXPECT_THROW(net.run(5), util::ContractViolation);
  }
  {
    Network net(g, Knowledge::KT1, 1);
    net.install_all<NeedsKt1>();
    EXPECT_NO_THROW(net.run(5));
    EXPECT_NE(net.program_as<NeedsKt1>(0).first_neighbor,
              graph::kInvalidNode);
  }
}

TEST(Network, Kt0ForbidsEdgeIdEnumeration) {
  const Graph g = graph::ring(4);
  Network net(g, Knowledge::KT0, 1);
  net.install([](NodeId) {
    class P final : public NodeProgram {
     public:
      void on_start(Context& ctx) override { (void)ctx.incident_edges(); }
      void on_round(Context&, InboxView) override {}
      bool done() const override { return true; }
      Knowledge required_knowledge() const override { return Knowledge::KT0; }
    };
    return std::make_unique<P>();
  });
  EXPECT_THROW(net.run(5), util::ContractViolation);
}

TEST(Network, RejectsSendOverForeignEdge) {
  Graph::Builder b(4);
  b.add_edge(0, 1);
  const EdgeId far = b.add_edge(2, 3);
  const Graph g = std::move(b).build();
  Network net(g, Knowledge::EdgeIds, 1);
  net.install([far](NodeId v) {
    class P final : public NodeProgram {
     public:
      P(NodeId self, EdgeId e) : self_(self), e_(e) {}
      void on_start(Context& ctx) override {
        if (self_ == 0) ctx.send(e_, 1);  // 0 is not an endpoint of 2-3
      }
      void on_round(Context&, InboxView) override {}
      bool done() const override { return true; }

     private:
      NodeId self_;
      EdgeId e_;
    };
    return std::make_unique<P>(v, far);
  });
  EXPECT_THROW(net.run(5), util::ContractViolation);
}

TEST(Network, MaxRoundsStopsNonTerminatingRun) {
  const Graph g = graph::ring(4);
  // Ping-pong forever.
  Network net(g, Knowledge::EdgeIds, 1);
  net.install([](NodeId) {
    class P final : public NodeProgram {
     public:
      void on_start(Context& ctx) override {
        ctx.send(ctx.incident_edges()[0], 0);
      }
      void on_round(Context& ctx, InboxView inbox) override {
        for (const auto& m : inbox) ctx.send(m.edge(), 0);
      }
      bool done() const override { return false; }
    };
    return std::make_unique<P>();
  });
  const auto stats = net.run(20);
  EXPECT_FALSE(stats.terminated);
  EXPECT_GE(stats.rounds, 20u);
}

TEST(Network, LogNBoundIsUpperBound) {
  const Graph g = graph::ring(16);
  Network net(g, Knowledge::EdgeIds, 1);
  EXPECT_DOUBLE_EQ(net.log_n_bound(), 4.0);
  net.set_log_n_bound(7.5);  // the model allows slack upward
  EXPECT_DOUBLE_EQ(net.log_n_bound(), 7.5);
  EXPECT_THROW(net.set_log_n_bound(2.0), util::ContractViolation);
}

/// Sends its id over every incident edge in rounds where (round + id) % 3
/// == 0, for the first `active` rounds; records everything it hears and
/// asserts its inbox span is correctly partitioned (every message is
/// addressed to itself, from a neighbouring endpoint of the edge).
class PartitionProbe final : public NodeProgram {
 public:
  PartitionProbe(NodeId self, unsigned active) : self_(self), active_(active) {}

  std::vector<std::tuple<std::size_t, NodeId, EdgeId>> heard;

  void on_start(Context& ctx) override { maybe_send(ctx); }

  void on_round(Context& ctx, InboxView inbox) override {
    for (const auto& m : inbox) {
      EXPECT_EQ(m.to(), self_);  // span partition: only own messages
      EXPECT_NE(m.from(), self_);
      heard.emplace_back(ctx.round(), m.from(), m.edge());
    }
    maybe_send(ctx);
  }

  bool done() const override { return true; }  // quiesce on silence

 private:
  void maybe_send(Context& ctx) {
    if (ctx.round() >= active_) return;
    if ((ctx.round() + self_) % 3 != 0) return;
    for (const EdgeId e : ctx.incident_edges()) ctx.send(e, self_);
  }

  NodeId self_;
  unsigned active_;
};

/// Golden-trace anchor for delivery order. This scenario used to be the
/// flat-vs-legacy A/B (the seed's per-node inbox engine, deleted after PR
/// 2/PR 3 proved the flat arena bit-identical on every workload); the
/// pinned hash below freezes exactly the behaviour that A/B certified —
/// per-node delivery logs (contents and order), RunStats, Metrics —
/// including rounds where many nodes receive nothing and the final
/// self-termination round. Any engine change that reorders or drops a
/// delivery moves the hash.
TEST(NetworkGoldenTrace, DeliveryMatchesPinnedTrace) {
  util::Xoshiro256 rng(99);
  const Graph g = graph::erdos_renyi_gnm(40, 120, rng);

  Network net(g, Knowledge::EdgeIds, 5);
  net.install_all<PartitionProbe>(6u);
  const RunStats stats = net.run(50);
  EXPECT_TRUE(stats.terminated);
  EXPECT_EQ(stats.rounds, 7u);
  EXPECT_EQ(stats.messages, 480u);

  const Metrics& m = net.metrics();
  EXPECT_EQ(m.messages_total, 480u);
  EXPECT_EQ(m.words_total, 480u);

  testing::TraceHash h;
  h.u64(stats.rounds).u64(stats.messages).u64(m.words_total);
  for (const auto c : m.messages_per_round) h.u64(c);
  for (const auto c : m.messages_per_node) h.u64(c);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto& heard = net.program_as<PartitionProbe>(v).heard;
    h.u64(heard.size());
    for (const auto& [round, from, edge] : heard)
      h.u64(round).u64(from).u64(edge);
  }
  EXPECT_EQ(h.value(), 0x6e95c71d1844b722ull)
      << "delivery golden trace moved: 0x" << std::hex << h.value();
}

TEST(Network, FlatArenaHandlesZeroMessageNodesAndTermination) {
  // Star: every node floods once in round 0 and then stays silent, so the
  // hub's span holds one message per leaf, each leaf's span holds exactly
  // the hub's message, and every span is empty from round 1 until global
  // quiescence.
  const Graph g = graph::star(6);
  Network net(g, Knowledge::EdgeIds, 4);
  net.install_all<FloodOnce>();
  const RunStats stats = net.run(10);
  EXPECT_TRUE(stats.terminated);
  EXPECT_EQ(stats.messages, 2u * g.num_edges());
  EXPECT_EQ(net.program_as<FloodOnce>(0).heard.size(), 5u);  // the hub
  for (NodeId v = 1; v < g.num_nodes(); ++v)
    EXPECT_EQ(net.program_as<FloodOnce>(v).heard.size(), 1u);
  // After termination every span is empty again.
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    EXPECT_TRUE(net.inbox_span(v).empty());
}

/// Node 0 sends four numbered payloads over the single edge in round 0.
class Burst final : public NodeProgram {
 public:
  explicit Burst(NodeId self) : self_(self) {}
  std::vector<unsigned> got;

  void on_start(Context& ctx) override {
    if (self_ == 0)
      for (unsigned i = 1; i <= 4; ++i) ctx.send(ctx.incident_edges()[0], i);
  }
  void on_round(Context&, InboxView inbox) override {
    for (const auto& m : inbox) got.push_back(payload_as<unsigned>(m));
  }
  bool done() const override { return true; }

 private:
  NodeId self_;
};

TEST(Network, FlatArenaPreservesOrderOnRepeatedSendsOverOneEdge) {
  // Several sends over the same edge in one round: the counting sort must
  // deliver all of them, in send order.
  const Graph g = graph::path(2);
  Network net(g, Knowledge::EdgeIds, 1);
  net.install_all<Burst>();
  const RunStats stats = net.run(5);
  EXPECT_TRUE(stats.terminated);
  EXPECT_EQ(stats.messages, 4u);
  EXPECT_EQ(net.program_as<Burst>(1).got,
            (std::vector<unsigned>{1, 2, 3, 4}));
  EXPECT_TRUE(net.program_as<Burst>(0).got.empty());
}

TEST(Network, WordAccounting) {
  const Graph g = graph::path(2);
  Network net(g, Knowledge::EdgeIds, 1);
  net.install([](NodeId v) {
    class P final : public NodeProgram {
     public:
      explicit P(NodeId self) : self_(self) {}
      void on_start(Context& ctx) override {
        if (self_ == 0) ctx.send(ctx.incident_edges()[0], 0, /*words=*/10);
      }
      void on_round(Context&, InboxView) override {}
      bool done() const override { return true; }

     private:
      NodeId self_;
    };
    return std::make_unique<P>(v);
  });
  net.run(5);
  EXPECT_EQ(net.metrics().messages_total, 1u);
  EXPECT_EQ(net.metrics().words_total, 10u);
}

// ------------------------------------------- quiesce phase: done counters

/// Counts its own done() invocations; reports done once it has been
/// stepped `finish_after` times. Sends nothing, so every round is
/// quiescent on the message side and termination is decided purely by the
/// done-counters. The counter is touched only by the owning shard's lane
/// (done() is re-read at step time), so it needs no synchronization even
/// under FL_SIM_THREADS > 1.
class DoneProbe final : public NodeProgram {
 public:
  DoneProbe(NodeId, unsigned finish_after) : finish_after_(finish_after) {}

  mutable std::uint64_t done_calls = 0;

  void on_start(Context&) override { ++steps_; }
  void on_round(Context&, InboxView) override { ++steps_; }
  bool done() const override {
    ++done_calls;
    return steps_ >= finish_after_;
  }

 private:
  unsigned finish_after_;
  unsigned steps_ = 0;
};

TEST(NetworkQuiesce, AllDoneNeverRescansPrograms) {
  // The engine's contract: done() is invoked exactly once per node per
  // step phase — the quiesce check sums per-lane counters and performs
  // zero per-node (virtual) work. The seed engine's all_done() scanned
  // programs_ on every message-quiet round, so on this workload (no
  // messages at all, nodes done after 4 steps) it would add up to n extra
  // done() calls per round, and n more for every run() call after
  // termination.
  const Graph g = graph::ring(9);
  Network net(g, Knowledge::EdgeIds, 1);
  net.install_all<DoneProbe>(4u);
  const RunStats stats = net.run(50);
  EXPECT_TRUE(stats.terminated);
  EXPECT_EQ(stats.messages, 0u);
  EXPECT_EQ(stats.rounds, 4u);  // on_start + three on_round steps

  auto total_done_calls = [&] {
    std::uint64_t calls = 0;
    for (NodeId v = 0; v < g.num_nodes(); ++v)
      calls += net.program_as<DoneProbe>(v).done_calls;
    return calls;
  };
  // One step phase per round, one done() re-read per node per step phase.
  EXPECT_EQ(total_done_calls(), 9u * stats.rounds);

  // Re-entering run() on a terminated network answers from the counters:
  // not a single additional done() call (the seed engine would have paid
  // another O(n) scan here).
  const RunStats again = net.run(50);
  EXPECT_TRUE(again.terminated);
  EXPECT_EQ(again.rounds, stats.rounds);
  EXPECT_EQ(total_done_calls(), 9u * stats.rounds);
}

/// Done from construction; wakes (done -> not-done) when poked and stays
/// awake for `hold` further steps — exercising both counter directions.
class Flapper final : public NodeProgram {
 public:
  Flapper(NodeId self, unsigned hold) : self_(self), hold_(hold) {}

  void on_start(Context& ctx) override {
    if (self_ == 0) ctx.send(ctx.incident_edges()[0], unsigned{1});
  }
  void on_round(Context&, InboxView inbox) override {
    if (!inbox.empty()) {
      awake_ = hold_;
    } else if (awake_ > 0) {
      --awake_;
    }
  }
  bool done() const override { return awake_ == 0; }

 private:
  NodeId self_;
  unsigned hold_;
  unsigned awake_ = 0;
};

TEST(NetworkQuiesce, DoneFlappingDelaysTermination) {
  // path(2): node 0 pokes node 1 in round 0. Node 1 goes not-done on
  // receipt (round 1) and holds for 3 more silent rounds (2, 3, 4) — the
  // done-counter must decrement on the flap and re-increment afterwards,
  // or the network would either terminate early (missed decrement) or
  // never terminate (missed re-increment).
  const Graph g = graph::path(2);
  Network net(g, Knowledge::EdgeIds, 1);
  net.install_all<Flapper>(3u);
  const RunStats stats = net.run(50);
  EXPECT_TRUE(stats.terminated);
  EXPECT_EQ(stats.messages, 1u);
  // Rounds: 1 delivers the poke; 2..4 are the hold; the round-5 quiesce
  // check observes done + silence and terminates.
  EXPECT_EQ(stats.rounds, 5u);
}

TEST(NetworkQuiesce, PreRunDoneOnEdgelessGraphTerminatesImmediately) {
  // Nodes that are done from their very first step, on a graph with no
  // edges at all: the first quiesce check after on_start must terminate
  // the run, and the (empty) merge must leave every inbox span empty.
  Graph::Builder b(3);
  const Graph g = std::move(b).build();
  Network net(g, Knowledge::EdgeIds, 1);
  net.install_all<DoneProbe>(0u);
  const RunStats stats = net.run(10);
  EXPECT_TRUE(stats.terminated);
  EXPECT_EQ(stats.rounds, 1u);
  EXPECT_EQ(stats.messages, 0u);
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    EXPECT_TRUE(net.inbox_span(v).empty());
}

TEST(NetworkQuiesce, SingleNodeNetwork) {
  Graph::Builder b(1);
  const Graph g = std::move(b).build();
  Network net(g, Knowledge::EdgeIds, 1);
  net.install_all<DoneProbe>(3u);
  const RunStats stats = net.run(10);
  EXPECT_TRUE(stats.terminated);
  EXPECT_EQ(stats.rounds, 3u);
  EXPECT_EQ(stats.messages, 0u);
}

}  // namespace
}  // namespace fl::sim
