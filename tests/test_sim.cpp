// Tests for the synchronous LOCAL simulator: lockstep delivery, metering,
// knowledge-level enforcement and termination semantics.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "graph/generators.hpp"
#include "sim/network.hpp"
#include "util/assert.hpp"

namespace fl::sim {
namespace {

using graph::EdgeId;
using graph::Graph;
using graph::NodeId;

/// Sends one token around a ring: node 0 starts, each holder forwards to
/// its other edge. Terminates after `hops` forwards.
class RingToken final : public NodeProgram {
 public:
  RingToken(NodeId self, unsigned hops) : self_(self), hops_(hops) {}

  unsigned received = 0;

  void on_start(Context& ctx) override {
    if (self_ == 0) ctx.send(ctx.incident_edges()[0], unsigned{1});
  }

  void on_round(Context& ctx, std::span<const Message> inbox) override {
    for (const auto& m : inbox) {
      const auto hop = payload_as<unsigned>(m);
      ++received;
      if (hop < hops_) {
        // Forward over the other edge.
        for (const EdgeId e : ctx.incident_edges())
          if (e != m.edge) {
            ctx.send(e, hop + 1);
            break;
          }
      }
    }
  }

  bool done() const override { return true; }  // passive: quiesce on silence

 private:
  NodeId self_;
  unsigned hops_;
};

TEST(Network, TokenTravelsOneHopPerRound) {
  const Graph g = graph::ring(8);
  Network net(g, Knowledge::EdgeIds, 1);
  net.install_all<RingToken>(5u);
  const auto stats = net.run(100);
  EXPECT_TRUE(stats.terminated);
  EXPECT_EQ(stats.messages, 5u);          // five forwards
  EXPECT_EQ(stats.rounds, 5u + 1);        // plus the quiescence round
}

/// Every node sends its id over every edge in round 0, then counts.
class FloodOnce final : public NodeProgram {
 public:
  explicit FloodOnce(NodeId self) : self_(self) {}
  std::vector<NodeId> heard;

  void on_start(Context& ctx) override {
    for (const EdgeId e : ctx.incident_edges()) ctx.send(e, self_);
  }
  void on_round(Context&, std::span<const Message> inbox) override {
    for (const auto& m : inbox) heard.push_back(payload_as<NodeId>(m));
  }
  bool done() const override { return true; }

 private:
  NodeId self_;
};

TEST(Network, OneRoundNeighborExchange) {
  const Graph g = graph::complete(6);
  Network net(g, Knowledge::EdgeIds, 2);
  net.install_all<FloodOnce>();
  const auto stats = net.run(10);
  EXPECT_TRUE(stats.terminated);
  EXPECT_EQ(stats.messages, 2u * g.num_edges());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    auto& p = net.program_as<FloodOnce>(v);
    EXPECT_EQ(p.heard.size(), 5u);
    for (const NodeId u : p.heard) EXPECT_NE(u, v);
  }
}

TEST(Network, MetricsPerRoundAndPerNode) {
  const Graph g = graph::star(5);  // center 0, leaves 1..4
  Network net(g, Knowledge::EdgeIds, 3);
  net.install_all<FloodOnce>();
  net.run(10);
  const Metrics& m = net.metrics();
  EXPECT_EQ(m.messages_total, 8u);
  ASSERT_GE(m.messages_per_round.size(), 1u);
  EXPECT_EQ(m.messages_per_round[0], 8u);  // everything in round 0
  EXPECT_EQ(m.messages_per_node[0], 4u);   // the hub
  EXPECT_EQ(m.messages_per_node[1], 1u);
  EXPECT_EQ(m.max_messages_in_a_round(), 8u);
}

/// A program that insists on KT1 neighbour knowledge.
class NeedsKt1 final : public NodeProgram {
 public:
  explicit NeedsKt1(NodeId) {}
  void on_start(Context& ctx) override {
    // Legal only under KT1:
    first_neighbor = ctx.neighbor(ctx.incident_edges()[0]);
  }
  void on_round(Context&, std::span<const Message>) override {}
  bool done() const override { return true; }
  NodeId first_neighbor = graph::kInvalidNode;
};

TEST(Network, KnowledgeEnforcement) {
  const Graph g = graph::ring(4);
  // Installing a KT1-needing program on an EdgeIds network is rejected at
  // the first illegal query.
  {
    Network net(g, Knowledge::EdgeIds, 1);
    net.install_all<NeedsKt1>();
    EXPECT_THROW(net.run(5), util::ContractViolation);
  }
  {
    Network net(g, Knowledge::KT1, 1);
    net.install_all<NeedsKt1>();
    EXPECT_NO_THROW(net.run(5));
    EXPECT_NE(net.program_as<NeedsKt1>(0).first_neighbor,
              graph::kInvalidNode);
  }
}

TEST(Network, Kt0ForbidsEdgeIdEnumeration) {
  const Graph g = graph::ring(4);
  Network net(g, Knowledge::KT0, 1);
  net.install([](NodeId) {
    class P final : public NodeProgram {
     public:
      void on_start(Context& ctx) override { (void)ctx.incident_edges(); }
      void on_round(Context&, std::span<const Message>) override {}
      bool done() const override { return true; }
      Knowledge required_knowledge() const override { return Knowledge::KT0; }
    };
    return std::make_unique<P>();
  });
  EXPECT_THROW(net.run(5), util::ContractViolation);
}

TEST(Network, RejectsSendOverForeignEdge) {
  Graph::Builder b(4);
  b.add_edge(0, 1);
  const EdgeId far = b.add_edge(2, 3);
  const Graph g = std::move(b).build();
  Network net(g, Knowledge::EdgeIds, 1);
  net.install([far](NodeId v) {
    class P final : public NodeProgram {
     public:
      P(NodeId self, EdgeId e) : self_(self), e_(e) {}
      void on_start(Context& ctx) override {
        if (self_ == 0) ctx.send(e_, 1);  // 0 is not an endpoint of 2-3
      }
      void on_round(Context&, std::span<const Message>) override {}
      bool done() const override { return true; }

     private:
      NodeId self_;
      EdgeId e_;
    };
    return std::make_unique<P>(v, far);
  });
  EXPECT_THROW(net.run(5), util::ContractViolation);
}

TEST(Network, MaxRoundsStopsNonTerminatingRun) {
  const Graph g = graph::ring(4);
  // Ping-pong forever.
  Network net(g, Knowledge::EdgeIds, 1);
  net.install([](NodeId) {
    class P final : public NodeProgram {
     public:
      void on_start(Context& ctx) override {
        ctx.send(ctx.incident_edges()[0], 0);
      }
      void on_round(Context& ctx, std::span<const Message> inbox) override {
        for (const auto& m : inbox) ctx.send(m.edge, 0);
      }
      bool done() const override { return false; }
    };
    return std::make_unique<P>();
  });
  const auto stats = net.run(20);
  EXPECT_FALSE(stats.terminated);
  EXPECT_GE(stats.rounds, 20u);
}

TEST(Network, LogNBoundIsUpperBound) {
  const Graph g = graph::ring(16);
  Network net(g, Knowledge::EdgeIds, 1);
  EXPECT_DOUBLE_EQ(net.log_n_bound(), 4.0);
  net.set_log_n_bound(7.5);  // the model allows slack upward
  EXPECT_DOUBLE_EQ(net.log_n_bound(), 7.5);
  EXPECT_THROW(net.set_log_n_bound(2.0), util::ContractViolation);
}

/// Sends its id over every incident edge in rounds where (round + id) % 3
/// == 0, for the first `active` rounds; records everything it hears and
/// asserts its inbox span is correctly partitioned (every message is
/// addressed to itself, from a neighbouring endpoint of the edge).
class PartitionProbe final : public NodeProgram {
 public:
  PartitionProbe(NodeId self, unsigned active) : self_(self), active_(active) {}

  std::vector<std::tuple<std::size_t, NodeId, EdgeId>> heard;

  void on_start(Context& ctx) override { maybe_send(ctx); }

  void on_round(Context& ctx, std::span<const Message> inbox) override {
    for (const auto& m : inbox) {
      EXPECT_EQ(m.to, self_);  // span partition: only own messages
      EXPECT_NE(m.from, self_);
      heard.emplace_back(ctx.round(), m.from, m.edge);
    }
    maybe_send(ctx);
  }

  bool done() const override { return true; }  // quiesce on silence

 private:
  void maybe_send(Context& ctx) {
    if (ctx.round() >= active_) return;
    if ((ctx.round() + self_) % 3 != 0) return;
    for (const EdgeId e : ctx.incident_edges()) ctx.send(e, self_);
  }

  NodeId self_;
  unsigned active_;
};

/// The flat arena must be observationally identical to the legacy per-node
/// inboxes: same per-node delivery logs (contents and order), same
/// RunStats, same Metrics — including rounds where many nodes receive
/// nothing and the final self-termination round.
TEST(Network, FlatArenaMatchesLegacyInboxes) {
  util::Xoshiro256 rng(99);
  const Graph g = graph::erdos_renyi_gnm(40, 120, rng);

  auto run_mode = [&](DeliveryMode mode) {
    Network net(g, Knowledge::EdgeIds, 5);
    net.set_delivery_mode(mode);
    net.install_all<PartitionProbe>(6u);
    const RunStats stats = net.run(50);
    EXPECT_TRUE(stats.terminated);
    std::vector<std::vector<std::tuple<std::size_t, NodeId, EdgeId>>> logs;
    for (NodeId v = 0; v < g.num_nodes(); ++v)
      logs.push_back(net.program_as<PartitionProbe>(v).heard);
    return std::tuple{stats, net.metrics(), std::move(logs)};
  };

  const auto [flat_stats, flat_metrics, flat_logs] =
      run_mode(DeliveryMode::FlatArena);
  const auto [legacy_stats, legacy_metrics, legacy_logs] =
      run_mode(DeliveryMode::LegacyInbox);

  EXPECT_EQ(flat_stats.rounds, legacy_stats.rounds);
  EXPECT_EQ(flat_stats.messages, legacy_stats.messages);
  EXPECT_GT(flat_stats.messages, 0u);
  EXPECT_EQ(flat_metrics.messages_total, legacy_metrics.messages_total);
  EXPECT_EQ(flat_metrics.words_total, legacy_metrics.words_total);
  EXPECT_EQ(flat_metrics.messages_per_round, legacy_metrics.messages_per_round);
  EXPECT_EQ(flat_metrics.messages_per_node, legacy_metrics.messages_per_node);
  EXPECT_EQ(flat_logs, legacy_logs);
}

TEST(Network, FlatArenaHandlesZeroMessageNodesAndTermination) {
  // Star: every node floods once in round 0 and then stays silent, so the
  // hub's span holds one message per leaf, each leaf's span holds exactly
  // the hub's message, and every span is empty from round 1 until global
  // quiescence.
  const Graph g = graph::star(6);
  Network net(g, Knowledge::EdgeIds, 4);
  net.set_delivery_mode(DeliveryMode::FlatArena);
  net.install_all<FloodOnce>();
  const RunStats stats = net.run(10);
  EXPECT_TRUE(stats.terminated);
  EXPECT_EQ(stats.messages, 2u * g.num_edges());
  EXPECT_EQ(net.program_as<FloodOnce>(0).heard.size(), 5u);  // the hub
  for (NodeId v = 1; v < g.num_nodes(); ++v)
    EXPECT_EQ(net.program_as<FloodOnce>(v).heard.size(), 1u);
  // After termination every span is empty again.
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    EXPECT_TRUE(net.inbox_span(v).empty());
}

/// Node 0 sends four numbered payloads over the single edge in round 0.
class Burst final : public NodeProgram {
 public:
  explicit Burst(NodeId self) : self_(self) {}
  std::vector<unsigned> got;

  void on_start(Context& ctx) override {
    if (self_ == 0)
      for (unsigned i = 1; i <= 4; ++i) ctx.send(ctx.incident_edges()[0], i);
  }
  void on_round(Context&, std::span<const Message> inbox) override {
    for (const auto& m : inbox) got.push_back(payload_as<unsigned>(m));
  }
  bool done() const override { return true; }

 private:
  NodeId self_;
};

TEST(Network, FlatArenaPreservesOrderOnRepeatedSendsOverOneEdge) {
  // Several sends over the same edge in one round: the counting sort must
  // deliver all of them, in send order, exactly like the legacy inboxes.
  const Graph g = graph::path(2);
  for (const DeliveryMode mode :
       {DeliveryMode::FlatArena, DeliveryMode::LegacyInbox}) {
    Network net(g, Knowledge::EdgeIds, 1);
    net.set_delivery_mode(mode);
    net.install_all<Burst>();
    const RunStats stats = net.run(5);
    EXPECT_TRUE(stats.terminated);
    EXPECT_EQ(stats.messages, 4u);
    EXPECT_EQ(net.program_as<Burst>(1).got,
              (std::vector<unsigned>{1, 2, 3, 4}));
    EXPECT_TRUE(net.program_as<Burst>(0).got.empty());
  }
}

TEST(Network, DeliveryModeLockedOnceStarted) {
  const Graph g = graph::ring(4);
  Network net(g, Knowledge::EdgeIds, 1);
  net.install_all<FloodOnce>();
  net.run(5);
  EXPECT_THROW(net.set_delivery_mode(DeliveryMode::LegacyInbox),
               util::ContractViolation);
}

TEST(Network, WordAccounting) {
  const Graph g = graph::path(2);
  Network net(g, Knowledge::EdgeIds, 1);
  net.install([](NodeId v) {
    class P final : public NodeProgram {
     public:
      explicit P(NodeId self) : self_(self) {}
      void on_start(Context& ctx) override {
        if (self_ == 0) ctx.send(ctx.incident_edges()[0], 0, /*words=*/10);
      }
      void on_round(Context&, std::span<const Message>) override {}
      bool done() const override { return true; }

     private:
      NodeId self_;
    };
    return std::make_unique<P>(v);
  });
  net.run(5);
  EXPECT_EQ(net.metrics().messages_total, 1u);
  EXPECT_EQ(net.metrics().words_total, 10u);
}

}  // namespace
}  // namespace fl::sim
