// Tests for the synchronous LOCAL simulator: lockstep delivery, metering,
// knowledge-level enforcement and termination semantics.
#include <gtest/gtest.h>

#include <memory>

#include "graph/generators.hpp"
#include "sim/network.hpp"
#include "util/assert.hpp"

namespace fl::sim {
namespace {

using graph::EdgeId;
using graph::Graph;
using graph::NodeId;

/// Sends one token around a ring: node 0 starts, each holder forwards to
/// its other edge. Terminates after `hops` forwards.
class RingToken final : public NodeProgram {
 public:
  RingToken(NodeId self, unsigned hops) : self_(self), hops_(hops) {}

  unsigned received = 0;

  void on_start(Context& ctx) override {
    if (self_ == 0) ctx.send(ctx.incident_edges()[0], unsigned{1});
  }

  void on_round(Context& ctx, std::span<const Message> inbox) override {
    for (const auto& m : inbox) {
      const auto hop = payload_as<unsigned>(m);
      ++received;
      if (hop < hops_) {
        // Forward over the other edge.
        for (const EdgeId e : ctx.incident_edges())
          if (e != m.edge) {
            ctx.send(e, hop + 1);
            break;
          }
      }
    }
  }

  bool done() const override { return true; }  // passive: quiesce on silence

 private:
  NodeId self_;
  unsigned hops_;
};

TEST(Network, TokenTravelsOneHopPerRound) {
  const Graph g = graph::ring(8);
  Network net(g, Knowledge::EdgeIds, 1);
  net.install_all<RingToken>(5u);
  const auto stats = net.run(100);
  EXPECT_TRUE(stats.terminated);
  EXPECT_EQ(stats.messages, 5u);          // five forwards
  EXPECT_EQ(stats.rounds, 5u + 1);        // plus the quiescence round
}

/// Every node sends its id over every edge in round 0, then counts.
class FloodOnce final : public NodeProgram {
 public:
  explicit FloodOnce(NodeId self) : self_(self) {}
  std::vector<NodeId> heard;

  void on_start(Context& ctx) override {
    for (const EdgeId e : ctx.incident_edges()) ctx.send(e, self_);
  }
  void on_round(Context&, std::span<const Message> inbox) override {
    for (const auto& m : inbox) heard.push_back(payload_as<NodeId>(m));
  }
  bool done() const override { return true; }

 private:
  NodeId self_;
};

TEST(Network, OneRoundNeighborExchange) {
  const Graph g = graph::complete(6);
  Network net(g, Knowledge::EdgeIds, 2);
  net.install_all<FloodOnce>();
  const auto stats = net.run(10);
  EXPECT_TRUE(stats.terminated);
  EXPECT_EQ(stats.messages, 2u * g.num_edges());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    auto& p = net.program_as<FloodOnce>(v);
    EXPECT_EQ(p.heard.size(), 5u);
    for (const NodeId u : p.heard) EXPECT_NE(u, v);
  }
}

TEST(Network, MetricsPerRoundAndPerNode) {
  const Graph g = graph::star(5);  // center 0, leaves 1..4
  Network net(g, Knowledge::EdgeIds, 3);
  net.install_all<FloodOnce>();
  net.run(10);
  const Metrics& m = net.metrics();
  EXPECT_EQ(m.messages_total, 8u);
  ASSERT_GE(m.messages_per_round.size(), 1u);
  EXPECT_EQ(m.messages_per_round[0], 8u);  // everything in round 0
  EXPECT_EQ(m.messages_per_node[0], 4u);   // the hub
  EXPECT_EQ(m.messages_per_node[1], 1u);
  EXPECT_EQ(m.max_messages_in_a_round(), 8u);
}

/// A program that insists on KT1 neighbour knowledge.
class NeedsKt1 final : public NodeProgram {
 public:
  explicit NeedsKt1(NodeId) {}
  void on_start(Context& ctx) override {
    // Legal only under KT1:
    first_neighbor = ctx.neighbor(ctx.incident_edges()[0]);
  }
  void on_round(Context&, std::span<const Message>) override {}
  bool done() const override { return true; }
  NodeId first_neighbor = graph::kInvalidNode;
};

TEST(Network, KnowledgeEnforcement) {
  const Graph g = graph::ring(4);
  // Installing a KT1-needing program on an EdgeIds network is rejected at
  // the first illegal query.
  {
    Network net(g, Knowledge::EdgeIds, 1);
    net.install_all<NeedsKt1>();
    EXPECT_THROW(net.run(5), util::ContractViolation);
  }
  {
    Network net(g, Knowledge::KT1, 1);
    net.install_all<NeedsKt1>();
    EXPECT_NO_THROW(net.run(5));
    EXPECT_NE(net.program_as<NeedsKt1>(0).first_neighbor,
              graph::kInvalidNode);
  }
}

TEST(Network, Kt0ForbidsEdgeIdEnumeration) {
  const Graph g = graph::ring(4);
  Network net(g, Knowledge::KT0, 1);
  net.install([](NodeId) {
    class P final : public NodeProgram {
     public:
      void on_start(Context& ctx) override { (void)ctx.incident_edges(); }
      void on_round(Context&, std::span<const Message>) override {}
      bool done() const override { return true; }
      Knowledge required_knowledge() const override { return Knowledge::KT0; }
    };
    return std::make_unique<P>();
  });
  EXPECT_THROW(net.run(5), util::ContractViolation);
}

TEST(Network, RejectsSendOverForeignEdge) {
  Graph::Builder b(4);
  b.add_edge(0, 1);
  const EdgeId far = b.add_edge(2, 3);
  const Graph g = std::move(b).build();
  Network net(g, Knowledge::EdgeIds, 1);
  net.install([far](NodeId v) {
    class P final : public NodeProgram {
     public:
      P(NodeId self, EdgeId e) : self_(self), e_(e) {}
      void on_start(Context& ctx) override {
        if (self_ == 0) ctx.send(e_, 1);  // 0 is not an endpoint of 2-3
      }
      void on_round(Context&, std::span<const Message>) override {}
      bool done() const override { return true; }

     private:
      NodeId self_;
      EdgeId e_;
    };
    return std::make_unique<P>(v, far);
  });
  EXPECT_THROW(net.run(5), util::ContractViolation);
}

TEST(Network, MaxRoundsStopsNonTerminatingRun) {
  const Graph g = graph::ring(4);
  // Ping-pong forever.
  Network net(g, Knowledge::EdgeIds, 1);
  net.install([](NodeId) {
    class P final : public NodeProgram {
     public:
      void on_start(Context& ctx) override {
        ctx.send(ctx.incident_edges()[0], 0);
      }
      void on_round(Context& ctx, std::span<const Message> inbox) override {
        for (const auto& m : inbox) ctx.send(m.edge, 0);
      }
      bool done() const override { return false; }
    };
    return std::make_unique<P>();
  });
  const auto stats = net.run(20);
  EXPECT_FALSE(stats.terminated);
  EXPECT_GE(stats.rounds, 20u);
}

TEST(Network, LogNBoundIsUpperBound) {
  const Graph g = graph::ring(16);
  Network net(g, Knowledge::EdgeIds, 1);
  EXPECT_DOUBLE_EQ(net.log_n_bound(), 4.0);
  net.set_log_n_bound(7.5);  // the model allows slack upward
  EXPECT_DOUBLE_EQ(net.log_n_bound(), 7.5);
  EXPECT_THROW(net.set_log_n_bound(2.0), util::ContractViolation);
}

TEST(Network, WordAccounting) {
  const Graph g = graph::path(2);
  Network net(g, Knowledge::EdgeIds, 1);
  net.install([](NodeId v) {
    class P final : public NodeProgram {
     public:
      explicit P(NodeId self) : self_(self) {}
      void on_start(Context& ctx) override {
        if (self_ == 0) ctx.send(ctx.incident_edges()[0], 0, /*words=*/10);
      }
      void on_round(Context&, std::span<const Message>) override {}
      bool done() const override { return true; }

     private:
      NodeId self_;
    };
    return std::make_unique<P>(v);
  });
  net.run(5);
  EXPECT_EQ(net.metrics().messages_total, 1u);
  EXPECT_EQ(net.metrics().words_total, 10u);
}

}  // namespace
}  // namespace fl::sim
