// Tests for t-local broadcast (paper Section 6, Lemma 12).
#include <gtest/gtest.h>

#include <algorithm>

#include "core/config.hpp"
#include "core/sampler.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "localsim/tlocal_broadcast.hpp"
#include "util/rng.hpp"

namespace fl {
namespace {

using graph::Graph;
using graph::NodeId;

/// Ground truth: sorted members of B_H(v, R) where H is the edge subset.
std::vector<NodeId> ball_members(const Graph& g,
                                 const std::vector<graph::EdgeId>& edges,
                                 NodeId v, unsigned radius) {
  const graph::SubgraphView h(g, edges);
  const auto dist = h.bfs_distances_bounded(v, radius);
  std::vector<NodeId> out;
  for (NodeId u = 0; u < g.num_nodes(); ++u)
    if (dist[u] != graph::kUnreachable) out.push_back(u);
  return out;
}

TEST(TLocalBroadcast, CollectsExactlyTheBall) {
  util::Xoshiro256 rng(3);
  const Graph g = graph::erdos_renyi_gnm(120, 500, rng);
  for (unsigned t : {0u, 1u, 2u, 3u}) {
    const auto run =
        localsim::run_tlocal_broadcast(g, localsim::all_edges(g), t, 7);
    for (NodeId v = 0; v < g.num_nodes(); ++v)
      EXPECT_EQ(run.reached[v], ball_members(g, localsim::all_edges(g), v, t))
          << "t=" << t << " v=" << v;
  }
}

TEST(TLocalBroadcast, CollectsBallOfSubgraph) {
  util::Xoshiro256 rng(5);
  const Graph g = graph::erdos_renyi_gnm(150, 900, rng);
  // Use a spanning forest as the subgraph: distances stretch, the flood
  // must follow only forest edges.
  const auto forest = graph::spanning_forest(g);
  for (unsigned t : {1u, 3u, 5u}) {
    const auto run = localsim::run_tlocal_broadcast(g, forest, t, 11);
    for (NodeId v = 0; v < g.num_nodes(); v += 13)
      EXPECT_EQ(run.reached[v], ball_members(g, forest, v, t));
  }
}

TEST(TLocalBroadcast, MessageCountBoundedByEdgesTimesRounds) {
  // Lemma 12's accounting: bundled flooding sends at most one message per
  // direction per subgraph edge per round.
  util::Xoshiro256 rng(7);
  const Graph g = graph::erdos_renyi_gnm(200, 1500, rng);
  const unsigned t = 4;
  const auto run =
      localsim::run_tlocal_broadcast(g, localsim::all_edges(g), t, 13);
  EXPECT_LE(run.stats.messages, 2ull * g.num_edges() * t);
}

TEST(TLocalBroadcast, SpannerBroadcastCoversGBall) {
  // The Lemma 12 construction: flooding radius alpha*t over an
  // alpha-spanner must cover B_G(v, t).
  util::Xoshiro256 rng(11);
  const Graph g = graph::erdos_renyi_gnm(200, 1600, rng);
  const auto cfg = core::SamplerConfig::paper_faithful(1, 2, 17);
  const auto spanner = core::build_spanner(g, cfg);
  const unsigned t = 2;
  const auto radius = static_cast<unsigned>(cfg.stretch_bound()) * t;
  const auto run = localsim::run_tlocal_broadcast(g, spanner.edges, radius, 19);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto need = ball_members(g, localsim::all_edges(g), v, t);
    const auto& have = run.reached[v];
    EXPECT_TRUE(std::includes(have.begin(), have.end(), need.begin(),
                              need.end()))
        << "node " << v;
  }
}

TEST(TLocalBroadcast, SpannerBroadcastCheaperThanNativeOnDenseGraphs) {
  const Graph g = graph::complete(256);
  const auto cfg = core::SamplerConfig::bench_profile(2, 3, 23);
  const auto spanner = core::build_spanner(g, cfg);
  const unsigned t = 3;
  const auto native =
      localsim::run_tlocal_broadcast(g, localsim::all_edges(g), t, 29);
  const auto radius = static_cast<unsigned>(cfg.stretch_bound()) * t;
  const auto reduced =
      localsim::run_tlocal_broadcast(g, spanner.edges, radius, 29);
  EXPECT_LT(reduced.stats.messages, native.stats.messages);
}

TEST(TLocalBroadcast, ZeroRoundsReachesOnlySelf) {
  const Graph g = graph::ring(20);
  const auto run =
      localsim::run_tlocal_broadcast(g, localsim::all_edges(g), 0, 31);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    ASSERT_EQ(run.reached[v].size(), 1u);
    EXPECT_EQ(run.reached[v][0], v);
  }
}

TEST(TLocalBroadcast, RingDistancesExact) {
  const Graph g = graph::ring(30);
  const auto run =
      localsim::run_tlocal_broadcast(g, localsim::all_edges(g), 5, 37);
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    EXPECT_EQ(run.reached[v].size(), 11u);  // 5 left + 5 right + self
}

}  // namespace
}  // namespace fl
