// Tests for the multigraph (cluster-graph) substrate: parallel-edge
// bookkeeping, physical-id provenance, and contraction semantics — the
// machinery behind the virtual graphs G_1, ..., G_k of the paper.
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/multigraph.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace fl::graph {
namespace {

TEST(Multigraph, FromGraphPreservesEverything) {
  util::Xoshiro256 rng(3);
  const Graph g = erdos_renyi_gnm(50, 200, rng);
  const Multigraph m = Multigraph::from_graph(g);
  EXPECT_EQ(m.num_nodes(), g.num_nodes());
  ASSERT_EQ(m.num_edges(), g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(m.edge(e).physical, e);
    const Endpoints ep = g.endpoints(e);
    EXPECT_EQ(m.edge(e).u, ep.u);
    EXPECT_EQ(m.edge(e).v, ep.v);
  }
}

TEST(Multigraph, ParallelEdgesCounted) {
  std::vector<Multigraph::MEdge> edges{
      {0, 1, 10}, {0, 1, 11}, {0, 1, 12}, {1, 2, 13}};
  const Multigraph m(3, std::move(edges));
  EXPECT_EQ(m.incident_count(0), 3u);
  EXPECT_EQ(m.incident_count(1), 4u);
  EXPECT_EQ(m.distinct_neighbor_count(1), 2u);
  EXPECT_EQ(m.neighbors(1), (std::vector<NodeId>{0, 2}));
  EXPECT_EQ(m.edges_between(0, 1).size(), 3u);
  EXPECT_EQ(m.edges_between(1, 2).size(), 1u);
  EXPECT_TRUE(m.edges_between(0, 2).empty());
}

TEST(Multigraph, RejectsSelfLoopsAndBadEndpoints) {
  EXPECT_THROW(Multigraph(2, {{0, 0, 1}}), util::ContractViolation);
  EXPECT_THROW(Multigraph(2, {{0, 5, 1}}), util::ContractViolation);
}

TEST(Multigraph, ContractMergesAndDropsCorrectly) {
  // 4 nodes in a path 0-1-2-3 plus chord 0-2; contract {0,1} -> cluster 0,
  // {2} -> cluster 1, drop node 3.
  std::vector<Multigraph::MEdge> edges{
      {0, 1, 100}, {1, 2, 101}, {2, 3, 102}, {0, 2, 103}};
  const Multigraph m(4, std::move(edges));
  const std::vector<NodeId> assign{0, 0, 1, kInvalidNode};
  const Multigraph next = m.contract(assign, 2);
  EXPECT_EQ(next.num_nodes(), 2u);
  // Intra edge 100 gone; edge 102 (touches dropped node) gone; edges 101
  // and 103 survive as parallel edges between clusters 0 and 1.
  ASSERT_EQ(next.num_edges(), 2u);
  EXPECT_EQ(next.edges_between(0, 1).size(), 2u);
  std::vector<EdgeId> phys{next.edge(0).physical, next.edge(1).physical};
  std::sort(phys.begin(), phys.end());
  EXPECT_EQ(phys, (std::vector<EdgeId>{101, 103}));
}

TEST(Multigraph, ContractToSingletonDropsEverything) {
  const Graph g = complete(5);
  const Multigraph m = Multigraph::from_graph(g);
  const std::vector<NodeId> assign(5, 0);
  const Multigraph next = m.contract(assign, 1);
  EXPECT_EQ(next.num_nodes(), 1u);
  EXPECT_EQ(next.num_edges(), 0u);
}

TEST(Multigraph, ContractValidatesArity) {
  const Graph g = complete(4);
  const Multigraph m = Multigraph::from_graph(g);
  EXPECT_THROW(m.contract(std::vector<NodeId>{0, 0}, 1),
               util::ContractViolation);
  EXPECT_THROW(m.contract(std::vector<NodeId>{0, 0, 0, 9}, 1),
               util::ContractViolation);
}

TEST(Multigraph, RepeatedContractionChainsProvenance) {
  // Two contractions; surviving virtual edges must still carry level-0 ids.
  util::Xoshiro256 rng(7);
  const Graph g = erdos_renyi_gnm(40, 160, rng);
  Multigraph m = Multigraph::from_graph(g);
  util::Xoshiro256 coin(11);
  for (int round = 0; round < 2; ++round) {
    // Random partition into ~n/3 clusters, dropping ~20%.
    const NodeId clusters = std::max<NodeId>(1, m.num_nodes() / 3);
    std::vector<NodeId> assign(m.num_nodes());
    for (NodeId v = 0; v < m.num_nodes(); ++v)
      assign[v] = coin.bernoulli(0.2)
                      ? kInvalidNode
                      : static_cast<NodeId>(coin.index(clusters));
    m = m.contract(assign, clusters);
    for (EdgeId e = 0; e < m.num_edges(); ++e)
      EXPECT_LT(m.edge(e).physical, g.num_edges());
  }
}

TEST(Multigraph, IncidenceGroupsParallelBlocks) {
  // The sampler peels whole parallel blocks; incidence must keep them
  // contiguous (sorted by neighbour, then edge).
  std::vector<Multigraph::MEdge> edges{
      {1, 0, 5}, {1, 2, 6}, {0, 1, 7}, {1, 2, 8}, {1, 0, 9}};
  const Multigraph m(3, std::move(edges));
  const auto inc = m.incident(1);
  ASSERT_EQ(inc.size(), 5u);
  EXPECT_EQ(inc[0].to, 0u);
  EXPECT_EQ(inc[1].to, 0u);
  EXPECT_EQ(inc[2].to, 0u);
  EXPECT_EQ(inc[3].to, 2u);
  EXPECT_EQ(inc[4].to, 2u);
}

}  // namespace
}  // namespace fl::graph
