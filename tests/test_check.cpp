// Tests for the FL_SIM_CHECK logical ownership / phase checker
// (sim/check.hpp). The load-bearing claims:
//
//   * clean runs are bit-identical with checking on — the checker is
//     purely observational, at every thread count, congest on or off;
//   * a seeded cross-shard write is caught deterministically on one core
//     (no data race needs to manifest), with a diagnostic naming the node,
//     the owning lane, the touching lane, the phase and the round;
//   * a seeded out-of-phase carry-queue mutation is caught the same way;
//   * the deliberately unchecked windows (pre-run sends, post-run
//     extraction) stay legal.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/generators.hpp"
#include "sim/check.hpp"
#include "sim/network.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace fl::sim {
namespace {

using graph::EdgeId;
using graph::Graph;
using graph::NodeId;

// A small deterministic chatterer: every node floods a word over each
// incident edge for `active` rounds, drawing from its RNG stream so the
// rng-touch instrumentation is exercised, with a size hint that makes a
// finite CONGEST budget bind (carry queues in play under budget 4).
class Chatter final : public NodeProgram {
 public:
  Chatter(NodeId self, unsigned active) : self_(self), active_(active) {}

  std::uint64_t digest = 0;

  void on_start(Context& ctx) override { maybe_send(ctx); }

  void on_round(Context& ctx, InboxView inbox) override {
    for (const auto& m : inbox) {
      digest = digest * 1099511628211ull ^ payload_as<std::uint64_t>(m);
      digest ^= m.from() + 31 * m.edge();
    }
    maybe_send(ctx);
  }

  bool done() const override { return true; }  // quiesce on silence

 private:
  void maybe_send(Context& ctx) {
    if (ctx.round() >= active_) return;
    for (const EdgeId e : ctx.incident_edges())
      ctx.send(e, ctx.rng()(), /*size_hint_words=*/8);
  }

  NodeId self_;
  unsigned active_;
};

Graph test_graph(NodeId n) {
  util::Xoshiro256 rng(99);
  return graph::erdos_renyi_gnm(n, 3 * n, rng);
}

std::uint64_t run_digest(unsigned threads, bool check, bool budget) {
  const Graph g = test_graph(64);
  Network net(g, Knowledge::EdgeIds, /*seed=*/7);
  net.set_parallelism({threads, ShardBalance::Uniform});
  net.set_check(check);
  if (budget) net.set_congest({4, CongestPolicy::Defer});
  net.install_all<Chatter>(4u);
  const RunStats stats = net.run_until_drained(64);
  EXPECT_TRUE(stats.terminated);
  if (budget) {
    EXPECT_GT(net.metrics().deferrals_total, 0u);
  }
  std::uint64_t digest = stats.rounds;
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    digest = digest * 16777619 ^ net.program_as<Chatter>(v).digest;
  return digest;
}

// ------------------------------------------------- observational neutrality

TEST(CheckClean, BitIdenticalWithCheckingOn) {
  // The checker must never perturb a clean run: same digest with checking
  // on and off, at 1 and 8 lanes, LOCAL and with a binding carry-exercising
  // budget (which also proves the admit/merge-phase instrumentation accepts
  // every legal touch).
  for (const bool budget : {false, true}) {
    const std::uint64_t base = run_digest(1, /*check=*/false, budget);
    for (const unsigned threads : {1u, 8u}) {
      EXPECT_EQ(run_digest(threads, /*check=*/true, budget), base)
          << "threads=" << threads << " budget=" << budget;
    }
  }
}

TEST(CheckClean, SetCheckOnlyBeforeStart) {
  const Graph g = test_graph(8);
  Network net(g, Knowledge::EdgeIds, 1);
  net.set_check(true);
  net.set_check(false);  // toggling is fine before the run
  net.set_check(true);
  net.install_all<Chatter>(1u);
  net.run(8);
  EXPECT_THROW(net.set_check(false), util::ContractViolation);
}

TEST(CheckClean, PreRunSendAndPostRunExtractionUnchecked) {
  // The two deliberate windows outside any lane scope: sends through a
  // pre-run two-argument Context, and post-run mutating extraction.
  const Graph g = test_graph(8);
  Network net(g, Knowledge::EdgeIds, 1);
  net.set_parallelism({8, ShardBalance::Uniform});
  net.set_check(true);
  net.install_all<Chatter>(1u);
  Context pre(net, /*self=*/5);
  pre.send(g.incident(5).front().edge, std::uint64_t{42});  // must not throw
  net.run(16);
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    net.program_as<Chatter>(v).digest = 0;  // foreign-thread write: legal
}

// ------------------------------------------------- seeded violations

// The checker's raison d'être: catch a cross-shard touch logically, on one
// core, at the first occurrence. The probe runs inside lane 0's step scope
// and reaches into the last shard's state through the real accessor paths.
TEST(CheckViolations, CrossShardRngTouchCaughtFromRunningLane) {
  const Graph g = test_graph(64);
  Network net(g, Knowledge::EdgeIds, 7);
  net.set_parallelism({8, ShardBalance::Uniform});
  net.set_check(true);
  net.install_all<Chatter>(4u);
  // Uniform split of 64 nodes over 8 lanes: node 63 is owned by lane 7.
  net.set_check_probe([](Network& n, unsigned lane) {
    if (lane != 0) return;
    Context foreign(n, /*self=*/63);
    foreign.rng();  // cross-shard touch of node 63's RNG stream
  });
  try {
    net.run(16);
    FAIL() << "cross-shard rng touch was not caught";
  } catch (const CheckViolation& v) {
    EXPECT_EQ(v.node, 63u);
    EXPECT_EQ(v.owner_lane, 7u);
    EXPECT_EQ(v.touch_lane, 0u);
    EXPECT_EQ(v.phase, EnginePhase::Step);
    EXPECT_EQ(v.round, 0u);  // seeded in the very first step phase
    EXPECT_NE(std::string(v.what()).find("rng stream"), std::string::npos);
  }
}

TEST(CheckViolations, CrossShardSendCaughtFromRunningLane) {
  // Same shape through the send path: lane 0 sending *as* node 63 mutates
  // node 63's send cursor / slot cache — caught before the message exists.
  const Graph g = test_graph(64);
  Network net(g, Knowledge::EdgeIds, 7);
  net.set_parallelism({8, ShardBalance::Uniform});
  net.set_check(true);
  net.install_all<Chatter>(4u);
  net.set_check_probe([&](Network& n, unsigned lane) {
    if (lane != 0) return;
    Context foreign(n, /*self=*/63);
    foreign.send(g.incident(63).front().edge, std::uint64_t{1});
  });
  try {
    net.run(16);
    FAIL() << "cross-shard send was not caught";
  } catch (const CheckViolation& v) {
    EXPECT_EQ(v.node, 63u);
    EXPECT_EQ(v.owner_lane, 7u);
    EXPECT_EQ(v.touch_lane, 0u);
    EXPECT_EQ(v.phase, EnginePhase::Step);
    EXPECT_NE(std::string(v.what()).find("send-path state"),
              std::string::npos);
  }
}

TEST(CheckViolations, CrossShardWriteCaughtAtOneAndEightLanes) {
  // The debug hook binds a synthetic step-phase scope to a chosen lane, so
  // the cross-shard-write diagnostic is provable even at one lane (where no
  // second shard exists to touch from organically).
  for (const unsigned threads : {1u, 8u}) {
    const Graph g = test_graph(64);
    Network net(g, Knowledge::EdgeIds, 7);
    net.set_parallelism({threads, ShardBalance::Uniform});
    net.set_check(true);
    net.install_all<Chatter>(2u);
    net.step(1);
    const unsigned owner = threads == 1 ? 0u : 7u;  // node 63's shard
    const unsigned wrong = owner + 1;
    try {
      net.debug_touch_node(63, wrong);
      FAIL() << "seeded cross-shard write not caught at threads=" << threads;
    } catch (const CheckViolation& v) {
      EXPECT_EQ(v.node, 63u);
      EXPECT_EQ(v.owner_lane, owner);
      EXPECT_EQ(v.touch_lane, wrong);
      EXPECT_EQ(v.phase, EnginePhase::Step);
    }
  }
}

TEST(CheckViolations, OutOfPhaseCarryMutationCaughtAtOneAndEightLanes) {
  // Carry queues belong to the admission phase; a step-phase mutation —
  // even by the chunk's own lane — must throw naming the phase.
  for (const unsigned threads : {1u, 8u}) {
    const Graph g = test_graph(64);
    Network net(g, Knowledge::EdgeIds, 7);
    net.set_parallelism({threads, ShardBalance::Uniform});
    net.set_check(true);
    net.set_congest({1000000000, CongestPolicy::Defer});  // chunks exist
    net.install_all<Chatter>(4u);
    net.set_check_probe([](Network& n, unsigned lane) {
      if (lane != 0) return;
      n.debug_mutate_carry(0);  // own chunk, wrong phase
    });
    try {
      net.run(16);
      FAIL() << "out-of-phase carry mutation not caught at threads="
             << threads;
    } catch (const CheckViolation& v) {
      EXPECT_EQ(v.node, graph::kInvalidNode);
      EXPECT_EQ(v.owner_lane, 0u);
      EXPECT_EQ(v.touch_lane, 0u);
      EXPECT_EQ(v.phase, EnginePhase::Step);
      const std::string what = v.what();
      EXPECT_NE(what.find("carry queue"), std::string::npos);
      EXPECT_NE(what.find("admit-phase"), std::string::npos);
    }
  }
}

TEST(CheckViolations, DiagnosticNamesEveryCoordinate) {
  // The what() string is the human surface: node, lanes, phase and round
  // must all be present (tooling greps for them).
  const Graph g = test_graph(64);
  Network net(g, Knowledge::EdgeIds, 7);
  net.set_parallelism({8, ShardBalance::Uniform});
  net.set_check(true);
  net.install_all<Chatter>(2u);
  net.step(3);
  try {
    net.debug_touch_node(63, 2);
    FAIL() << "seeded violation not caught";
  } catch (const CheckViolation& v) {
    const std::string what = v.what();
    EXPECT_NE(what.find("FL_SIM_CHECK"), std::string::npos);
    EXPECT_NE(what.find("node 63"), std::string::npos);
    EXPECT_NE(what.find("owned by lane 7"), std::string::npos);
    EXPECT_NE(what.find("touched by lane 2"), std::string::npos);
    EXPECT_NE(what.find("step phase"), std::string::npos);
    EXPECT_NE(what.find("round"), std::string::npos);
  }
}

}  // namespace
}  // namespace fl::sim
