// Tests for the fl::obs tracing / profiling layer and its cardinal
// contract (docs/CONTRACTS.md C12): tracing is observational. The pinned
// golden delivery hash from test_sim.cpp is recomputed here with span
// recording live — any value drift means a timing readback leaked into
// the model. Also covered: RoundProfile model fields across thread counts
// and congest modes, SpanRing overflow, LogHistogram bucket geometry, the
// FL_SIM_TRACE probe, and both export formats.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "graph/generators.hpp"
#include "localsim/tlocal_broadcast.hpp"
#include "obs/trace.hpp"
#include "sim/network.hpp"
#include "trace_hash.hpp"
#include "util/assert.hpp"
#include "util/histogram.hpp"

namespace fl::obs {
namespace {

using graph::EdgeId;
using graph::Graph;
using graph::NodeId;
using sim::Context;
using sim::InboxView;
using sim::Knowledge;
using sim::Metrics;
using sim::Network;
using sim::NodeProgram;
using sim::RunStats;

/// Collect-only tracing: spans and profiles stay queryable in memory,
/// finalize() writes nothing (empty path).
TraceConfig collect_only(TraceLevel level = TraceLevel::Spans) {
  TraceConfig cfg;
  cfg.enabled = true;
  cfg.level = level;
  return cfg;
}

/// The exact probe from test_sim.cpp's NetworkGoldenTrace scenario, so
/// this file can recompute the same pinned hash with tracing on.
class PartitionProbe final : public NodeProgram {
 public:
  PartitionProbe(NodeId self, unsigned active) : self_(self), active_(active) {}

  std::vector<std::tuple<std::size_t, NodeId, EdgeId>> heard;

  void on_start(Context& ctx) override { maybe_send(ctx); }

  void on_round(Context& ctx, InboxView inbox) override {
    for (const auto& m : inbox) heard.emplace_back(ctx.round(), m.from(), m.edge());
    maybe_send(ctx);
  }

  bool done() const override { return true; }

 private:
  void maybe_send(Context& ctx) {
    if (ctx.round() >= active_) return;
    if ((ctx.round() + self_) % 3 != 0) return;
    for (const EdgeId e : ctx.incident_edges()) ctx.send(e, self_);
  }

  NodeId self_;
  unsigned active_;
};

Graph golden_graph() {
  util::Xoshiro256 rng(99);
  return graph::erdos_renyi_gnm(40, 120, rng);
}

std::uint64_t golden_hash(Network& net, const Graph& g, const RunStats& stats) {
  const Metrics& m = net.metrics();
  testing::TraceHash h;
  h.u64(stats.rounds).u64(stats.messages).u64(m.words_total);
  for (const auto c : m.messages_per_round) h.u64(c);
  for (const auto c : m.messages_per_node) h.u64(c);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto& heard = net.program_as<PartitionProbe>(v).heard;
    h.u64(heard.size());
    for (const auto& [round, from, edge] : heard)
      h.u64(round).u64(from).u64(edge);
  }
  return h.value();
}

/// The same pinned value test_sim.cpp anchors the untraced engine to.
constexpr std::uint64_t kGoldenDeliveryHash = 0x6e95c71d1844b722ull;

// ------------------------------------------------------------ neutrality

TEST(TraceNeutrality, GoldenTraceUnchangedWithSpansLive) {
  const Graph g = golden_graph();
  for (const unsigned threads : {1u, 8u}) {
    Network net(g, Knowledge::EdgeIds, 5);
    net.set_parallelism({threads});
    net.set_trace(collect_only(TraceLevel::Spans));
    net.install_all<PartitionProbe>(6u);
    const RunStats stats = net.run(50);
    EXPECT_TRUE(stats.terminated);
    EXPECT_EQ(golden_hash(net, g, stats), kGoldenDeliveryHash)
        << "tracing changed the delivery golden trace at " << threads
        << " lanes — C12 is broken";
    // The spans really were recorded — this is not a vacuous pass.
    ASSERT_NE(net.tracer(), nullptr);
    EXPECT_EQ(net.tracer()->ring_count(), std::size_t{1} + threads);
    std::uint64_t lane_spans = 0;
    for (std::size_t t = 1; t < net.tracer()->ring_count(); ++t)
      lane_spans += net.tracer()->ring(t).total();
    EXPECT_GT(lane_spans, 0u);
  }
}

TEST(TraceNeutrality, PlaneAllocationsUnchanged) {
  const Graph g = golden_graph();
  std::uint64_t allocations_off = 0;
  {
    Network net(g, Knowledge::EdgeIds, 5);
    net.set_parallelism({2});
    net.install_all<PartitionProbe>(6u);
    (void)net.run(50);
    allocations_off = net.debug_plane_allocations();
  }
  Network net(g, Knowledge::EdgeIds, 5);
  net.set_parallelism({2});
  net.set_trace(collect_only());
  net.install_all<PartitionProbe>(6u);
  (void)net.run(50);
  EXPECT_EQ(net.debug_plane_allocations(), allocations_off)
      << "tracing changed the engine's allocation schedule";
}

/// Model fields of the RoundProfile timeline are part of the simulation,
/// not of the wall clock: identical across thread counts, trace levels,
/// and (for this never-binding budget) congest on/off.
TEST(TraceNeutrality, ProfileModelFieldsThreadInvariant) {
  const Graph g = golden_graph();
  using ModelRow =
      std::tuple<std::uint64_t, std::uint64_t, std::uint64_t, std::uint64_t,
                 std::uint64_t>;
  auto run_model = [&](unsigned threads, TraceLevel level,
                       bool congest) -> std::vector<ModelRow> {
    Network net(g, Knowledge::EdgeIds, 5);
    net.set_parallelism({threads});
    if (congest)
      net.set_congest({.words_per_edge_per_round = 2,
                       .policy = sim::CongestPolicy::Defer});
    net.set_trace(collect_only(level));
    net.install_all<PartitionProbe>(6u);
    (void)net.run(200);
    std::vector<ModelRow> rows;
    for (const RoundProfile& p : net.profile())
      rows.emplace_back(p.round, p.messages, p.words, p.deferrals,
                        p.carry_depth);
    return rows;
  };
  for (const bool congest : {false, true}) {
    const auto base = run_model(1, TraceLevel::Spans, congest);
    ASSERT_FALSE(base.empty());
    EXPECT_EQ(run_model(2, TraceLevel::Spans, congest), base);
    EXPECT_EQ(run_model(8, TraceLevel::Spans, congest), base);
    EXPECT_EQ(run_model(8, TraceLevel::Profile, congest), base);
  }
}

TEST(TraceProfile, LaneBusyAndPhaseDataPresent) {
  const Graph g = golden_graph();
  Network net(g, Knowledge::EdgeIds, 5);
  net.set_parallelism({4});
  net.set_trace(collect_only());
  net.install_all<PartitionProbe>(6u);
  const RunStats stats = net.run(50);
  const auto profiles = net.profile();
  ASSERT_EQ(profiles.size(), stats.rounds);
  std::uint64_t total_busy = 0;
  for (const RoundProfile& p : profiles) {
    EXPECT_EQ(p.lane_busy_ns.size(), 4u);
    for (const std::uint64_t b : p.lane_busy_ns) total_busy += b;
    if (p.messages > 0) {
      EXPECT_GE(p.max_over_avg_busy, 1.0);
    }
  }
  EXPECT_GT(total_busy, 0u);
  // Histograms fill from the same run: one words-hist sample per message.
  ASSERT_NE(net.tracer(), nullptr);
  EXPECT_EQ(net.tracer()->message_words_hist().count(), stats.messages);
}

TEST(TraceProfile, ProfileLevelSkipsRingPushes) {
  const Graph g = golden_graph();
  Network net(g, Knowledge::EdgeIds, 5);
  net.set_parallelism({2});
  net.set_trace(collect_only(TraceLevel::Profile));
  net.install_all<PartitionProbe>(6u);
  (void)net.run(50);
  ASSERT_NE(net.tracer(), nullptr);
  for (std::size_t t = 0; t < net.tracer()->ring_count(); ++t)
    EXPECT_EQ(net.tracer()->ring(t).total(), 0u);
  EXPECT_FALSE(net.profile().empty());
}

// ------------------------------------------------------------ span ring

TEST(SpanRing, OverflowDropsOldestAndCounts) {
  SpanRing ring(4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    SpanEvent e;
    e.begin_ns = i;
    e.end_ns = i + 1;
    ring.push(e);
  }
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.total(), 10u);
  EXPECT_EQ(ring.dropped(), 6u);
  std::vector<std::uint64_t> begins;
  ring.for_each([&](const SpanEvent& e) { begins.push_back(e.begin_ns); });
  EXPECT_EQ(begins, (std::vector<std::uint64_t>{6, 7, 8, 9}));
}

TEST(SpanRing, NoDropsBelowCapacity) {
  SpanRing ring(8);
  for (std::uint64_t i = 0; i < 5; ++i) ring.push({});
  EXPECT_EQ(ring.size(), 5u);
  EXPECT_EQ(ring.dropped(), 0u);
}

// ------------------------------------------------------------ histogram

TEST(LogHistogram, BucketGeometry) {
  using H = util::LogHistogram;
  EXPECT_EQ(H::bucket_of(0), 0u);
  EXPECT_EQ(H::bucket_of(1), 1u);
  EXPECT_EQ(H::bucket_of(2), 2u);
  EXPECT_EQ(H::bucket_of(3), 2u);
  EXPECT_EQ(H::bucket_of(4), 3u);
  EXPECT_EQ(H::bucket_of(7), 3u);
  EXPECT_EQ(H::bucket_of(8), 4u);
  EXPECT_EQ(H::bucket_of(~std::uint64_t{0}), H::kBuckets - 1);
  for (std::size_t b = 1; b + 1 < H::kBuckets; ++b) {
    EXPECT_EQ(H::bucket_of(H::bucket_lo(b)), b);
    EXPECT_EQ(H::bucket_of(H::bucket_hi(b)), b);
    EXPECT_EQ(H::bucket_hi(b) + 1, H::bucket_lo(b + 1));
  }
}

TEST(LogHistogram, CountsSumsAndExtrema) {
  util::LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  h.add(5);
  h.add(0);
  h.add(1000, 3);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 5u + 0u + 3000u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_EQ(h.bucket_count(util::LogHistogram::bucket_of(1000)), 3u);
  EXPECT_DOUBLE_EQ(h.mean(), 3005.0 / 5.0);
}

TEST(LogHistogram, MergeMatchesSequentialAdds) {
  util::LogHistogram a;
  util::LogHistogram b;
  util::LogHistogram both;
  for (const std::uint64_t v : {1u, 2u, 3u}) {
    a.add(v);
    both.add(v);
  }
  for (const std::uint64_t v : {100u, 200u}) {
    b.add(v);
    both.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), both.count());
  EXPECT_EQ(a.sum(), both.sum());
  EXPECT_EQ(a.min(), both.min());
  EXPECT_EQ(a.max(), both.max());
  for (std::size_t bkt = 0; bkt < util::LogHistogram::kBuckets; ++bkt)
    EXPECT_EQ(a.bucket_count(bkt), both.bucket_count(bkt));
}

TEST(LogHistogram, QuantileBoundsAreBucketResolution) {
  util::LogHistogram h;
  for (std::uint64_t v = 1; v <= 100; ++v) h.add(v);
  EXPECT_EQ(h.quantile_bound(0.0), util::LogHistogram::bucket_hi(
                                       util::LogHistogram::bucket_of(1)));
  // The p50 sample (rank 50) lives in bucket_of(50) = [32, 63].
  EXPECT_EQ(h.quantile_bound(0.5), 63u);
  EXPECT_EQ(h.quantile_bound(1.0), util::LogHistogram::bucket_hi(
                                       util::LogHistogram::bucket_of(100)));
  EXPECT_EQ(h.used_buckets(), util::LogHistogram::bucket_of(100) + 1);
}

// ------------------------------------------------------------ env probe

struct TraceEnvGuard {
  ~TraceEnvGuard() { unsetenv("FL_SIM_TRACE"); }
};

TEST(TraceConfigProbe, ParsesPathAndLevel) {
  TraceEnvGuard guard;
  unsetenv("FL_SIM_TRACE");
  EXPECT_FALSE(default_trace_config().enabled);

  setenv("FL_SIM_TRACE", "/tmp/t.json", 1);
  TraceConfig cfg = default_trace_config();
  EXPECT_TRUE(cfg.enabled);
  EXPECT_EQ(cfg.path, "/tmp/t.json");
  EXPECT_EQ(cfg.level, TraceLevel::Spans);

  setenv("FL_SIM_TRACE", "/tmp/t.json:profile", 1);
  cfg = default_trace_config();
  EXPECT_EQ(cfg.path, "/tmp/t.json");
  EXPECT_EQ(cfg.level, TraceLevel::Profile);

  setenv("FL_SIM_TRACE", "/tmp/t.json:spans", 1);
  EXPECT_EQ(default_trace_config().level, TraceLevel::Spans);

  setenv("FL_SIM_TRACE", "/tmp/t.json:fast", 1);
  EXPECT_THROW(default_trace_config(), util::ContractViolation);
  setenv("FL_SIM_TRACE", ":spans", 1);
  EXPECT_THROW(default_trace_config(), util::ContractViolation);
}

// ------------------------------------------------------------ exporters

TEST(TraceExport, ChromeTraceAndProfileJsonlWellFormed) {
  const Graph g = golden_graph();
  const std::string path = ::testing::TempDir() + "fl_trace_export.json";
  {
    Network net(g, Knowledge::EdgeIds, 5);
    net.set_parallelism({2});
    TraceConfig cfg;
    cfg.enabled = true;
    cfg.path = path;
    net.set_trace(std::move(cfg));
    net.install_all<PartitionProbe>(6u);
    (void)net.run(50);
  }  // ~Network finalizes both artifacts

  std::ifstream chrome(path);
  ASSERT_TRUE(chrome.good()) << "Chrome trace artifact missing: " << path;
  std::stringstream buf;
  buf << chrome.rdbuf();
  const std::string text = buf.str();
  EXPECT_EQ(text.rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", 0), 0u);
  EXPECT_NE(text.find("\"ph\":\"M\""), std::string::npos);   // metadata
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);   // spans
  EXPECT_NE(text.find("\"step:lane\""), std::string::npos);  // per-lane
  EXPECT_NE(text.find("\"thread_name\""), std::string::npos);
  EXPECT_EQ(text.back(), '\n');

  std::ifstream jsonl(path + ".jsonl");
  ASSERT_TRUE(jsonl.good()) << "profile JSONL artifact missing";
  std::size_t round_lines = 0;
  std::size_t hist_lines = 0;
  for (std::string line; std::getline(jsonl, line);) {
    if (line.rfind("{\"round\":", 0) == 0) ++round_lines;
    if (line.rfind("{\"histogram\":", 0) == 0) ++hist_lines;
  }
  EXPECT_GT(round_lines, 0u);
  EXPECT_EQ(hist_lines, 3u);  // message_words, edge_carry, node_sends

  std::remove(path.c_str());
  std::remove((path + ".jsonl").c_str());
}

TEST(TraceExport, CollectOnlyWritesNothingAndFinalizeIsIdempotent) {
  const Graph g = golden_graph();
  Network net(g, Knowledge::EdgeIds, 5);
  net.set_trace(collect_only());
  net.install_all<PartitionProbe>(6u);
  (void)net.run(50);
  ASSERT_NE(net.tracer(), nullptr);
  net.tracer()->finalize();
  EXPECT_TRUE(net.tracer()->finalized());
  net.tracer()->finalize();  // second call is a no-op, not a crash
  // The in-memory views survive finalize.
  EXPECT_FALSE(net.profile().empty());
}

/// A protocol driver opened through the public entry point shows up as a
/// named span on the engine track of the written trace.
TEST(TraceExport, ProtocolSpanLandsInArtifact) {
  TraceEnvGuard guard;
  const std::string path = ::testing::TempDir() + "fl_trace_protocol.json";
  setenv("FL_SIM_TRACE", path.c_str(), 1);
  {
    util::Xoshiro256 rng(7);
    const Graph g = graph::erdos_renyi_gnm(24, 60, rng);
    (void)localsim::run_tlocal_broadcast(g, localsim::all_edges(g), 3, 11);
  }  // the driver's Network died here and finalized the artifact
  unsetenv("FL_SIM_TRACE");

  std::ifstream chrome(path);
  ASSERT_TRUE(chrome.good());
  std::stringstream buf;
  buf << chrome.rdbuf();
  EXPECT_NE(buf.str().find("\"tlocal_broadcast\""), std::string::npos)
      << "protocol scope missing from the engine track";
  std::remove(path.c_str());
  std::remove((path + ".jsonl").c_str());
}

}  // namespace
}  // namespace fl::obs
