// Message-reduction demo: transform a t-round LOCAL algorithm (Luby's MIS)
// into a message-efficient execution (paper Theorem 3).
//
//   ./message_reduction_demo [--n 600] [--dense] [--t 6] [--seed 1]
//
// Runs the payload natively (t rounds of flooding over G, Θ(t·m) messages)
// and through the transformer (Sampler spanner + αt-radius flooding),
// checks that the outputs are bit-identical, and prints the cost ledger.
#include <iostream>

#include "core/config.hpp"
#include "graph/generators.hpp"
#include "localsim/algorithms.hpp"
#include "localsim/transformer.hpp"
#include "util/options.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace fl;
  const util::Options opt(argc, argv);
  const auto n = static_cast<graph::NodeId>(opt.get_int("n", 600));
  const bool dense = opt.get_bool("dense", true);
  const auto t = static_cast<unsigned>(opt.get_int("t", 6));
  const auto seed = static_cast<std::uint64_t>(opt.get_int("seed", 1));

  util::Xoshiro256 rng(seed);
  const auto g = dense ? graph::complete(n)
                       : graph::erdos_renyi_gnm(n, 16ull * n, rng);
  std::cout << "graph: " << g.summary() << "\n";

  const localsim::LubyMis mis(seed + 1, t);
  std::cout << "payload: " << mis.name() << " with t = " << mis.radius(g)
            << " rounds\n\n";

  const auto native = localsim::run_native(g, mis, seed);
  const auto cfg = core::SamplerConfig::bench_profile(2, 3, seed);
  const auto reduced = localsim::run_simulated(g, mis, cfg);

  util::Table table({"execution", "messages", "rounds", "notes"});
  table.add("native (flood over G)", native.messages, native.rounds,
            "Θ(t·m) messages");
  table.add("reduced: spanner stage", reduced.spanner_messages,
            reduced.spanner_rounds,
            "one-time, Õ(n^{1+δ+ε}), density-independent");
  table.add("reduced: broadcast stage", reduced.broadcast_messages,
            reduced.broadcast_rounds, "Õ(αt·|S|) per payload");
  table.add("reduced: total", reduced.messages, reduced.rounds, "");
  table.print(std::cout, "cost ledger");

  const bool equal = native.outputs == reduced.outputs;
  std::cout << "\noutputs identical: " << (equal ? "YES" : "NO") << "\n";
  std::size_t in_mis = 0;
  for (const auto o : native.outputs)
    if (o == 1) ++in_mis;
  std::cout << "MIS size: " << in_mis << " of " << g.num_nodes() << " nodes\n";
  std::cout << "steady-state message ratio (broadcast/native): "
            << util::fixed(static_cast<double>(reduced.broadcast_messages) /
                               static_cast<double>(native.messages),
                           3)
            << "\n";
  return equal ? 0 : 1;
}
