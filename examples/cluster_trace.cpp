// Figure 1 reproduction: narrate one run of Procedure Cluster_j on a small
// graph — query edges, F construction, center selection, clustering, and
// the contracted next-level multigraph — and emit DOT files for rendering.
//
//   ./cluster_trace [--n 24] [--seed 3] [--dot-dir /tmp]
//
// The DOT output draws G with the spanner edges highlighted; `dot -Tpng`
// turns it into a figure mirroring the paper's panels (a)-(f).
#include <fstream>
#include <iostream>

#include "core/config.hpp"
#include "core/sampler.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/multigraph.hpp"
#include "util/options.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace fl;
  const util::Options opt(argc, argv);
  const auto n = static_cast<graph::NodeId>(opt.get_int("n", 24));
  const auto seed = static_cast<std::uint64_t>(opt.get_int("seed", 3));
  const std::string dot_dir = opt.get_string("dot-dir", "");

  util::Xoshiro256 rng(seed);
  const auto g = graph::erdos_renyi_gnm(n, 3ull * n, rng);
  std::cout << "=== Figure 1 walk-through on " << g.summary() << " ===\n\n";

  const auto cfg = core::SamplerConfig::paper_faithful(2, 2, seed);
  std::cout << "(a) G_0 = G: " << g.summary() << "\n";

  // Run the sampling step of Cluster_0 by hand to show the internals.
  const auto m0 = graph::Multigraph::from_graph(g);
  std::vector<graph::NodeId> rep(n);
  for (graph::NodeId v = 0; v < n; ++v) rep[v] = v;
  const auto outcomes = core::run_sampling_step(m0, cfg, n, 0, rep);

  std::cout << "(b)-(c) query edges and F_v per node (level 0):\n";
  for (graph::NodeId v = 0; v < n; ++v) {
    const auto& out = outcomes[v];
    std::cout << "  node " << v << ": queried " << out.f_edges.size()
              << " neighbours over " << out.distinct_query_edges
              << " query edges in " << out.trials_run << " trial(s), status="
              << (out.status == core::NodeStatus::Light
                      ? "light"
                      : out.status == core::NodeStatus::Heavy ? "heavy"
                                                              : "neither")
              << "\n";
  }

  // Full run for the remaining panels.
  const auto res = core::build_spanner(g, cfg);
  const auto& lv0 = res.trace.levels[0];
  std::cout << "\n(d) center selection: " << lv0.centers
            << " centers at level 0 (p_0 = "
            << cfg.center_prob(n, 0) << ")\n";
  std::cout << "(e) clustering: " << lv0.clustered << " nodes merged, "
            << lv0.unclustered << " unclustered\n";
  if (res.trace.levels.size() > 1) {
    const auto& lv1 = res.trace.levels[1];
    std::cout << "(f) G_1: " << lv1.virtual_nodes << " virtual nodes, "
              << lv1.virtual_edges
              << " virtual edges (parallel edges from contraction)\n";
  }
  std::cout << "\nfinal spanner: " << res.edges.size() << " of "
            << g.num_edges() << " edges, stretch bound "
            << res.stretch_bound << "\n";

  if (!dot_dir.empty()) {
    const std::string path = dot_dir + "/cluster_trace.dot";
    std::ofstream os(path);
    graph::write_dot(os, g, res.edges, "FreeLunch");
    std::cout << "DOT written to " << path
              << "  (render: dot -Tpng -o figure.png " << path << ")\n";
  } else {
    std::cout << "\n(pass --dot-dir DIR to emit a Graphviz rendering)\n";
  }
  return 0;
}
