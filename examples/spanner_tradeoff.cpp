// Spanner tradeoff explorer: sweep the hierarchy depth k and chart the
// stretch/size/messages tradeoff of Theorem 2, next to Baswana–Sen.
//
//   ./spanner_tradeoff [--n 800] [--deg 24] [--seed 1]
//
// Shows how δ = 1/(2^{k+1}−1) trades a (2·3^k−1) stretch bound against
// Õ(n^{1+δ}) edges, and what each choice costs in real messages when run
// distributed.
#include <iostream>

#include "baseline/baswana_sen.hpp"
#include "core/config.hpp"
#include "core/distributed_sampler.hpp"
#include "graph/generators.hpp"
#include "graph/spanner_check.hpp"
#include "util/options.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace fl;
  const util::Options opt(argc, argv);
  const auto n = static_cast<graph::NodeId>(opt.get_int("n", 800));
  const auto deg = static_cast<std::size_t>(opt.get_int("deg", 24));
  const auto seed = static_cast<std::uint64_t>(opt.get_int("seed", 1));

  util::Xoshiro256 rng(seed);
  const auto g = graph::erdos_renyi_gnm(n, deg * n / 2, rng);
  std::cout << "graph: " << g.summary() << "\n\n";

  util::Table table({"construction", "stretch bound", "measured max", "|S|",
                     "|S|/m", "messages", "rounds"});

  for (unsigned k = 1; k <= 3; ++k) {
    const auto cfg = core::SamplerConfig::bench_profile(k, 3, seed);
    const auto run = core::run_distributed_sampler(g, cfg);
    const auto rep =
        graph::check_spanner_exact(g, run.edges, run.stretch_bound);
    table.add("Sampler k=" + std::to_string(k), run.stretch_bound,
              rep.max_edge_stretch, run.edges.size(),
              util::fixed(static_cast<double>(run.edges.size()) /
                              static_cast<double>(g.num_edges()),
                          3),
              run.stats.messages, run.stats.rounds);
  }
  for (unsigned k : {2u, 3u, 4u}) {
    const auto bs = baseline::run_distributed_baswana_sen(g, k, seed);
    const auto rep = graph::check_spanner_exact(g, bs.result.edges,
                                                bs.result.stretch_bound());
    table.add("Baswana-Sen k=" + std::to_string(k),
              bs.result.stretch_bound(), rep.max_edge_stretch,
              bs.result.edges.size(),
              util::fixed(static_cast<double>(bs.result.edges.size()) /
                              static_cast<double>(g.num_edges()),
                          3),
              bs.stats.messages, bs.stats.rounds);
  }
  table.print(std::cout, "stretch / size / messages tradeoff");
  std::cout << "\nNote how Baswana-Sen offers tighter stretch-per-edge but "
               "pays Ω(m) messages,\nwhile Sampler's message bill is "
               "density-independent (the paper's free lunch).\n";
  return 0;
}
