// Quickstart: build a constant-stretch spanner with Õ(n^{1+ε}) messages.
//
//   ./quickstart [--n 1000] [--deg 16] [--k 2] [--h 3] [--seed 1]
//
// Builds a random communication graph, runs the *distributed* Sampler on
// the LOCAL-model simulator, verifies the spanner and prints the costs —
// the 60-second tour of the library's public API.
#include <iostream>

#include "core/config.hpp"
#include "core/distributed_sampler.hpp"
#include "graph/generators.hpp"
#include "graph/spanner_check.hpp"
#include "util/options.hpp"
#include "util/table.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace fl;
  const util::Options opt(argc, argv);
  const auto n = static_cast<graph::NodeId>(opt.get_int("n", 1000));
  const auto deg = static_cast<std::size_t>(opt.get_int("deg", 16));
  const auto k = static_cast<unsigned>(opt.get_int("k", 2));
  const auto h = static_cast<unsigned>(opt.get_int("h", 3));
  const auto seed = static_cast<std::uint64_t>(opt.get_int("seed", 1));

  // 1. A communication graph (any connected simple graph works).
  util::Xoshiro256 rng(seed);
  const auto g = graph::erdos_renyi_gnm(n, deg * n / 2, rng);
  std::cout << "communication graph: " << g.summary() << "\n";

  // 2. Configure the Sampler. paper_faithful() uses the constants of the
  //    paper's proofs; bench_profile() scales them down so asymptotic
  //    behaviour is visible at small n.
  const auto cfg = core::SamplerConfig::paper_faithful(k, h, seed);
  std::cout << "config: " << cfg.describe() << "\n\n";

  // 3. Run the distributed algorithm on the LOCAL simulator.
  const auto run = core::run_distributed_sampler(g, cfg);

  // 4. Verify the guarantees with the built-in oracle.
  const auto rep = graph::check_spanner_exact(g, run.edges, run.stretch_bound);

  util::Table table({"quantity", "value"});
  table.add("spanner edges |S|", run.edges.size());
  table.add("input edges m", static_cast<std::size_t>(g.num_edges()));
  table.add("|S| / m", util::fixed(static_cast<double>(run.edges.size()) /
                                       static_cast<double>(g.num_edges()),
                                   3));
  table.add("stretch bound (Thm 9)", run.stretch_bound);
  table.add("measured max stretch", rep.max_edge_stretch);
  table.add("stretch violations", rep.violations);
  table.add("connected", rep.connected);
  table.add("rounds used", run.stats.rounds);
  table.add("messages sent", run.stats.messages);
  table.add("messages / m", util::fixed(static_cast<double>(run.stats.messages) /
                                            static_cast<double>(g.num_edges()),
                                        3));
  table.print(std::cout, "distributed Sampler results");

  std::cout << "\nper-level summary:\n";
  for (const auto& lt : run.levels) std::cout << "  " << lt.summary() << "\n";
  return 0;
}
