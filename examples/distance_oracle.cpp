// Distance-oracle style application (the paper cites distance oracles and
// routing as classic spanner uses): build the spanner once, answer distance
// queries from the sparse structure, and chart the empirical stretch
// distribution against the Theorem 9 worst-case bound.
//
//   ./distance_oracle [--n 1200] [--deg 48] [--k 2] [--queries 2000]
#include <iostream>
#include <vector>

#include "core/config.hpp"
#include "core/sampler.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "util/options.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace fl;
  const util::Options opt(argc, argv);
  const auto n = static_cast<graph::NodeId>(opt.get_int("n", 1200));
  const auto deg = static_cast<std::size_t>(opt.get_int("deg", 48));
  const auto k = static_cast<unsigned>(opt.get_int("k", 2));
  const auto queries = static_cast<std::size_t>(opt.get_int("queries", 2000));
  const auto seed = static_cast<std::uint64_t>(opt.get_int("seed", 1));

  util::Xoshiro256 rng(seed);
  const auto g = graph::erdos_renyi_gnm(n, deg * n / 2, rng);
  std::cout << "graph: " << g.summary() << "\n";

  const auto cfg = core::SamplerConfig::bench_profile(k, 3, seed);
  const auto res = core::build_spanner(g, cfg);
  const graph::SubgraphView h(g, res.edges);
  std::cout << "spanner: " << res.edges.size() << " edges ("
            << util::fixed(100.0 * static_cast<double>(res.edges.size()) /
                               static_cast<double>(g.num_edges()),
                           1)
            << "% of m), stretch bound " << res.stretch_bound << "\n\n";

  // Answer random s-t queries from H and compare with G's truth.
  std::vector<double> stretches;
  util::Accumulator acc;
  std::size_t done = 0;
  while (done < queries) {
    const auto s = static_cast<graph::NodeId>(rng.index(n));
    const auto dist_g = graph::bfs_distances(g, s);
    const auto dist_h = h.bfs_distances(s);
    // Batch: reuse one BFS pair for many targets.
    for (std::size_t i = 0; i < 64 && done < queries; ++i) {
      const auto t = static_cast<graph::NodeId>(rng.index(n));
      if (t == s || dist_g[t] == graph::kUnreachable) continue;
      const double ratio = static_cast<double>(dist_h[t]) /
                           static_cast<double>(dist_g[t]);
      stretches.push_back(ratio);
      acc.add(ratio);
      ++done;
    }
  }

  util::Table table({"percentile", "stretch"});
  for (const double q : {50.0, 90.0, 99.0, 100.0})
    table.add(q, util::fixed(util::percentile(stretches, q), 3));
  table.print(std::cout, "query stretch distribution (dist_H / dist_G)");
  std::cout << "\nmean stretch " << util::fixed(acc.mean(), 3)
            << ", worst observed " << util::fixed(acc.max(), 3)
            << ", theorem bound " << res.stretch_bound << "\n";
  return acc.max() <= res.stretch_bound ? 0 : 1;
}
